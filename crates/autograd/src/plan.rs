//! The executable half of a memory plan: statically scheduled free points
//! that [`crate::Tape`] applies while recording and backpropagating.
//!
//! `dgnn-analysis` computes the full [`MemoryPlan`] (liveness intervals,
//! buffer classes, peak-bytes figures, safety proof) over a `ShapeTracer`
//! graph and *lowers* it to this minimal [`TapePlan`] — two per-node free
//! lists — which is all the executor needs. Keeping the executable type
//! here avoids a dependency cycle (`analysis` depends on `autograd`, not
//! the other way around).
//!
//! [`MemoryPlan`]: https://docs.rs/dgnn-analysis

use std::cell::RefCell;
use std::rc::Rc;

use dgnn_tensor::BufferPool;

use crate::params::ParamSet;
use crate::recorder::Var;
use crate::rewrite::RewritePlan;
use crate::tape::{FoldCache, RewriteCounters, Tape};

/// Statically scheduled value-free points for one compute graph.
///
/// `forward_free[i]` lists the nodes whose forward values die once node `i`
/// has been recorded; `backward_free[i]` lists the nodes whose values die
/// once node `i`'s backward step has run. Node indices are `u32` — a graph
/// with 4 billion nodes has bigger problems than memory planning.
#[derive(Debug, Clone, Default)]
pub struct TapePlan {
    pub(crate) forward_free: Vec<Vec<u32>>,
    pub(crate) backward_free: Vec<Vec<u32>>,
}

impl TapePlan {
    /// Builds a plan from per-node free lists (one entry per graph node).
    ///
    /// # Panics
    /// Panics if the two lists disagree in length or any index is out of
    /// range — a malformed plan must never reach the executor.
    pub fn new(forward_free: Vec<Vec<u32>>, backward_free: Vec<Vec<u32>>) -> Self {
        assert_eq!(
            forward_free.len(),
            backward_free.len(),
            "TapePlan: forward/backward free lists cover different node counts"
        );
        let n = forward_free.len() as u32;
        for (i, frees) in forward_free.iter().enumerate() {
            for &d in frees {
                assert!(d < n, "TapePlan: forward free of node {d} out of range at step {i}");
                assert!(
                    d <= i as u32,
                    "TapePlan: node {d} scheduled to free before it exists (step {i})"
                );
            }
        }
        for &d in backward_free.iter().flatten() {
            assert!(d < n, "TapePlan: backward free of node {d} out of range");
        }
        Self { forward_free, backward_free }
    }

    /// Number of graph nodes the plan covers.
    pub fn len(&self) -> usize {
        self.forward_free.len()
    }

    /// True when the plan covers an empty graph.
    pub fn is_empty(&self) -> bool {
        self.forward_free.is_empty()
    }

    /// Total number of scheduled free points (forward + backward).
    pub fn num_frees(&self) -> usize {
        self.forward_free.iter().map(Vec::len).sum::<usize>()
            + self.backward_free.iter().map(Vec::len).sum::<usize>()
    }
}

/// Drives planned training steps: owns the plan(s) and a [`BufferPool`]
/// that persists across steps so each step's retired buffers feed the next.
///
/// ```text
/// let mut h = PlanHarness::new(plan);
/// for batch in batches {
///     let mut tape = h.begin_step();          // pool installed, plan armed
///     let loss = model.record_step(&mut tape, batch);
///     params.zero_grads();
///     let l = tape.backward_into(loss, &mut params);
///     optimizer.step(&mut params);
///     h.end_step(tape);                       // remaining values retired
/// }
/// ```
///
/// A harness can carry a memory plan, a rewrite plan
/// ([`PlanHarness::with_rewrites`]), or both: the rewrite plan changes how
/// forward values are produced, the memory plan when they are retired, and
/// the two compose per node. The harness also owns the cross-step
/// [`FoldCache`] behind constant folding, invalidating it at each
/// `begin_step`.
#[derive(Debug)]
pub struct PlanHarness {
    plan: Option<Rc<TapePlan>>,
    rewrites: Option<Rc<RewritePlan>>,
    fold: Rc<RefCell<FoldCache>>,
    pool: Option<BufferPool>,
    last_counters: Option<RewriteCounters>,
}

impl PlanHarness {
    /// Wraps a lowered memory plan with a fresh buffer pool.
    pub fn new(plan: TapePlan) -> Self {
        Self::assemble(Some(plan), None)
    }

    /// Wraps an optional memory plan plus a checker-proven rewrite plan.
    pub fn with_rewrites(plan: Option<TapePlan>, rewrites: RewritePlan) -> Self {
        Self::assemble(plan, Some(rewrites))
    }

    fn assemble(plan: Option<TapePlan>, rewrites: Option<RewritePlan>) -> Self {
        assert!(
            plan.is_some() || rewrites.is_some(),
            "PlanHarness: at least one of memory plan / rewrite plan is required"
        );
        let slots = rewrites.as_ref().map_or(0, |rw| rw.num_fold_slots() as usize);
        Self {
            plan: plan.map(Rc::new),
            rewrites: rewrites.map(Rc::new),
            fold: Rc::new(RefCell::new(FoldCache::new(slots))),
            pool: Some(BufferPool::new()),
            last_counters: None,
        }
    }

    /// The memory plan being executed, if any.
    pub fn plan(&self) -> Option<&TapePlan> {
        self.plan.as_deref()
    }

    /// The rewrite plan being executed, if any.
    pub fn rewrites(&self) -> Option<&RewritePlan> {
        self.rewrites.as_deref()
    }

    /// Rewrite counters observed on the most recently closed step (None
    /// until a rewritten step completes).
    pub fn last_rewrite_counters(&self) -> Option<RewriteCounters> {
        self.last_counters
    }

    /// Installs the pool on this thread and returns a tape with the
    /// harness's plans armed.
    ///
    /// # Panics
    /// Panics if called again before [`PlanHarness::end_step`] — a harness
    /// drives one step at a time.
    pub fn begin_step(&mut self) -> Tape {
        self.pool
            .take()
            .expect("PlanHarness::begin_step: previous step not closed with end_step")
            .install();
        let mut tape = Tape::new();
        if let Some(plan) = &self.plan {
            tape = tape.with_plan(Rc::clone(plan));
        }
        if let Some(rw) = &self.rewrites {
            self.fold.borrow_mut().begin_step();
            tape = tape.with_rewrites(Rc::clone(rw), Rc::clone(&self.fold));
        }
        tape
    }

    /// Closes a step: drops the tape (retiring every remaining value into
    /// the pool) and takes the pool back off the thread.
    ///
    /// # Panics
    /// Panics if the pool was uninstalled behind the harness's back.
    pub fn end_step(&mut self, tape: Tape) {
        if let Some(c) = tape.rewrite_counters() {
            self.last_counters = Some(c);
        }
        drop(tape);
        self.pool =
            Some(BufferPool::uninstall().expect("PlanHarness::end_step: pool vanished mid-step"));
    }

    /// Convenience for trainers: runs one full planned step — records the
    /// graph via `record`, zeroes gradients, backpropagates into `params` —
    /// and returns the loss value.
    pub fn step<F: FnOnce(&mut Tape) -> Var>(&mut self, params: &mut ParamSet, record: F) -> f32 {
        let mut tape = self.begin_step();
        let loss = {
            let _fwd = dgnn_obs::span("forward");
            record(&mut tape)
        };
        params.zero_grads();
        let l = {
            let _bwd = dgnn_obs::span("backward");
            tape.backward_into(loss, params)
        };
        self.end_step(tape);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "free lists cover different node counts")]
    fn mismatched_lengths_rejected() {
        let _ = TapePlan::new(vec![vec![]], vec![]);
    }

    #[test]
    #[should_panic(expected = "scheduled to free before it exists")]
    fn premature_free_rejected() {
        let _ = TapePlan::new(vec![vec![1], vec![]], vec![vec![], vec![]]);
    }

    #[test]
    fn free_counts_add_up() {
        let p = TapePlan::new(vec![vec![], vec![0]], vec![vec![1], vec![]]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_frees(), 2);
    }
}
