//! Per-op-kind profiling table fed by `dgnn-autograd`'s `TapeObserver`.
//!
//! Keys are the portable op names shared by `Tape` and `ShapeTracer`
//! (`dgnn_autograd::meta::ALL_OPS`): `"matmul"`, `"spmm"`,
//! `"segment_softmax"`, … — so a profile row lines up directly with the
//! static analysis' view of the same graph. Keyed by `&'static str` at the
//! recording site; the key string is only materialized on first insert.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Which half of the step an op measurement belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpPhase {
    /// Op execution while recording the graph.
    Forward,
    /// The op's arm of the reverse sweep.
    Backward,
}

/// Accumulated calls and wall time for one direction of one op kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of invocations.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
}

/// Forward + backward profile of one op kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStat {
    /// Forward-pass accumulation.
    pub forward: PhaseStat,
    /// Backward-pass accumulation.
    pub backward: PhaseStat,
}

thread_local! {
    static OPS: RefCell<BTreeMap<String, OpStat>> = const { RefCell::new(BTreeMap::new()) };
}

/// Accumulates one op invocation (no-op while disabled).
pub fn record_op(kind: &'static str, phase: OpPhase, dur_ns: u64) {
    if !crate::is_enabled() {
        return;
    }
    OPS.with(|m| {
        let mut m = m.borrow_mut();
        let stat = match m.get_mut(kind) {
            Some(s) => s,
            None => m.entry(kind.to_string()).or_default(),
        };
        let p = match phase {
            OpPhase::Forward => &mut stat.forward,
            OpPhase::Backward => &mut stat.backward,
        };
        p.calls += 1;
        p.total_ns += dur_ns;
    });
}

pub(crate) fn snapshot_ops() -> BTreeMap<String, OpStat> {
    OPS.with(|m| m.borrow().clone())
}

pub(crate) fn clear() {
    OPS.with(|m| m.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        crate::enable();
        clear();
        record_op("spmm", OpPhase::Forward, 5);
        record_op("spmm", OpPhase::Backward, 7);
        record_op("spmm", OpPhase::Backward, 7);
        let snap = snapshot_ops();
        crate::disable();
        let s = &snap["spmm"];
        assert_eq!((s.forward.calls, s.forward.total_ns), (1, 5));
        assert_eq!((s.backward.calls, s.backward.total_ns), (2, 14));
        clear();
    }
}
