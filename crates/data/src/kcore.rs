//! K-core filtering — the standard preprocessing step applied to raw
//! review-site dumps before recommendation experiments (users/items with
//! fewer than `k` interactions are removed iteratively until a fixed point,
//! then ids are compacted).

use dgnn_graph::{HeteroGraph, HeteroGraphBuilder};

/// Iteratively removes users and items with fewer than `k` interactions,
/// then rebuilds the graph with compacted contiguous ids. Social ties and
/// item-relation links among surviving nodes are preserved; relation nodes
/// that lose all their items are dropped and re-indexed too.
///
/// Returns the filtered graph together with the surviving original user and
/// item ids (index = new id).
pub fn k_core(g: &HeteroGraph, k: usize) -> (HeteroGraph, Vec<usize>, Vec<usize>) {
    assert!(k >= 1, "k_core: k must be at least 1");
    let mut user_alive = vec![true; g.num_users()];
    let mut item_alive = vec![true; g.num_items()];

    // Iterate to a fixed point: degrees only shrink, so this terminates.
    loop {
        let mut changed = false;
        let mut user_deg = vec![0usize; g.num_users()];
        let mut item_deg = vec![0usize; g.num_items()];
        for u in 0..g.num_users() {
            if !user_alive[u] {
                continue;
            }
            for &v in g.items_of(u) {
                if item_alive[v] {
                    user_deg[u] += 1;
                    item_deg[v] += 1;
                }
            }
        }
        for u in 0..g.num_users() {
            if user_alive[u] && user_deg[u] < k {
                user_alive[u] = false;
                changed = true;
            }
        }
        for v in 0..g.num_items() {
            if item_alive[v] && item_deg[v] < k {
                item_alive[v] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Compact ids.
    let user_ids: Vec<usize> = (0..g.num_users()).filter(|&u| user_alive[u]).collect();
    let item_ids: Vec<usize> = (0..g.num_items()).filter(|&v| item_alive[v]).collect();
    let mut user_map = vec![usize::MAX; g.num_users()];
    for (new, &old) in user_ids.iter().enumerate() {
        user_map[old] = new;
    }
    let mut item_map = vec![usize::MAX; g.num_items()];
    for (new, &old) in item_ids.iter().enumerate() {
        item_map[old] = new;
    }

    // Relation nodes survive if any surviving item links to them.
    let mut rel_alive = vec![false; g.num_relations()];
    for &(v, r) in g.item_relations() {
        if item_alive[v as usize] {
            rel_alive[r as usize] = true;
        }
    }
    let rel_ids: Vec<usize> = (0..g.num_relations()).filter(|&r| rel_alive[r]).collect();
    let mut rel_map = vec![usize::MAX; g.num_relations()];
    for (new, &old) in rel_ids.iter().enumerate() {
        rel_map[old] = new;
    }

    let mut b = HeteroGraphBuilder::new(user_ids.len(), item_ids.len(), rel_ids.len());
    for it in g.interactions() {
        let (u, v) = (it.user as usize, it.item as usize);
        if user_alive[u] && item_alive[v] {
            b.interaction(user_map[u], item_map[v], it.time);
        }
    }
    for &(a, c) in g.social_ties() {
        let (a, c) = (a as usize, c as usize);
        if user_alive[a] && user_alive[c] {
            b.social_tie(user_map[a], user_map[c]);
        }
    }
    for &(v, r) in g.item_relations() {
        let (v, r) = (v as usize, r as usize);
        if item_alive[v] && rel_alive[r] {
            b.item_relation(item_map[v], rel_map[r]);
        }
    }
    (b.build(), user_ids, item_ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new(4, 5, 2);
        // Users 0, 1 are well-connected; user 2 has one interaction with a
        // popular item; user 3 has one interaction with a singleton item.
        b.interaction(0, 0, 0)
            .interaction(0, 1, 1)
            .interaction(1, 0, 0)
            .interaction(1, 1, 1)
            .interaction(2, 0, 0)
            .interaction(2, 1, 1)
            .interaction(3, 4, 0)
            .social_tie(0, 3)
            .social_tie(0, 1)
            .item_relation(0, 0)
            .item_relation(4, 1);
        b.build()
    }

    #[test]
    fn two_core_drops_sparse_user_and_item() {
        let (core, users, items) = k_core(&graph(), 2);
        assert_eq!(users, vec![0, 1, 2], "user 3 has degree 1 after item 4 dies");
        assert_eq!(items, vec![0, 1]);
        assert_eq!(core.num_users(), 3);
        assert_eq!(core.num_items(), 2);
        // Social tie 0–3 dies with user 3; 0–1 survives (remapped).
        assert_eq!(core.social_ties(), &[(0, 1)]);
        // Relation node 1 (only on item 4) is dropped and re-indexed.
        assert_eq!(core.num_relations(), 1);
        assert_eq!(core.item_relations(), &[(0, 0)]);
    }

    #[test]
    fn one_core_removes_nothing_here() {
        let g = graph();
        let (core, users, items) = k_core(&g, 1);
        assert_eq!(users.len(), g.num_users());
        assert_eq!(items.len(), 5 - 2, "items 2, 3 have no interactions at all");
        assert_eq!(core.interactions().len(), g.interactions().len());
    }

    #[test]
    fn cascading_removal_reaches_fixed_point() {
        // A chain: u0–v0–u1–v1, each endpoint degree 1: 2-core empties it.
        let mut b = HeteroGraphBuilder::new(2, 2, 1);
        b.interaction(0, 0, 0).interaction(1, 0, 0).interaction(1, 1, 0);
        let (core, users, items) = k_core(&b.build(), 2);
        // v1 (degree 1) dies, dropping u1 to degree 1; u0 starts at degree
        // 1; the cascade unravels everything. Fixed point: empty graph.
        assert!(users.is_empty(), "cascade should empty the graph: {users:?}");
        assert!(items.is_empty());
        assert_eq!(core.num_users(), 0);
        assert_eq!(core.num_items(), 0);
        assert_eq!(core.interactions().len(), 0);
    }

    #[test]
    fn filtered_graph_satisfies_k_core_property() {
        let data = crate::tiny(3);
        let (core, _, _) = k_core(&data.graph, 3);
        for u in 0..core.num_users() {
            assert!(core.items_of(u).len() >= 3, "user {u} below core degree");
        }
        for v in 0..core.num_items() {
            assert!(core.users_of(v).len() >= 3, "item {v} below core degree");
        }
    }
}
