//! DGNN hyperparameters and ablation switches.

/// Configuration of the DGNN model (Section V-A4 of the paper gives the
/// tuned values the defaults reflect).
#[derive(Debug, Clone, PartialEq)]
pub struct DgnnConfig {
    /// Hidden dimensionality `d` (paper tunes {4, 8, 16, 32}; 16 is best).
    pub dim: usize,
    /// Number of propagation layers `L` (paper: 2 is best, 0–3 swept).
    pub layers: usize,
    /// Number of latent memory units `|M|` per relation family
    /// (paper: 8 is best, {2, 4, 8, 16} swept).
    pub memory_units: usize,
    /// Adam learning rate (paper: 0.01).
    pub learning_rate: f32,
    /// Weight-decay coefficient λ of Eq. 11 (paper tunes
    /// {1e-3, 1e-4, 1e-5}).
    pub weight_decay: f32,
    /// Training epochs.
    pub epochs: usize,
    /// BPR batch size (paper searches 512–4096).
    pub batch_size: usize,
    /// LeakyReLU negative slope α (paper: 0.2).
    pub leaky_slope: f32,
    /// Ablation `-M`: `false` replaces the memory-augmented encoder with a
    /// single shared transformation per relation family.
    pub use_memory: bool,
    /// Ablation `-τ`: `false` drops the social recalibration term from the
    /// prediction (Eq. 9–10).
    pub use_recalibration: bool,
    /// Ablation `-LN`: `false` drops the per-layer LayerNorm of Eq. 7.
    pub use_layer_norm: bool,
    /// Ablation `-S`: `false` removes the social matrix `S` from the graph.
    pub use_social: bool,
    /// Ablation `-T`: `false` removes the item-relation matrix `T`.
    pub use_knowledge: bool,
    /// Execute training steps under a static [`MemoryPlan`]: intermediates
    /// are retired at their statically computed death points into a
    /// shape-keyed buffer pool. Bit-identical to unplanned execution; the
    /// plan is verified by the independent safety checker before the first
    /// step runs.
    ///
    /// [`MemoryPlan`]: https://docs.rs/dgnn-analysis
    pub use_memory_plan: bool,
    /// Execute training steps under a checker-proven [`RewritePlan`]: the
    /// graph optimizer folds training-invariant subgraphs into a cross-step
    /// cache, serves common subexpressions as copies, and lowers fusable op
    /// chains onto in-place/streaming/fused kernels. Bit-identical to
    /// unoptimized execution at any thread count; the plan is proven by an
    /// independent soundness checker before the first step runs. Composes
    /// with [`DgnnConfig::use_memory_plan`].
    ///
    /// [`RewritePlan`]: https://docs.rs/dgnn-autograd
    pub use_graph_opt: bool,
    /// Kernel-pool thread count for training (`0` inherits the ambient
    /// setting: the `DGNN_THREADS` environment variable, falling back to
    /// the hardware parallelism). Results are bit-identical at every
    /// setting; `1` forces fully serial kernels.
    pub threads: usize,
}

impl Default for DgnnConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            layers: 2,
            memory_units: 8,
            learning_rate: 0.01,
            weight_decay: 1e-4,
            epochs: 30,
            batch_size: 2048,
            leaky_slope: 0.2,
            use_memory: true,
            use_recalibration: true,
            use_layer_norm: true,
            use_social: true,
            use_knowledge: true,
            use_memory_plan: false,
            use_graph_opt: false,
            threads: 0,
        }
    }
}

impl DgnnConfig {
    /// The `-M` variant of Figure 4.
    pub fn without_memory(mut self) -> Self {
        self.use_memory = false;
        self
    }

    /// The `-τ` variant of Figure 4.
    pub fn without_recalibration(mut self) -> Self {
        self.use_recalibration = false;
        self
    }

    /// The `-LN` variant of Figure 4.
    pub fn without_layer_norm(mut self) -> Self {
        self.use_layer_norm = false;
        self
    }

    /// The `-S` variant of Figure 5.
    pub fn without_social(mut self) -> Self {
        self.use_social = false;
        self
    }

    /// The `-T` variant of Figure 5.
    pub fn without_knowledge(mut self) -> Self {
        self.use_knowledge = false;
        self
    }

    /// The `-ST` variant of Figure 5.
    pub fn without_social_and_knowledge(self) -> Self {
        self.without_social().without_knowledge()
    }

    /// Enables statically planned, pooled training-step execution.
    pub fn with_memory_plan(mut self) -> Self {
        self.use_memory_plan = true;
        self
    }

    /// Enables checker-proven graph-optimized execution (constant folding,
    /// CSE, op fusion) for training steps.
    pub fn with_graph_opt(mut self) -> Self {
        self.use_graph_opt = true;
        self
    }

    /// Pins the kernel-pool thread count for training (`0` = inherit).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Effective number of memory units after the `-M` ablation.
    pub fn effective_memory_units(&self) -> usize {
        if self.use_memory {
            self.memory_units
        } else {
            1
        }
    }

    /// Serializes every field as `(key, value)` pairs for checkpoint
    /// metadata. Floats use Rust's shortest round-trip formatting, so
    /// [`DgnnConfig::from_meta`] reconstructs them bit-exactly.
    pub fn to_meta(&self) -> Vec<(String, String)> {
        vec![
            ("cfg/dim".into(), self.dim.to_string()),
            ("cfg/layers".into(), self.layers.to_string()),
            ("cfg/memory_units".into(), self.memory_units.to_string()),
            ("cfg/learning_rate".into(), self.learning_rate.to_string()),
            ("cfg/weight_decay".into(), self.weight_decay.to_string()),
            ("cfg/epochs".into(), self.epochs.to_string()),
            ("cfg/batch_size".into(), self.batch_size.to_string()),
            ("cfg/leaky_slope".into(), self.leaky_slope.to_string()),
            ("cfg/use_memory".into(), self.use_memory.to_string()),
            ("cfg/use_recalibration".into(), self.use_recalibration.to_string()),
            ("cfg/use_layer_norm".into(), self.use_layer_norm.to_string()),
            ("cfg/use_social".into(), self.use_social.to_string()),
            ("cfg/use_knowledge".into(), self.use_knowledge.to_string()),
            ("cfg/use_memory_plan".into(), self.use_memory_plan.to_string()),
            ("cfg/use_graph_opt".into(), self.use_graph_opt.to_string()),
            ("cfg/threads".into(), self.threads.to_string()),
        ]
    }

    /// Rebuilds a configuration from checkpoint metadata (`lookup` maps a
    /// key like `cfg/dim` to its stored value). Every field is required;
    /// a missing or unparsable entry names itself in the error.
    pub fn from_meta(lookup: &dyn Fn(&str) -> Option<String>) -> Result<Self, String> {
        fn get<T: std::str::FromStr>(
            lookup: &dyn Fn(&str) -> Option<String>,
            key: &str,
        ) -> Result<T, String> {
            let raw = lookup(key).ok_or_else(|| format!("missing config entry {key:?}"))?;
            raw.parse().map_err(|_| format!("unparsable config entry {key:?} = {raw:?}"))
        }
        Ok(Self {
            dim: get(lookup, "cfg/dim")?,
            layers: get(lookup, "cfg/layers")?,
            memory_units: get(lookup, "cfg/memory_units")?,
            learning_rate: get(lookup, "cfg/learning_rate")?,
            weight_decay: get(lookup, "cfg/weight_decay")?,
            epochs: get(lookup, "cfg/epochs")?,
            batch_size: get(lookup, "cfg/batch_size")?,
            leaky_slope: get(lookup, "cfg/leaky_slope")?,
            use_memory: get(lookup, "cfg/use_memory")?,
            use_recalibration: get(lookup, "cfg/use_recalibration")?,
            use_layer_norm: get(lookup, "cfg/use_layer_norm")?,
            use_social: get(lookup, "cfg/use_social")?,
            use_knowledge: get(lookup, "cfg/use_knowledge")?,
            use_memory_plan: get(lookup, "cfg/use_memory_plan")?,
            use_graph_opt: get(lookup, "cfg/use_graph_opt")?,
            threads: get(lookup, "cfg/threads")?,
        })
    }

    /// Validates invariants; call before training.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid configuration.
    pub fn validate(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.memory_units > 0, "memory_units must be positive");
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.learning_rate > 0.0, "learning_rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.leaky_slope),
            "leaky_slope must be in [0, 1)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tuning() {
        let c = DgnnConfig::default();
        assert_eq!(c.dim, 16);
        assert_eq!(c.layers, 2);
        assert_eq!(c.memory_units, 8);
        assert!((c.learning_rate - 0.01).abs() < 1e-9);
        assert!((c.leaky_slope - 0.2).abs() < 1e-9);
        assert_eq!(c.threads, 0, "default must inherit the ambient thread count");
        c.validate();
    }

    #[test]
    fn with_threads_pins_the_pool_width() {
        assert_eq!(DgnnConfig::default().with_threads(4).threads, 4);
    }

    #[test]
    fn ablation_builders_flip_flags() {
        let c = DgnnConfig::default()
            .without_memory()
            .without_recalibration()
            .without_layer_norm()
            .without_social_and_knowledge();
        assert!(!c.use_memory);
        assert!(!c.use_recalibration);
        assert!(!c.use_layer_norm);
        assert!(!c.use_social);
        assert!(!c.use_knowledge);
        assert_eq!(c.effective_memory_units(), 1);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        DgnnConfig { dim: 0, ..DgnnConfig::default() }.validate();
    }

    #[test]
    fn meta_round_trip_is_exact() {
        let cfg = DgnnConfig {
            learning_rate: 0.012_345_679,
            weight_decay: 3.3e-7,
            ..DgnnConfig::default().without_layer_norm().with_threads(4).with_graph_opt()
        };
        let meta: std::collections::BTreeMap<String, String> = cfg.to_meta().into_iter().collect();
        let back = DgnnConfig::from_meta(&|k| meta.get(k).cloned()).unwrap();
        assert_eq!(cfg, back);
        assert_eq!(cfg.learning_rate.to_bits(), back.learning_rate.to_bits());
    }

    #[test]
    fn from_meta_names_the_missing_field() {
        let err = DgnnConfig::from_meta(&|_| None).unwrap_err();
        assert!(err.contains("cfg/dim"), "got {err}");
    }
}
