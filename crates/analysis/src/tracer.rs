//! [`ShapeTracer`]: abstract interpretation of compute graphs over the
//! shape domain.
//!
//! The tracer implements [`Recorder`], so any model written against
//! `R: Recorder` — DGNN itself and the traced baselines — can be "run"
//! without allocating a single output tensor: each op records only its
//! output shape, a boundedness bit, its input edges, and a static op name.
//! Structural problems (shape mismatches, out-of-range gather indices,
//! non-covering segment pointers, `exp` of unbounded inputs) surface as
//! [`Diagnostic`]s at trace time, *before* any training step executes.

use std::rc::Rc;

use dgnn_autograd::{ParamId, ParamSet, Recorder, Var};
use dgnn_tensor::{Csr, Matrix};

/// The class of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// Operand shapes are incompatible with the op's contract.
    ShapeMismatch,
    /// A gather index or segment pointer addresses rows that do not exist.
    IndexRange,
    /// A parameter registered in the [`ParamSet`] never contributes to the
    /// loss (either never traced, or traced with no path to the loss).
    UnusedParam,
    /// A recorded node that is reachable from neither the loss nor any
    /// declared output — compute that `backward` can never see.
    DeadSubgraph,
    /// `exp` applied to an input with no bounding op between it and a
    /// parameter/leaf: overflows to `inf` once logits drift.
    UnstableExp,
}

/// One structured finding about a traced compute graph.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// What went wrong.
    pub kind: DiagnosticKind,
    /// Index of the node where the problem was detected (op provenance);
    /// `None` for set-level findings such as never-traced parameters.
    pub node: Option<usize>,
    /// Static name of that node's op, when a node is implicated.
    pub op: Option<&'static str>,
    /// Human-readable description with the concrete shapes/indices.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.node, self.op) {
            (Some(n), Some(op)) => write!(f, "[{:?}] node {n} ({op}): {}", self.kind, self.message),
            _ => write!(f, "[{:?}] {}", self.kind, self.message),
        }
    }
}

/// One abstract node: shape + provenance, no tensor data.
#[derive(Debug)]
pub(crate) struct TraceNode {
    pub op: &'static str,
    pub shape: (usize, usize),
    pub inputs: Vec<usize>,
    pub param: Option<ParamId>,
    /// True when the op's output lies in a fixed interval regardless of
    /// how far parameters drift during training (σ, tanh, softmax, norms,
    /// and compositions of bounded inputs). Leaves: constants are bounded
    /// (they never change), parameters are not.
    pub bounded: bool,
}

/// Abstract interpreter over the shape domain; the second [`Recorder`]
/// implementation next to `Tape`.
///
/// Feed it the exact graph-building code the trainer uses (e.g.
/// `Dgnn::record_step`), then inspect [`ShapeTracer::diagnostics`] or run
/// the reachability auditor in [`crate::audit`].
#[derive(Debug, Default)]
pub struct ShapeTracer {
    nodes: Vec<TraceNode>,
    diags: Vec<Diagnostic>,
}

impl ShapeTracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of traced nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Diagnostics collected while tracing (shape, index-range, and
    /// stability findings). Reachability findings require the auditor.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Static op name of a traced node.
    pub fn op_name(&self, v: Var) -> &'static str {
        self.nodes[v.index()].op
    }

    pub(crate) fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    fn push(
        &mut self,
        op: &'static str,
        shape: (usize, usize),
        inputs: &[Var],
        bounded: bool,
        param: Option<ParamId>,
    ) -> Var {
        self.nodes.push(TraceNode {
            op,
            shape,
            inputs: inputs.iter().map(|v| v.index()).collect(),
            param,
            bounded,
        });
        Var::from_index(self.nodes.len() - 1)
    }

    fn diag(&mut self, kind: DiagnosticKind, op: &'static str, message: String) {
        // The offending node is the one about to be pushed.
        self.diags.push(Diagnostic { kind, node: Some(self.nodes.len()), op: Some(op), message });
    }

    fn shape_of(&self, v: Var) -> (usize, usize) {
        self.nodes[v.index()].shape
    }

    fn bounded_of(&self, v: Var) -> bool {
        self.nodes[v.index()].bounded
    }

    /// Checks an elementwise binary op's operands for equal shapes.
    fn require_same(&mut self, op: &'static str, a: Var, b: Var) {
        let (sa, sb) = (self.shape_of(a), self.shape_of(b));
        if sa != sb {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                op,
                format!("operand shapes {sa:?} and {sb:?} differ"),
            );
        }
    }

    /// Unary shape-preserving op helper.
    fn unary(&mut self, op: &'static str, a: Var, bounded: bool) -> Var {
        let shape = self.shape_of(a);
        self.push(op, shape, &[a], bounded, None)
    }

    /// Binary elementwise op helper (requires equal shapes).
    fn binary(&mut self, op: &'static str, a: Var, b: Var) -> Var {
        self.require_same(op, a, b);
        let shape = self.shape_of(a);
        let bounded = self.bounded_of(a) && self.bounded_of(b);
        self.push(op, shape, &[a, b], bounded, None)
    }

    /// Validates a CSR-style segment pointer against an edge count.
    fn check_segments(&mut self, op: &'static str, seg: &[usize], edges: usize) {
        match seg.last() {
            None => {
                self.diag(DiagnosticKind::IndexRange, op, "empty segment pointer".to_string());
            }
            Some(&end) if end != edges => {
                self.diag(
                    DiagnosticKind::IndexRange,
                    op,
                    format!("segment pointer covers {end} edges but input has {edges}"),
                );
            }
            _ => {}
        }
        if seg.windows(2).any(|w| w[0] > w[1]) {
            self.diag(
                DiagnosticKind::IndexRange,
                op,
                "segment pointer is not monotonically non-decreasing".to_string(),
            );
        }
    }
}

impl Recorder for ShapeTracer {
    fn constant(&mut self, value: Matrix) -> Var {
        // Constants never change during training, so they are bounded.
        self.push("constant", value.shape(), &[], true, None)
    }

    fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        // Parameters drift arbitrarily far under optimization: unbounded.
        self.push("param", params.value(id).shape(), &[], false, Some(id))
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.shape_of(v)
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary("add", a, b)
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary("sub", a, b)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary("mul", a, b)
    }

    fn neg(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        self.unary("neg", a, bounded)
    }

    fn scale(&mut self, a: Var, _k: f32) -> Var {
        let bounded = self.bounded_of(a);
        self.unary("scale", a, bounded)
    }

    fn add_scalar(&mut self, a: Var, _k: f32) -> Var {
        let bounded = self.bounded_of(a);
        self.unary("add_scalar", a, bounded)
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (sa, sb) = (self.shape_of(a), self.shape_of(b));
        if sa.1 != sb.0 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "matmul",
                format!("inner dimensions disagree: {sa:?} · {sb:?}"),
            );
        }
        let bounded = self.bounded_of(a) && self.bounded_of(b);
        self.push("matmul", (sa.0, sb.1), &[a, b], bounded, None)
    }

    fn transpose(&mut self, a: Var) -> Var {
        let (r, c) = self.shape_of(a);
        let bounded = self.bounded_of(a);
        self.push("transpose", (c, r), &[a], bounded, None)
    }

    fn spmm_with(&mut self, adj: &Rc<Csr>, adj_t: &Rc<Csr>, b: Var) -> Var {
        let sb = self.shape_of(b);
        if adj.rows() != adj_t.cols() || adj.cols() != adj_t.rows() {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "spmm",
                format!(
                    "adj_t {}×{} is not the transpose of adj {}×{}",
                    adj_t.rows(),
                    adj_t.cols(),
                    adj.rows(),
                    adj.cols()
                ),
            );
        }
        if adj.cols() != sb.0 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "spmm",
                format!("adj is {}×{} but dense operand is {sb:?}", adj.rows(), adj.cols()),
            );
        }
        // The adjacency is a fixed constant, so boundedness follows b.
        let bounded = self.bounded_of(b);
        self.push("spmm", (adj.rows(), sb.1), &[b], bounded, None)
    }

    fn sigmoid(&mut self, a: Var) -> Var {
        self.unary("sigmoid", a, true)
    }

    fn tanh(&mut self, a: Var) -> Var {
        self.unary("tanh", a, true)
    }

    fn leaky_relu(&mut self, a: Var, _alpha: f32) -> Var {
        let bounded = self.bounded_of(a);
        self.unary("leaky_relu", a, bounded)
    }

    fn relu(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        self.unary("relu", a, bounded)
    }

    fn exp(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        if !bounded {
            self.diag(
                DiagnosticKind::UnstableExp,
                "exp",
                "exp of an unbounded input: overflows to inf once logits drift; \
                 bound the input (sigmoid/tanh/softmax/normalize) or use softplus"
                    .to_string(),
            );
        }
        self.unary("exp", a, bounded)
    }

    fn softplus(&mut self, a: Var) -> Var {
        // Tape's softplus forward is the numerically stable
        // `max(x, 0) + ln(1 + e^{-|x|})`, so no stability diagnostic here.
        let bounded = self.bounded_of(a);
        self.unary("softplus", a, bounded)
    }

    fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (sa, sr) = (self.shape_of(a), self.shape_of(row));
        if sr != (1, sa.1) {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "add_row",
                format!("row vector is {sr:?}, want (1, {}) to broadcast over {sa:?}", sa.1),
            );
        }
        let bounded = self.bounded_of(a) && self.bounded_of(row);
        self.push("add_row", sa, &[a, row], bounded, None)
    }

    fn mul_row(&mut self, a: Var, row: Var) -> Var {
        let (sa, sr) = (self.shape_of(a), self.shape_of(row));
        if sr != (1, sa.1) {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "mul_row",
                format!("row vector is {sr:?}, want (1, {}) to broadcast over {sa:?}", sa.1),
            );
        }
        let bounded = self.bounded_of(a) && self.bounded_of(row);
        self.push("mul_row", sa, &[a, row], bounded, None)
    }

    fn mul_col(&mut self, a: Var, col: Var) -> Var {
        let (sa, sc) = (self.shape_of(a), self.shape_of(col));
        if sc != (sa.0, 1) {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "mul_col",
                format!("column vector is {sc:?}, want ({}, 1) to broadcast over {sa:?}", sa.0),
            );
        }
        let bounded = self.bounded_of(a) && self.bounded_of(col);
        self.push("mul_col", sa, &[a, col], bounded, None)
    }

    fn sum_all(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        self.push("sum_all", (1, 1), &[a], bounded, None)
    }

    fn mean_all(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        self.push("mean_all", (1, 1), &[a], bounded, None)
    }

    fn row_sum(&mut self, a: Var) -> Var {
        let (r, _) = self.shape_of(a);
        let bounded = self.bounded_of(a);
        self.push("row_sum", (r, 1), &[a], bounded, None)
    }

    fn col_mean(&mut self, a: Var) -> Var {
        let (_, c) = self.shape_of(a);
        let bounded = self.bounded_of(a);
        self.push("col_mean", (1, c), &[a], bounded, None)
    }

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let rows = parts.first().map_or(0, |&p| self.shape_of(p).0);
        let mut cols = 0;
        let mut bounded = true;
        for &p in parts {
            let sp = self.shape_of(p);
            if sp.0 != rows {
                self.diag(
                    DiagnosticKind::ShapeMismatch,
                    "concat_cols",
                    format!("part has {} rows, first part has {rows}", sp.0),
                );
            }
            cols += sp.1;
            bounded &= self.bounded_of(p);
        }
        self.push("concat_cols", (rows, cols), parts, bounded, None)
    }

    fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let sa = self.shape_of(a);
        if start > end || end > sa.1 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "slice_cols",
                format!("column slice [{start}, {end}) out of bounds for {sa:?}"),
            );
        }
        let bounded = self.bounded_of(a);
        self.push("slice_cols", (sa.0, end.saturating_sub(start)), &[a], bounded, None)
    }

    fn gather(&mut self, a: Var, idx: Rc<Vec<usize>>) -> Var {
        let sa = self.shape_of(a);
        if let Some(&bad) = idx.iter().find(|&&i| i >= sa.0) {
            self.diag(
                DiagnosticKind::IndexRange,
                "gather",
                format!("index {bad} out of range for a table with {} rows", sa.0),
            );
        }
        let bounded = self.bounded_of(a);
        self.push("gather", (idx.len(), sa.1), &[a], bounded, None)
    }

    fn layer_norm_rows(&mut self, a: Var, _eps: f32) -> Var {
        self.unary("layer_norm_rows", a, true)
    }

    fn l2_normalize_rows(&mut self, a: Var, _eps: f32) -> Var {
        self.unary("l2_normalize_rows", a, true)
    }

    fn row_dots(&mut self, a: Var, b: Var) -> Var {
        self.require_same("row_dots", a, b);
        let (r, _) = self.shape_of(a);
        let bounded = self.bounded_of(a) && self.bounded_of(b);
        self.push("row_dots", (r, 1), &[a, b], bounded, None)
    }

    fn softmax_rows(&mut self, a: Var) -> Var {
        self.unary("softmax_rows", a, true)
    }

    fn segment_softmax(&mut self, logits: Var, seg: Rc<Vec<usize>>) -> Var {
        let sl = self.shape_of(logits);
        if sl.1 != 1 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "segment_softmax",
                format!("logits must be E × 1, got {sl:?}"),
            );
        }
        self.check_segments("segment_softmax", &seg, sl.0);
        self.push("segment_softmax", sl, &[logits], true, None)
    }

    fn segment_weighted_sum(&mut self, w: Var, v: Var, seg: Rc<Vec<usize>>) -> Var {
        let (sw, sv) = (self.shape_of(w), self.shape_of(v));
        if sw.1 != 1 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "segment_weighted_sum",
                format!("weights must be E × 1, got {sw:?}"),
            );
        }
        if sw.0 != sv.0 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "segment_weighted_sum",
                format!("{} weights for {} value rows", sw.0, sv.0),
            );
        }
        self.check_segments("segment_weighted_sum", &seg, sv.0);
        let n = seg.len().saturating_sub(1);
        let bounded = self.bounded_of(w) && self.bounded_of(v);
        self.push("segment_weighted_sum", (n, sv.1), &[w, v], bounded, None)
    }

    fn dropout_mask(&mut self, a: Var, mask: Matrix) -> Var {
        let sa = self.shape_of(a);
        if mask.shape() != sa {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "dropout",
                format!("mask is {:?}, input is {sa:?}", mask.shape()),
            );
        }
        let bounded = self.bounded_of(a);
        self.push("dropout", sa, &[a], bounded, None)
    }
}
