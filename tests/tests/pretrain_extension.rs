//! Integration tests for the pretraining extension (the paper's
//! future-work direction): warm-starting DGNN from side-relation
//! pretraining must be plumbed through correctly and must not hurt.

use dgnn_core::{Dgnn, Pretrainer};
use dgnn_data::tiny;
use dgnn_eval::{evaluate_at, Trainable};
use dgnn_integration_tests::quick_dgnn;

#[test]
fn warm_start_flows_into_training() {
    let data = tiny(42);
    let cfg = quick_dgnn();
    let pre = Pretrainer { dim: cfg.dim, epochs: 20, ..Pretrainer::default() };
    let emb = pre.run(&data.graph, 7);

    let mut warm = Dgnn::new(cfg.clone()).with_pretrained(emb);
    warm.fit(&data, 7);
    let mut plain = Dgnn::new(cfg);
    plain.fit(&data, 7);

    // Different init ⇒ different trajectories (the warm start is real).
    assert_ne!(warm.loss_history, plain.loss_history);

    // And it must not wreck accuracy.
    let m_warm = evaluate_at(&warm, &data.test, 10);
    let m_plain = evaluate_at(&plain, &data.test, 10);
    assert!(
        m_warm.hr >= m_plain.hr * 0.75,
        "warm start collapsed accuracy: {:.4} vs {:.4}",
        m_warm.hr,
        m_plain.hr
    );
}

#[test]
#[should_panic(expected = "dimensionality must match")]
fn mismatched_pretrain_dim_is_rejected() {
    let data = tiny(1);
    let pre = Pretrainer { dim: 4, epochs: 1, ..Pretrainer::default() };
    let emb = pre.run(&data.graph, 1);
    let cfg = dgnn_core::DgnnConfig { dim: 8, ..quick_dgnn() };
    let _ = Dgnn::new(cfg).with_pretrained(emb);
}

#[test]
#[should_panic(expected = "user table shape")]
fn mismatched_pretrain_rows_are_rejected_at_fit() {
    let data_a = tiny(1);
    let data_b = tiny(2); // same spec, same sizes — so shrink manually
    let cfg = quick_dgnn();
    let pre = Pretrainer { dim: cfg.dim, epochs: 1, ..Pretrainer::default() };
    let mut emb = pre.run(&data_a.graph, 1);
    // Corrupt the row count.
    emb.user = dgnn_tensor::Matrix::zeros(3, cfg.dim);
    let mut model = Dgnn::new(cfg).with_pretrained(emb);
    model.fit(&data_b, 1);
}
