//! Process memory gauges from `/proc/self/statm`.
//!
//! `statm` is the cheapest resident-set source the kernel offers: one
//! short line of space-separated page counts, readable with a single
//! positional `read` — no seek, no line iterator, no per-read heap
//! allocation. [`rss_bytes`] keeps the file open across calls and parses
//! into a fixed stack buffer, so the read path is zero-alloc after the
//! first call (asserted by the counting-allocator integration test).
//!
//! Peak tracking is a running maximum over observed readings (statm has
//! no high-water-mark field; `VmHWM` lives in the allocation-heavy
//! `/proc/self/status`). That makes the peak gauge an *observed* peak —
//! exact at every publish point, a lower bound between them — which is
//! the right trade for a gauge scraped once per `/metrics` hit.
//!
//! On non-Linux targets every reader returns `None` and the publishers
//! are no-ops; nothing panics for lack of procfs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Observed peak RSS (bytes) across all [`rss_bytes`] calls.
static PEAK_RSS: AtomicU64 = AtomicU64::new(0);

#[cfg(target_os = "linux")]
mod imp {
    use std::fs::File;
    use std::sync::OnceLock;

    static STATM: OnceLock<Option<File>> = OnceLock::new();

    /// Page size from the auxiliary vector (`AT_PAGESZ`), read once.
    /// Falls back to 4096 — correct on every x86_64 Linux and the common
    /// aarch64 configuration — when auxv is unreadable.
    static PAGE_SIZE: OnceLock<u64> = OnceLock::new();

    fn page_size() -> u64 {
        *PAGE_SIZE.get_or_init(|| {
            const AT_PAGESZ: u64 = 6;
            if let Ok(bytes) = std::fs::read("/proc/self/auxv") {
                for pair in bytes.chunks_exact(16) {
                    let key = u64::from_ne_bytes(pair[..8].try_into().unwrap_or([0; 8]));
                    let val = u64::from_ne_bytes(pair[8..].try_into().unwrap_or([0; 8]));
                    if key == AT_PAGESZ && val > 0 {
                        return val;
                    }
                }
            }
            4096
        })
    }

    /// Resident pages → bytes via one positional read of the cached fd.
    pub fn rss_bytes_now() -> Option<u64> {
        use std::os::unix::fs::FileExt;
        let file = STATM.get_or_init(|| File::open("/proc/self/statm").ok()).as_ref()?;
        let mut buf = [0u8; 128];
        // SHARD: positional read of procfs at offset 0 — a fresh snapshot
        // per call without seek state; this is gauge plumbing, not segment
        // I/O, and the buffer is a fixed stack array (zero-alloc path).
        let n = file.read_at(&mut buf, 0).ok()?;
        // statm: "size resident shared text lib data dt" in pages; we want
        // field 2 (resident).
        let mut fields = buf[..n].split(|&b| b == b' ');
        let _size = fields.next()?;
        let resident = fields.next()?;
        let mut pages: u64 = 0;
        for &b in resident {
            if !b.is_ascii_digit() {
                return None;
            }
            pages = pages.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
        }
        Some(pages * page_size())
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    /// No procfs on this target.
    pub fn rss_bytes_now() -> Option<u64> {
        None
    }
}

/// Current resident set size in bytes (`None` off Linux or when procfs is
/// unavailable). Zero-alloc after the first call; also folds the reading
/// into the observed-peak maximum.
pub fn rss_bytes() -> Option<u64> {
    let rss = imp::rss_bytes_now()?;
    PEAK_RSS.fetch_max(rss, Ordering::Relaxed);
    Some(rss)
}

/// Highest RSS observed by any [`rss_bytes`] call so far (`None` until a
/// first successful reading).
pub fn peak_rss_bytes() -> Option<u64> {
    match PEAK_RSS.load(Ordering::Relaxed) {
        0 => None,
        peak => Some(peak),
    }
}

/// Names of the shared gauges [`publish_rss`] maintains.
pub const RSS_GAUGE: &str = "proc/rss_bytes";
/// See [`RSS_GAUGE`].
pub const PEAK_RSS_GAUGE: &str = "proc/peak_rss_bytes";

/// Registered-handle cache so repeated publishes skip the registry lock.
static GAUGES: OnceLock<(&'static crate::shared::SharedGauge, &'static crate::shared::SharedGauge)> =
    OnceLock::new();

/// Samples RSS and publishes `proc/rss_bytes` + `proc/peak_rss_bytes`
/// into the process-shared gauge registry (no-op off Linux).
pub fn publish_rss() {
    let Some(rss) = rss_bytes() else { return };
    let (cur, peak) =
        GAUGES.get_or_init(|| (crate::shared::gauge(RSS_GAUGE), crate::shared::gauge(PEAK_RSS_GAUGE)));
    cur.set(rss as f64);
    if let Some(p) = peak_rss_bytes() {
        peak.set(p as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_reads_are_plausible_and_peak_is_monotone() {
        let Some(first) = rss_bytes() else {
            assert!(peak_rss_bytes().is_none() || cfg!(target_os = "linux"));
            return;
        };
        // A live Rust test process is comfortably above 256 KiB and below
        // 1 TiB resident.
        assert!(first > 256 * 1024, "implausibly small RSS: {first}");
        assert!(first < 1 << 40, "implausibly large RSS: {first}");
        let peak0 = peak_rss_bytes().expect("peak set after a successful read");
        assert!(peak0 >= first);
        // Grow the heap and confirm both gauges move the right way.
        let ballast = vec![1u8; 8 << 20];
        std::hint::black_box(&ballast);
        let after = rss_bytes().expect("second read");
        let peak1 = peak_rss_bytes().expect("peak after growth");
        assert!(peak1 >= peak0);
        assert!(peak1 >= after.min(peak1));
    }

    #[test]
    fn publish_rss_sets_shared_gauges() {
        if imp::rss_bytes_now().is_none() {
            return;
        }
        publish_rss();
        let snap = crate::shared::snapshot();
        let rss = snap.gauges.get(RSS_GAUGE).copied().unwrap_or(0.0);
        let peak = snap.gauges.get(PEAK_RSS_GAUGE).copied().unwrap_or(0.0);
        assert!(rss > 0.0);
        assert!(peak >= rss * 0.5, "peak {peak} vs rss {rss}");
    }
}
