//! aarch64 NEON 8×8 f32 microkernel over packed panels.
//!
//! Each output row's 8 columns live in two `float32x4_t` accumulators for
//! the whole `k` loop; element `(i, j)` is a fixed lane folded with fused
//! `FMLA` over ascending `kk` from `0.0`, so results are independent of
//! partitioning and thread count — the same determinism argument as the
//! AVX2 kernel.

use std::arch::aarch64::{
    float32x4_t, vaddq_f32, vdupq_n_f32, vfmaq_f32, vld1q_f32, vst1q_f32,
};

/// Computes one `8 × 8` register tile over packed panels `pa`
/// (column-major `8 × k` A panel) and `pb` (row-major `k × 8` B panel),
/// then stores the `rows × cols` live corner to `c` with row stride `rsc`
/// — overwriting, or adding one `+` per element when `acc`.
///
/// # Safety
/// Caller must guarantee NEON support (checked at backend selection via
/// `is_aarch64_feature_detected!`), that `pa`/`pb` point to at least
/// `8 * k` readable floats, and that `c + i*rsc + j` is writable for all
/// `i < rows`, `j < cols` with `rows <= 8`, `cols <= min(8, rsc)`.
// SAFETY: the `# Safety` contract above is the full argument — feature
// availability is established by the dispatcher's runtime detection, and
// the panel/output pointers are in-bounds by the tile geometry.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn kernel_8x8(
    k: usize,
    pa: *const f32,
    pb: *const f32,
    c: *mut f32,
    rsc: usize,
    rows: usize,
    cols: usize,
    acc: bool,
) {
    // SAFETY: delegated to the caller contract above — all pointer
    // arithmetic stays inside the `8*k` panels and the `rows×cols` corner
    // of `c`, and NEON availability was verified at backend selection.
    unsafe {
        let mut lo: [float32x4_t; 8] = [vdupq_n_f32(0.0); 8];
        let mut hi: [float32x4_t; 8] = [vdupq_n_f32(0.0); 8];
        for kk in 0..k {
            let b0 = vld1q_f32(pb.add(kk * 8));
            let b1 = vld1q_f32(pb.add(kk * 8 + 4));
            for i in 0..8 {
                let ai = vdupq_n_f32(*pa.add(kk * 8 + i));
                lo[i] = vfmaq_f32(lo[i], ai, b0);
                hi[i] = vfmaq_f32(hi[i], ai, b1);
            }
        }
        for i in 0..rows {
            let row = c.add(i * rsc);
            if cols == 8 {
                if acc {
                    // One rounded `+` per element after the register fold:
                    // bit-identical to temp-then-add_assign.
                    vst1q_f32(row, vaddq_f32(vld1q_f32(row), lo[i]));
                    vst1q_f32(row.add(4), vaddq_f32(vld1q_f32(row.add(4)), hi[i]));
                } else {
                    vst1q_f32(row, lo[i]);
                    vst1q_f32(row.add(4), hi[i]);
                }
            } else {
                let mut tmp = [0.0f32; 8];
                vst1q_f32(tmp.as_mut_ptr(), lo[i]);
                vst1q_f32(tmp.as_mut_ptr().add(4), hi[i]);
                for (j, &v) in tmp.iter().enumerate().take(cols) {
                    if acc {
                        *row.add(j) += v;
                    } else {
                        *row.add(j) = v;
                    }
                }
            }
        }
    }
}
