//! **E9 — Figure 8**: accuracy versus training epochs for DGNN, HGT, and
//! DGCF (HR@10 and NDCG@10 after every epoch on all three datasets). The
//! paper's claims under test: DGNN dominates at every epoch; HGT improves
//! faster than DGCF early.

use dgnn_baselines::{Dgcf, Hgt};
use dgnn_bench::{baseline_config, datasets, dgnn_config, write_csv, SEED};
use dgnn_core::Dgnn;
use dgnn_eval::evaluate_at;

fn main() {
    let data = datasets();
    println!("=== Figure 8: performance vs. training epochs ===\n");
    let mut rows: Vec<String> = Vec::new();
    for ds in &data {
        println!("{}:", ds.name);

        let mut dgnn = Dgnn::new(dgnn_config());
        dgnn.fit_epochs(ds, SEED, |model, epoch, _| {
            let m = evaluate_at(model, &ds.test, 10);
            rows.push(format!("DGNN,{},{},{:.6},{:.6}", ds.name, epoch, m.hr, m.ndcg));
        });

        let mut hgt = Hgt::new(baseline_config());
        hgt.fit_epochs(ds, SEED, |model, epoch, _| {
            let m = evaluate_at(model, &ds.test, 10);
            rows.push(format!("HGT,{},{},{:.6},{:.6}", ds.name, epoch, m.hr, m.ndcg));
        });

        let mut dgcf = Dgcf::new(baseline_config());
        dgcf.fit_epochs(ds, SEED, |model, epoch, _| {
            let m = evaluate_at(model, &ds.test, 10);
            rows.push(format!("DGCF,{},{},{:.6},{:.6}", ds.name, epoch, m.hr, m.ndcg));
        });

        // Print a compact curve: every 4th epoch.
        for model in ["DGNN", "HGT", "DGCF"] {
            let series: Vec<&String> = rows
                .iter()
                .filter(|r| r.starts_with(&format!("{model},{}", ds.name)))
                .collect();
            print!("  {model:<5}");
            for r in series.iter().step_by(4) {
                let f: Vec<&str> = r.split(',').collect();
                print!("  e{}: {}", f[2], &f[3][..6.min(f[3].len())]);
            }
            println!();
        }
        println!();
    }
    let path = write_csv("fig8", "model,dataset,epoch,hr10,ndcg10", &rows);
    println!("raw: {}", path.display());
}
