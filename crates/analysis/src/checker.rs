//! Independent safety proof for a [`MemoryPlan`].
//!
//! The planner ([`crate::plan`]) and this checker answer the same question
//! — "when is each value last read?" — but deliberately share no code: the
//! planner folds reads into a running per-node maximum while building free
//! points and buffer classes, whereas the checker enumerates every read
//! event from the trace directly and then verifies the *claimed* plan
//! against them. A bug in the planner's bookkeeping cannot also hide in the
//! checker's, so a plan that passes [`check_plan`] is safe to execute even
//! if the planner is wrong.
//!
//! The proof obligations:
//!
//! 1. every read of a node's value happens no later than its claimed free
//!    point (no use-after-free),
//! 2. the loss and every declared output are pinned (never freed),
//! 3. free points are well-formed: forward frees do not precede the node's
//!    own birth, backward frees land on events the reverse sweep actually
//!    visits (`j ≤ loss.index()` — a later event never fires and would
//!    leak the buffer),
//! 4. nodes sharing a reuse class have equal element counts and *strictly
//!    disjoint* live intervals (a value born at time `t` may not reuse a
//!    buffer freed at `t`: the runtime allocates before it frees),
//! 5. claimed byte sizes match the traced shapes.

use dgnn_autograd::meta::{grad_reads, InputReads};
use dgnn_autograd::{RewriteAction, RewritePlan, Var};

use crate::planner::{FreePoint, MemoryPlan};
use crate::tracer::ShapeTracer;

/// Evidence that a plan passed every proof obligation.
#[derive(Debug, Clone, Copy)]
pub struct PlanProof {
    /// Nodes covered by the proof.
    pub nodes: usize,
    /// Individual read events checked against free points.
    pub reads_checked: usize,
    /// Reuse classes whose intervals were proven disjoint.
    pub buffers_checked: usize,
}

/// A concrete violation found in a claimed plan.
#[derive(Debug, Clone)]
pub struct PlanViolation {
    /// What is wrong, with the offending node/time/buffer inlined.
    pub message: String,
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "memory plan violation: {}", self.message)
    }
}

fn violation<T>(message: String) -> Result<T, PlanViolation> {
    Err(PlanViolation { message })
}

/// Global time at which a claimed free point retires the value; `None`
/// means pinned (live through the whole step).
fn end_time(free: FreePoint, n: usize) -> Option<usize> {
    match free {
        FreePoint::Forward(t) => Some(t),
        FreePoint::Backward(j) => Some(2 * n - 1 - j),
        FreePoint::Never => None,
    }
}

/// Verifies a [`MemoryPlan`] against the trace it claims to cover.
///
/// `loss` and `outputs` must be the same roots the plan was built with —
/// the checker re-derives every read event and pinning obligation from
/// them, independently of the planner.
pub fn check_plan(
    tracer: &ShapeTracer,
    loss: Var,
    outputs: &[Var],
    plan: &MemoryPlan,
) -> Result<PlanProof, PlanViolation> {
    check_plan_impl(tracer, loss, outputs, None, plan)
}

/// [`check_plan`] for a plan built by [`crate::plan_with_rewrites`]: the
/// checker additionally enumerates the forward reads the rewrite actions
/// introduce (CSE copies reading their source, fused matmuls reading an
/// elided gather's table) and proves none of them lands after the value's
/// claimed free point.
pub fn check_plan_with_rewrites(
    tracer: &ShapeTracer,
    loss: Var,
    outputs: &[Var],
    rewrites: &RewritePlan,
    plan: &MemoryPlan,
) -> Result<PlanProof, PlanViolation> {
    check_plan_impl(tracer, loss, outputs, Some(rewrites), plan)
}

fn check_plan_impl(
    tracer: &ShapeTracer,
    loss: Var,
    outputs: &[Var],
    rewrites: Option<&RewritePlan>,
    plan: &MemoryPlan,
) -> Result<PlanProof, PlanViolation> {
    let nodes = tracer.nodes();
    let n = nodes.len();
    let l = loss.index();
    if plan.num_nodes() != n {
        return violation(format!("plan covers {} nodes but the trace has {n}", plan.num_nodes()));
    }
    if l >= n {
        return violation(format!("loss node {l} out of range for a trace of {n} nodes"));
    }

    // --- obligation 5: shapes and sizes ------------------------------------
    for (i, np) in plan.nodes().iter().enumerate() {
        if np.shape != nodes[i].shape {
            return violation(format!(
                "node {i}: plan shape {:?} disagrees with traced shape {:?}",
                np.shape, nodes[i].shape
            ));
        }
        let want = nodes[i].shape.0 * nodes[i].shape.1 * size_of::<f32>();
        if np.bytes != want {
            return violation(format!("node {i}: plan claims {} bytes, shape implies {want}", np.bytes));
        }
    }

    // --- obligation 2: pinning ---------------------------------------------
    for (what, v) in std::iter::once(("loss", loss)).chain(outputs.iter().map(|&v| ("output", v))) {
        if v.index() >= n {
            return violation(format!("{what} node {} out of range", v.index()));
        }
        if plan.nodes()[v.index()].free != FreePoint::Never {
            return violation(format!(
                "{what} node {} ({}) is freed by the plan but is read after the step",
                v.index(),
                nodes[v.index()].op
            ));
        }
    }

    // --- obligation 3: well-formed free points -----------------------------
    for (i, np) in plan.nodes().iter().enumerate() {
        match np.free {
            FreePoint::Forward(t) => {
                if t < i || t >= n {
                    return violation(format!(
                        "node {i}: forward free at time {t} is outside [{i}, {n})"
                    ));
                }
            }
            FreePoint::Backward(j) => {
                if j > l {
                    return violation(format!(
                        "node {i}: backward free at event {j} never fires (sweep stops at loss {l})"
                    ));
                }
            }
            FreePoint::Never => {}
        }
    }

    // --- obligation 1: no read after free ----------------------------------
    // Enumerate every read event straight off the trace and compare each
    // against the claimed end time of the value it touches.
    let mut reads_checked = 0usize;
    let mut check_read = |value: usize, time: usize, what: &str| -> Result<(), PlanViolation> {
        reads_checked += 1;
        if let Some(end) = end_time(plan.nodes()[value].free, n) {
            if time > end {
                return violation(format!(
                    "node {value} ({}) is freed at time {end} but {what} reads it at time {time}",
                    nodes[value].op
                ));
            }
        }
        Ok(())
    };
    // A backward event only reads values when a gradient can reach the
    // node — i.e. the node lies in the loss cone. Computed here by a
    // descending marking sweep (inputs always precede their consumers),
    // independent of the planner's stack-based reachability walk.
    let mut in_cone = vec![false; n];
    in_cone[l] = true;
    for i in (0..=l).rev() {
        if in_cone[i] {
            for &j in &nodes[i].inputs {
                in_cone[j] = true;
            }
        }
    }
    for (c, node) in nodes.iter().enumerate() {
        for &i in &node.inputs {
            check_read(i, c, &format!("forward of node {c} ({})", node.op))?;
        }
        if c <= l && in_cone[c] {
            let t = 2 * n - 1 - c;
            let reads = grad_reads(node.op);
            let read_inputs: &[usize] = match reads.inputs {
                InputReads::None => &[],
                InputReads::First => &node.inputs[..node.inputs.len().min(1)],
                InputReads::All => &node.inputs,
            };
            for &i in read_inputs {
                check_read(i, t, &format!("backward of node {c} ({})", node.op))?;
            }
            if reads.output {
                check_read(c, t, &format!("backward of node {c} ({}, own output)", node.op))?;
            }
        }
    }
    check_read(l, 2 * n - 1 - l, "the reverse sweep's loss readout")?;

    // Rewrite-induced forward reads: a CSE copy reads its source at copy
    // time; a fused gather→matmul reads the gather's table at matmul time.
    if let Some(rw) = rewrites {
        for k in 0..n {
            match rw.action(k) {
                RewriteAction::CopyOf(j) => {
                    check_read(j as usize, k, &format!("the CSE copy at node {k}"))?;
                }
                RewriteAction::GatherMatMul => {
                    let g = nodes[k].inputs[0];
                    if let Some(&table) = nodes[g].inputs.first() {
                        check_read(table, k, &format!("the fused gather→matmul at node {k}"))?;
                    }
                }
                _ => {}
            }
        }
    }

    // --- obligation 4: reuse classes are overlap-free ----------------------
    // Per buffer: equal element counts, and intervals [birth, end] strictly
    // disjoint. Sweep nodes in birth order (node index order), tracking the
    // latest end seen per buffer; any birth ≤ that end overlaps some
    // earlier occupant.
    use std::collections::HashMap;
    let mut latest_end: HashMap<usize, (usize, Option<usize>)> = HashMap::new(); // buffer -> (node, end)
    let mut elems_of_buffer: HashMap<usize, usize> = HashMap::new();
    for (i, np) in plan.nodes().iter().enumerate() {
        let elems = np.shape.0 * np.shape.1;
        match elems_of_buffer.get(&np.buffer) {
            Some(&e) if e != elems => {
                return violation(format!(
                    "buffer {}: node {i} has {elems} elements but the class holds {e}",
                    np.buffer
                ));
            }
            None => {
                elems_of_buffer.insert(np.buffer, elems);
            }
            _ => {}
        }
        let end = end_time(np.free, n);
        if let Some(&(prev, prev_end)) = latest_end.get(&np.buffer) {
            match prev_end {
                None => {
                    return violation(format!(
                        "buffer {}: node {i} shares storage with pinned node {prev}",
                        np.buffer
                    ));
                }
                Some(pe) if i <= pe => {
                    return violation(format!(
                        "buffer {}: node {i} is born at time {i} but node {prev} \
                         holds the storage through time {pe}",
                        np.buffer
                    ));
                }
                _ => {}
            }
        }
        // Track the occupant whose interval extends furthest.
        let further = match (latest_end.get(&np.buffer), end) {
            (Some(&(_, None)), _) => false,
            (Some(&(_, Some(pe))), Some(e)) => e > pe,
            _ => true,
        };
        if further {
            latest_end.insert(np.buffer, (i, end));
        }
    }

    Ok(PlanProof { nodes: n, reads_checked, buffers_checked: elems_of_buffer.len() })
}
