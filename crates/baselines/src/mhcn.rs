//! MHCN (Yu et al., WWW 2021): multi-channel hypergraph convolutional
//! network with self-supervised learning.
//!
//! The distinguishing mechanism: user representations are learned through
//! three motif-based *hypergraph channels* — social triangles, joint
//! social/co-interaction closure, and plain co-interaction — combined with
//! channel attention, and an auxiliary *InfoMax* objective maximizes the
//! mutual information between node embeddings and each channel's graph
//! readout (implemented, as in the reference code, as a discriminator that
//! ranks true (node, readout) pairs above row-shuffled corruptions).

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler, Triple};
use dgnn_eval::{Recommender, Trainable};
use dgnn_graph::compose;
use dgnn_tensor::{Csr, CsrBuilder, Init, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, probe_batch, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Weight of the self-supervised InfoMax term.
const SSL_WEIGHT: f32 = 0.1;
/// Per-row cap for motif adjacency construction.
const MOTIF_CAP: usize = 40;

struct Channel {
    adj: Rc<Csr>,
    adj_t: Rc<Csr>,
    /// Channel-attention projection, `d × 1`.
    attn: ParamId,
}

struct State {
    e_user: ParamId,
    e_item: ParamId,
    channels: Vec<Channel>,
    ui: Rc<Csr>,
    ui_t: Rc<Csr>,
    iu: Rc<Csr>,
    iu_t: Rc<Csr>,
}

/// Two-layer light convolution over one channel's user graph; returns the
/// mean of the layer outputs.
fn channel_pass<R: Recorder>(tape: &mut R, ch: &Channel, eu: Var, layers: usize) -> Var {
    let mut h = eu;
    let mut acc = h;
    for _ in 0..layers.max(1) {
        h = tape.spmm_with(&ch.adj, &ch.adj_t, h);
        acc = tape.add(acc, h);
    }
    tape.scale(acc, 1.0 / (layers.max(1) + 1) as f32)
}

/// Forward pass; returns `(users, items, per-channel user embeddings)`.
fn forward<R: Recorder>(
    st: &State,
    layers: usize,
    tape: &mut R,
    params: &ParamSet,
) -> (Var, Var, Vec<Var>) {
    let eu = tape.param(params, st.e_user);
    let ev = tape.param(params, st.e_item);
    let num_users = tape.shape(eu).0;

    let mut channel_embs = Vec::with_capacity(st.channels.len());
    let mut scores = Vec::with_capacity(st.channels.len());
    for ch in &st.channels {
        let h = channel_pass(tape, ch, eu, layers);
        let a = tape.param(params, ch.attn);
        let s = tape.matmul(h, a);
        let s = tape.mean_all(s);
        scores.push(s);
        channel_embs.push(h);
    }
    // Channel attention (softmax over scalar scores).
    let cat = tape.concat_cols(&scores);
    let beta = tape.softmax_rows(cat);
    let ones = tape.constant(Matrix::full(num_users, 1, 1.0));
    let mut social: Option<Var> = None;
    for (c, &h) in channel_embs.iter().enumerate() {
        let b = tape.slice_cols(beta, c, c + 1);
        let b_col = tape.matmul(ones, b);
        let weighted = tape.mul_col(h, b_col);
        social = Some(match social {
            Some(acc) => tape.add(acc, weighted),
            None => weighted,
        });
    }
    let social = social.expect("at least one channel");

    // Interaction history rounds out the user; items aggregate their users.
    let hist = tape.spmm_with(&st.ui, &st.ui_t, ev);
    let u_pre = tape.add(eu, social);
    let users = tape.add(u_pre, hist);
    let from_users = tape.spmm_with(&st.iu, &st.iu_t, eu);
    let items = tape.add(ev, from_users);
    (users, items, channel_embs)
}

/// InfoMax discriminator: true (node, channel-readout) pairs must outrank
/// corrupted (shuffled-node, readout) pairs.
fn ssl_loss<R: Recorder>(
    tape: &mut R,
    channel_embs: &[Var],
    shuffle: &Rc<Vec<usize>>,
) -> Option<Var> {
    let mut total: Option<Var> = None;
    for &h in channel_embs {
        let readout = tape.col_mean(h); // 1 × d
        let n = tape.shape(h).0;
        let ones = tape.constant(Matrix::full(n, 1, 1.0));
        let r_full = tape.matmul(ones, readout); // broadcast to n × d
        let pos = tape.row_dots(h, r_full);
        let h_shuf = tape.gather(h, Rc::clone(shuffle));
        let neg = tape.row_dots(h_shuf, r_full);
        let loss = tape.bpr_loss(pos, neg);
        total = Some(match total {
            Some(t) => tape.add(t, loss),
            None => loss,
        });
    }
    total
}

/// Builds the three motif channels.
///
/// * `social triangles`: each social edge weighted by its closed-triangle
///   count (+1 so plain edges survive);
/// * `joint`: social edges weighted by co-interaction strength;
/// * `co-interaction`: the `U–V–U` composition.
fn build_channels(g: &dgnn_graph::HeteroGraph) -> Vec<Csr> {
    let nu = g.num_users();

    // Triangle counts per social edge via sorted-neighbor intersection.
    let mut triangles = CsrBuilder::new(nu, nu);
    for u in 0..nu {
        let nbrs_u = g.friends_of(u);
        for &f in nbrs_u {
            let nbrs_f = g.friends_of(f);
            let common = intersect_count(nbrs_u, nbrs_f);
            triangles.push(u, f, 1.0 + common as f32);
        }
    }

    // Joint channel: social edges weighted by shared items.
    let mut joint = CsrBuilder::new(nu, nu);
    for u in 0..nu {
        let items_u = g.items_of(u);
        for &f in g.friends_of(u) {
            let shared = intersect_count(items_u, g.items_of(f));
            joint.push(u, f, 1.0 + shared as f32);
        }
    }

    let co = compose(g.ui(), g.iu(), MOTIF_CAP);

    vec![
        triangles.build().row_normalized(),
        joint.build().row_normalized(),
        co.row_normalized(),
    ]
}

fn intersect_count(a: &[usize], b: &[usize]) -> usize {
    // Both slices are sorted (CSR column order).
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Registers parameters and builds the motif channels — shared by
/// training and by the static-analysis trace entry.
fn build_state(cfg: &BaselineConfig, data: &Dataset, seed: u64) -> (ParamSet, State) {
    let g = &data.graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = ParamSet::new();
    let d = cfg.dim;
    let e_user = params.add("e_user", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
    let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng));
    let channels = build_channels(g)
        .into_iter()
        .enumerate()
        .map(|(c, adj)| Channel {
            adj_t: Rc::new(adj.transpose()),
            adj: Rc::new(adj),
            attn: params.add(format!("attn[{c}]"), Init::XavierUniform.build(d, 1, &mut rng)),
        })
        .collect();
    let ui = g.ui().row_normalized();
    let iu = g.iu().row_normalized();
    let st = State {
        e_user,
        e_item,
        channels,
        ui_t: Rc::new(ui.transpose()),
        ui: Rc::new(ui),
        iu_t: Rc::new(iu.transpose()),
        iu: Rc::new(iu),
    };
    (params, st)
}

/// The MHCN recommender.
pub struct Mhcn {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean joint loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Mhcn {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }

    /// Records one full training step — forward pass, BPR loss over
    /// `triples`, and the InfoMax term with a seed-deterministic
    /// corruption shuffle — onto `rec` without training. The
    /// static-analysis entry point; returns the registered parameters and
    /// the joint loss variable.
    pub fn trace_step<R: Recorder>(
        cfg: &BaselineConfig,
        data: &Dataset,
        triples: &[Triple],
        seed: u64,
        rec: &mut R,
    ) -> (ParamSet, Var) {
        let _span = dgnn_obs::span("MHCN/trace_step");
        let (params, st) = build_state(cfg, data, seed);
        let (users, items, channel_embs) = forward(&st, cfg.layers, rec, &params);
        let bpr = bpr_from_embeddings(rec, users, items, &BatchIdx::new(triples));
        let mut shuffle: Vec<usize> = (0..data.graph.num_users()).collect();
        shuffle.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x55F1));
        let loss = match ssl_loss(rec, &channel_embs, &Rc::new(shuffle)) {
            Some(ssl) => {
                let ssl = rec.scale(ssl, SSL_WEIGHT);
                rec.add(bpr, ssl)
            }
            None => bpr,
        };
        (params, loss)
    }
}

impl Recommender for Mhcn {
    fn name(&self) -> &str {
        "MHCN"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("MHCN", user, items)
    }
}

impl Trainable for Mhcn {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let (mut params, st) = build_state(&self.cfg, data, seed);

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let layers = self.cfg.layers;
        let num_users = g.num_users();
        let harness = dgnn_core::training::build_harness(
            self.cfg.use_memory_plan,
            self.cfg.use_graph_opt,
            |tr| {
                let probe = probe_batch(&sampler, self.cfg.batch_size, seed);
                let (users, items, channel_embs) = forward(&st, layers, tr, &params);
                let bpr = bpr_from_embeddings(tr, users, items, &BatchIdx::new(&probe));
                // Shuffle content is irrelevant to the plan — only topology
                // matters — but trace the same graph shape as training.
                let shuffle: Vec<usize> = (0..num_users).collect();
                match ssl_loss(tr, &channel_embs, &Rc::new(shuffle)) {
                    Some(ssl) => {
                        let ssl = tr.scale(ssl, SSL_WEIGHT);
                        tr.add(bpr, ssl)
                    }
                    None => bpr,
                }
            },
        );
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            harness,
            |tape, params, triples, rng| {
                let (users, items, channel_embs) = forward(&st, layers, tape, params);
                let rec = bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples));
                let mut shuffle: Vec<usize> = (0..num_users).collect();
                shuffle.shuffle(rng);
                match ssl_loss(tape, &channel_embs, &Rc::new(shuffle)) {
                    Some(ssl) => {
                        let ssl = tape.scale(ssl, SSL_WEIGHT);
                        tape.add(rec, ssl)
                    }
                    None => rec,
                }
            },
        );

        let mut tape = Tape::new();
        let (users, items, _) = forward(&st, layers, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn mhcn_beats_random() {
        assert_beats_random(&mut Mhcn::new(quick()));
    }

    #[test]
    fn intersect_count_on_sorted_slices() {
        assert_eq!(intersect_count(&[1, 3, 5, 7], &[2, 3, 5, 9]), 2);
        assert_eq!(intersect_count(&[], &[1, 2]), 0);
        assert_eq!(intersect_count(&[4], &[4]), 1);
    }

    #[test]
    fn motif_channels_are_row_stochastic() {
        let data = dgnn_data::tiny(9);
        for adj in build_channels(&data.graph) {
            for r in 0..adj.rows() {
                let sum: f32 = adj.row(r).map(|(_, v)| v).sum();
                if adj.degree(r) > 0 {
                    assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
                }
            }
        }
    }
}
