//! Dense and sparse `f32` matrix kernels used throughout the DGNN
//! reproduction.
//!
//! The crate is deliberately minimal: a row-major dense [`Matrix`], a CSR
//! sparse matrix [`Csr`], and the handful of kernels a graph neural network
//! needs (GEMM, sparse–dense products, row-wise reductions and normalizers).
//! Hot kernels run on the deterministic worker pool in [`parallel`]
//! (row-range partitioning over disjoint output slices, so results are
//! bit-identical to serial execution for every thread count), keeping
//! experiments bit-for-bit reproducible from a seed; `threads = 1` — the
//! default when `DGNN_THREADS` is unset on a single-core host — is a
//! guaranteed fully-serial path.

#![warn(missing_docs)]

mod dense;
pub mod gemm;
mod init;
pub mod parallel;
mod pool;
pub mod sanitize;
pub mod sharded;
mod sparse;
pub mod topk;

pub use dense::{stable_sigmoid, Matrix};
pub use init::{xavier_uniform, Init};
pub use pool::{alloc_counters, recycle, recycle_vec, reset_alloc_counters, BufferPool};
pub use sharded::{ShardSpec, ShardedTable};
pub use sparse::{Csr, CsrBuilder};
pub use topk::{top_k_row, top_k_rows, TopK};

/// Numerical tolerance used by approximate-equality helpers in tests.
pub const TEST_EPS: f32 = 1e-4;

/// Returns `true` when `a` and `b` differ by at most `tol` in every entry
/// (and agree in shape).
pub fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol)
}
