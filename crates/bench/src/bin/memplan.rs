//! **Memory-plan audit**: static liveness statistics and runtime
//! allocation counts for every traced model, plus the CI regression gate.
//!
//! For DGNN and the five traced baselines (NGCF, GCCF, DGCF, MHCN,
//! DisenHAN) this binary traces one training step, plans it
//! ([`dgnn_analysis::plan`]), verifies the plan with the independent
//! safety checker, and prints the static picture — node count, reuse
//! classes, unplanned total bytes vs. planned peak-live bytes — next to
//! measured allocation counters from a short planned and unplanned
//! training run on the tiny dataset.
//!
//! ```text
//! memplan                     print the table
//! memplan --write PATH        additionally write the baseline JSON
//! memplan --check PATH        exit 1 if any model's planned peak-live
//!                             bytes regressed >10% vs. the baseline
//! ```

use std::process::ExitCode;

use dgnn_analysis::{check_plan, plan, MemoryPlan, ShapeTracer};
use dgnn_baselines::{BaselineConfig, Dgcf, DisenHan, Gccf, Mhcn, Ngcf};
use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::{tiny, Dataset, TrainSampler, Triple};
use dgnn_eval::Trainable;
use dgnn_tensor::{alloc_counters, reset_alloc_counters};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed shared by the trace, the probe batch, and the timing runs.
const SEED: u64 = 2023;
/// Allowed relative growth of planned peak-live bytes before `--check`
/// fails.
const REGRESSION_BUDGET: f64 = 0.10;

fn quick_baseline() -> BaselineConfig {
    BaselineConfig { dim: 8, layers: 2, epochs: 4, batch_size: 256, ..Default::default() }
}

fn quick_dgnn() -> DgnnConfig {
    DgnnConfig {
        dim: 8,
        layers: 2,
        memory_units: 4,
        epochs: 4,
        batch_size: 256,
        ..Default::default()
    }
}

/// The deterministic probe batch every trace uses (same derivation as the
/// planned trainers).
fn probe(data: &Dataset, batch_size: usize) -> Vec<Triple> {
    let sampler = TrainSampler::new(&data.graph);
    sampler.batch(&mut StdRng::seed_from_u64(SEED ^ 0x9E37_79B9), batch_size)
}

/// One audited model: its proven plan plus measured allocation counters.
struct Row {
    name: &'static str,
    plan: MemoryPlan,
    steps: u64,
    fresh_unplanned: u64,
    fresh_planned: u64,
    pool_hits: u64,
}

impl Row {
    fn reduction(&self) -> f64 {
        self.fresh_unplanned as f64 / self.fresh_planned.max(1) as f64
    }

    fn bytes_saved_frac(&self) -> f64 {
        1.0 - self.plan.peak_live_bytes() as f64 / self.plan.total_value_bytes().max(1) as f64
    }
}

/// Traces, plans, proves, and time-runs one model.
fn audit(
    name: &'static str,
    trace: impl FnOnce(&mut ShapeTracer) -> dgnn_autograd::Var,
    fit: impl Fn(bool),
    steps: u64,
) -> Row {
    let mut tracer = ShapeTracer::new();
    let loss = trace(&mut tracer);
    let mplan = plan(&tracer, loss, &[]);
    if let Err(v) = check_plan(&tracer, loss, &[], &mplan) {
        // PANICS: the audit exists to prove plans; an unprovable one is a
        // planner bug that must fail the run loudly.
        panic!("{name}: plan failed its safety proof: {v}");
    }

    reset_alloc_counters();
    fit(false);
    let (fresh_unplanned, _) = alloc_counters();
    reset_alloc_counters();
    fit(true);
    let (fresh_planned, pool_hits) = alloc_counters();
    Row { name, plan: mplan, steps, fresh_unplanned, fresh_planned, pool_hits }
}

fn rows(data: &Dataset) -> Vec<Row> {
    let bcfg = quick_baseline();
    let dcfg = quick_dgnn();
    let triples = probe(data, bcfg.batch_size);
    let batches =
        TrainSampler::new(&data.graph).num_positives().div_ceil(bcfg.batch_size).max(1);
    let steps = (batches * bcfg.epochs) as u64;

    let mut out = Vec::new();

    let mut m = Dgnn::new(dcfg.clone());
    m.prepare(&data.graph, SEED);
    out.push(audit(
        "DGNN",
        |tr| m.record_step(tr, &triples),
        |planned| {
            let cfg = if planned { dcfg.clone().with_memory_plan() } else { dcfg.clone() };
            Dgnn::new(cfg).fit(data, SEED);
        },
        steps,
    ));

    macro_rules! baseline_row {
        ($name:literal, $ty:ident) => {
            out.push(audit(
                $name,
                |tr| $ty::trace_step(&bcfg, data, &triples, SEED, tr).1,
                |planned| {
                    let cfg =
                        if planned { bcfg.clone().with_memory_plan() } else { bcfg.clone() };
                    $ty::new(cfg).fit(data, SEED);
                },
                steps,
            ));
        };
    }
    baseline_row!("NGCF", Ngcf);
    baseline_row!("GCCF", Gccf);
    baseline_row!("DGCF", Dgcf);
    baseline_row!("MHCN", Mhcn);
    baseline_row!("DisenHAN", DisenHan);
    out
}

/// Publishes each row's static-plan statistics as `memplan/<model>/<stat>`
/// gauges in the obs registry and serializes the resulting snapshot —
/// the same code path (`dgnn_obs::export::snapshot_to_json`) behind the
/// `profile` binary's `BENCH_profile.json`, so the two artifacts share one
/// schema and one serializer.
fn baseline_json(rows: &[Row]) -> String {
    dgnn_obs::reset();
    dgnn_obs::enable();
    for r in rows {
        let set = |stat: &str, v: u64| {
            dgnn_obs::gauge_set(&format!("memplan/{}/{stat}", r.name), v as f64);
        };
        set("nodes", r.plan.num_nodes() as u64);
        set("num_buffers", r.plan.num_buffers() as u64);
        set("peak_live_bytes", r.plan.peak_live_bytes() as u64);
        set("total_value_bytes", r.plan.total_value_bytes() as u64);
    }
    // Plans are thread-count independent (the pool never changes shapes or
    // lifetimes), but record the width the audit ran under for provenance.
    dgnn_obs::gauge_set(
        "parallel/threads",
        dgnn_tensor::parallel::current_threads() as f64,
    );
    dgnn_obs::disable();
    let snap = dgnn_obs::snapshot();
    dgnn_obs::reset();
    let mut s = dgnn_obs::export::snapshot_to_json(&snap, 0);
    s.push('\n');
    s
}

/// Pulls the `memplan/<model>/peak_live_bytes` gauge out of the baseline
/// file. The file is machine-written by `--write` through the snapshot
/// serializer (integral gauges print without a decimal point), so a
/// targeted scan beats a full JSON parser here.
fn baseline_peak(json: &str, model: &str) -> Option<u64> {
    let key = format!("\"memplan/{model}/peak_live_bytes\"");
    let tail = &json[json.find(&key)? + key.len()..];
    let digits: String =
        tail.chars().skip_while(|c| !c.is_ascii_digit()).take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_path = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).map(|i| {
            // PANICS: a trailing --write/--check with no path is an operator
            // error on the command line; there is nothing to recover.
            args.get(i + 1)
                .unwrap_or_else(|| panic!("memplan: {flag} requires a path argument"))
        })
    };

    let data = tiny(SEED);
    println!("=== Static memory plans (tiny dataset, quick configs) ===\n");
    println!(
        "{:<10} {:>6} {:>8} {:>12} {:>12} {:>7} {:>12} {:>12} {:>10} {:>7}",
        "Model",
        "Nodes",
        "Buffers",
        "Unplanned B",
        "Peak-live B",
        "Saved",
        "Fresh (off)",
        "Fresh (on)",
        "Pool hits",
        "Reduc",
    );
    let rows = rows(&data);
    for r in &rows {
        println!(
            "{:<10} {:>6} {:>8} {:>12} {:>12} {:>6.1}% {:>12} {:>12} {:>10} {:>6.1}x",
            r.name,
            r.plan.num_nodes(),
            r.plan.num_buffers(),
            r.plan.total_value_bytes(),
            r.plan.peak_live_bytes(),
            100.0 * r.bytes_saved_frac(),
            r.fresh_unplanned,
            r.fresh_planned,
            r.pool_hits,
            r.reduction(),
        );
    }
    let dgnn = &rows[0];
    println!(
        "\nDGNN: {} training steps, {:.1} fresh allocations/step unplanned vs {:.1} planned \
         ({:.1}x reduction)",
        dgnn.steps,
        dgnn.fresh_unplanned as f64 / dgnn.steps as f64,
        dgnn.fresh_planned as f64 / dgnn.steps as f64,
        dgnn.reduction(),
    );

    if let Some(path) = flag_path("--write") {
        std::fs::write(path, baseline_json(&rows)).expect("memplan: writing baseline file");
        println!("baseline written: {path}");
    }

    if let Some(path) = flag_path("--check") {
        let json = std::fs::read_to_string(path).expect("memplan: reading baseline file");
        let mut failed = false;
        for r in &rows {
            let Some(base) = baseline_peak(&json, r.name) else {
                eprintln!("REGRESSION {}: model missing from baseline {path}", r.name);
                failed = true;
                continue;
            };
            let budget = (base as f64 * (1.0 + REGRESSION_BUDGET)) as u64;
            let peak = r.plan.peak_live_bytes() as u64;
            if peak > budget {
                eprintln!(
                    "REGRESSION {}: peak_live_bytes {peak} exceeds baseline {base} by more \
                     than {:.0}% (budget {budget})",
                    r.name,
                    100.0 * REGRESSION_BUDGET,
                );
                failed = true;
            }
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!("peak-live-bytes check passed against {path}");
    }
    ExitCode::SUCCESS
}
