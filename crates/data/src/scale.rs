//! Million-user scale presets with a streaming, shard-by-shard generator.
//!
//! The classic presets ([`crate::tiny`] … `yelp_small`) materialize one
//! [`dgnn_graph::HeteroGraph`] and dense factor tables — fine at ~1/8
//! paper scale, impossible at the serving scale the roadmap targets: a
//! single `users × dim` allocation for 2²⁰ users is exactly the residency
//! problem the sharded store exists to avoid. A [`ScaleSpec`] therefore
//! never builds the world at once. It emits *shards* — contiguous
//! id-ranges of users or items, each with its embedding block and (for
//! users) interaction lists — one at a time, so peak memory is one shard
//! regardless of world size.
//!
//! Determinism is per-shard, not per-stream: shard `s` is generated from
//! its own RNG stream `splitmix64(seed, role, s)`, and the small global
//! structure (category prototypes, community mixtures) from `seed` alone.
//! Regenerating any single shard in isolation yields bit-identical
//! content to generating the full sequence — the property that lets a
//! test (or a repair job) rebuild one lost segment without touching the
//! other million users.
//!
//! The world model is a lightweight cousin of [`crate::WorldSpec`]: the
//! same category-prototype / community-mixture factor geometry drives the
//! embeddings, while interactions use an O(1) power-law popularity draw
//! instead of softmax preference sampling (at this scale the lists exist
//! to shape *serving* load — seen-filtering and Zipf-skewed traffic — not
//! to train models).

use dgnn_tensor::{Matrix, ShardSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a streaming scale world.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Preset name (lands in checkpoint metadata).
    pub name: &'static str,
    /// `|U|`.
    pub num_users: usize,
    /// `|V|`.
    pub num_items: usize,
    /// Embedding dimensionality of the emitted tables.
    pub dim: usize,
    /// Users per shard (contiguous id ranges; last shard may be short).
    pub users_per_shard: usize,
    /// Items per shard.
    pub items_per_shard: usize,
    /// Number of item categories (prototype vectors).
    pub num_categories: usize,
    /// Number of user communities (mixture vectors).
    pub num_communities: usize,
    /// Mean interactions per user (power-law distributed, ≥ 1).
    pub mean_interactions: f64,
    /// Std-dev of per-entity factor noise around the prototype/mixture.
    pub noise: f32,
}

/// One generated shard: a contiguous id-range of users or items.
#[derive(Debug, Clone)]
pub struct ScaleShard {
    /// Shard index within its role.
    pub index: usize,
    /// First global id covered (inclusive).
    pub lo: usize,
    /// One past the last global id covered.
    pub hi: usize,
    /// Embedding rows for ids `lo..hi` (`(hi - lo) × dim`).
    pub emb: Matrix,
    /// Shard-local interaction offsets (`hi - lo + 1` entries; all zeros
    /// for item shards).
    pub seen_indptr: Vec<u32>,
    /// Interacted item ids for this shard's users (empty for item shards).
    pub seen_items: Vec<u32>,
}

/// The flagship preset: 2²⁰ users. Never materialized densely — 64 user
/// shards of 16 Ki users each stream through a bounded window.
pub fn scale_1m() -> ScaleSpec {
    ScaleSpec {
        name: "scale_1m",
        num_users: 1 << 20,
        num_items: 1 << 16,
        dim: 32,
        users_per_shard: 1 << 14,
        items_per_shard: 1 << 13,
        num_categories: 64,
        num_communities: 256,
        mean_interactions: 4.0,
        noise: 0.25,
    }
}

/// The benchmark preset `loadgen --scale` serves: big enough that full
/// residency is visibly wasteful (128 user shards), small enough that a
/// 1-core CI box generates and serves it in seconds.
pub fn scale_bench() -> ScaleSpec {
    ScaleSpec {
        name: "scale_bench",
        num_users: 1 << 17,
        num_items: 1 << 14,
        dim: 64,
        users_per_shard: 1 << 10,
        items_per_shard: 1 << 12,
        num_categories: 32,
        num_communities: 64,
        mean_interactions: 3.0,
        noise: 0.25,
    }
}

/// A 4-user-shard miniature for unit tests and the CI scale smoke.
pub fn scale_tiny() -> ScaleSpec {
    ScaleSpec {
        name: "scale_tiny",
        num_users: 2_048,
        num_items: 512,
        dim: 16,
        users_per_shard: 512,
        items_per_shard: 256,
        num_categories: 8,
        num_communities: 16,
        mean_interactions: 3.0,
        noise: 0.25,
    }
}

/// SplitMix64 — the per-shard stream splitter. One step of the generator
/// from Steele et al., "Fast Splittable Pseudorandom Number Generators".
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent RNG stream for (`seed`, `role`, shard): any shard's stream
/// is reproducible without generating any other shard.
fn shard_rng(seed: u64, role: u64, shard: u64) -> StdRng {
    let stream = splitmix64(seed ^ splitmix64(role.wrapping_mul(0x517C_C1B7_2722_0A95).wrapping_add(shard)));
    StdRng::seed_from_u64(stream)
}

/// Box–Muller standard normal (same construction as [`crate::WorldSpec`]).
fn normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

impl ScaleSpec {
    /// Id-range spec of the user table.
    pub fn user_spec(&self) -> ShardSpec {
        ShardSpec::new(self.num_users, self.users_per_shard)
    }

    /// Id-range spec of the item table.
    pub fn item_spec(&self) -> ShardSpec {
        ShardSpec::new(self.num_items, self.items_per_shard)
    }

    /// Number of user shards.
    pub fn num_user_shards(&self) -> usize {
        self.user_spec().num_shards()
    }

    /// Number of item shards.
    pub fn num_item_shards(&self) -> usize {
        self.item_spec().num_shards()
    }

    /// The small global structure every shard agrees on: category
    /// prototypes and community mixture vectors, derived from `seed`
    /// alone (`O((categories + communities) × dim)` — independent of
    /// world size).
    fn globals(&self, seed: u64) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let mut rng = shard_rng(seed, 0x67_6c_6f_62, 0); // "glob"
        let protos: Vec<Vec<f32>> = (0..self.num_categories)
            .map(|_| (0..self.dim).map(|_| normal(&mut rng)).collect())
            .collect();
        let mixtures: Vec<Vec<f32>> = (0..self.num_communities)
            .map(|k| {
                // Each community prefers two categories; its mixture is
                // their midpoint.
                let a = &protos[k % self.num_categories];
                let b = &protos[(k * 7 + 3) % self.num_categories];
                a.iter().zip(b).map(|(x, y)| 0.5 * (x + y)).collect()
            })
            .collect();
        (protos, mixtures)
    }

    /// Generates user shard `s` from its own RNG stream.
    ///
    /// # Panics
    /// Panics when `s` is out of range (programmer error, not data).
    pub fn user_shard(&self, seed: u64, s: usize) -> ScaleShard {
        let spec = self.user_spec();
        let (lo, hi) = spec.shard_range(s);
        let (_, mixtures) = self.globals(seed);
        let mut rng = shard_rng(seed, 0x75_73_65_72, s as u64); // "user"
        let rows = hi - lo;
        let mut emb = Vec::with_capacity(rows * self.dim);
        let mut seen_indptr = Vec::with_capacity(rows + 1);
        let mut seen_items = Vec::new();
        seen_indptr.push(0u32);
        for g in lo..hi {
            let mix = &mixtures[g % self.num_communities];
            for d in 0..self.dim {
                emb.push(mix[d] + self.noise * normal(&mut rng));
            }
            // Power-law activity, then O(1) popularity-skewed item draws:
            // v = ⌊|V|·u²⌋ concentrates mass on low item ids the same way
            // review-site popularity curves do, without a CDF table.
            let count = power_law_count(&mut rng, self.mean_interactions);
            for _ in 0..count {
                let u: f64 = rng.gen_range(0.0..1.0);
                let v = ((self.num_items as f64) * u * u) as usize;
                seen_items.push(v.min(self.num_items - 1) as u32);
            }
            seen_indptr.push(seen_items.len() as u32);
        }
        ScaleShard { index: s, lo, hi, emb: Matrix::from_vec(rows, self.dim, emb), seen_indptr, seen_items }
    }

    /// Generates item shard `s` from its own RNG stream.
    pub fn item_shard(&self, seed: u64, s: usize) -> ScaleShard {
        let spec = self.item_spec();
        let (lo, hi) = spec.shard_range(s);
        let (protos, _) = self.globals(seed);
        let mut rng = shard_rng(seed, 0x69_74_65_6d, s as u64); // "item"
        let rows = hi - lo;
        let mut emb = Vec::with_capacity(rows * self.dim);
        for g in lo..hi {
            let proto = &protos[g % self.num_categories];
            for d in 0..self.dim {
                emb.push(proto[d] + self.noise * normal(&mut rng));
            }
        }
        ScaleShard {
            index: s,
            lo,
            hi,
            emb: Matrix::from_vec(rows, self.dim, emb),
            seen_indptr: vec![0; rows + 1],
            seen_items: Vec::new(),
        }
    }

    /// Streams all user shards in id order, one resident at a time.
    pub fn user_shards(&self, seed: u64) -> impl Iterator<Item = ScaleShard> + '_ {
        (0..self.num_user_shards()).map(move |s| self.user_shard(seed, s))
    }

    /// Streams all item shards in id order.
    pub fn item_shards(&self, seed: u64) -> impl Iterator<Item = ScaleShard> + '_ {
        (0..self.num_item_shards()).map(move |s| self.item_shard(seed, s))
    }
}

/// Power-law count with the given mean (clipped Pareto, shape 2 — same
/// family as [`crate::WorldSpec`]'s activity model), at least 1.
fn power_law_count(rng: &mut impl Rng, mean: f64) -> usize {
    let alpha = 2.0;
    let xm = mean * (alpha - 1.0) / alpha;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (xm / u.powf(1.0 / alpha)).round().clamp(1.0, mean * 32.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn shards_cover_the_world_exactly() {
        let spec = scale_tiny();
        assert_eq!(spec.num_user_shards(), 4);
        let mut next = 0usize;
        for shard in spec.user_shards(7) {
            assert_eq!(shard.lo, next);
            assert!(shard.hi > shard.lo);
            assert_eq!(shard.emb.rows(), shard.hi - shard.lo);
            assert_eq!(shard.emb.cols(), spec.dim);
            assert_eq!(shard.seen_indptr.len(), shard.hi - shard.lo + 1);
            assert_eq!(*shard.seen_indptr.last().unwrap() as usize, shard.seen_items.len());
            assert!(shard.seen_items.iter().all(|&v| (v as usize) < spec.num_items));
            next = shard.hi;
        }
        assert_eq!(next, spec.num_users);
    }

    #[test]
    fn any_shard_regenerates_independently() {
        let spec = scale_tiny();
        // Generate shard 2 twice: once cold, once after generating the
        // whole stream — bit-identical both ways.
        let alone = spec.user_shard(42, 2);
        let from_stream = spec.user_shards(42).nth(2).unwrap();
        assert_eq!(bits(&alone.emb), bits(&from_stream.emb));
        assert_eq!(alone.seen_indptr, from_stream.seen_indptr);
        assert_eq!(alone.seen_items, from_stream.seen_items);
        let item_alone = spec.item_shard(42, 1);
        let item_stream = spec.item_shards(42).nth(1).unwrap();
        assert_eq!(bits(&item_alone.emb), bits(&item_stream.emb));
    }

    #[test]
    fn shard_streams_are_decorrelated() {
        let spec = scale_tiny();
        let a = spec.user_shard(42, 0);
        let b = spec.user_shard(42, 1);
        assert_ne!(bits(&a.emb)[..64], bits(&b.emb)[..64], "adjacent shards share an RNG stream");
        let c = spec.user_shard(43, 0);
        assert_ne!(bits(&a.emb)[..64], bits(&c.emb)[..64], "seed does not reach the stream");
    }

    #[test]
    fn every_user_has_history_and_popularity_skews_low() {
        let spec = scale_tiny();
        let mut low = 0usize;
        let mut total = 0usize;
        for shard in spec.user_shards(9) {
            for w in shard.seen_indptr.windows(2) {
                assert!(w[1] > w[0], "a user without interactions");
            }
            low += shard.seen_items.iter().filter(|&&v| (v as usize) < spec.num_items / 4).count();
            total += shard.seen_items.len();
        }
        // u² popularity: P(v < |V|/4) = 1/2 exactly; demand well above the
        // uniform 1/4.
        assert!(low * 3 > total, "popularity not skewed: {low}/{total} in the low quartile");
    }

    #[test]
    fn scale_1m_spec_is_truly_sharded() {
        let spec = scale_1m();
        assert!(spec.num_users >= 1 << 20);
        assert!(spec.num_user_shards() >= 64);
        // One shard must stay far below the full table: the bounded-peak
        // contract (full table ≈ 128 MiB, one shard ≈ 2 MiB).
        assert!(spec.users_per_shard * 16 <= spec.num_users);
    }
}
