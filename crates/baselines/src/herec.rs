//! HERec (Shi et al., TKDE 2018): heterogeneous network embedding fused
//! into matrix factorization.
//!
//! The distinguishing mechanism is its two stages:
//!
//! 1. **Meta-path random walks + skip-gram** pre-train per-path node
//!    embeddings (DeepWalk-style, with negative sampling), one embedding
//!    table per meta-path (`U–U`, `U–V–U` for users; `V–U–V`, `V–R–V` for
//!    items).
//! 2. A **fusion MF** combines the trainable MF embeddings with linear
//!    transforms of the (frozen) path embeddings, trained with BPR.

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_graph::{HeteroGraph, MetaPathStep, UnifiedView};
use dgnn_tensor::{Init, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Walks started per node and walk length.
const WALKS_PER_NODE: usize = 4;
const WALK_LEN: usize = 12;
/// Skip-gram window and negatives.
const WINDOW: usize = 2;
const NEGATIVES: usize = 3;
const SKIPGRAM_LR: f32 = 0.05;
const SKIPGRAM_EPOCHS: usize = 2;

/// DeepWalk-style skip-gram over meta-path walks, restricted to the nodes
/// of one kind (`keep`: global-id filter + local reindex). Hand-rolled SGD:
/// this stage is *pre-training*, deliberately outside the tape, exactly as
/// HERec trains node2vec-style embeddings before fusion.
fn skipgram_embeddings(
    g: &HeteroGraph,
    schema: &[MetaPathStep],
    starts: impl Iterator<Item = usize>,
    keep: impl Fn(usize) -> Option<usize>,
    num_nodes: usize,
    dim: usize,
    rng: &mut StdRng,
) -> Matrix {
    // Corpus of local-index sequences.
    let mut corpus: Vec<Vec<usize>> = Vec::new();
    let start_list: Vec<usize> = starts.collect();
    for _ in 0..WALKS_PER_NODE {
        for &s in &start_list {
            let walk = g.meta_path_walk(rng, s, schema, WALK_LEN);
            let filtered: Vec<usize> = walk.iter().filter_map(|&n| keep(n)).collect();
            if filtered.len() >= 2 {
                corpus.push(filtered);
            }
        }
    }

    let mut emb = Init::Uniform(0.5 / dim as f32).build(num_nodes, dim, rng);
    let mut ctx = Matrix::zeros(num_nodes, dim);
    for _ in 0..SKIPGRAM_EPOCHS {
        for seq in &corpus {
            for (i, &center) in seq.iter().enumerate() {
                let lo = i.saturating_sub(WINDOW);
                let hi = (i + WINDOW + 1).min(seq.len());
                for j in lo..hi {
                    if j == i {
                        continue;
                    }
                    let pos = seq[j];
                    sgd_pair(&mut emb, &mut ctx, center, pos, 1.0, dim);
                    for _ in 0..NEGATIVES {
                        let neg = rng.gen_range(0..num_nodes);
                        if neg != pos {
                            sgd_pair(&mut emb, &mut ctx, center, neg, 0.0, dim);
                        }
                    }
                }
            }
        }
    }
    emb
}

/// One skip-gram SGD update with label ∈ {0, 1}.
fn sgd_pair(emb: &mut Matrix, ctx: &mut Matrix, center: usize, other: usize, label: f32, dim: usize) {
    let mut dot = 0.0;
    for k in 0..dim {
        dot += emb[(center, k)] * ctx[(other, k)];
    }
    let pred = 1.0 / (1.0 + (-dot).exp());
    let g = SKIPGRAM_LR * (label - pred);
    for k in 0..dim {
        let e = emb[(center, k)];
        let c = ctx[(other, k)];
        emb[(center, k)] += g * c;
        ctx[(other, k)] += g * e;
    }
}

struct State {
    e_user: ParamId,
    e_item: ParamId,
    /// Frozen path embeddings (constants on the tape).
    user_paths: Vec<Matrix>,
    item_paths: Vec<Matrix>,
    /// Trainable fusion transforms, one per path.
    user_fuse: Vec<ParamId>,
    item_fuse: Vec<ParamId>,
}

fn forward(st: &State, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let mut users = tape.param(params, st.e_user);
    for (emb, &m) in st.user_paths.iter().zip(&st.user_fuse) {
        let path = tape.constant(emb.clone());
        let w = tape.param(params, m);
        let fused = tape.matmul(path, w);
        users = tape.add(users, fused);
    }
    let mut items = tape.param(params, st.e_item);
    for (emb, &m) in st.item_paths.iter().zip(&st.item_fuse) {
        let path = tape.constant(emb.clone());
        let w = tape.param(params, m);
        let fused = tape.matmul(path, w);
        items = tape.add(items, fused);
    }
    (users, items)
}

/// The HERec recommender.
pub struct Herec {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch (fusion stage).
    pub loss_history: Vec<f32>,
}

impl Herec {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }
}

impl Recommender for Herec {
    fn name(&self) -> &str {
        "HERec"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("HERec", user, items)
    }
}

impl Trainable for Herec {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let view = UnifiedView::new(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let d = self.cfg.dim;

        // Stage 1: meta-path skip-gram pre-training.
        let nu = g.num_users();
        let nv = g.num_items();
        let keep_user = |n: usize| if n < nu { Some(n) } else { None };
        let keep_item = move |n: usize| {
            if (nu..nu + nv).contains(&n) {
                Some(n - nu)
            } else {
                None
            }
        };
        let uu = skipgram_embeddings(
            g,
            &[MetaPathStep::UserToUser],
            (0..nu).map(|u| view.user(u)),
            keep_user,
            nu,
            d,
            &mut rng,
        );
        let uvu = skipgram_embeddings(
            g,
            &[MetaPathStep::UserToItem, MetaPathStep::ItemToUser],
            (0..nu).map(|u| view.user(u)),
            keep_user,
            nu,
            d,
            &mut rng,
        );
        let vuv = skipgram_embeddings(
            g,
            &[MetaPathStep::ItemToUser, MetaPathStep::UserToItem],
            (0..nv).map(|v| view.item(v)),
            keep_item,
            nv,
            d,
            &mut rng,
        );
        let vrv = skipgram_embeddings(
            g,
            &[MetaPathStep::ItemToRel, MetaPathStep::RelToItem],
            (0..nv).map(|v| view.item(v)),
            keep_item,
            nv,
            d,
            &mut rng,
        );

        // Stage 2: fusion MF with BPR.
        let mut params = ParamSet::new();
        let e_user = params.add("e_user", Init::Uniform(0.1).build(nu, d, &mut rng));
        let e_item = params.add("e_item", Init::Uniform(0.1).build(nv, d, &mut rng));
        let user_fuse = (0..2)
            .map(|p| params.add(format!("uf[{p}]"), Init::XavierUniform.build(d, d, &mut rng)))
            .collect();
        let item_fuse = (0..2)
            .map(|p| params.add(format!("if[{p}]"), Init::XavierUniform.build(d, d, &mut rng)))
            .collect();
        let st = State {
            e_user,
            e_item,
            user_paths: vec![uu, uvu],
            item_paths: vec![vuv, vrv],
            user_fuse,
            item_fuse,
        };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, _| {
                let (users, items) = forward(&st, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn herec_beats_random() {
        assert_beats_random(&mut Herec::new(quick()));
    }

    #[test]
    fn skipgram_brings_cointeracting_users_closer() {
        let data = dgnn_data::tiny(8);
        let g = &data.graph;
        let view = UnifiedView::new(g);
        let nu = g.num_users();
        let mut rng = StdRng::seed_from_u64(3);
        let emb = skipgram_embeddings(
            g,
            &[MetaPathStep::UserToItem, MetaPathStep::ItemToUser],
            (0..nu).map(|u| view.user(u)),
            |n| if n < nu { Some(n) } else { None },
            nu,
            8,
            &mut rng,
        );
        assert_eq!(emb.shape(), (nu, 8));
        assert!(emb.all_finite());
        assert!(emb.sq_norm() > 0.0);
    }
}
