//! The executable half of a graph-optimizer rewrite plan.
//!
//! `dgnn-analysis` computes rewrites over a `ShapeTracer` graph — constant
//! folding, common-subexpression elimination, op fusion — and lowers them to
//! this minimal per-node action table, which is all [`crate::Tape`] needs to
//! execute the rewritten graph. Keeping the executable type here mirrors
//! [`crate::plan::TapePlan`] and avoids a dependency cycle (`analysis`
//! depends on `autograd`, not the other way around).
//!
//! Rewrites are *patches*: the node numbering of the original graph is
//! preserved — every node still exists at its original index with its
//! original op — and each action only changes **how** that node's forward
//! value is produced (recomputed, copied from an equal earlier node, read
//! from the cross-step fold cache, computed in place in a stolen buffer, or
//! computed by a fused kernel). Gradients and the memory plan therefore
//! carry over unchanged, and optimized execution is bit-identical to
//! unoptimized execution by construction.
//!
//! Every action is additionally *runtime-verified* by the tape (operand
//! identity, scalar bit-equality, buffer availability); a mispredicted
//! action falls back to plain recomputation, so a stale plan can cost speed
//! but never correctness. Before a trainer executes a plan at all, the
//! independent `rewrite_checker` in `dgnn-analysis` must prove it sound —
//! unproven plans panic in the training harness.

/// How one node's forward value is produced under a rewrite plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteAction {
    /// Evaluate the op normally (the default for every node).
    Compute,
    /// CSE: this node is congruent to earlier node `j`; its value is a
    /// pooled copy of `j`'s value. The node itself — and its backward rule —
    /// survive untouched, which is what keeps gradient accumulation order
    /// (and hence bits) identical to the unoptimized run.
    CopyOf(u32),
    /// Constant folding: this node belongs to a training-invariant
    /// subgraph. Its value is served from fold-cache slot `slot` when the
    /// cached entry is still valid this step, and recomputed (refreshing
    /// the cache) otherwise.
    Fold(u32),
    /// Op fusion, in-place form: steal the first input's buffer (statically
    /// proven dead after this op) and apply the op's epilogue in place.
    Steal,
    /// Op fusion, streaming form: produce the value with a single-pass
    /// lowered kernel instead of the historical clone-then-update two-pass
    /// kernel.
    Stream,
    /// Op fusion, gather→matmul: this `gather` feeds exactly one fused
    /// matmul and is never read otherwise, so no value is materialized.
    ElideGather,
    /// Op fusion, gather→matmul: this `matmul`'s first input is an elided
    /// gather; compute the product directly from the gathered rows.
    GatherMatMul,
}

/// A per-node rewrite action table for one compute graph.
///
/// Indexed by node push order — graph topology is batch-stable, so the
/// table computed from a probe trace applies to every training step.
#[derive(Debug, Clone, Default)]
pub struct RewritePlan {
    actions: Vec<RewriteAction>,
    num_fold_slots: u32,
}

impl RewritePlan {
    /// Builds a plan from a per-node action table.
    ///
    /// # Panics
    /// Panics on structurally malformed plans: a `CopyOf` source at or
    /// after its copier (the graph must stay acyclic), or a fold slot
    /// outside `num_fold_slots`. Semantic soundness (shape-correctness,
    /// gradient-completeness, steal legality) is the rewrite checker's job.
    pub fn new(actions: Vec<RewriteAction>, num_fold_slots: u32) -> Self {
        for (i, a) in actions.iter().enumerate() {
            match *a {
                RewriteAction::CopyOf(j) => {
                    assert!(
                        (j as usize) < i,
                        "RewritePlan: node {i} copies from {j}, which is not an earlier node"
                    );
                }
                RewriteAction::Fold(s) => {
                    assert!(
                        s < num_fold_slots,
                        "RewritePlan: node {i} uses fold slot {s} of {num_fold_slots}"
                    );
                }
                _ => {}
            }
        }
        Self { actions, num_fold_slots }
    }

    /// The action for node `i` (`Compute` past the end of the table, so a
    /// plan traced on a probe batch tolerates no-op tail differences).
    pub fn action(&self, i: usize) -> RewriteAction {
        self.actions.get(i).copied().unwrap_or(RewriteAction::Compute)
    }

    /// The full action table.
    pub fn actions(&self) -> &[RewriteAction] {
        &self.actions
    }

    /// Number of fold-cache slots the plan requires.
    pub fn num_fold_slots(&self) -> u32 {
        self.num_fold_slots
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when the plan covers an empty graph.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// True when every action is `Compute` (the plan changes nothing).
    pub fn is_identity(&self) -> bool {
        self.actions.iter().all(|a| matches!(a, RewriteAction::Compute))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "not an earlier node")]
    fn forward_copy_rejected() {
        let _ = RewritePlan::new(vec![RewriteAction::CopyOf(0)], 0);
    }

    #[test]
    #[should_panic(expected = "fold slot")]
    fn out_of_range_slot_rejected() {
        let _ = RewritePlan::new(vec![RewriteAction::Fold(2)], 2);
    }

    #[test]
    fn action_defaults_to_compute_past_the_end() {
        let p = RewritePlan::new(vec![RewriteAction::Compute], 0);
        assert_eq!(p.action(5), RewriteAction::Compute);
        assert!(p.is_identity());
    }
}
