//! Tape-based reverse-mode automatic differentiation over
//! [`dgnn_tensor::Matrix`].
//!
//! This is the training substrate for the DGNN reproduction: the paper's
//! model (and all fourteen baselines) are expressed as ordinary
//! differentiable compute graphs, so a small but complete autodiff engine is
//! the faithful substitute for the PyTorch dependency the authors used.
//!
//! # Design
//!
//! The graph-building surface is the [`Recorder`] trait; [`Tape`] is its
//! concrete implementation. A [`Tape`] records one forward pass as a flat
//! vector of nodes. Each node stores its operation (a closed `Op` enum — no
//! boxed closures, so the backward pass is a single dispatch loop) and its
//! forward value. [`Tape::backward_into`] walks the nodes in reverse,
//! accumulating gradients. Parameters live outside the tape in a
//! [`ParamSet`]; each training step builds a fresh tape, copies parameter
//! values in as leaves, and scatters gradients back out, which keeps
//! borrows trivially correct.
//!
//! Because models are written against `R: Recorder`, the same forward-pass
//! code can be abstractly interpreted by `dgnn-analysis`'s `ShapeTracer`
//! (shape checking, dead-subgraph and stability audits) without executing
//! any tensor math.
//!
//! Gradients of every operation are verified against central finite
//! differences in this crate's test suite (`tests/grad_check.rs`).
//!
//! # Example
//!
//! ```
//! use dgnn_autograd::{Adam, Optimizer, ParamSet, Recorder, Tape};
//! use dgnn_tensor::{Init, Matrix};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut params = ParamSet::new();
//! let w = params.add("w", Init::XavierUniform.build(2, 1, &mut rng));
//! let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
//! let y = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 2.0]); // y = x0 + x1
//! let mut adam = Adam::new(0.05, 0.0);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let wv = tape.param(&params, w);
//!     let xv = tape.constant(x.clone());
//!     let pred = tape.matmul(xv, wv);
//!     let yv = tape.constant(y.clone());
//!     let err = tape.sub(pred, yv);
//!     let sq = tape.mul(err, err);
//!     let loss = tape.mean_all(sq);
//!     params.zero_grads();
//!     tape.backward_into(loss, &mut params);
//!     adam.step(&mut params);
//! }
//! let w_final = params.value(w);
//! assert!((w_final[(0, 0)] - 1.0).abs() < 0.05);
//! assert!((w_final[(1, 0)] - 1.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod meta;
mod optim;
mod params;
mod plan;
mod recorder;
mod rewrite;
mod tape;

pub use optim::{Adam, Optimizer, Sgd};
pub use params::{ParamId, ParamSet};
pub use plan::{PlanHarness, TapePlan};
pub use recorder::{Recorder, Var};
pub use rewrite::{RewriteAction, RewritePlan};
pub use tape::{FoldCache, RewriteCounters, Tape};
