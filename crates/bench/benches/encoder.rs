//! Microbench: the memory-augmented relation heterogeneity encoder
//! (Eq. 3), including the **factoring ablation** called out in DESIGN.md —
//! attention-first (`Σ_m η_m (H W¹_m)`, what DGNN ships) versus the naive
//! per-edge materialization the equation literally writes
//! (`O(|M|·|E|·d²)`), which is the cost profile HGT pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgnn_tensor::{Csr, CsrBuilder, Init, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::hint::black_box;

const DIM: usize = 16;
const MEMORY: usize = 8;

struct Fixture {
    h: Matrix,
    w1: Vec<Matrix>,
    w2: Matrix,
    adj: Csr,
}

fn fixture(nodes: usize, edges: usize) -> Fixture {
    let mut rng = StdRng::seed_from_u64(3);
    let h = Init::Uniform(0.1).build(nodes, DIM, &mut rng);
    let w1 = (0..MEMORY).map(|_| Init::XavierUniform.build(DIM, DIM, &mut rng)).collect();
    let w2 = Init::XavierUniform.build(DIM, MEMORY, &mut rng);
    let mut b = CsrBuilder::new(nodes, nodes);
    for _ in 0..edges {
        b.push(rng.gen_range(0..nodes), rng.gen_range(0..nodes), 1.0);
    }
    Fixture { h, w1, w2, adj: b.build().row_normalized() }
}

/// Attention-first factoring: per-node transform, then one spmm.
fn factored(f: &Fixture) -> Matrix {
    let eta = f.h.matmul(&f.w2).map(|x| if x >= 0.0 { x } else { 0.2 * x });
    let mut out: Option<Matrix> = None;
    for (m, w) in f.w1.iter().enumerate() {
        let transformed = f.h.matmul(w);
        let eta_m = eta.slice_cols(m, m + 1);
        let weighted = transformed.mul_col_broadcast(&eta_m);
        match &mut out {
            Some(acc) => acc.add_assign(&weighted),
            slot @ None => *slot = Some(weighted),
        }
    }
    f.adj.spmm(&out.expect("MEMORY > 0"))
}

/// Naive per-edge materialization: for every edge, blend the |M| transforms
/// into a d×d matrix and apply it to the source row.
fn per_edge(f: &Fixture) -> Matrix {
    let eta = f.h.matmul(&f.w2).map(|x| if x >= 0.0 { x } else { 0.2 * x });
    let mut out = Matrix::zeros(f.h.rows(), DIM);
    let mut blended = Matrix::zeros(DIM, DIM);
    for dst in 0..f.adj.rows() {
        for (src, weight) in f.adj.row(dst) {
            blended.scale_assign(0.0);
            for (m, w) in f.w1.iter().enumerate() {
                blended.axpy(eta[(src, m)], w);
            }
            let msg = Matrix::from_vec(1, DIM, f.h.row(src).to_vec()).matmul(&blended);
            for (o, &x) in out.row_mut(dst).iter_mut().zip(msg.as_slice()) {
                *o += weight * x;
            }
        }
    }
    out
}

fn bench_factoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_factoring");
    for (nodes, edges) in [(500usize, 3_000usize), (2_000, 12_000)] {
        let f = fixture(nodes, edges);
        group.bench_with_input(
            BenchmarkId::new("factored", format!("{nodes}n_{edges}e")),
            &f,
            |b, f| b.iter(|| black_box(factored(f))),
        );
        group.bench_with_input(
            BenchmarkId::new("per_edge_naive", format!("{nodes}n_{edges}e")),
            &f,
            |b, f| b.iter(|| black_box(per_edge(f))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_factoring);
criterion_main!(benches);
