//! SAMN (Chen et al., WSDM 2019): social attentional memory network.
//!
//! The distinguishing mechanism is dual-stage attention over social ties:
//! an *aspect* stage where a memory bank turns each (user, friend) pair
//! into an aspect-filtered relation vector, and a *friend* stage where
//! per-edge attention decides how much each friend influences the user.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_tensor::Init;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Number of memory aspects (the reference implementation's default).
const NUM_ASPECTS: usize = 8;

struct State {
    e_user: ParamId,
    e_item: ParamId,
    /// Aspect keys, `d × A`.
    mem_key: ParamId,
    /// Aspect values, `A × d`.
    mem_val: ParamId,
    /// Friend-attention projection, `d × 1`.
    attn_w: ParamId,
    /// Social edges grouped by destination user (CSR layout).
    edge_dst_seg: Rc<Vec<usize>>,
    edge_src: Rc<Vec<usize>>,
    edge_dst: Rc<Vec<usize>>,
}

fn forward(st: &State, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let eu = tape.param(params, st.e_user);
    let ev = tape.param(params, st.e_item);
    if st.edge_src.is_empty() {
        return (eu, ev);
    }
    let src = tape.gather(eu, Rc::clone(&st.edge_src));
    let dst = tape.gather(eu, Rc::clone(&st.edge_dst));

    // Aspect attention: joint key → softmax over memory slots → relation
    // vector filtering the friend embedding.
    let joint = tape.mul(src, dst);
    let key = tape.param(params, st.mem_key);
    let logits = tape.matmul(joint, key);
    let aspect = tape.softmax_rows(logits);
    let val = tape.param(params, st.mem_val);
    let filter = tape.matmul(aspect, val);
    let relation = tape.mul(filter, src);

    // Friend-level attention over each user's ties.
    let w = tape.param(params, st.attn_w);
    let gate = tape.mul(relation, dst);
    let fl = tape.matmul(gate, w);
    let fl = tape.leaky_relu(fl, 0.2);
    let beta = tape.segment_softmax(fl, Rc::clone(&st.edge_dst_seg));
    let social = tape.segment_weighted_sum(beta, relation, Rc::clone(&st.edge_dst_seg));

    let users = tape.add(eu, social);
    (users, ev)
}

/// The SAMN recommender.
pub struct Samn {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Samn {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }
}

impl Recommender for Samn {
    fn name(&self) -> &str {
        "SAMN"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("SAMN", user, items)
    }
}

impl Trainable for Samn {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let d = self.cfg.dim;
        let e_user = params.add("e_user", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
        let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng));
        let mem_key = params.add("mem_key", Init::XavierUniform.build(d, NUM_ASPECTS, &mut rng));
        let mem_val = params.add("mem_val", Init::XavierUniform.build(NUM_ASPECTS, d, &mut rng));
        let attn_w = params.add("attn_w", Init::XavierUniform.build(d, 1, &mut rng));

        // The social CSR already groups edges by destination row.
        let ss = g.ss();
        let mut edge_dst = Vec::with_capacity(ss.nnz());
        for u in 0..g.num_users() {
            edge_dst.extend(std::iter::repeat(u).take(ss.degree(u)));
        }
        let st = State {
            e_user,
            e_item,
            mem_key,
            mem_val,
            attn_w,
            edge_dst_seg: Rc::new(ss.row_ptr().to_vec()),
            edge_src: Rc::new(ss.col_idx().to_vec()),
            edge_dst: Rc::new(edge_dst),
        };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, _| {
                let (users, items) = forward(&st, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn samn_beats_random() {
        assert_beats_random(&mut Samn::new(quick()));
    }

    #[test]
    fn samn_handles_graph_without_social_ties() {
        use dgnn_graph::HeteroGraphBuilder;
        let mut b = HeteroGraphBuilder::new(4, 120, 1);
        for u in 0..4 {
            for v in 0..5 {
                b.interaction(u, v * 4 + u, v as u32);
            }
        }
        let full = b.build();
        let mut rng = StdRng::seed_from_u64(0);
        let data = Dataset::leave_one_out("no-social", &full, 2, 20, &mut rng);
        let mut m = Samn::new(quick());
        m.fit(&data, 1); // must not panic on empty edge set
        assert!(m.loss_history.iter().all(|l| l.is_finite()));
    }
}
