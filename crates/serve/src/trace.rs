//! Per-request phase tracing and the serving tier's live telemetry handles.
//!
//! Every request carries a [`RequestTrace`] — a process-unique id plus the
//! wall time spent in each serving phase:
//!
//! ```text
//! parse ─▶ queue_wait ─▶ batch_assembly ─▶ engine ─▶ write
//! (worker)  (channel)      (batcher drain)  (batch)   (worker)
//! ```
//!
//! `parse` and `write` happen on the worker thread that owns the socket;
//! `queue_wait` (enqueue → batcher dequeue), `batch_assembly` (dequeue →
//! engine dispatch), and `engine` (the shared `recommend_batch` call)
//! happen across the batcher channel, so the batcher sends a
//! [`PhaseBreakdown`] back with each reply and the worker folds it into
//! the trace. Phases land live in the process-shared histograms behind
//! [`telemetry`] — the `/metrics` and `/stats` endpoints read them without
//! waiting for a benchmark-style `publish` at shutdown.
//!
//! [`telemetry`] hands out one [`ServeTelemetry`] of cached `&'static`
//! instrument handles, so the per-request record path never touches the
//! registry lock (and never allocates — see the counting-allocator proof
//! in `tests/tests/obs_disabled_alloc.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use dgnn_obs::shared::{counter, hist, SharedCounter, SharedHist};
use dgnn_obs::{flight_record, now_ns, FlightKind};

/// The batcher-side phase timings of one request, sent back over the
/// reply channel alongside the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Enqueue (worker send) → batcher dequeue, microseconds.
    pub queue_wait_us: u64,
    /// Batcher dequeue → engine dispatch (time spent waiting for
    /// ride-along queries), microseconds.
    pub batch_assembly_us: u64,
    /// The engine's `recommend_batch` wall time, microseconds (shared by
    /// every request in the batch).
    pub engine_us: u64,
    /// How many queries shared the dispatch.
    pub batch_size: u32,
}

/// Wall-clock phase trace of one HTTP request.
#[derive(Debug, Clone, Copy)]
pub struct RequestTrace {
    /// Process-unique request id (also the flight-recorder correlation
    /// key).
    pub id: u64,
    /// [`now_ns`] at accept time.
    pub t_start_ns: u64,
    /// Request-line + header read/parse time, microseconds.
    pub parse_us: u64,
    /// Batcher-side phases; `None` for requests that never reach the
    /// batcher (health checks, scrapes, errors).
    pub phases: Option<PhaseBreakdown>,
    /// Response serialization + socket write time, microseconds.
    pub write_us: u64,
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

impl RequestTrace {
    /// Starts a trace: assigns the id, stamps the start time, and drops a
    /// `request_start` event into the flight recorder.
    pub fn begin() -> Self {
        let id = NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed);
        flight_record(FlightKind::RequestStart, id, 0);
        Self { id, t_start_ns: now_ns(), parse_us: 0, phases: None, write_us: 0 }
    }

    /// Total wall time since [`RequestTrace::begin`], microseconds.
    pub fn elapsed_us(&self) -> u64 {
        now_ns().saturating_sub(self.t_start_ns) / 1000
    }

    /// Ends the trace: records every phase into the live histograms and
    /// drops a `request_done` event (payload: id, HTTP status) into the
    /// flight recorder.
    pub fn finish(&self, status: u16) {
        let t = telemetry();
        t.latency_ms.record(us_to_ms(self.elapsed_us()));
        t.parse_ms.record(us_to_ms(self.parse_us));
        t.write_ms.record(us_to_ms(self.write_us));
        if let Some(p) = self.phases {
            t.queue_wait_ms.record(us_to_ms(p.queue_wait_us));
            t.batch_assembly_ms.record(us_to_ms(p.batch_assembly_us));
            t.engine_ms.record(us_to_ms(p.engine_us));
        }
        if status < 400 {
            t.requests_ok.add(1);
        } else {
            t.requests_err.add(1);
        }
        flight_record(FlightKind::RequestDone, self.id, u64::from(status));
    }
}

/// Microseconds → milliseconds (the unit every latency histogram uses).
pub fn us_to_ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

/// Cached `&'static` handles to every live serving instrument. One lookup
/// at first use; record paths after that are lock-free and
/// allocation-free.
pub struct ServeTelemetry {
    /// End-to-end request latency.
    pub latency_ms: &'static SharedHist,
    /// Request read/parse phase.
    pub parse_ms: &'static SharedHist,
    /// Enqueue → dequeue phase.
    pub queue_wait_ms: &'static SharedHist,
    /// Dequeue → engine dispatch phase.
    pub batch_assembly_ms: &'static SharedHist,
    /// Engine `recommend_batch` phase.
    pub engine_ms: &'static SharedHist,
    /// Response serialize/write phase.
    pub write_ms: &'static SharedHist,
    /// The gathered matmul inside the engine.
    pub gather_matmul_ms: &'static SharedHist,
    /// The top-K select inside the engine.
    pub topk_ms: &'static SharedHist,
    /// Queries coalesced per engine dispatch.
    pub batch_size: &'static SharedHist,
    /// Requests answered 2xx.
    pub requests_ok: &'static SharedCounter,
    /// Requests answered 4xx/5xx.
    pub requests_err: &'static SharedCounter,
}

/// The process-wide [`ServeTelemetry`] instance.
pub fn telemetry() -> &'static ServeTelemetry {
    static T: OnceLock<ServeTelemetry> = OnceLock::new();
    T.get_or_init(|| ServeTelemetry {
        latency_ms: hist("serve/latency_ms"),
        parse_ms: hist("serve/phase/parse_ms"),
        queue_wait_ms: hist("serve/phase/queue_wait_ms"),
        batch_assembly_ms: hist("serve/phase/batch_assembly_ms"),
        engine_ms: hist("serve/phase/engine_ms"),
        write_ms: hist("serve/phase/write_ms"),
        gather_matmul_ms: hist("serve/engine/gather_matmul_ms"),
        topk_ms: hist("serve/engine/topk_ms"),
        batch_size: hist("serve/batch_size"),
        requests_ok: counter("serve/requests_ok"),
        requests_err: counter("serve/requests_err"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let a = RequestTrace::begin();
        let b = RequestTrace::begin();
        assert!(b.id > a.id);
        assert!(a.t_start_ns > 0);
    }

    #[test]
    fn finish_records_phases_and_outcome() {
        let t = telemetry();
        let (lat0, ok0, qw0) = (t.latency_ms.count(), t.requests_ok.get(), t.queue_wait_ms.count());
        let mut trace = RequestTrace::begin();
        trace.parse_us = 10;
        trace.write_us = 5;
        trace.phases = Some(PhaseBreakdown {
            queue_wait_us: 100,
            batch_assembly_us: 50,
            engine_us: 200,
            batch_size: 3,
        });
        trace.finish(200);
        assert!(t.latency_ms.count() > lat0);
        assert!(t.requests_ok.get() > ok0);
        assert!(t.queue_wait_ms.count() > qw0);

        let err0 = t.requests_err.get();
        let plain = RequestTrace::begin();
        plain.finish(404);
        assert!(t.requests_err.get() > err0);
    }

    #[test]
    fn unit_conversion() {
        assert_eq!(us_to_ms(2500), 2.5);
        assert_eq!(us_to_ms(0), 0.0);
    }
}
