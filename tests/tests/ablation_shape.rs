//! Shape tests for the paper's core claims at miniature scale: the
//! heterogeneous context must genuinely help, and the disentangled
//! machinery must expose it.

use dgnn_core::Dgnn;
use dgnn_data::tiny;
use dgnn_eval::{evaluate_at, Trainable};
use dgnn_integration_tests::quick_dgnn;

/// Averages HR@10 over a few seeds to damp single-seed noise.
fn mean_hr(cfg: dgnn_core::DgnnConfig, seeds: &[u64]) -> f64 {
    let data = tiny(42);
    seeds
        .iter()
        .map(|&s| {
            let mut m = Dgnn::new(cfg.clone());
            m.fit(&data, s);
            evaluate_at(&m, &data.test, 10).hr
        })
        .sum::<f64>()
        / seeds.len() as f64
}

#[test]
fn removing_all_context_hurts() {
    // Figure 5's strongest claim, miniature: -ST must not beat the full
    // model by a meaningful margin (and usually loses). The synthetic
    // world plants social homophily and category structure, so this tests
    // that DGNN actually extracts them.
    let seeds = [1, 2, 3];
    let full = mean_hr(quick_dgnn(), &seeds);
    let stripped = mean_hr(quick_dgnn().without_social_and_knowledge(), &seeds);
    assert!(
        full >= stripped - 0.02,
        "full model ({full:.4}) lost to -ST ({stripped:.4})"
    );
}

#[test]
fn propagation_beats_no_propagation() {
    // Figure 7's L-sweep claim, miniature: L = 2 beats L = 0.
    let seeds = [1, 2, 3];
    let l2 = mean_hr(quick_dgnn(), &seeds);
    let l0 = mean_hr(dgnn_core::DgnnConfig { layers: 0, ..quick_dgnn() }, &seeds);
    assert!(
        l2 > l0 - 0.02,
        "propagation (L=2, {l2:.4}) should not lose to embeddings-only (L=0, {l0:.4})"
    );
}

#[test]
fn attention_vectors_differ_between_banks() {
    // Figure 10's premise: the social and interaction banks learn
    // *different* attention patterns (otherwise disentanglement is a
    // no-op).
    let data = tiny(42);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, 7);
    let social = model.memory_attention(dgnn_core::MemoryBankKind::SocialToUser);
    let inter = model.memory_attention(dgnn_core::MemoryBankKind::UserToItem);
    let diff = social.sub(inter).sq_norm();
    assert!(diff > 1e-4, "banks collapsed to identical attention ({diff})");
}

// ---------------------------------------------------------------------------
// Static analysis: the ShapeTracer abstract-interprets the *identical*
// graph-building code the trainer runs (both go through `R: Recorder`), so
// these checks hold for the real training step — and they run before a
// single FLOP of training.
// ---------------------------------------------------------------------------

mod static_analysis {
    use std::rc::Rc;

    use dgnn_analysis::{audit, DiagnosticKind, ShapeTracer};
    use dgnn_autograd::{ParamSet, Recorder};
    use dgnn_baselines::{Dgcf, DisenHan, Mhcn, Ngcf};
    use dgnn_core::Dgnn;
    use dgnn_data::{tiny, Dataset, TrainSampler, Triple};
    use dgnn_integration_tests::{quick_baseline, quick_dgnn};
    use dgnn_tensor::{Init, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_triples(data: &Dataset) -> Vec<Triple> {
        let sampler = TrainSampler::new(&data.graph);
        sampler.batch(&mut StdRng::seed_from_u64(9), 64)
    }

    // --- positive: the paper's model and every traced baseline are clean ---

    #[test]
    fn dgnn_training_graph_audits_clean() {
        let data = tiny(42);
        let triples = sample_triples(&data);
        let mut model = Dgnn::new(quick_dgnn());
        model.prepare(&data.graph, 7);
        let mut tr = ShapeTracer::new();
        let loss = model.record_step(&mut tr, &triples);
        let report = audit(&tr, loss, &[], model.params());
        assert!(report.is_clean(), "DGNN training graph is not clean:\n{report}");
        assert!(tr.num_nodes() > 50, "suspiciously small trace: {}", tr.num_nodes());
    }

    #[test]
    fn traced_baselines_audit_clean() {
        let data = tiny(42);
        let triples = sample_triples(&data);
        let checks: Vec<(&str, Box<dyn Fn(&mut ShapeTracer) -> (ParamSet, _)>)> = vec![
            ("NGCF", Box::new(|tr: &mut ShapeTracer| {
                Ngcf::trace_step(&quick_baseline(), &data, &triples, 7, tr)
            })),
            ("MHCN", Box::new(|tr: &mut ShapeTracer| {
                Mhcn::trace_step(&quick_baseline(), &data, &triples, 7, tr)
            })),
            ("DGCF", Box::new(|tr: &mut ShapeTracer| {
                Dgcf::trace_step(&quick_baseline(), &data, &triples, 7, tr)
            })),
            ("DisenHAN", Box::new(|tr: &mut ShapeTracer| {
                DisenHan::trace_step(&quick_baseline(), &data, &triples, 7, tr)
            })),
        ];
        for (name, trace) in checks {
            let mut tr = ShapeTracer::new();
            let (params, loss) = trace(&mut tr);
            let report = audit(&tr, loss, &[], &params);
            assert!(report.is_clean(), "{name} training graph is not clean:\n{report}");
        }
    }

    // --- negative: every diagnostic class fires on a deliberately broken
    //     graph, caught at trace time — before any training step ---

    fn leaf(params: &mut ParamSet, name: &str, r: usize, c: usize) -> dgnn_autograd::ParamId {
        params.add(name, Init::XavierUniform.build(r, c, &mut StdRng::seed_from_u64(1)))
    }

    #[test]
    fn detects_shape_mismatch() {
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 5, 3); // wrong: x is n×4, w must be 4×d
        let mut tr = ShapeTracer::new();
        let x = tr.constant(Matrix::zeros(8, 4));
        let wv = tr.param(&params, w);
        let h = tr.matmul(x, wv);
        let loss = tr.mean_all(h);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.has(DiagnosticKind::ShapeMismatch), "no mismatch reported:\n{report}");
    }

    #[test]
    fn detects_index_range_violation() {
        let mut params = ParamSet::new();
        let emb = leaf(&mut params, "emb", 10, 4);
        let mut tr = ShapeTracer::new();
        let table = tr.param(&params, emb);
        // Index 10 is one past the declared 10-row table.
        let rows = tr.gather(table, Rc::new(vec![0, 3, 10]));
        let loss = tr.mean_all(rows);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.has(DiagnosticKind::IndexRange), "no index violation reported:\n{report}");
    }

    #[test]
    fn detects_unused_param() {
        let mut params = ParamSet::new();
        let used = leaf(&mut params, "used", 4, 4);
        let _orphan = leaf(&mut params, "orphan", 4, 4);
        let mut tr = ShapeTracer::new();
        let x = tr.constant(Matrix::zeros(4, 4));
        let wv = tr.param(&params, used);
        let h = tr.matmul(x, wv);
        let loss = tr.mean_all(h);
        let report = audit(&tr, loss, &[], &params);
        assert_eq!(report.count(DiagnosticKind::UnusedParam), 1, "{report}");
    }

    #[test]
    fn detects_dead_subgraph() {
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 4, 4);
        let mut tr = ShapeTracer::new();
        let x = tr.constant(Matrix::zeros(4, 4));
        let wv = tr.param(&params, w);
        let h = tr.matmul(x, wv);
        // Recorded but never consumed: backward can never reach it.
        let dead = tr.sigmoid(h);
        let _ = dead;
        let loss = tr.mean_all(h);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.has(DiagnosticKind::DeadSubgraph), "no dead subgraph reported:\n{report}");
    }

    #[test]
    fn detects_unstable_exp() {
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "logits", 4, 4);
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        // exp of a raw parameter: overflows once the logits drift.
        let e = tr.exp(wv);
        let loss = tr.mean_all(e);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.has(DiagnosticKind::UnstableDomain), "no stability hazard reported:\n{report}");
    }

    #[test]
    fn detects_unstable_ln() {
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 4, 4);
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        // sigmoid is non-negative but underflows to exact 0.0, so ln of it
        // is not provably safe without the +ε idiom.
        let s = tr.sigmoid(wv);
        let l = tr.ln(s);
        let loss = tr.mean_all(l);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.has(DiagnosticKind::UnstableDomain), "no ln-domain hazard reported:\n{report}");
    }

    #[test]
    fn ln_with_epsilon_is_accepted() {
        // The fix: ln(x + ε) with x ≥ 0 and ε > 0 is bounded away from zero.
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 4, 4);
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let s = tr.sigmoid(wv);
        let safe = tr.add_scalar(s, 1e-8);
        let l = tr.ln(safe);
        let loss = tr.mean_all(l);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.is_clean(), "ln(x + eps) should be clean:\n{report}");
    }

    #[test]
    fn detects_unstable_div() {
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 4, 4);
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let num = tr.sigmoid(wv);
        // Dividing by a softmax: rows underflow to exact zeros under drift.
        let den = tr.softmax_rows(wv);
        let q = tr.div(num, den);
        let loss = tr.mean_all(q);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.has(DiagnosticKind::UnstableDomain), "no div-domain hazard reported:\n{report}");
    }

    #[test]
    fn div_by_shifted_denominator_is_accepted() {
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 4, 4);
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let num = tr.sigmoid(wv);
        let den_raw = tr.softmax_rows(wv);
        let den = tr.add_scalar(den_raw, 1e-8);
        let q = tr.div(num, den);
        let loss = tr.mean_all(q);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.is_clean(), "div by (x + eps) should be clean:\n{report}");
    }

    #[test]
    fn detects_unstable_sqrt() {
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 4, 4);
        let mut tr = ShapeTracer::new();
        // sqrt of a raw parameter: NaN for any negative entry.
        let wv = tr.param(&params, w);
        let r = tr.sqrt(wv);
        let loss = tr.mean_all(r);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.has(DiagnosticKind::UnstableDomain), "no sqrt-domain hazard reported:\n{report}");
    }

    #[test]
    fn sqrt_of_nonneg_is_accepted() {
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 4, 4);
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let sq = tr.mul(wv, wv);
        let r = tr.sqrt(sq);
        let loss = tr.mean_all(r);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.is_clean(), "sqrt of a square should be clean:\n{report}");
    }

    #[test]
    fn bounded_exp_is_accepted() {
        // The fix for the case above: squash before exponentiating.
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "logits", 4, 4);
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let t = tr.tanh(wv);
        let e = tr.exp(t);
        let loss = tr.mean_all(e);
        let report = audit(&tr, loss, &[], &params);
        assert!(report.is_clean(), "bounded exp should be clean:\n{report}");
    }

    #[test]
    fn declared_outputs_are_not_dead() {
        // Embeddings cached for inference are legitimate non-loss roots.
        let mut params = ParamSet::new();
        let w = leaf(&mut params, "w", 4, 4);
        let mut tr = ShapeTracer::new();
        let x = tr.constant(Matrix::zeros(4, 4));
        let wv = tr.param(&params, w);
        let h = tr.matmul(x, wv);
        let cached = tr.l2_normalize_rows(h, 1e-9);
        let loss = tr.mean_all(h);
        let with_decl = audit(&tr, loss, &[cached], &params);
        assert!(with_decl.is_clean(), "declared output flagged:\n{with_decl}");
        let without = audit(&tr, loss, &[], &params);
        assert!(without.has(DiagnosticKind::DeadSubgraph), "undeclared sink not flagged");
    }
}
