//! Independent disjointness prover for the parallel kernel backend.
//!
//! [`check_dispatches`] consumes the shadow-access logs that
//! `dgnn_tensor::sanitize` records when `DGNN_SANITIZE=1` and proves, per
//! dispatch:
//!
//! 1. **Well-formed partitioning** — the recorded partitions are exactly
//!    `0..parts` and their row ranges tile `0..items` with no gap or
//!    overlap (the caller-run partition 0 included: it goes through the
//!    same record path as pool workers, so it is held to the same
//!    contract).
//! 2. **Contract match** — the observed accesses correspond 1:1 to the
//!    [`KernelContract`] registered for the kernel, and every access has
//!    the *shape* the contract declares (a function of the partition's row
//!    range, never a wildcard). A kernel that starts reading wider than
//!    its contract — or a contract declared wider than the kernel actually
//!    touches — is a [`RaceViolation::ContractMismatch`], not a pass.
//! 3. **Concrete disjointness** — independent of the contract table, the
//!    recorded write-sets of different partitions are pairwise disjoint,
//!    and no partition reads an element another partition writes. This
//!    check is pure interval arithmetic over the recorded spans; it shares
//!    no code with the kernels, mirroring the planner/checker and
//!    optimizer/rewrite-checker splits elsewhere in this crate.
//!
//! The contract table below is the admission list for parallel kernels: a
//! new kernel (the packed SIMD GEMM dispatches included) is admissible
//! only once its entry here proves out under the sanitizer battery and the
//! schedule fuzzer (`tests/tests/race_sanitizer.rs`). Lint rule 12
//! additionally requires every `par_row_chunks`/`run_parts` call site
//! outside the tensor crate's kernel modules to carry a `// CONTRACT:`
//! tag naming an entry in this table.

use std::fmt;

use dgnn_tensor::sanitize::{Access, Dispatch, OUT, SCRATCH};

/// Declared shape of one operand access as a function of the partition's
/// row range `row_lo..row_hi` within a dispatch over `items` rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Every partition touches the whole buffer identically (`0..len`).
    /// Legal only for *reads* of buffers no partition writes.
    All,
    /// Elements `row_lo*w .. row_hi*w` for a per-kernel-consistent row
    /// width `w` (disjoint across partitions by construction).
    PartRows,
    /// Elements `row_lo .. row_hi + 1` — a row-range read plus the shared
    /// fencepost element (CSR `row_ptr`). Adjacent partitions overlap in
    /// exactly that read-only boundary element.
    PartRowsInclusive,
    /// Contiguous spans that chain across partitions in partition order
    /// starting at 0 (CSR `col_idx`/`values` slices bracketed by a
    /// monotone `row_ptr`): partition `p+1` starts where `p` ends.
    Chained,
    /// A strided column band: `count` spans of `row_hi - row_lo` elements
    /// starting at `row_lo`, one per operand row (`matmul_tn`'s read of
    /// the left operand's columns).
    PartCols,
    /// A read identical to the same partition's write of the same operand
    /// — the read half of an in-place read-modify-write kernel.
    SelfRows,
    /// A private contiguous region of a dispatcher-provided scratch buffer
    /// (the packed-GEMM A-panel workspace, operand `SCRATCH`): one span per
    /// partition, empty when the partition's row span is empty, with span
    /// starts strictly advancing past the previous partition's span end —
    /// so regions can never overlap. Obligation 3 re-proves the
    /// disjointness concretely over the recorded intervals.
    PartScratch,
}

/// One declared operand access of a kernel contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessSpec {
    /// Operand code ([`OUT`] or input index), matching what the kernel
    /// records.
    pub operand: u8,
    /// Whether this access writes the operand.
    pub write: bool,
    /// The declared shape.
    pub shape: Shape,
}

/// The registered partition contract of one pooled kernel: the exact set
/// of `(operand, write, shape)` accesses every partition performs.
#[derive(Clone, Copy, Debug)]
pub struct KernelContract {
    /// Kernel name as recorded by the tensor crate.
    pub kernel: &'static str,
    /// Declared accesses; must match the observed set 1:1.
    pub accesses: &'static [AccessSpec],
}

const fn spec(operand: u8, write: bool, shape: Shape) -> AccessSpec {
    AccessSpec { operand, write, shape }
}

/// `[write OUT rows, read 0 rows, read 1 all]` — the row-partitioned GEMM
/// family.
const GEMM: &[AccessSpec] = &[
    spec(OUT, true, Shape::PartRows),
    spec(0, false, Shape::PartRows),
    spec(1, false, Shape::All),
];

/// `[write OUT rows, read 0 rows, read 1 rows]` — element/row-aligned
/// binary kernels.
const ZIP: &[AccessSpec] = &[
    spec(OUT, true, Shape::PartRows),
    spec(0, false, Shape::PartRows),
    spec(1, false, Shape::PartRows),
];

/// `[rmw OUT rows, read 0 rows]` — in-place binary accumulators.
const RMW_BINARY: &[AccessSpec] = &[
    spec(OUT, true, Shape::PartRows),
    spec(OUT, false, Shape::SelfRows),
    spec(0, false, Shape::PartRows),
];

/// `[rmw OUT rows]` — in-place unary / row-normalizer kernels.
const RMW_UNARY: &[AccessSpec] =
    &[spec(OUT, true, Shape::PartRows), spec(OUT, false, Shape::SelfRows)];

/// The packed-GEMM A-panel scratch pair: each partition packs its own
/// rows into a private scratch region (write) and the microkernel reads
/// exactly that region back.
const PACK_SCRATCH_W: AccessSpec = spec(SCRATCH, true, Shape::PartScratch);
const PACK_SCRATCH_R: AccessSpec = spec(SCRATCH, false, Shape::SelfRows);

/// `[write OUT rows, read 0 rows, read 1 all(packed B), scratch rmw]` —
/// the packed row-partitioned GEMM family (`matmul`, `matmul_nt`).
const GEMM_PACKED: &[AccessSpec] = &[
    spec(OUT, true, Shape::PartRows),
    spec(0, false, Shape::PartRows),
    spec(1, false, Shape::All),
    PACK_SCRATCH_W,
    PACK_SCRATCH_R,
];

/// Packed gathered GEMM: the row table is read whole-buffer (indices are
/// data-dependent), the index list per-partition.
const GEMM_GATHER_PACKED: &[AccessSpec] = &[
    spec(OUT, true, Shape::PartRows),
    spec(0, false, Shape::All),
    spec(1, false, Shape::All),
    spec(2, false, Shape::PartRows),
    PACK_SCRATCH_W,
    PACK_SCRATCH_R,
];

/// The builtin contract table: every pooled kernel in `dgnn-tensor`.
/// Ordering is alphabetical-ish by family for review; lookup is by name.
const CONTRACTS: &[KernelContract] = &[
    KernelContract { kernel: "matmul", accesses: GEMM },
    KernelContract {
        kernel: "matmul_tn",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(0, false, Shape::PartCols),
            spec(1, false, Shape::All),
        ],
    },
    KernelContract { kernel: "matmul_nt", accesses: GEMM },
    KernelContract {
        kernel: "matmul_nt_acc",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(OUT, false, Shape::SelfRows),
            spec(0, false, Shape::PartRows),
            spec(1, false, Shape::All),
        ],
    },
    KernelContract { kernel: "add", accesses: ZIP },
    KernelContract { kernel: "sub", accesses: ZIP },
    KernelContract { kernel: "mul_elem", accesses: ZIP },
    KernelContract { kernel: "div_elem", accesses: ZIP },
    KernelContract { kernel: "leaky_relu_grad", accesses: ZIP },
    KernelContract { kernel: "relu_grad", accesses: ZIP },
    KernelContract { kernel: "tanh_grad", accesses: ZIP },
    KernelContract { kernel: "sigmoid_grad", accesses: ZIP },
    KernelContract { kernel: "softplus_grad", accesses: ZIP },
    KernelContract { kernel: "map", accesses: &[spec(OUT, true, Shape::PartRows), spec(0, false, Shape::PartRows)] },
    KernelContract { kernel: "add_assign", accesses: RMW_BINARY },
    KernelContract { kernel: "axpy", accesses: RMW_BINARY },
    KernelContract { kernel: "sub_assign", accesses: RMW_BINARY },
    KernelContract { kernel: "scale_assign", accesses: RMW_UNARY },
    KernelContract { kernel: "add_scalar_assign", accesses: RMW_UNARY },
    KernelContract { kernel: "add_row_fused", accesses: GEMM },
    KernelContract { kernel: "mul_row_fused", accesses: GEMM },
    KernelContract { kernel: "mul_col_fused", accesses: ZIP },
    KernelContract {
        kernel: "gather_matmul",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(0, false, Shape::All),
            spec(1, false, Shape::All),
            spec(2, false, Shape::PartRows),
        ],
    },
    KernelContract {
        kernel: "gather_rows",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(0, false, Shape::All),
            spec(1, false, Shape::PartRows),
        ],
    },
    KernelContract {
        kernel: "scatter_add_rows",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(OUT, false, Shape::SelfRows),
            spec(0, false, Shape::All),
            spec(1, false, Shape::All),
        ],
    },
    KernelContract { kernel: "l2_normalize_rows", accesses: RMW_UNARY },
    KernelContract { kernel: "softmax_rows", accesses: RMW_UNARY },
    KernelContract { kernel: "layer_norm_rows", accesses: RMW_UNARY },
    KernelContract {
        kernel: "layer_norm_rows_grad",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(0, false, Shape::PartRows),
            spec(1, false, Shape::PartRows),
            spec(2, false, Shape::PartRows),
        ],
    },
    KernelContract {
        kernel: "spmm",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(0, false, Shape::PartRowsInclusive),
            spec(1, false, Shape::Chained),
            spec(2, false, Shape::Chained),
            spec(3, false, Shape::All),
        ],
    },
    KernelContract {
        kernel: "top_k_rows",
        accesses: &[
            spec(0, true, Shape::PartRows),
            spec(1, true, Shape::PartRows),
            spec(2, false, Shape::PartRows),
        ],
    },
    KernelContract { kernel: "gemm_nn_packed", accesses: GEMM_PACKED },
    KernelContract {
        kernel: "gemm_tn_packed",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(0, false, Shape::PartCols),
            spec(1, false, Shape::All),
            PACK_SCRATCH_W,
            PACK_SCRATCH_R,
        ],
    },
    KernelContract { kernel: "gemm_nt_packed", accesses: GEMM_PACKED },
    KernelContract {
        kernel: "gemm_nt_acc_packed",
        accesses: &[
            spec(OUT, true, Shape::PartRows),
            spec(OUT, false, Shape::SelfRows),
            spec(0, false, Shape::PartRows),
            spec(1, false, Shape::All),
            PACK_SCRATCH_W,
            PACK_SCRATCH_R,
        ],
    },
    KernelContract { kernel: "gemm_gather_nn_packed", accesses: GEMM_GATHER_PACKED },
    KernelContract { kernel: "gemm_gather_nt_packed", accesses: GEMM_GATHER_PACKED },
];

/// Names of every kernel with a registered builtin contract (the lint's
/// rule-12 vocabulary and the bench's proved-kernel denominator).
pub fn contract_names() -> Vec<&'static str> {
    CONTRACTS.iter().map(|c| c.kernel).collect()
}

/// One proved-false property of a dispatch. Every variant names the
/// kernel; overlap variants additionally name the partition pair and one
/// concrete overlapping element range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceViolation {
    /// A dispatch was recorded for a kernel with no registered contract.
    UnknownKernel {
        /// The unregistered kernel name.
        kernel: String,
    },
    /// The recorded partitions do not form a well-shaped tiling of
    /// `0..items` (missing/duplicate partition index, gap, or overlap).
    BadPartition {
        /// Kernel whose dispatch is malformed.
        kernel: String,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// Observed accesses do not match the registered contract — an access
    /// with no matching spec, a spec with no matching access, or a shape
    /// that deviates from the declaration.
    ContractMismatch {
        /// Kernel whose observation deviates.
        kernel: String,
        /// Partition where the deviation was found.
        part: usize,
        /// Human-readable description of the deviation.
        detail: String,
    },
    /// Two partitions' write-sets intersect.
    OverlappingWrites {
        /// Kernel with the overlapping writes.
        kernel: String,
        /// First partition of the overlapping pair.
        part_a: usize,
        /// Second partition of the overlapping pair.
        part_b: usize,
        /// Operand both partitions write.
        operand: u8,
        /// Start of one concrete overlapping element range.
        lo: usize,
        /// End (exclusive) of that overlapping range.
        hi: usize,
    },
    /// A partition reads elements another partition writes.
    CrossPartitionRead {
        /// Kernel with the cross-partition read.
        kernel: String,
        /// Partition performing the read.
        reader: usize,
        /// Partition that writes the overlapping elements.
        writer: usize,
        /// Operand involved.
        operand: u8,
        /// Start of one concrete overlapping element range.
        lo: usize,
        /// End (exclusive) of that overlapping range.
        hi: usize,
    },
}

impl fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownKernel { kernel } => {
                write!(f, "kernel `{kernel}` has no registered partition contract")
            }
            Self::BadPartition { kernel, detail } => {
                write!(f, "kernel `{kernel}`: malformed partitioning: {detail}")
            }
            Self::ContractMismatch { kernel, part, detail } => {
                write!(f, "kernel `{kernel}` partition {part}: contract mismatch: {detail}")
            }
            Self::OverlappingWrites { kernel, part_a, part_b, operand, lo, hi } => write!(
                f,
                "kernel `{kernel}`: partitions {part_a} and {part_b} both write \
                 operand {operand} elements {lo}..{hi}"
            ),
            Self::CrossPartitionRead { kernel, reader, writer, operand, lo, hi } => write!(
                f,
                "kernel `{kernel}`: partition {reader} reads operand {operand} \
                 elements {lo}..{hi} written by partition {writer}"
            ),
        }
    }
}

/// Outcome of checking a dispatch log: proof statistics plus every
/// violation found (an empty violation list is the proof certificate).
#[derive(Clone, Debug, Default)]
pub struct RaceReport {
    /// Dispatches examined.
    pub dispatches: usize,
    /// Distinct kernels whose every dispatch checked out clean.
    pub kernels_proved: Vec<String>,
    /// Total partitions examined across all dispatches.
    pub partitions_checked: usize,
    /// Cross-partition access pairs tested for overlap.
    pub pairs_checked: usize,
    /// Everything proved false, most fundamental first per dispatch.
    pub violations: Vec<RaceViolation>,
}

impl RaceReport {
    /// True when no violation was found — the disjointness proof holds
    /// for every recorded dispatch.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "race check: {} dispatches, {} kernels proved, {} partitions, {} pairs, {} violations",
            self.dispatches,
            self.kernels_proved.len(),
            self.partitions_checked,
            self.pairs_checked,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

/// Checks a dispatch log against the builtin contract table.
pub fn check_dispatches(log: &[Dispatch]) -> RaceReport {
    check_dispatches_with(log, &[])
}

/// [`check_dispatches`] with additional contracts consulted *before* the
/// builtin table — the hook the malicious-kernel tests use to register a
/// deliberately wrong contract without polluting the real table.
pub fn check_dispatches_with(log: &[Dispatch], extra: &[KernelContract]) -> RaceReport {
    let mut report = RaceReport::default();
    let mut dirty_kernels: Vec<&str> = Vec::new();
    let mut seen_kernels: Vec<&str> = Vec::new();
    for d in log {
        report.dispatches += 1;
        report.partitions_checked += d.partitions.len();
        if !seen_kernels.contains(&d.kernel) {
            seen_kernels.push(d.kernel);
        }
        let before = report.violations.len();
        check_one(d, extra, &mut report);
        if report.violations.len() > before && !dirty_kernels.contains(&d.kernel) {
            dirty_kernels.push(d.kernel);
        }
    }
    report.kernels_proved = seen_kernels
        .into_iter()
        .filter(|k| !dirty_kernels.contains(k))
        .map(str::to_owned)
        .collect();
    report.kernels_proved.sort_unstable();
    report
}

fn lookup<'a>(kernel: &str, extra: &'a [KernelContract]) -> Option<&'a KernelContract> {
    extra
        .iter()
        .find(|c| c.kernel == kernel)
        .or_else(|| CONTRACTS.iter().find(|c| c.kernel == kernel))
}

fn check_one(d: &Dispatch, extra: &[KernelContract], report: &mut RaceReport) {
    let Some(contract) = lookup(d.kernel, extra) else {
        report.violations.push(RaceViolation::UnknownKernel { kernel: d.kernel.to_owned() });
        return;
    };
    if !check_partition_tiling(d, report) {
        return;
    }
    check_contract(d, contract, report);
    check_disjointness(d, report);
}

/// Obligation 1: partitions are exactly `0..parts`, in order, and their
/// row ranges tile `0..items` with no gap or overlap.
fn check_partition_tiling(d: &Dispatch, report: &mut RaceReport) -> bool {
    let bad = |detail: String| RaceViolation::BadPartition {
        kernel: d.kernel.to_owned(),
        detail,
    };
    if d.partitions.len() != d.parts {
        report.violations.push(bad(format!(
            "{} partition records for {} declared parts",
            d.partitions.len(),
            d.parts
        )));
        return false;
    }
    let mut cursor = 0usize;
    for (i, p) in d.partitions.iter().enumerate() {
        if p.part != i {
            report.violations.push(bad(format!("record {i} carries partition index {}", p.part)));
            return false;
        }
        if p.row_lo != cursor || p.row_hi < p.row_lo {
            report.violations.push(bad(format!(
                "partition {i} rows {}..{} do not continue the tiling at {cursor}",
                p.row_lo, p.row_hi
            )));
            return false;
        }
        cursor = p.row_hi;
    }
    if cursor != d.items {
        report.violations.push(bad(format!(
            "partitions end at row {cursor}, dispatch covers {} items",
            d.items
        )));
        return false;
    }
    true
}

/// Obligation 2: observed accesses ↔ contract specs, 1:1, with declared
/// shapes.
fn check_contract(d: &Dispatch, contract: &KernelContract, report: &mut RaceReport) {
    let mismatch = |part: usize, detail: String| RaceViolation::ContractMismatch {
        kernel: d.kernel.to_owned(),
        part,
        detail,
    };
    // 1:1 correspondence by (operand, write): every partition must carry
    // exactly the declared access set, no more and no less.
    for (pi, p) in d.partitions.iter().enumerate() {
        for s in contract.accesses {
            let n = p.accesses.iter().filter(|a| a.operand == s.operand && a.write == s.write).count();
            if n != 1 {
                report.violations.push(mismatch(
                    pi,
                    format!(
                        "declared {} of operand {} observed {n} times (want exactly 1)",
                        if s.write { "write" } else { "read" },
                        s.operand
                    ),
                ));
                return;
            }
        }
        for a in &p.accesses {
            if !contract.accesses.iter().any(|s| s.operand == a.operand && s.write == a.write) {
                report.violations.push(mismatch(
                    pi,
                    format!(
                        "observed undeclared {} of operand {}",
                        if a.write { "write" } else { "read" },
                        a.operand
                    ),
                ));
                return;
            }
        }
    }
    for s in contract.accesses {
        check_shape(d, s, report);
    }
}

/// Returns the unique access matching `s` in partition `p` (existence was
/// established by `check_contract`).
fn find_access<'a>(d: &'a Dispatch, part: usize, s: &AccessSpec) -> &'a Access {
    d.partitions[part]
        .accesses
        .iter()
        .find(|a| a.operand == s.operand && a.write == s.write)
        .expect("race_checker: access presence was verified before shape checking")
}

/// Obligation 2 continued: one spec's observed accesses have the declared
/// shape across all partitions.
fn check_shape(d: &Dispatch, s: &AccessSpec, report: &mut RaceReport) {
    let mismatch = |part: usize, detail: String| RaceViolation::ContractMismatch {
        kernel: d.kernel.to_owned(),
        part,
        detail,
    };
    let label = format!(
        "{} of operand {}",
        if s.write { "write" } else { "read" },
        s.operand
    );
    match s.shape {
        Shape::All => {
            let first = find_access(d, 0, s);
            for pi in 0..d.parts {
                let a = find_access(d, pi, s);
                if a.lo != 0 || a.count > 1 || a.width != first.width {
                    report.violations.push(mismatch(
                        pi,
                        format!(
                            "{label} declared All but observed lo={} width={} count={} \
                             (partition 0 saw width {})",
                            a.lo, a.width, a.count, first.width
                        ),
                    ));
                    return;
                }
            }
        }
        Shape::PartRows => {
            // Row width w is determined by the first partition with a
            // non-empty row span and non-empty access; all others must
            // agree.
            let mut w: Option<usize> = None;
            for pi in 0..d.parts {
                let p = &d.partitions[pi];
                let span = p.row_hi - p.row_lo;
                let a = find_access(d, pi, s);
                if a.count > 1 {
                    report.violations.push(mismatch(
                        pi,
                        format!("{label} declared PartRows but observed a strided span"),
                    ));
                    return;
                }
                if span == 0 {
                    if a.width != 0 {
                        report.violations.push(mismatch(
                            pi,
                            format!("{label}: empty row span but non-empty access width {}", a.width),
                        ));
                        return;
                    }
                    continue;
                }
                if a.width == 0 {
                    // Zero-width rows (e.g. 0-column matrices); consistent
                    // only with w == 0.
                    if w.map_or(false, |w| w != 0) {
                        report.violations.push(mismatch(
                            pi,
                            format!("{label}: zero-width access where other partitions saw rows"),
                        ));
                        return;
                    }
                    w = Some(0);
                    continue;
                }
                if a.width % span != 0 {
                    report.violations.push(mismatch(
                        pi,
                        format!("{label}: width {} not a multiple of row span {span}", a.width),
                    ));
                    return;
                }
                let this_w = a.width / span;
                if w.map_or(false, |w| w != this_w) {
                    report.violations.push(mismatch(
                        pi,
                        format!("{label}: row width {this_w} disagrees with other partitions"),
                    ));
                    return;
                }
                w = Some(this_w);
                if a.lo != p.row_lo * this_w {
                    report.violations.push(mismatch(
                        pi,
                        format!(
                            "{label}: starts at {} instead of row_lo*{this_w} = {}",
                            a.lo,
                            p.row_lo * this_w
                        ),
                    ));
                    return;
                }
            }
        }
        Shape::PartRowsInclusive => {
            for pi in 0..d.parts {
                let p = &d.partitions[pi];
                let a = find_access(d, pi, s);
                let span = p.row_hi - p.row_lo;
                let want = if span == 0 { 0 } else { span + 1 };
                if a.count > 1 || a.width != want || (span > 0 && a.lo != p.row_lo) {
                    report.violations.push(mismatch(
                        pi,
                        format!(
                            "{label} declared PartRowsInclusive; rows {}..{} but observed \
                             lo={} width={} count={}",
                            p.row_lo, p.row_hi, a.lo, a.width, a.count
                        ),
                    ));
                    return;
                }
            }
        }
        Shape::Chained => {
            let mut cursor = 0usize;
            for pi in 0..d.parts {
                let a = find_access(d, pi, s);
                if a.count > 1 {
                    report.violations.push(mismatch(
                        pi,
                        format!("{label} declared Chained but observed a strided span"),
                    ));
                    return;
                }
                if a.width == 0 {
                    continue;
                }
                if a.lo != cursor {
                    report.violations.push(mismatch(
                        pi,
                        format!("{label}: span starts at {} but the chain cursor is {cursor}", a.lo),
                    ));
                    return;
                }
                cursor = a.lo + a.width;
            }
        }
        Shape::PartCols => {
            let mut dims: Option<(usize, usize)> = None; // (stride, count)
            for pi in 0..d.parts {
                let p = &d.partitions[pi];
                let a = find_access(d, pi, s);
                let span = p.row_hi - p.row_lo;
                if span == 0 || a.count == 0 {
                    if span != 0 && a.count != 0 && a.width != 0 {
                        report.violations.push(mismatch(
                            pi,
                            format!("{label}: inconsistent empty column band"),
                        ));
                        return;
                    }
                    continue;
                }
                if a.lo != p.row_lo || a.width != span {
                    report.violations.push(mismatch(
                        pi,
                        format!(
                            "{label} declared PartCols; rows {}..{} but observed lo={} width={}",
                            p.row_lo, p.row_hi, a.lo, a.width
                        ),
                    ));
                    return;
                }
                if dims.map_or(false, |dm| dm != (a.stride, a.count)) {
                    report.violations.push(mismatch(
                        pi,
                        format!("{label}: stride/count disagree across partitions"),
                    ));
                    return;
                }
                dims = Some((a.stride, a.count));
            }
        }
        Shape::PartScratch => {
            // Private scratch regions: at most one contiguous span per
            // partition, empty exactly when the partition's row span is
            // empty-width, and span starts advancing monotonically past
            // every earlier partition's span end. (Obligation 3 then
            // proves the concrete interval disjointness independently.)
            let mut cursor = 0usize;
            for pi in 0..d.parts {
                let a = find_access(d, pi, s);
                if a.count > 1 {
                    report.violations.push(mismatch(
                        pi,
                        format!("{label} declared PartScratch but observed a strided span"),
                    ));
                    return;
                }
                let span = d.partitions[pi].row_hi - d.partitions[pi].row_lo;
                if span == 0 && !a.is_empty() {
                    report.violations.push(mismatch(
                        pi,
                        format!(
                            "{label}: empty row span but non-empty scratch region \
                             lo={} width={}",
                            a.lo, a.width
                        ),
                    ));
                    return;
                }
                if a.is_empty() {
                    continue;
                }
                if a.lo < cursor {
                    report.violations.push(mismatch(
                        pi,
                        format!(
                            "{label}: scratch region starts at {} inside an earlier \
                             partition's region (high-water {cursor})",
                            a.lo
                        ),
                    ));
                    return;
                }
                cursor = a.end();
            }
        }
        Shape::SelfRows => {
            for pi in 0..d.parts {
                let a = find_access(d, pi, s);
                let Some(w) = d.partitions[pi]
                    .accesses
                    .iter()
                    .find(|x| x.operand == s.operand && x.write)
                else {
                    report.violations.push(mismatch(
                        pi,
                        format!("{label} declared SelfRows but the operand has no write"),
                    ));
                    return;
                };
                if (a.lo, a.width, a.stride, a.count) != (w.lo, w.width, w.stride, w.count) {
                    report.violations.push(mismatch(
                        pi,
                        format!(
                            "{label} declared SelfRows but read {}+{}x{} differs from the \
                             partition's own write {}+{}x{}",
                            a.lo, a.width, a.count, w.lo, w.width, w.count
                        ),
                    ));
                    return;
                }
            }
        }
    }
}

/// Obligation 3: concrete pairwise disjointness over the recorded spans,
/// independent of any contract.
fn check_disjointness(d: &Dispatch, report: &mut RaceReport) {
    for (pi, p) in d.partitions.iter().enumerate() {
        for (qi, q) in d.partitions.iter().enumerate().skip(pi + 1) {
            for a in &p.accesses {
                for b in &q.accesses {
                    if a.operand != b.operand || (!a.write && !b.write) {
                        continue;
                    }
                    report.pairs_checked += 1;
                    let Some((lo, hi)) = span_overlap(a, b) else {
                        continue;
                    };
                    let kernel = d.kernel.to_owned();
                    report.violations.push(if a.write && b.write {
                        RaceViolation::OverlappingWrites {
                            kernel,
                            part_a: pi,
                            part_b: qi,
                            operand: a.operand,
                            lo,
                            hi,
                        }
                    } else {
                        let (reader, writer) = if a.write { (qi, pi) } else { (pi, qi) };
                        RaceViolation::CrossPartitionRead {
                            kernel,
                            reader,
                            writer,
                            operand: a.operand,
                            lo,
                            hi,
                        }
                    });
                }
            }
        }
    }
}

/// Span-count ceiling for the exact per-interval overlap test; above it
/// the checker falls back to a conservative bounding-box test.
const EXACT_OVERLAP_CAP: usize = 100_000;

/// First overlapping element range of two strided spans, or `None` when
/// they are disjoint. Exact for spans up to [`EXACT_OVERLAP_CAP`]
/// intervals; beyond that, conservatively reports the bounding-interval
/// intersection (never a false "disjoint").
fn span_overlap(a: &Access, b: &Access) -> Option<(usize, usize)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    // Bounding check first: cheap, and the conservative fallback.
    let (a_end, b_end) = (a.end(), b.end());
    let bb_lo = a.lo.max(b.lo);
    let bb_hi = a_end.min(b_end);
    if bb_lo >= bb_hi {
        return None;
    }
    if a.count.min(b.count) > EXACT_OVERLAP_CAP {
        return Some((bb_lo, bb_hi));
    }
    // Iterate the smaller span's intervals, testing each against the other
    // span analytically.
    let (few, many) = if a.count <= b.count { (a, b) } else { (b, a) };
    for t in 0..few.count {
        let x = few.lo + t * few.stride;
        let y = x + few.width;
        if let Some(hit) = interval_vs_span(x, y, many) {
            return Some(hit);
        }
    }
    None
}

/// First overlap of the interval `[x, y)` with the strided span `s`, or
/// `None`. Solves for the earliest span interval index `t` with
/// `s.lo + t*stride < y` and `s.lo + t*stride + width > x`.
fn interval_vs_span(x: usize, y: usize, s: &Access) -> Option<(usize, usize)> {
    let (lo, w, st, c) = (s.lo as i64, s.width as i64, s.stride.max(1) as i64, s.count as i64);
    let (x, y) = (x as i64, y as i64);
    // Need t*st > x - lo - w  ⇒  t >= floor((x - lo - w) / st) + 1 (for
    // any sign), clamped at 0.
    let t_min = if x - lo - w >= 0 { (x - lo - w) / st + 1 } else { 0 };
    if t_min >= c {
        return None;
    }
    let start = lo + t_min * st;
    if start >= y {
        return None;
    }
    let ov_lo = start.max(x);
    let ov_hi = (start + w).min(y);
    if ov_lo < ov_hi {
        Some((ov_lo as usize, ov_hi as usize))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_tensor::sanitize::PartAccess;

    fn two_part_dispatch(kernel: &'static str, accesses: Vec<Vec<Access>>) -> Dispatch {
        let parts = accesses.len();
        let partitions = accesses
            .into_iter()
            .enumerate()
            .map(|(p, acc)| {
                let r = dgnn_tensor::parallel::part_range(8, parts, p);
                PartAccess { part: p, row_lo: r.start, row_hi: r.end, accesses: acc }
            })
            .collect();
        Dispatch { kernel, parts, items: 8, partitions }
    }

    #[test]
    fn clean_map_dispatch_proves() {
        let d = two_part_dispatch(
            "map",
            vec![
                vec![Access::write(OUT, 0..4), Access::read(0, 0..4)],
                vec![Access::write(OUT, 4..8), Access::read(0, 4..8)],
            ],
        );
        let r = check_dispatches(&[d]);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.kernels_proved, vec!["map".to_owned()]);
        assert!(r.pairs_checked > 0);
    }

    #[test]
    fn strided_overlap_is_exact() {
        // Two interleaved column bands: columns {0,1} vs {2,3} of a 4-wide
        // matrix — stride 4, never overlapping.
        let a = Access::read_strided(0, 0, 2, 4, 5);
        let b = Access::read_strided(0, 2, 2, 4, 5);
        assert_eq!(span_overlap(&a, &b), None, "disjoint bands must not collide");
        // Shift by one: {1,2} overlaps {2,3} at element 2 of each period.
        let c = Access::read_strided(0, 1, 2, 4, 5);
        let hit = span_overlap(&c, &b);
        assert!(hit.is_some(), "offset bands share an element per period");
    }

    #[test]
    fn clean_packed_gemm_dispatch_proves() {
        // 8 rows × 3 cols, k=2, two partitions of 4 rows; scratch cap 16
        // (one 8-lane panel of k=2 per partition).
        let part = |p: usize| {
            let (r, cap, used) = (p * 4..(p + 1) * 4, 16usize, 16usize);
            vec![
                Access::write(OUT, r.start * 3..r.end * 3),
                Access::read(0, r.start * 2..r.end * 2),
                Access::read(1, 0..16),
                Access::write(SCRATCH, p * cap..p * cap + used),
                Access::read(SCRATCH, p * cap..p * cap + used),
            ]
        };
        let d = two_part_dispatch("gemm_nn_packed", vec![part(0), part(1)]);
        let r = check_dispatches(&[d]);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.kernels_proved, vec!["gemm_nn_packed".to_owned()]);
    }

    #[test]
    fn overlapping_scratch_regions_are_flagged() {
        let part = |p: usize| {
            let r = p * 4..(p + 1) * 4;
            // Both partitions claim scratch 0..16: a shape violation (the
            // second region starts inside the first) AND a concrete
            // write-write overlap.
            vec![
                Access::write(OUT, r.start * 3..r.end * 3),
                Access::read(0, r.start * 2..r.end * 2),
                Access::read(1, 0..16),
                Access::write(SCRATCH, 0..16),
                Access::read(SCRATCH, 0..16),
            ]
        };
        let d = two_part_dispatch("gemm_nn_packed", vec![part(0), part(1)]);
        let r = check_dispatches(&[d]);
        assert!(!r.is_clean(), "shared scratch must not prove");
        assert!(
            r.violations.iter().any(|v| matches!(v, RaceViolation::ContractMismatch { .. })),
            "PartScratch monotonicity must flag the overlap: {r}"
        );
        assert!(
            r.violations
                .iter()
                .any(|v| matches!(v, RaceViolation::OverlappingWrites { operand, .. } if *operand == SCRATCH)),
            "obligation 3 must flag the concrete scratch write overlap: {r}"
        );
    }

    #[test]
    fn unknown_kernel_is_flagged() {
        let d = two_part_dispatch("no_such_kernel", vec![vec![], vec![]]);
        let r = check_dispatches(&[d]);
        assert!(matches!(r.violations[0], RaceViolation::UnknownKernel { .. }));
        assert!(r.kernels_proved.is_empty());
    }

    #[test]
    fn overlapping_writes_name_the_pair_and_range() {
        const EVIL_SPECS: &[AccessSpec] = &[spec(OUT, true, Shape::All)];
        let evil = KernelContract { kernel: "evil_overlap", accesses: EVIL_SPECS };
        let d = two_part_dispatch(
            "evil_overlap",
            vec![vec![Access::write(OUT, 0..8)], vec![Access::write(OUT, 0..8)]],
        );
        let r = check_dispatches_with(&[d], &[evil]);
        let hit = r
            .violations
            .iter()
            .find(|v| matches!(v, RaceViolation::OverlappingWrites { .. }))
            .expect("overlapping whole-buffer writes must be reported as OverlappingWrites");
        if let RaceViolation::OverlappingWrites { part_a, part_b, lo, hi, .. } = hit {
            assert_eq!((*part_a, *part_b, *lo, *hi), (0, 1, 0, 8));
        }
    }
}
