#!/usr/bin/env bash
# CI gate: static analysis first (cheap, catches graph/source problems
# before any training step), then the full build + test suite with
# warnings denied, then the memory-plan and training-throughput
# regression gates.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== [1/12] source lints (dgnn-analysis lint harness) ==="
cargo run -q -p dgnn-analysis --bin lint .

echo "=== [2/12] compute-graph audit (ShapeTracer over DGNN + baselines) ==="
cargo test -q -p dgnn-analysis
cargo test -q -p dgnn-integration-tests --test ablation_shape static_analysis

echo "=== [3/12] release build (warnings denied) ==="
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --workspace

echo "=== [4/12] full test suite (serial and 4-thread kernel pool) ==="
DGNN_THREADS=1 cargo test -q --workspace
DGNN_THREADS=4 cargo test -q --workspace

echo "=== [5/12] full test suite per GEMM backend (forced scalar, then auto) ==="
# DGNN_GEMM=scalar pins every matmul to the legacy cache-blocked loops
# (the historical bit-exact numerics); DGNN_GEMM=auto re-runs the same
# suite on the detected packed backend so both halves of the dispatcher
# stay green on every host.
DGNN_GEMM=scalar cargo test -q --workspace
DGNN_GEMM=auto cargo test -q --workspace

echo "=== [6/12] full test suite under the graph optimizer ==="
# DGNN_GRAPH_OPT=1 forces every traced model through the optimize ->
# check_rewrites -> proven-harness path, so the whole suite doubles as a
# bit-identity certificate for optimized execution.
DGNN_GRAPH_OPT=1 cargo test -q --workspace

echo "=== [7/12] memory-plan peak-live-bytes regression gate ==="
cargo run -q --release -p dgnn-bench --bin memplan -- --check analysis-baseline.json

echo "=== [8/12] training steps/sec regression gate (profiled) ==="
cargo run -q --release -p dgnn-bench --bin profile -- --check BENCH_profile.json

echo "=== [9/12] race sanitizer (shadow-access proof + schedule fuzzer + contract gate) ==="
# DGNN_SANITIZE=1 turns on shadow-access tracking; the suite proves every
# pooled kernel's partition disjointness, runs the malicious-kernel typed
# failures, and certifies bit-identity under fuzzed worker schedules. The
# bench gate then re-proves the full contract table at 4 threads.
DGNN_THREADS=4 DGNN_SANITIZE=1 cargo test -q -p dgnn-integration-tests --test race_sanitizer
DGNN_THREADS=4 cargo run -q --release -p dgnn-bench --bin sanitize -- --check

echo "=== [10/12] telemetry gate (percentile/prometheus properties + live scrape + flight dump) ==="
cargo test -q -p dgnn-integration-tests --test telemetry

echo "=== [11/12] serving gate (checkpoint + HTTP load + live /metrics scrape + qps and obs-overhead regression) ==="
cargo run -q --release -p dgnn-bench --bin loadgen -- --check BENCH_serve.json

echo "=== [12/12] scale gate (streaming gen + segmented store + lazy Zipf load + RSS/residency bounds) ==="
# --scale runs the million-user-architecture tier on the CI-sized preset:
# streams a sharded world to disk, opens it lazily, proves sharded scoring
# bit-identical to a dense reference at 1 and 4 threads, then drives 64
# closed-loop Zipf clients and gates on laziness (touched shards < total),
# residency and RSS ceilings, and qps against the committed baseline.
cargo run -q --release -p dgnn-bench --bin loadgen -- --scale --check BENCH_scale.json

echo "CI_OK"
