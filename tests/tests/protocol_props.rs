//! Property-based tests over the evaluation protocol and dataset layer:
//! invariants that must hold for arbitrary generated worlds, not just the
//! presets.

use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::groups::{quartile_assignment, NUM_GROUPS};
use dgnn_eval::{evaluate_at, Recommender};
use dgnn_graph::HeteroGraphBuilder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary small heterogeneous graph.
fn arb_graph() -> impl Strategy<Value = dgnn_graph::HeteroGraph> {
    (
        4usize..12,                                          // users
        110usize..160,                                       // items (≥ negatives pool)
        1usize..4,                                           // relations
        proptest::collection::vec((0usize..12, 0usize..110, 0u32..50), 20..120),
        proptest::collection::vec((0usize..12, 0usize..12), 0..30),
    )
        .prop_map(|(nu, nv, nr, interactions, ties)| {
            let mut b = HeteroGraphBuilder::new(nu, nv, nr);
            for (u, v, t) in interactions {
                b.interaction(u % nu, v % nv, t);
            }
            for (a, c) in ties {
                if a % nu != c % nu {
                    b.social_tie(a % nu, c % nu);
                }
            }
            for v in 0..nv {
                b.item_relation(v, v % nr);
            }
            b.build()
        })
}

/// A deterministic "oracle" scorer for protocol tests.
struct ByItemId;
impl Recommender for ByItemId {
    fn name(&self) -> &str {
        "by-item-id"
    }
    fn score(&self, _u: usize, items: &[usize]) -> Vec<f32> {
        items.iter().map(|&v| v as f32).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn split_never_leaks_test_items_into_training(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::leave_one_out("p", &g, 1, 30, &mut rng);
        for case in &ds.test {
            let trained = ds.graph.items_of(case.user as usize);
            prop_assert!(
                !trained.contains(&(case.pos_item as usize)),
                "held-out item leaked into training"
            );
            // Negatives were never interacted in the FULL graph.
            for &n in &case.negatives {
                prop_assert!(!g.items_of(case.user as usize).contains(&(n as usize)));
            }
        }
    }

    #[test]
    fn metrics_stay_in_bounds(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = Dataset::leave_one_out("p", &g, 1, 30, &mut rng);
        if ds.test.is_empty() {
            return Ok(());
        }
        for n in [1usize, 5, 10, 31] {
            let m = evaluate_at(&ByItemId, &ds.test, n);
            prop_assert!((0.0..=1.0).contains(&m.hr));
            prop_assert!((0.0..=1.0).contains(&m.ndcg));
            prop_assert!(m.ndcg <= m.hr + 1e-12, "NDCG must be ≤ HR for one positive");
        }
        // At N ≥ pool size every positive is a hit.
        let m_all = evaluate_at(&ByItemId, &ds.test, 31);
        prop_assert!(m_all.hr > 0.99);
    }

    #[test]
    fn sampler_only_emits_valid_triples(g in arb_graph(), seed in any::<u64>()) {
        if g.interactions().is_empty() {
            return Ok(());
        }
        let sampler = TrainSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for t in sampler.batch(&mut rng, 64) {
            prop_assert!(g.items_of(t.user as usize).contains(&(t.pos as usize)));
            prop_assert!(!g.items_of(t.user as usize).contains(&(t.neg as usize)));
        }
    }

    #[test]
    fn quartiles_partition_and_order(values in proptest::collection::vec(0usize..100, 8..200)) {
        let groups = quartile_assignment(&values);
        prop_assert_eq!(groups.len(), values.len());
        // Sizes differ by at most NUM_GROUPS (integer division remainder).
        let mut counts = [0usize; NUM_GROUPS];
        for &q in &groups {
            prop_assert!(q < NUM_GROUPS);
            counts[q] += 1;
        }
        let (min, max) = (counts.iter().min().copied(), counts.iter().max().copied());
        prop_assert!(max.unwrap_or(0) - min.unwrap_or(0) <= NUM_GROUPS);
        // Ordering: any element in a lower group has value ≤ any element in
        // a strictly higher group.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if groups[i] + 1 < groups[j] {
                    prop_assert!(values[i] <= values[j]);
                }
            }
        }
    }
}
