//! Experiment harness: shared plumbing for the binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §3 for the
//! experiment index).
//!
//! Each binary prints a human-readable table to stdout *and* writes a
//! machine-readable CSV into `results/` so figures can be plotted from the
//! raw series.

#![warn(missing_docs)]

pub mod scale_tier;
pub mod zipf;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use dgnn_baselines::{all_models, BaselineConfig};
use dgnn_core::DgnnConfig;
use dgnn_data::{ciao_small, epinions_small, yelp_small, Dataset};
use dgnn_eval::{evaluate, RankingMetrics, Trainable};

/// Master seed for all experiments (data generation and training).
pub const SEED: u64 = 2023;

/// Training epochs used across the experiment grid. Chosen so the full
/// Table II grid (15 models × 3 datasets) runs in minutes; every model
/// gets the identical budget.
pub const GRID_EPOCHS: usize = 20;

/// The three scaled datasets, generated fresh (deterministically) per run.
pub fn datasets() -> Vec<Dataset> {
    vec![ciao_small(SEED), epinions_small(SEED), yelp_small(SEED)]
}

/// DGNN configuration used across the experiment grid (the paper's tuned
/// values; Section V-A4).
pub fn dgnn_config() -> DgnnConfig {
    DgnnConfig { epochs: GRID_EPOCHS, ..DgnnConfig::default() }
}

/// Baseline configuration matched to [`dgnn_config`]'s budget.
pub fn baseline_config() -> BaselineConfig {
    BaselineConfig { epochs: GRID_EPOCHS, ..BaselineConfig::default() }
}

/// The full model roster of Table II: the 14 baselines plus DGNN, in the
/// paper's column order.
pub fn roster() -> Vec<Box<dyn Trainable>> {
    let mut models = all_models(&baseline_config());
    models.push(Box::new(dgnn_core::Dgnn::new(dgnn_config())));
    models
}

/// Result of one (model, dataset) cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Metrics at N = 5, 10, 20 (aligned with [`dgnn_eval::TOP_NS`]).
    pub metrics: [RankingMetrics; 3],
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Wall-clock evaluation time.
    pub eval_time: Duration,
}

/// Trains `model` on `data` and evaluates at all cutoffs.
///
/// Timing runs through `dgnn_obs::timed`, so the wall-clock numbers in
/// `CellResult` and — when observability is enabled — the `train`/`eval`
/// spans of an exported trace are the same measurement.
pub fn run_cell(model: &mut dyn Trainable, data: &Dataset, seed: u64) -> CellResult {
    let ((), train_ns) = dgnn_obs::timed("train", || model.fit(data, seed));
    let (metrics, eval_ns) = dgnn_obs::timed("eval", || evaluate(model, &data.test));
    CellResult {
        model: model.name().to_string(),
        dataset: data.name.clone(),
        metrics,
        train_time: Duration::from_nanos(train_ns),
        eval_time: Duration::from_nanos(eval_ns),
    }
}

/// Index into [`CellResult::metrics`] for a cutoff in {5, 10, 20}.
pub fn cutoff_index(n: usize) -> usize {
    dgnn_eval::TOP_NS
        .iter()
        .position(|&x| x == n)
        // PANICS: the cutoff set is a compile-time constant; any other
        // value is a caller bug worth failing loudly on.
        .unwrap_or_else(|| panic!("unsupported cutoff {n}; use 5, 10, or 20"))
}

/// Writes raw rows to `results/<name>.csv` (creating the directory).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write csv row");
    }
    path
}

/// Renders one metrics table (rows = models, columns = datasets) in the
/// layout of the paper's Table II.
pub fn print_metric_table(title: &str, results: &[CellResult], n: usize) {
    let idx = cutoff_index(n);
    let mut datasets: Vec<String> = Vec::new();
    let mut models: Vec<String> = Vec::new();
    for r in results {
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
        if !models.contains(&r.model) {
            models.push(r.model.clone());
        }
    }
    println!("\n=== {title} (N = {n}) ===");
    print!("{:<10}", "Model");
    for d in &datasets {
        print!("  {d:>11}-HR  {d:>9}-NDCG");
    }
    println!();
    for m in &models {
        print!("{m:<10}");
        for d in &datasets {
            let cell = results
                .iter()
                .find(|r| &r.model == m && &r.dataset == d)
                // PANICS: the grid is fully populated by construction; a
                // hole means the harness itself is broken.
                .unwrap_or_else(|| panic!("missing cell {m}/{d}"));
            print!(
                "  {:>14.4}  {:>14.4}",
                cell.metrics[idx].hr, cell.metrics[idx].ndcg
            );
        }
        println!();
    }
}

/// Percentage improvement of `ours` over `other` (the paper's "Imp" rows).
pub fn improvement_pct(ours: f64, other: f64) -> f64 {
    if other <= 0.0 {
        0.0
    } else {
        (ours - other) / other * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_fifteen_models_ending_with_dgnn() {
        let r = roster();
        assert_eq!(r.len(), 15);
        assert_eq!(r.last().expect("non-empty").name(), "DGNN");
    }

    #[test]
    fn cutoff_indices() {
        assert_eq!(cutoff_index(5), 0);
        assert_eq!(cutoff_index(10), 1);
        assert_eq!(cutoff_index(20), 2);
    }

    #[test]
    #[should_panic(expected = "unsupported cutoff")]
    fn bad_cutoff_panics() {
        cutoff_index(7);
    }

    #[test]
    fn improvement_math() {
        assert!((improvement_pct(0.55, 0.50) - 10.0).abs() < 1e-9);
        assert_eq!(improvement_pct(0.5, 0.0), 0.0);
    }
}
