//! Crash flight recorder: a fixed-size, always-on ring buffer of recent
//! events, dumped as JSONL when something dies.
//!
//! Live metrics answer "how is the server doing"; the flight recorder
//! answers "what were the last ~[`FLIGHT_CAPACITY`] things it did before
//! the panic". It is deliberately always on — by the time you wish it had
//! been enabled, the crash already happened — so the steady-state cost
//! must be tiny: events are fixed-size `Copy` structs written into a
//! preallocated ring (overwrite-oldest) under one uncontended mutex, with
//! **zero steady-state allocation** (proven by the counting-allocator test
//! in `tests/tests/obs_disabled_alloc.rs`; the ring itself is one
//! allocation at first use).
//!
//! Producers tag events with a small per-thread id (assigned on a thread's
//! first record) so a dump shows which worker did what. The serving tier
//! records request/batch milestones and dumps the ring to a JSONL file
//! when a worker or batcher thread panics, and serves it on demand at
//! `GET /debug/flight`.

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::clock::now_ns;

/// Ring capacity: the dump shows at most this many trailing events.
pub const FLIGHT_CAPACITY: usize = 512;

/// What happened. The two payload words `a`/`b` are kind-specific (the
/// producer documents them); keeping them untyped keeps the event `Copy`
/// and the ring allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlightKind {
    /// A request was parsed and entered the system. `a` = request id.
    RequestStart,
    /// A request was answered. `a` = request id, `b` = HTTP status.
    RequestDone,
    /// A batch began engine execution. `a` = batch id, `b` = batch size.
    BatchStart,
    /// A batch finished. `a` = batch id, `b` = engine time in µs.
    BatchDone,
    /// A thread is unwinding. `a`/`b` producer-defined.
    Panic,
    /// Free-form marker for tests and tooling.
    Mark,
}

impl FlightKind {
    /// Stable wire name used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::RequestStart => "request_start",
            FlightKind::RequestDone => "request_done",
            FlightKind::BatchStart => "batch_start",
            FlightKind::BatchDone => "batch_done",
            FlightKind::Panic => "panic",
            FlightKind::Mark => "mark",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// [`now_ns`] timestamp.
    pub t_ns: u64,
    /// Small per-thread tag (first-record order, starting at 1).
    pub thread: u32,
    /// Event kind.
    pub kind: FlightKind,
    /// Kind-specific payload word.
    pub a: u64,
    /// Kind-specific payload word.
    pub b: u64,
}

struct Ring {
    /// Preallocated to [`FLIGHT_CAPACITY`] at first use; pushes after the
    /// fill never allocate.
    buf: Vec<FlightEvent>,
    /// Next overwrite position once full.
    head: usize,
    /// Total events ever recorded (dumps report how many were dropped).
    total: u64,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring { buf: Vec::with_capacity(FLIGHT_CAPACITY), head: 0, total: 0 })
    })
}

fn lock_ring() -> std::sync::MutexGuard<'static, Ring> {
    // Poison only means another thread panicked while holding the lock —
    // exactly the situation a flight recorder exists for; the ring is
    // still structurally valid.
    ring().lock().unwrap_or_else(|p| p.into_inner())
}

static NEXT_THREAD_TAG: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// 0 = unassigned. `const`-initialized so the read never allocates.
    static THREAD_TAG: Cell<u32> = const { Cell::new(0) };
}

fn thread_tag() -> u32 {
    THREAD_TAG.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Records one event into the ring (always on — see the module docs).
pub fn flight_record(kind: FlightKind, a: u64, b: u64) {
    let e = FlightEvent { t_ns: now_ns(), thread: thread_tag(), kind, a, b };
    let mut r = lock_ring();
    r.total += 1;
    if r.buf.len() < FLIGHT_CAPACITY {
        r.buf.push(e);
    } else {
        let head = r.head;
        r.buf[head] = e;
        r.head = (head + 1) % FLIGHT_CAPACITY;
    }
}

/// The buffered events, oldest first.
pub fn flight_snapshot() -> Vec<FlightEvent> {
    let r = lock_ring();
    let mut out = Vec::with_capacity(r.buf.len());
    out.extend_from_slice(&r.buf[r.head..]);
    out.extend_from_slice(&r.buf[..r.head]);
    out
}

/// Total events ever recorded (≥ the buffered count once the ring wraps).
pub fn flight_total() -> u64 {
    lock_ring().total
}

/// Empties the ring (tests and benchmark scoping). The preallocated
/// capacity is retained.
pub fn flight_clear() {
    let mut r = lock_ring();
    r.buf.clear();
    r.head = 0;
    r.total = 0;
}

/// Serializes events as JSONL, one object per line:
/// `{"t_ns":1,"thread":2,"kind":"request_done","a":7,"b":200}`.
pub fn flight_to_jsonl(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"t_ns\":{},\"thread\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            e.t_ns,
            e.thread,
            e.kind.as_str(),
            e.a,
            e.b,
        );
    }
    out
}

/// [`flight_snapshot`] + [`flight_to_jsonl`]: the ring as a JSONL dump,
/// oldest event first.
pub fn flight_dump_jsonl() -> String {
    flight_to_jsonl(&flight_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring is process-global; tests in this module serialize so one
    /// test's `flight_clear` cannot race another's snapshot.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn records_in_order_and_overwrites_oldest() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        flight_clear();
        for i in 0..(FLIGHT_CAPACITY as u64 + 10) {
            flight_record(FlightKind::Mark, i, 0);
        }
        let events = flight_snapshot();
        assert_eq!(events.len(), FLIGHT_CAPACITY);
        assert_eq!(flight_total(), FLIGHT_CAPACITY as u64 + 10);
        // Oldest surviving event is #10; the newest is the last recorded.
        assert_eq!(events[0].a, 10);
        assert_eq!(events.last().map(|e| e.a), Some(FLIGHT_CAPACITY as u64 + 9));
        assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns), "dump must be oldest-first");
        flight_clear();
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let line = flight_to_jsonl(&[FlightEvent {
            t_ns: 42,
            thread: 3,
            kind: FlightKind::BatchDone,
            a: 9,
            b: 1234,
        }]);
        assert_eq!(line, "{\"t_ns\":42,\"thread\":3,\"kind\":\"batch_done\",\"a\":9,\"b\":1234}\n");
    }

    #[test]
    fn threads_get_distinct_tags() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        flight_clear();
        flight_record(FlightKind::Mark, 1, 0);
        // PAR: cross-thread tagging probe, not kernel work.
        std::thread::spawn(|| flight_record(FlightKind::Mark, 2, 0))
            .join()
            .expect("probe thread must not panic");
        let events = flight_snapshot();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].thread, events[1].thread);
        assert!(events.iter().all(|e| e.thread > 0));
        flight_clear();
    }
}
