//! Quickstart: build a heterogeneous social-recommendation dataset, train
//! DGNN, and produce top-5 recommendations for a user — the minimal
//! end-to-end tour of the public API.
//!
//! ```text
//! cargo run --release -p dgnn-examples --bin quickstart
//! ```

use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::tiny;
use dgnn_eval::{Recommender, Trainable};
use dgnn_examples::report;

fn main() {
    // 1. A dataset: users, items, social ties, item categories, and a
    //    leave-one-out test split with 100 sampled negatives per user.
    //    (`tiny` is a synthetic world; see `dgnn_data::io` to load your
    //    own dumps.)
    let data = tiny(42);
    println!(
        "dataset `{}`: {} users, {} items, {} relations, {} train interactions, {} test users",
        data.name,
        data.graph.num_users(),
        data.graph.num_items(),
        data.graph.num_relations(),
        data.num_train(),
        data.num_test()
    );

    // 2. Configure and train DGNN. The defaults are the paper's tuned
    //    hyperparameters (d=16, L=2, |M|=8, Adam @ 0.01).
    let cfg = DgnnConfig { epochs: 15, batch_size: 512, ..DgnnConfig::default() };
    let mut model = Dgnn::new(cfg);
    model.fit(&data, 7);
    println!(
        "trained: final BPR loss {:.4}",
        model.loss_history.last().copied().unwrap_or(f32::NAN)
    );

    // 3. Evaluate with the paper's protocol.
    report(&model, &data.test, 10);

    // 4. Recommend: score every unseen item for one user, take the top 5.
    let user = 0usize;
    let seen = data.graph.items_of(user);
    let candidates: Vec<usize> =
        (0..data.graph.num_items()).filter(|v| !seen.contains(v)).collect();
    let scores = model.score(user, &candidates);
    let mut ranked: Vec<(usize, f32)> =
        candidates.into_iter().zip(scores).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
    println!("\ntop-5 recommendations for user {user}:");
    for (item, score) in ranked.iter().take(5) {
        let cats = data.graph.ir().row_cols(*item);
        println!("  item {item:>4}  score {score:+.4}  categories {cats:?}");
    }
}
