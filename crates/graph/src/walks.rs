//! Meta-path random walks (the HERec baseline's corpus generator).

use rand::Rng;

use crate::hetero::HeteroGraph;

/// One hop of a meta-path schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaPathStep {
    /// user → item via an interaction.
    UserToItem,
    /// item → user via an interaction.
    ItemToUser,
    /// user → user via a social tie.
    UserToUser,
    /// item → relation node.
    ItemToRel,
    /// relation node → item.
    RelToItem,
}

impl HeteroGraph {
    /// Walks `schema` repeatedly (cycling) from `start` for up to `len`
    /// hops, recording *user* positions as `(NodeKind::User index)` style
    /// global ids of the [`crate::UnifiedView`]. Returns the visited
    /// global-id sequence including the start.
    ///
    /// The walk stops early if a hop has no outgoing edge — exactly what a
    /// DeepWalk-style corpus generator does on sparse graphs.
    pub fn meta_path_walk(
        &self,
        rng: &mut impl Rng,
        start_global: usize,
        schema: &[MetaPathStep],
        len: usize,
    ) -> Vec<usize> {
        assert!(!schema.is_empty(), "meta_path_walk: empty schema");
        let view = crate::UnifiedView::new(self);
        let mut seq = Vec::with_capacity(len + 1);
        seq.push(start_global);
        let mut cur = start_global;
        for hop in 0..len {
            let step = schema[hop % schema.len()];
            let (kind, local) = view.classify(cur);
            let next = match (step, kind) {
                (MetaPathStep::UserToItem, crate::NodeType::User) => {
                    pick(rng, self.items_of(local)).map(|v| view.item(v))
                }
                (MetaPathStep::ItemToUser, crate::NodeType::Item) => {
                    pick(rng, self.users_of(local)).map(|u| view.user(u))
                }
                (MetaPathStep::UserToUser, crate::NodeType::User) => {
                    pick(rng, self.friends_of(local)).map(|u| view.user(u))
                }
                (MetaPathStep::ItemToRel, crate::NodeType::Item) => {
                    pick(rng, self.ir().row_cols(local)).map(|r| view.relation(r))
                }
                (MetaPathStep::RelToItem, crate::NodeType::Relation) => {
                    pick(rng, self.ri().row_cols(local)).map(|v| view.item(v))
                }
                // PANICS: a schema/node-kind mismatch means the meta-path
                // definition itself is malformed — not recoverable at runtime.
                _ => panic!(
                    "meta_path_walk: schema step {step:?} incompatible with node kind {kind:?}"
                ),
            };
            match next {
                Some(n) => {
                    seq.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        seq
    }
}

fn pick(rng: &mut impl Rng, options: &[usize]) -> Option<usize> {
    if options.is_empty() {
        None
    } else {
        Some(options[rng.gen_range(0..options.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeteroGraphBuilder, UnifiedView};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new(3, 3, 1);
        b.interaction(0, 0, 0)
            .interaction(1, 0, 0)
            .interaction(1, 1, 0)
            .interaction(2, 2, 0)
            .social_tie(0, 1)
            .item_relation(0, 0)
            .item_relation(1, 0);
        b.build()
    }

    #[test]
    fn uvu_walk_alternates_kinds() {
        let g = toy();
        let view = UnifiedView::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let schema = [MetaPathStep::UserToItem, MetaPathStep::ItemToUser];
        let seq = g.meta_path_walk(&mut rng, view.user(0), &schema, 6);
        assert!(seq.len() >= 2, "walk should make progress: {seq:?}");
        for (i, &node) in seq.iter().enumerate() {
            let (kind, _) = view.classify(node);
            if i % 2 == 0 {
                assert_eq!(kind, crate::NodeType::User, "even positions are users");
            } else {
                assert_eq!(kind, crate::NodeType::Item, "odd positions are items");
            }
        }
    }

    #[test]
    fn walk_stops_at_dead_end() {
        let g = toy();
        let view = UnifiedView::new(&g);
        let mut rng = StdRng::seed_from_u64(0);
        // User 2 has no friends: the UU walk ends immediately.
        let seq = g.meta_path_walk(&mut rng, view.user(2), &[MetaPathStep::UserToUser], 5);
        assert_eq!(seq, vec![view.user(2)]);
    }

    #[test]
    fn walk_is_seed_deterministic() {
        let g = toy();
        let view = UnifiedView::new(&g);
        let schema = [MetaPathStep::UserToItem, MetaPathStep::ItemToUser];
        let a = g.meta_path_walk(&mut StdRng::seed_from_u64(9), view.user(1), &schema, 8);
        let b = g.meta_path_walk(&mut StdRng::seed_from_u64(9), view.user(1), &schema, 8);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_schema_panics() {
        let g = toy();
        let view = UnifiedView::new(&g);
        let mut rng = StdRng::seed_from_u64(0);
        // Starting at a user but asking for an item step.
        g.meta_path_walk(&mut rng, view.user(0), &[MetaPathStep::ItemToUser], 3);
    }
}
