//! Social cold-start: the scenario from the paper's introduction — users
//! with almost no interaction history, but a social circle.
//!
//! We compare DGNN against a context-blind graph CF baseline (GCCF) on the
//! sparsest user quartile, where the social recalibration τ and the
//! social memory bank are the only extra signal available.
//!
//! ```text
//! cargo run --release -p dgnn-examples --bin social_cold_start
//! ```

use dgnn_baselines::{BaselineConfig, Gccf};
use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::tiny;
use dgnn_eval::groups::evaluate_by_group;
use dgnn_eval::Trainable;

fn main() {
    let data = tiny(42);
    let counts = data.train_counts_per_user();

    let mut dgnn = Dgnn::new(DgnnConfig { epochs: 15, batch_size: 512, ..DgnnConfig::default() });
    dgnn.fit(&data, 7);
    let mut gccf =
        Gccf::new(BaselineConfig { epochs: 15, batch_size: 512, ..BaselineConfig::default() });
    gccf.fit(&data, 7);

    println!("HR@10 per interaction-sparsity quartile (q1 = coldest users):\n");
    let dgnn_groups = evaluate_by_group(&dgnn, &data.test, &counts, 10);
    let gccf_groups = evaluate_by_group(&gccf, &data.test, &counts, 10);
    println!("{:<8} {:>10} {:>10} {:>10} {:>10}", "Model", "q1", "q2", "q3", "q4");
    let fmt = |r: &dgnn_eval::groups::GroupReport| {
        format!(
            "{:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            r.metrics[0].hr, r.metrics[1].hr, r.metrics[2].hr, r.metrics[3].hr
        )
    };
    println!("{:<8} {}", "GCCF", fmt(&gccf_groups));
    println!("{:<8} {}", "DGNN", fmt(&dgnn_groups));
    println!(
        "\nquartile sizes: {:?}, avg interactions: {:?}",
        dgnn_groups.test_users,
        dgnn_groups.mean_value.map(|v| (v * 10.0).round() / 10.0)
    );

    // A concrete cold user: fewest training interactions but ≥1 friend.
    let cold = (0..data.graph.num_users())
        .filter(|&u| !data.graph.friends_of(u).is_empty())
        .min_by_key(|&u| counts[u])
        .expect("some user has friends");
    println!(
        "\ncold user {cold}: {} interactions, {} friends — friends' items drive the score",
        counts[cold],
        data.graph.friends_of(cold).len()
    );
}
