//! First-order optimizers over a [`ParamSet`].

use crate::params::ParamSet;

/// A gradient-descent update rule.
pub trait Optimizer {
    /// Applies one update using the gradients accumulated in `params`.
    fn step(&mut self, params: &mut ParamSet);
}

/// Plain SGD with L2 weight decay (`grad ← grad + wd·θ`), matching the
/// `λ‖Θ‖²` term of the paper's Eq. 11.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight-decay coefficient λ.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet) {
        let (lr, wd) = (self.lr, self.weight_decay);
        params.update_each(|value, grad, _m, _v| {
            for (v, &g) in value.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *v -= lr * (g + wd * *v);
            }
        });
    }
}

/// Adam (Kingma & Ba) with L2 weight decay folded into the gradient — the
/// optimizer the paper trains DGNN with.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (the paper uses 0.01).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical fuzz in the denominator.
    pub eps: f32,
    /// L2 weight-decay coefficient λ (the paper tunes over
    /// {1e-3, 1e-4, 1e-5}).
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with standard β/ε defaults.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, t: 0 }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet) {
        self.t += 1;
        let t = self.t as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        params.update_each(|value, grad, m, v| {
            let values = value.as_mut_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            for (((val, &g0), m_i), v_i) in
                values.iter_mut().zip(grad.as_slice()).zip(ms).zip(vs)
            {
                let g = g0 + wd * *val;
                *m_i = b1 * *m_i + (1.0 - b1) * g;
                *v_i = b2 * *v_i + (1.0 - b2) * g * g;
                let m_hat = *m_i / bias1;
                let v_hat = *v_i / bias2;
                *val -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Tape};
    use dgnn_tensor::Matrix;

    /// Minimizes f(x) = (x − 3)² and checks convergence to 3.
    fn converges_to_three(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut params = ParamSet::new();
        let x = params.add("x", Matrix::full(1, 1, 0.0));
        for _ in 0..steps {
            let mut t = Tape::new();
            let xv = t.param(&params, x);
            let c = t.constant(Matrix::full(1, 1, 3.0));
            let e = t.sub(xv, c);
            let sq = t.mul(e, e);
            let loss = t.sum_all(sq);
            params.zero_grads();
            t.backward_into(loss, &mut params);
            opt.step(&mut params);
        }
        params.value(x)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = converges_to_three(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 0.0);
        let x = converges_to_three(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "got {x}");
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        let mut no_wd = Sgd::new(0.1, 0.0);
        let mut with_wd = Sgd::new(0.1, 0.5);
        let x0 = converges_to_three(&mut no_wd, 200);
        let x1 = converges_to_three(&mut with_wd, 200);
        assert!(x1 < x0, "weight decay should pull the optimum toward zero");
        assert!(x1 > 1.0, "but not to zero");
    }

    #[test]
    fn adam_counts_steps() {
        let mut opt = Adam::new(0.01, 0.0);
        let mut params = ParamSet::new();
        params.add("p", Matrix::zeros(1, 1));
        opt.step(&mut params);
        opt.step(&mut params);
        assert_eq!(opt.steps(), 2);
    }
}
