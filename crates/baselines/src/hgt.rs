//! HGT (Hu et al., WWW 2020): heterogeneous graph transformer.
//!
//! The distinguishing mechanism: per-edge-family key/query/value
//! projections with multi-head dot-product attention, softmax-normalized
//! per target node, plus node-type output projections and residuals. This
//! is the transformer-style comparator whose per-edge Q·K work makes it the
//! slowest model in the paper's Table IV — a property this implementation
//! deliberately retains.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_graph::{EdgeType, UnifiedView};
use dgnn_tensor::{Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, BaselineConfig, BatchIdx, Scorer};

/// Attention heads (dim must be divisible by this).
const NUM_HEADS: usize = 2;

struct FamilyEdges {
    seg: Rc<Vec<usize>>,
    src: Rc<Vec<usize>>,
    dst: Rc<Vec<usize>>,
}

struct FamilyParams {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
}

struct State {
    emb: ParamId,
    families: Vec<(FamilyEdges, Vec<FamilyParams>)>, // per layer params
    /// Output projection per layer.
    wo: Vec<ParamId>,
    user_rows: Rc<Vec<usize>>,
    item_rows: Rc<Vec<usize>>,
    num_nodes: usize,
}

fn forward(st: &State, layers: usize, dim: usize, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let head_dim = dim / NUM_HEADS;
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut h = tape.param(params, st.emb);
    for layer in 0..layers.max(1) {
        let mut agg: Option<Var> = None;
        for (edges, layer_params) in &st.families {
            if edges.src.is_empty() {
                continue;
            }
            let fp = &layer_params[layer];
            let wq = tape.param(params, fp.wq);
            let wk = tape.param(params, fp.wk);
            let wv = tape.param(params, fp.wv);
            let q = tape.matmul(h, wq);
            let k = tape.matmul(h, wk);
            let v = tape.matmul(h, wv);
            let qe = tape.gather(q, Rc::clone(&edges.dst));
            let ke = tape.gather(k, Rc::clone(&edges.src));
            let ve = tape.gather(v, Rc::clone(&edges.src));
            // Multi-head dot-product attention, head by head.
            let mut head_outs = Vec::with_capacity(NUM_HEADS);
            for head in 0..NUM_HEADS {
                let (lo, hi) = (head * head_dim, (head + 1) * head_dim);
                let qh = tape.slice_cols(qe, lo, hi);
                let kh = tape.slice_cols(ke, lo, hi);
                let vh = tape.slice_cols(ve, lo, hi);
                let logits = tape.row_dots(qh, kh);
                let logits = tape.scale(logits, scale);
                let alpha = tape.segment_softmax(logits, Rc::clone(&edges.seg));
                head_outs.push(tape.segment_weighted_sum(alpha, vh, Rc::clone(&edges.seg)));
            }
            let fam_out = tape.concat_cols(&head_outs);
            agg = Some(match agg {
                Some(a) => tape.add(a, fam_out),
                None => fam_out,
            });
        }
        let agg = agg.unwrap_or_else(|| tape.constant(Matrix::zeros(st.num_nodes, dim)));
        let wo = tape.param(params, st.wo[layer]);
        let projected = tape.matmul(agg, wo);
        let activated = tape.leaky_relu(projected, 0.2);
        // Residual (HGT's target-specific aggregation keeps the old state).
        h = tape.add(activated, h);
    }
    let out = tape.l2_normalize_rows(h, 1e-9);
    let users = tape.gather(out, Rc::clone(&st.user_rows));
    let items = tape.gather(out, Rc::clone(&st.item_rows));
    (users, items)
}

/// The HGT recommender.
pub struct Hgt {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
    state: Option<(State, ParamSet)>,
}

impl Hgt {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        assert_eq!(cfg.dim % NUM_HEADS, 0, "HGT: dim must be divisible by {NUM_HEADS}");
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new(), state: None }
    }

    fn build_state(&self, data: &Dataset, seed: u64) -> (State, ParamSet) {
        let g = &data.graph;
        let view = UnifiedView::new(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let d = self.cfg.dim;
        let emb = params.add("emb", Init::Uniform(0.1).build(view.num_nodes(), d, &mut rng));
        let mut families = Vec::new();
        for ty in EdgeType::ALL {
            let edges = global_family_edges(g, &view, ty);
            let per_layer = (0..self.cfg.layers.max(1))
                .map(|l| FamilyParams {
                    wq: params.add(format!("wq/{ty:?}/{l}"), Init::XavierUniform.build(d, d, &mut rng)),
                    wk: params.add(format!("wk/{ty:?}/{l}"), Init::XavierUniform.build(d, d, &mut rng)),
                    wv: params.add(format!("wv/{ty:?}/{l}"), Init::XavierUniform.build(d, d, &mut rng)),
                })
                .collect();
            families.push((edges, per_layer));
        }
        let wo = (0..self.cfg.layers.max(1))
            .map(|l| params.add(format!("wo/{l}"), Init::XavierUniform.build(d, d, &mut rng)))
            .collect();
        let state = State {
            emb,
            families,
            wo,
            user_rows: Rc::new((0..g.num_users()).map(|u| view.user(u)).collect()),
            item_rows: Rc::new((0..g.num_items()).map(|v| view.item(v)).collect()),
            num_nodes: view.num_nodes(),
        };
        (state, params)
    }

    /// Trains with a per-epoch hook (drives the paper's Figure 8).
    pub fn fit_epochs(
        &mut self,
        data: &Dataset,
        seed: u64,
        mut on_epoch: impl FnMut(&Self, usize, f32),
    ) {
        let (st, mut params) = self.build_state(data, seed);
        let sampler = TrainSampler::new(&data.graph);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let (layers, dim) = (self.cfg.layers, self.cfg.dim);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E11E5);
        let batches = sampler.num_positives().div_ceil(self.cfg.batch_size).max(1);
        self.loss_history.clear();
        for epoch in 0..self.cfg.epochs {
            let _epoch_span = dgnn_obs::span("epoch");
            let mut epoch_loss = 0.0;
            for _ in 0..batches {
                let _batch_span = dgnn_obs::span("batch");
                let triples = sampler.batch(&mut rng, self.cfg.batch_size);
                let mut tape = Tape::new();
                let loss = {
                    let _fwd = dgnn_obs::span("forward");
                    let (users, items) = forward(&st, layers, dim, &mut tape, &params);
                    bpr_from_embeddings(&mut tape, users, items, &BatchIdx::new(&triples))
                };
                params.zero_grads();
                {
                    let _bwd = dgnn_obs::span("backward");
                    epoch_loss += tape.backward_into(loss, &mut params);
                }
                let _opt_span = dgnn_obs::span("optimizer");
                let pre = params.clip_grad_norm(50.0);
                dgnn_obs::hist_record("grad_norm/preclip", f64::from(pre));
                if pre.is_finite() {
                    dgnn_obs::hist_record("grad_norm/postclip", f64::from(pre.min(50.0)));
                }
                use dgnn_autograd::Optimizer;
                adam.step(&mut params);
            }
            let mean = epoch_loss / batches as f32;
            dgnn_obs::hist_record("epoch_mean_loss", f64::from(mean));
            self.loss_history.push(mean);
            let mut tape = Tape::new();
            let (users, items) = forward(&st, layers, dim, &mut tape, &params);
            self.scorer =
                Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
            on_epoch(self, epoch, mean);
        }
        if self.cfg.epochs == 0 {
            let mut tape = Tape::new();
            let (users, items) = forward(&st, layers, dim, &mut tape, &params);
            self.scorer =
                Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
        }
        self.state = Some((st, params));
    }
}

/// Groups a family's edges by destination over global ids.
fn global_family_edges(
    g: &dgnn_graph::HeteroGraph,
    view: &UnifiedView,
    ty: EdgeType,
) -> FamilyEdges {
    let map = |local: usize, is_src: bool| -> usize {
        match (ty, is_src) {
            (EdgeType::SocialToUser, _) => view.user(local),
            (EdgeType::ItemToUser, true) | (EdgeType::ItemToRel, true) => view.item(local),
            (EdgeType::ItemToUser, false) => view.user(local),
            (EdgeType::UserToItem, true) => view.user(local),
            (EdgeType::UserToItem, false) | (EdgeType::RelToItem, false) => view.item(local),
            (EdgeType::RelToItem, true) => view.relation(local),
            (EdgeType::ItemToRel, false) => view.relation(local),
        }
    };
    let edges = g.typed_edges(ty);
    let mut src = Vec::with_capacity(edges.len());
    let mut dst = Vec::with_capacity(edges.len());
    for &(d_local, s_local) in &edges {
        dst.push(map(d_local, false));
        src.push(map(s_local, true));
    }
    let num_nodes = view.num_nodes();
    let mut seg = Vec::with_capacity(num_nodes + 1);
    let mut e = 0usize;
    seg.push(0);
    for node in 0..num_nodes {
        while e < dst.len() && dst[e] == node {
            e += 1;
        }
        seg.push(e);
    }
    FamilyEdges { seg: Rc::new(seg), src: Rc::new(src), dst: Rc::new(dst) }
}

impl Recommender for Hgt {
    fn name(&self) -> &str {
        "HGT"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("HGT", user, items)
    }
}

impl Trainable for Hgt {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        self.fit_epochs(data, seed, |_, _, _| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn hgt_beats_random() {
        assert_beats_random(&mut Hgt::new(quick()));
    }

    #[test]
    fn fit_epochs_hook_runs_each_epoch() {
        let data = dgnn_data::tiny(4);
        let mut m = Hgt::new(BaselineConfig { epochs: 3, ..quick() });
        let mut count = 0;
        m.fit_epochs(&data, 1, |model, _, loss| {
            count += 1;
            assert!(loss.is_finite());
            // Scoreable inside the hook.
            let _ = model.score(0, &[0, 1]);
        });
        assert_eq!(count, 3);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn odd_dim_rejected() {
        Hgt::new(BaselineConfig { dim: 7, ..quick() });
    }
}
