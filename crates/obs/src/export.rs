//! Serialization of observability data: JSONL event logs, Chrome
//! trace-event files, the shared metrics-snapshot JSON, and Prometheus
//! text exposition (format 0.0.4) for the serving tier's `/metrics`.
//!
//! Field names in all formats are a **stable schema** — the golden-schema
//! integration tests (`tests/tests/observability.rs`,
//! `tests/tests/telemetry.rs`) pin them, and downstream tooling
//! (`memplan --check`, `profile --check`, `loadgen --check`, Perfetto,
//! Prometheus scrapers) parses them. Change them only with the tests and
//! the check parsers in the same commit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::Snapshot;
use crate::span::{SpanEvent, SpanPhase};
use crate::streamhist::StreamHist;

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number: integral values print without a
/// fractional part (so byte counts stay grep-ably integral), non-finite
/// values — which JSON cannot carry — print as `null`.
pub fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One span event per line:
/// `{"name":"batch","ph":"B","t_ns":12345,"depth":1}`.
pub fn events_to_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"name\":{},\"ph\":{},\"t_ns\":{},\"depth\":{}}}",
            json_string(&e.name),
            json_string(e.phase.chrome_ph()),
            e.t_ns,
            e.depth,
        );
    }
    out
}

/// Chrome trace-event JSON (the `chrome://tracing` / Perfetto format).
///
/// `threads` pairs a display name with that thread's event stream; each
/// gets its own `tid` plus a `thread_name` metadata record so Perfetto
/// shows labeled tracks. Timestamps are microseconds (the format's unit),
/// carried as fractional values so nanosecond precision survives.
pub fn chrome_trace(threads: &[(&str, &[SpanEvent])]) -> String {
    let mut items = Vec::new();
    for (tid, (name, events)) in threads.iter().enumerate() {
        items.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
            tid + 1,
            json_string(name),
        ));
        for e in *events {
            items.push(format!(
                "{{\"name\":{},\"cat\":\"dgnn\",\"ph\":{},\"ts\":{},\"pid\":1,\"tid\":{}}}",
                json_string(&e.name),
                json_string(e.phase.chrome_ph()),
                json_number(e.t_ns as f64 / 1000.0),
                tid + 1,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", items.join(","))
}

/// Serializes a [`Snapshot`] — the one code path behind both
/// `analysis-baseline.json` (via `memplan`) and `BENCH_profile.json`
/// (via `profile`).
///
/// `indent` is the number of leading spaces on each emitted line, letting
/// callers nest a snapshot inside a larger document.
pub fn snapshot_to_json(s: &Snapshot, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let field = |out: &mut String, name: &str, body: String, last: bool| {
        let _ = write!(out, "{pad}  \"{name}\": {{{body}}}{}\n", if last { "" } else { "," });
    };
    let mut out = format!("{pad}{{\n");
    let counters = s
        .counters
        .iter()
        .map(|(k, v)| format!("{}: {v}", json_string(k)))
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "counters", counters, false);
    let gauges = s
        .gauges
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), json_number(*v)))
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "gauges", gauges, false);
    let hists = s
        .histograms
        .iter()
        .map(|(k, h)| {
            format!(
                "{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                json_string(k),
                h.count,
                json_number(h.sum),
                json_number(h.min),
                json_number(h.max),
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "histograms", hists, false);
    let ops = s
        .ops
        .iter()
        .map(|(k, o)| {
            format!(
                "{}: {{\"forward\": {{\"calls\": {}, \"total_ns\": {}}}, \
                 \"backward\": {{\"calls\": {}, \"total_ns\": {}}}}}",
                json_string(k),
                o.forward.calls,
                o.forward.total_ns,
                o.backward.calls,
                o.backward.total_ns,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "ops", ops, true);
    let _ = write!(out, "{pad}}}");
    out
}

/// Sums span durations by name: `name -> (span_count, total_ns)`.
///
/// Balanced begin/end pairs are matched by a per-name stack, so nested and
/// repeated spans of the same name both aggregate correctly.
pub fn span_totals(events: &[SpanEvent]) -> BTreeMap<String, (u64, u64)> {
    let mut open: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for e in events {
        match e.phase {
            SpanPhase::Begin => open.entry(&e.name).or_default().push(e.t_ns),
            SpanPhase::End => {
                if let Some(t0) = open.get_mut(e.name.as_ref()).and_then(Vec::pop) {
                    let entry = totals.entry(e.name.to_string()).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += e.t_ns.saturating_sub(t0);
                }
            }
        }
    }
    totals
}

/// Maps a registry metric name onto the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): `/` and every other invalid character
/// become `_`, and a leading digit gains a `_` prefix. Empty input becomes
/// a single `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a Prometheus label value: backslash, double quote, and newline
/// per the text-exposition rules. (The repo emits only the `le` label,
/// whose values never need escaping — the escaper exists so the format
/// stays correct if labels ever carry free text.)
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value the way Prometheus text exposition expects:
/// `+Inf` / `-Inf` / `NaN` for non-finite values, otherwise the JSON
/// number form (integral values without a fractional part).
fn prom_number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        json_number(v)
    }
}

/// Renders a snapshot as Prometheus text exposition format 0.0.4.
///
/// * counters → `# TYPE <name> counter` + one sample;
/// * gauges → `# TYPE <name> gauge` + one sample;
/// * histograms with a matching [`StreamHist`] in `stream_hists` → full
///   `# TYPE <name> histogram` series: cumulative `_bucket{le="..."}`
///   samples over the non-empty buckets, the mandatory `le="+Inf"` bucket,
///   then `_sum` and `_count`;
/// * histograms with only a [`crate::HistStat`] aggregate → `# TYPE <name>
///   summary` with `_sum` and `_count` (no quantile series to offer).
///
/// Names pass through [`sanitize_metric_name`]; a trailing newline is
/// always present (scrapers require the final line be terminated).
pub fn prometheus_text(s: &Snapshot, stream_hists: &BTreeMap<String, StreamHist>) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &s.gauges {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {}", prom_number(*v));
    }
    for (name, h) in &s.histograms {
        let n = sanitize_metric_name(name);
        match stream_hists.get(name) {
            Some(sh) => {
                let _ = writeln!(out, "# TYPE {n} histogram");
                for (hi, cum) in sh.cumulative_buckets() {
                    let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", prom_number(hi));
                }
                let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", sh.count());
                let _ = writeln!(out, "{n}_sum {}", prom_number(h.sum));
                let _ = writeln!(out, "{n}_count {}", h.count);
            }
            None => {
                let _ = writeln!(out, "# TYPE {n} summary");
                let _ = writeln!(out, "{n}_sum {}", prom_number(h.sum));
                let _ = writeln!(out, "{n}_count {}", h.count);
            }
        }
    }
    out
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (with any `_bucket`/`_sum`/`_count` suffix intact).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromSample {
    /// Value of the named label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_prom_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        s => s.parse::<f64>().ok(),
    }
}

/// Parses Prometheus text exposition back into samples — the validator the
/// load harness and CI run against a live `/metrics` scrape, and the
/// round-trip oracle for [`prometheus_text`]. Comment (`#`) and blank
/// lines are skipped; any malformed sample line is an error naming the
/// 1-based line number. Optional trailing timestamps are accepted and
/// ignored.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw}", lineno + 1);
        let (name, rest) = match line.find(|c: char| c == '{' || c.is_ascii_whitespace()) {
            Some(i) => (&line[..i], line[i..].trim_start()),
            None => return Err(err("sample has no value")),
        };
        if !valid_metric_name(name) {
            return Err(err("invalid metric name"));
        }
        let (labels, value_part) = if let Some(body) = rest.strip_prefix('{') {
            let close = body.find('}').ok_or_else(|| err("unterminated label set"))?;
            (parse_labels(&body[..close]).map_err(|e| err(&e))?, body[close + 1..].trim_start())
        } else {
            (Vec::new(), rest)
        };
        let mut parts = value_part.split_ascii_whitespace();
        let value = parts
            .next()
            .and_then(parse_prom_value)
            .ok_or_else(|| err("unparseable sample value"))?;
        if parts.next().is_some_and(|ts| ts.parse::<i64>().is_err()) {
            return Err(err("unparseable timestamp"));
        }
        out.push(PromSample { name: name.to_string(), labels, value });
    }
    Ok(out)
}

/// Parses `k1="v1",k2="v2"` (label-set interior, escapes per
/// [`escape_label_value`]).
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while chars.peek().is_some_and(|c| c.is_ascii_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        while let Some(c) = chars.next_if(|c| *c != '=') {
            key.push(c);
        }
        let key = key.trim().to_string();
        if !valid_metric_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err("label value must be quoted".to_string());
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err("bad escape in label value".to_string()),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".to_string()),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistStat;
    use crate::ops::{OpStat, PhaseStat};
    use std::borrow::Cow;

    fn ev(name: &'static str, phase: SpanPhase, t_ns: u64, depth: u32) -> SpanEvent {
        SpanEvent { name: Cow::Borrowed(name), phase, t_ns, depth }
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let line = events_to_jsonl(&[ev("batch", SpanPhase::Begin, 42, 1)]);
        assert_eq!(line, "{\"name\":\"batch\",\"ph\":\"B\",\"t_ns\":42,\"depth\":1}\n");
    }

    #[test]
    fn chrome_trace_has_required_fields() {
        let events =
            [ev("epoch", SpanPhase::Begin, 1000, 0), ev("epoch", SpanPhase::End, 3500, 0)];
        let t = chrome_trace(&[("DGNN", &events)]);
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.contains("\"ph\":\"B\""));
        assert!(t.contains("\"ph\":\"E\""));
        assert!(t.contains("\"ts\":1"));
        assert!(t.contains("\"ts\":3.5"));
        assert!(t.contains("\"thread_name\""));
        assert!(t.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(3.25), "3.25");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn snapshot_serializes_all_sections() {
        let mut s = Snapshot::default();
        s.counters.insert("grad_nonfinite".into(), 2);
        s.gauges.insert("memplan/DGNN/peak_live_bytes".into(), 4096.0);
        s.histograms
            .insert("epoch_mean_loss".into(), HistStat { count: 2, sum: 1.5, min: 0.5, max: 1.0 });
        s.ops.insert(
            "matmul".into(),
            OpStat {
                forward: PhaseStat { calls: 4, total_ns: 100 },
                backward: PhaseStat { calls: 4, total_ns: 220 },
            },
        );
        let json = snapshot_to_json(&s, 2);
        for needle in [
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"ops\"",
            "\"grad_nonfinite\": 2",
            "\"memplan/DGNN/peak_live_bytes\": 4096",
            "\"count\": 2",
            "\"forward\": {\"calls\": 4, \"total_ns\": 100}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn span_totals_handle_nesting_and_repeats() {
        let events = [
            ev("epoch", SpanPhase::Begin, 0, 0),
            ev("batch", SpanPhase::Begin, 10, 1),
            ev("batch", SpanPhase::End, 30, 1),
            ev("batch", SpanPhase::Begin, 40, 1),
            ev("batch", SpanPhase::End, 100, 1),
            ev("epoch", SpanPhase::End, 110, 0),
        ];
        let t = span_totals(&events);
        assert_eq!(t["batch"], (2, 80));
        assert_eq!(t["epoch"], (1, 110));
    }

    #[test]
    fn metric_name_sanitization() {
        assert_eq!(sanitize_metric_name("serve/latency_ms"), "serve_latency_ms");
        assert_eq!(sanitize_metric_name("a-b.c d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name(""), "_");
        assert!(valid_metric_name(&sanitize_metric_name("serve/phase/queue_wait_ms")));
    }

    #[test]
    fn label_value_escaping_round_trips() {
        let nasty = "a\\b\"c\nd";
        assert_eq!(escape_label_value(nasty), "a\\\\b\\\"c\\nd");
        let text = format!("m{{k=\"{}\"}} 1\n", escape_label_value(nasty));
        let samples = parse_prometheus_text(&text).expect("escaped label must parse");
        assert_eq!(samples[0].label("k"), Some(nasty));
    }

    #[test]
    fn prometheus_text_golden_snapshot() {
        let mut s = Snapshot::default();
        s.counters.insert("serve/requests_ok".into(), 7);
        s.gauges.insert("serve/qps".into(), 123.5);
        let mut sh = StreamHist::new();
        sh.record(1.0);
        sh.record(1.0);
        sh.record(3.0);
        s.histograms.insert("serve/latency_ms".into(), sh.stat());
        s.histograms
            .insert("plain_agg".into(), HistStat { count: 2, sum: 3.0, min: 1.0, max: 2.0 });
        let mut hists = BTreeMap::new();
        hists.insert("serve/latency_ms".to_string(), sh);
        let text = prometheus_text(&s, &hists);
        let expected = "\
# TYPE serve_requests_ok counter
serve_requests_ok 7
# TYPE serve_qps gauge
serve_qps 123.5
# TYPE plain_agg summary
plain_agg_sum 3
plain_agg_count 2
# TYPE serve_latency_ms histogram
serve_latency_ms_bucket{le=\"1.125\"} 2
serve_latency_ms_bucket{le=\"3.25\"} 3
serve_latency_ms_bucket{le=\"+Inf\"} 3
serve_latency_ms_sum 5
serve_latency_ms_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_round_trip_through_parser() {
        let mut s = Snapshot::default();
        s.counters.insert("reqs".into(), 3);
        s.gauges.insert("qps".into(), 9.25);
        let mut sh = StreamHist::new();
        for v in [0.5, 2.0, 2.0, 64.0] {
            sh.record(v);
        }
        s.histograms.insert("lat".into(), sh.stat());
        let mut hists = BTreeMap::new();
        hists.insert("lat".to_string(), sh);
        let samples =
            parse_prometheus_text(&prometheus_text(&s, &hists)).expect("own output must parse");
        let find = |n: &str| samples.iter().find(|p| p.name == n).expect("sample present");
        assert_eq!(find("reqs").value, 3.0);
        assert_eq!(find("qps").value, 9.25);
        assert_eq!(find("lat_count").value, 4.0);
        assert_eq!(find("lat_sum").value, 68.5);
        let buckets: Vec<&PromSample> =
            samples.iter().filter(|p| p.name == "lat_bucket").collect();
        assert_eq!(buckets.last().and_then(|p| p.label("le")), Some("+Inf"));
        assert_eq!(buckets.last().map(|p| p.value), Some(4.0));
        // Cumulative bucket counts never decrease.
        assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus_text("ok 1\n").is_ok());
        assert!(parse_prometheus_text("# any comment\n\nok 2 1700000000\n").is_ok());
        for bad in [
            "9bad 1\n",
            "noval\n",
            "m{k=\"v\" 1\n",
            "m{k=unquoted} 1\n",
            "m{k=\"v\"} notanumber\n",
            "m 1 notatimestamp\n",
        ] {
            let err = parse_prometheus_text(bad);
            assert!(err.is_err(), "{bad:?} must be rejected");
            assert!(err.unwrap_err().starts_with("line "), "error must name the line");
        }
        // Non-finite values parse.
        let s = parse_prometheus_text("m +Inf\nn NaN\n").expect("non-finite values are legal");
        assert_eq!(s[0].value, f64::INFINITY);
        assert!(s[1].value.is_nan());
    }
}
