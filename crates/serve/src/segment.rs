//! Segmented checkpoints: one `DGCK` file per embedding shard plus a
//! checksummed manifest.
//!
//! A segmented checkpoint is a *directory*:
//!
//! ```text
//! ckpt.d/
//!   MANIFEST.dgck     manifest (itself a DGCK checkpoint)
//!   user-00000.seg    user shard 0: rows [0, shard_rows)
//!   user-00001.seg    …
//!   item-00000.seg    item shard 0
//!   …
//! ```
//!
//! The manifest records the id-range spec (total rows, rows per shard),
//! the segment count per role, the exact `[lo, hi)` range of every
//! segment, and — the corruption anchor — each segment file's byte length
//! and whole-file CRC32. Every segment is an ordinary versioned DGCK
//! checkpoint, so all the monolithic format's guarantees (magic/version
//! checks, length-validated fields, metadata digest, payload CRC, typed
//! errors, never a panic on untrusted bytes) hold per segment; the
//! manifest adds cross-file guarantees on top: a missing or extra `.seg`
//! file is detected at open, and a flipped byte anywhere in a segment is
//! caught by the manifest digest before the segment is even parsed.
//!
//! Segments store the *serving* tables — pre-recalibrated user scoring
//! embeddings (`user_scoring = user + τ·user` is applied before
//! splitting, because the τ·user spmm needs neighbor rows from other
//! shards), final item embeddings, and per-user seen lists rebased to
//! shard-local offsets. [`SegmentedCheckpoint::reassemble`] stitches the
//! segments back into a monolithic checkpoint bit-identically.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use dgnn_tensor::{Matrix, ShardSpec, ShardedTable};

use crate::checkpoint::{crc32, Checkpoint, CheckpointError};
use crate::engine::validate_lists;
use crate::shard::{read_segment_bytes, MapMode};

/// Manifest file name inside a segmented-checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST.dgck";

/// File name of user segment `s`.
pub fn user_segment_name(s: usize) -> String {
    format!("user-{s:05}.seg")
}

/// File name of item segment `s`.
pub fn item_segment_name(s: usize) -> String {
    format!("item-{s:05}.seg")
}

/// One loaded user shard: embeddings plus shard-local seen lists.
#[derive(Debug, Clone)]
pub struct UserShard {
    /// Scoring embeddings for this shard's id range (rows × dim).
    pub emb: Matrix,
    /// Local CSR offsets: user `lo + i`'s items are
    /// `seen_items[seen_indptr[i]..seen_indptr[i + 1]]`.
    pub seen_indptr: Vec<u32>,
    /// Concatenated seen items for this shard's users.
    pub seen_items: Vec<u32>,
}

/// What a finished segmented save produced (for logs and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedSummary {
    /// Number of user segments written.
    pub user_segments: usize,
    /// Number of item segments written.
    pub item_segments: usize,
    /// Total bytes across all segments plus the manifest.
    pub total_bytes: u64,
}

struct SegAccum {
    role: &'static str,
    ranges: Vec<(u32, u32)>,
    digests: Vec<u32>,
    lens: Vec<u32>,
    rows: usize,
    shard_rows: Option<usize>,
    last_was_short: bool,
}

impl SegAccum {
    fn new(role: &'static str) -> Self {
        Self { role, ranges: Vec::new(), digests: Vec::new(), lens: Vec::new(), rows: 0, shard_rows: None, last_was_short: false }
    }

    fn admit(&mut self, rows: usize) -> Result<(u32, u32), CheckpointError> {
        if rows == 0 {
            return Err(CheckpointError::BadShape(format!("{} segment with zero rows", self.role)));
        }
        if self.last_was_short {
            return Err(CheckpointError::BadShape(format!(
                "{} segment after a short segment — only the final shard may be short",
                self.role
            )));
        }
        let shard_rows = *self.shard_rows.get_or_insert(rows);
        if rows > shard_rows {
            return Err(CheckpointError::BadShape(format!(
                "{} segment of {rows} rows exceeds shard size {shard_rows}",
                self.role
            )));
        }
        self.last_was_short = rows < shard_rows;
        let lo = self.rows as u32;
        self.rows += rows;
        let range = (lo, self.rows as u32);
        self.ranges.push(range);
        Ok(range)
    }
}

/// Streaming writer: accepts shards one at a time (so a generator can emit
/// a million-user world without ever holding the full table), writes each
/// as its own DGCK segment, and records lengths/digests for the manifest
/// written by [`SegmentedWriter::finish`].
pub struct SegmentedWriter {
    dir: PathBuf,
    meta: BTreeMap<String, String>,
    dim: Option<usize>,
    user: SegAccum,
    item: SegAccum,
    total_bytes: u64,
}

impl SegmentedWriter {
    /// Creates (or wipes) a segmented-checkpoint directory.
    ///
    /// Pre-existing `MANIFEST.dgck` / `*.seg` files are removed so a
    /// shorter re-save can never leave stale extra segments behind for
    /// the manifest check to trip over.
    pub fn create(dir: &Path) -> Result<Self, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == MANIFEST_NAME || name.ends_with(".seg") {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            meta: BTreeMap::new(),
            dim: None,
            user: SegAccum::new("user"),
            item: SegAccum::new("item"),
            total_bytes: 0,
        })
    }

    /// Records a metadata entry for the manifest (same sanitization rules
    /// as [`Checkpoint::set_meta`]).
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.insert(key.to_string(), value.to_string());
    }

    fn check_dim(&mut self, cols: usize, role: &str) -> Result<(), CheckpointError> {
        if cols == 0 {
            return Err(CheckpointError::BadShape(format!("{role} segment with zero columns")));
        }
        match self.dim {
            None => {
                self.dim = Some(cols);
                Ok(())
            }
            Some(d) if d == cols => Ok(()),
            Some(d) => Err(CheckpointError::BadShape(format!("{role} segment dim {cols} != established dim {d}"))),
        }
    }

    fn write_segment(&mut self, name: &str, seg: Checkpoint) -> Result<(u32, u32), CheckpointError> {
        let bytes = seg.to_bytes();
        let len = u32::try_from(bytes.len())
            .map_err(|_| CheckpointError::BadShape(format!("segment {name} exceeds 4 GiB")))?;
        let path = self.dir.join(name);
        let mut f = File::create(&path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        self.total_bytes += u64::from(len);
        Ok((len, crc32(&bytes)))
    }

    /// Appends the next user shard (ascending contiguous id ranges).
    /// `seen_indptr`/`seen_items` are shard-local (see [`UserShard`]).
    pub fn push_user_shard(
        &mut self,
        emb: &Matrix,
        seen_indptr: &[u32],
        seen_items: &[u32],
    ) -> Result<(), CheckpointError> {
        self.check_dim(emb.cols(), "user")?;
        if seen_indptr.len() != emb.rows() + 1
            || seen_indptr.windows(2).any(|w| w[0] > w[1])
            || seen_indptr.first().copied().unwrap_or(1) != 0
            || seen_indptr.last().copied().unwrap_or(0) as usize != seen_items.len()
        {
            return Err(CheckpointError::BadShape(
                "user segment seen_indptr is not a local prefix-sum of seen_items".into(),
            ));
        }
        let idx = self.user.ranges.len();
        let (lo, hi) = self.user.admit(emb.rows())?;
        let mut seg = Checkpoint::new();
        seg.set_meta("seg_role", "user");
        seg.set_meta("seg_index", &idx.to_string());
        seg.set_meta("seg_lo", &lo.to_string());
        seg.set_meta("seg_hi", &hi.to_string());
        seg.push_matrix("shard/emb", emb);
        seg.push_u32("shard/seen_indptr", seen_indptr.to_vec());
        seg.push_u32("shard/seen_items", seen_items.to_vec());
        let (len, digest) = self.write_segment(&user_segment_name(idx), seg)?;
        self.user.lens.push(len);
        self.user.digests.push(digest);
        Ok(())
    }

    /// Appends the next item shard.
    pub fn push_item_shard(&mut self, emb: &Matrix) -> Result<(), CheckpointError> {
        self.check_dim(emb.cols(), "item")?;
        let idx = self.item.ranges.len();
        let (lo, hi) = self.item.admit(emb.rows())?;
        let mut seg = Checkpoint::new();
        seg.set_meta("seg_role", "item");
        seg.set_meta("seg_index", &idx.to_string());
        seg.set_meta("seg_lo", &lo.to_string());
        seg.set_meta("seg_hi", &hi.to_string());
        seg.push_matrix("shard/emb", emb);
        let (len, digest) = self.write_segment(&item_segment_name(idx), seg)?;
        self.item.lens.push(len);
        self.item.digests.push(digest);
        Ok(())
    }

    /// Writes the manifest and finishes the checkpoint.
    pub fn finish(self) -> Result<SegmentedSummary, CheckpointError> {
        if self.user.ranges.is_empty() || self.item.ranges.is_empty() {
            return Err(CheckpointError::BadShape("segmented checkpoint needs ≥1 user and ≥1 item segment".into()));
        }
        let dim = self.dim.unwrap_or(0);
        let mut m = Checkpoint::new();
        for (k, v) in &self.meta {
            m.set_meta(k, v);
        }
        m.set_meta("seg_kind", "segmented-checkpoint");
        m.set_meta("seg_dim", &dim.to_string());
        m.set_meta("seg_users", &self.user.rows.to_string());
        m.set_meta("seg_items", &self.item.rows.to_string());
        m.set_meta("seg_user_shard_rows", &self.user.shard_rows.unwrap_or(0).to_string());
        m.set_meta("seg_item_shard_rows", &self.item.shard_rows.unwrap_or(0).to_string());
        m.set_meta("seg_user_segments", &self.user.ranges.len().to_string());
        m.set_meta("seg_item_segments", &self.item.ranges.len().to_string());
        m.push_u32("seg/user_ranges", self.user.ranges.iter().flat_map(|&(a, b)| [a, b]).collect());
        m.push_u32("seg/item_ranges", self.item.ranges.iter().flat_map(|&(a, b)| [a, b]).collect());
        m.push_u32("seg/user_digests", self.user.digests.clone());
        m.push_u32("seg/item_digests", self.item.digests.clone());
        m.push_u32("seg/user_lens", self.user.lens.clone());
        m.push_u32("seg/item_lens", self.item.lens.clone());
        let manifest_bytes = m.to_bytes().len() as u64;
        m.save(&self.dir.join(MANIFEST_NAME))?;
        Ok(SegmentedSummary {
            user_segments: self.user.ranges.len(),
            item_segments: self.item.ranges.len(),
            total_bytes: self.total_bytes + manifest_bytes,
        })
    }
}

/// Splits a monolithic checkpoint into a segmented one.
///
/// The user table is resolved exactly like [`crate::Engine`] resolves it
/// (τ recalibration applied when stored, else `final/user_scoring`, else
/// bare `final/user`), so a segmented save is always a *serving* artifact
/// whose shards need no cross-shard math at load time.
pub fn save_segmented(
    ckpt: &Checkpoint,
    dir: &Path,
    user_shard_rows: usize,
    item_shard_rows: usize,
) -> Result<SegmentedSummary, CheckpointError> {
    if user_shard_rows == 0 || item_shard_rows == 0 {
        return Err(CheckpointError::BadShape("shard_rows must be positive".into()));
    }
    let item = ckpt.matrix("final/item")?;
    let user = crate::engine::resolve_user_scoring(ckpt)?;
    if user.cols() != item.cols() {
        return Err(CheckpointError::BadShape(format!(
            "user dim {} != item dim {}",
            user.cols(),
            item.cols()
        )));
    }
    let (seen_indptr, seen_items) = match ckpt.tensor("seen/indptr") {
        Some(_) => {
            let indptr = ckpt.u32s("seen/indptr")?.to_vec();
            let items = ckpt.u32s("seen/items")?.to_vec();
            validate_lists(&indptr, &items, user.rows(), item.rows())?;
            (indptr, items)
        }
        None => ((0..=user.rows()).map(|_| 0u32).collect(), Vec::new()),
    };

    let mut w = SegmentedWriter::create(dir)?;
    for (k, v) in ckpt.meta_entries() {
        w.set_meta(k, v);
    }
    let users = ShardedTable::from_matrix(&user, user_shard_rows);
    for (s, lo, hi) in users.spec().iter_ranges() {
        let base = seen_indptr[lo];
        let local_indptr: Vec<u32> = seen_indptr[lo..=hi].iter().map(|&p| p - base).collect();
        let local_items = seen_items[seen_indptr[lo] as usize..seen_indptr[hi] as usize].to_vec();
        w.push_user_shard(users.shard(s), &local_indptr, &local_items)?;
    }
    let items = ShardedTable::from_matrix(&item, item_shard_rows);
    for s in 0..items.num_shards() {
        w.push_item_shard(items.shard(s))?;
    }
    w.finish()
}

/// A validated segmented-checkpoint directory: manifest parsed, segment
/// inventory checked, segments loadable on demand.
pub struct SegmentedCheckpoint {
    dir: PathBuf,
    meta: BTreeMap<String, String>,
    dim: usize,
    user_spec: ShardSpec,
    item_spec: ShardSpec,
    user_digests: Vec<u32>,
    item_digests: Vec<u32>,
    user_lens: Vec<u32>,
    item_lens: Vec<u32>,
    mode: MapMode,
}

fn meta_usize(c: &Checkpoint, key: &str) -> Result<usize, CheckpointError> {
    c.meta(key)
        .ok_or_else(|| CheckpointError::MetaMismatch(format!("manifest missing {key}")))?
        .parse::<usize>()
        .map_err(|_| CheckpointError::MetaMismatch(format!("manifest {key} is not an integer")))
}

fn ranges_of(c: &Checkpoint, name: &str, spec: ShardSpec) -> Result<Vec<(u32, u32)>, CheckpointError> {
    let raw = c.u32s(name)?;
    if raw.len() != spec.num_shards() * 2 {
        return Err(CheckpointError::Corrupt(format!(
            "{name}: {} entries for {} shards",
            raw.len(),
            spec.num_shards()
        )));
    }
    let ranges: Vec<(u32, u32)> = raw.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    for (s, lo, hi) in spec.iter_ranges() {
        if ranges[s] != (lo as u32, hi as u32) {
            return Err(CheckpointError::Corrupt(format!(
                "{name}: shard {s} range {:?} disagrees with spec [{lo}, {hi})",
                ranges[s]
            )));
        }
    }
    Ok(ranges)
}

fn digests_of(c: &Checkpoint, name: &str, want: usize) -> Result<Vec<u32>, CheckpointError> {
    let v = c.u32s(name)?;
    if v.len() != want {
        return Err(CheckpointError::Corrupt(format!("{name}: {} entries for {want} shards", v.len())));
    }
    Ok(v.to_vec())
}

impl SegmentedCheckpoint {
    /// Opens a segmented checkpoint with the `DGNN_MMAP` mode from the
    /// environment.
    pub fn open(dir: &Path) -> Result<Self, CheckpointError> {
        Self::open_with(dir, MapMode::from_env())
    }

    /// Opens and validates: manifest parse, spec consistency, and the
    /// segment inventory (every named segment present, no strays).
    /// Segment *contents* are validated lazily on first load.
    pub fn open_with(dir: &Path, mode: MapMode) -> Result<Self, CheckpointError> {
        let manifest = Checkpoint::load(&dir.join(MANIFEST_NAME))?;
        if manifest.meta("seg_kind") != Some("segmented-checkpoint") {
            return Err(CheckpointError::MetaMismatch("manifest seg_kind is not segmented-checkpoint".into()));
        }
        let dim = meta_usize(&manifest, "seg_dim")?;
        let users = meta_usize(&manifest, "seg_users")?;
        let items = meta_usize(&manifest, "seg_items")?;
        let user_shard_rows = meta_usize(&manifest, "seg_user_shard_rows")?;
        let item_shard_rows = meta_usize(&manifest, "seg_item_shard_rows")?;
        if dim == 0 || user_shard_rows == 0 || item_shard_rows == 0 {
            return Err(CheckpointError::MetaMismatch("manifest dims/shard_rows must be positive".into()));
        }
        let user_spec = ShardSpec::new(users, user_shard_rows);
        let item_spec = ShardSpec::new(items, item_shard_rows);
        if meta_usize(&manifest, "seg_user_segments")? != user_spec.num_shards()
            || meta_usize(&manifest, "seg_item_segments")? != item_spec.num_shards()
        {
            return Err(CheckpointError::Corrupt("manifest segment counts disagree with the id-range spec".into()));
        }
        ranges_of(&manifest, "seg/user_ranges", user_spec)?;
        ranges_of(&manifest, "seg/item_ranges", item_spec)?;
        let user_digests = digests_of(&manifest, "seg/user_digests", user_spec.num_shards())?;
        let item_digests = digests_of(&manifest, "seg/item_digests", item_spec.num_shards())?;
        let user_lens = digests_of(&manifest, "seg/user_lens", user_spec.num_shards())?;
        let item_lens = digests_of(&manifest, "seg/item_lens", item_spec.num_shards())?;

        // Inventory: the manifest is the source of truth for which `.seg`
        // files may exist. Anything missing or unaccounted for is a
        // corruption signal, not something to silently skip.
        let mut expected: BTreeSet<String> = (0..user_spec.num_shards()).map(user_segment_name).collect();
        expected.extend((0..item_spec.num_shards()).map(item_segment_name));
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if name.ends_with(".seg") && !expected.remove(&name) {
                return Err(CheckpointError::ExtraSegment(name));
            }
        }
        if let Some(name) = expected.into_iter().next() {
            return Err(CheckpointError::MissingSegment(name));
        }

        Ok(Self {
            dir: dir.to_path_buf(),
            meta: manifest.meta_entries().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            dim,
            user_spec,
            item_spec,
            user_digests,
            item_digests,
            user_lens,
            item_lens,
            mode: mode_or_warn(mode),
        })
    }

    /// Manifest metadata (model meta plus `seg_*` keys).
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(String::as_str)
    }

    /// All manifest metadata entries.
    pub fn meta_entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.meta.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// User-table id-range spec.
    pub fn user_spec(&self) -> ShardSpec {
        self.user_spec
    }

    /// Item-table id-range spec.
    pub fn item_spec(&self) -> ShardSpec {
        self.item_spec
    }

    /// Whether loads will go through the mmap path on this target.
    pub fn uses_map(&self) -> bool {
        self.mode.resolves_to_map()
    }

    /// Loads, digest-checks, parses, and shape-validates one segment.
    fn load_segment(&self, name: &str, len: u32, digest: u32, role: &str, idx: usize, lo: u32, hi: u32) -> Result<Checkpoint, CheckpointError> {
        let path = self.dir.join(name);
        let (bytes, _mapped) = read_segment_bytes(&path, self.mode).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CheckpointError::MissingSegment(name.to_string())
            } else {
                CheckpointError::Io(e)
            }
        })?;
        if bytes.len() != len as usize {
            return if bytes.len() < len as usize {
                Err(CheckpointError::Truncated)
            } else {
                Err(CheckpointError::Corrupt(format!(
                    "segment {name}: {} bytes on disk, manifest says {len}",
                    bytes.len()
                )))
            };
        }
        let computed = crc32(&bytes);
        if computed != digest {
            return Err(CheckpointError::SegmentDigestMismatch { segment: name.to_string(), stored: digest, computed });
        }
        let seg = Checkpoint::from_bytes(&bytes)?;
        if seg.meta("seg_role") != Some(role)
            || seg.meta("seg_index") != Some(idx.to_string().as_str())
            || seg.meta("seg_lo") != Some(lo.to_string().as_str())
            || seg.meta("seg_hi") != Some(hi.to_string().as_str())
        {
            return Err(CheckpointError::MetaMismatch(format!(
                "segment {name}: role/index/range metadata disagrees with the manifest"
            )));
        }
        Ok(seg)
    }

    /// Loads and validates user shard `s`.
    pub fn load_user_shard(&self, s: usize) -> Result<UserShard, CheckpointError> {
        let (lo, hi) = self.user_spec.shard_range(s);
        let name = user_segment_name(s);
        let seg = self.load_segment(&name, self.user_lens[s], self.user_digests[s], "user", s, lo as u32, hi as u32)?;
        let emb = seg.matrix("shard/emb")?;
        if emb.rows() != hi - lo || emb.cols() != self.dim {
            return Err(CheckpointError::BadShape(format!(
                "segment {name}: emb is {}×{}, manifest says {}×{}",
                emb.rows(),
                emb.cols(),
                hi - lo,
                self.dim
            )));
        }
        let seen_indptr = seg.u32s("shard/seen_indptr")?.to_vec();
        let seen_items = seg.u32s("shard/seen_items")?.to_vec();
        validate_lists(&seen_indptr, &seen_items, emb.rows(), self.item_spec.rows())
            .map_err(|e| CheckpointError::BadShape(format!("segment {name}: {e}")))?;
        Ok(UserShard { emb, seen_indptr, seen_items })
    }

    /// Loads and validates item shard `s`.
    pub fn load_item_shard(&self, s: usize) -> Result<Matrix, CheckpointError> {
        let (lo, hi) = self.item_spec.shard_range(s);
        let name = item_segment_name(s);
        let seg = self.load_segment(&name, self.item_lens[s], self.item_digests[s], "item", s, lo as u32, hi as u32)?;
        let emb = seg.matrix("shard/emb")?;
        if emb.rows() != hi - lo || emb.cols() != self.dim {
            return Err(CheckpointError::BadShape(format!(
                "segment {name}: emb is {}×{}, manifest says {}×{}",
                emb.rows(),
                emb.cols(),
                hi - lo,
                self.dim
            )));
        }
        Ok(emb)
    }

    /// Eagerly loads and validates every segment (tests, fsck-style
    /// checks). Serving never calls this — it defeats laziness.
    pub fn verify_all(&self) -> Result<(), CheckpointError> {
        for s in 0..self.user_spec.num_shards() {
            self.load_user_shard(s)?;
        }
        for s in 0..self.item_spec.num_shards() {
            self.load_item_shard(s)?;
        }
        Ok(())
    }

    /// Stitches all segments back into one monolithic checkpoint holding
    /// the serving tensors (`final/user_scoring`, `final/item`,
    /// `seen/{indptr,items}`) plus the manifest metadata. Bit-identical to
    /// what was split (sharding is a layout change, never numeric).
    pub fn reassemble(&self) -> Result<Checkpoint, CheckpointError> {
        let mut user_shards = Vec::with_capacity(self.user_spec.num_shards());
        let mut seen_indptr: Vec<u32> = vec![0];
        let mut seen_items: Vec<u32> = Vec::new();
        for s in 0..self.user_spec.num_shards() {
            let shard = self.load_user_shard(s)?;
            let base = *seen_indptr.last().unwrap_or(&0);
            seen_indptr.extend(shard.seen_indptr[1..].iter().map(|&p| base + p));
            seen_items.extend_from_slice(&shard.seen_items);
            user_shards.push(shard.emb);
        }
        let user = ShardedTable::from_shards(self.user_spec, self.dim, user_shards).to_matrix();
        let mut item_shards = Vec::with_capacity(self.item_spec.num_shards());
        for s in 0..self.item_spec.num_shards() {
            item_shards.push(self.load_item_shard(s)?);
        }
        let item = ShardedTable::from_shards(self.item_spec, self.dim, item_shards).to_matrix();
        let mut out = Checkpoint::new();
        for (k, v) in &self.meta {
            out.set_meta(k, v);
        }
        out.push_matrix("final/user_scoring", &user);
        out.push_matrix("final/item", &item);
        out.push_u32("seen/indptr", seen_indptr);
        out.push_u32("seen/items", seen_items);
        Ok(out)
    }
}

fn mode_or_warn(mode: MapMode) -> MapMode {
    // Resolve once so DGNN_MMAP=on warns a single time at open rather
    // than per shard load.
    let _ = mode.resolves_to_map();
    mode
}
