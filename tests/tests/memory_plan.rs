//! Memory-plan integration tests: the golden bit-identity guarantee
//! (planned execution computes *exactly* the same floats as unplanned),
//! the independent safety proof over every traced model, the measured
//! allocation reduction the plan buys, and a property test that random
//! valid compute graphs always receive overlap-free plans.

use dgnn_analysis::{check_plan, plan, FreePoint, ShapeTracer};
use dgnn_baselines::{BaselineConfig, Dgcf, DisenHan, Gccf, Mhcn, Ngcf};
use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::{tiny, TrainSampler};
use dgnn_eval::Trainable;
use dgnn_tensor::{alloc_counters, reset_alloc_counters, Matrix};
use dgnn_autograd::{ParamSet, Recorder, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 11;

fn quick_baseline() -> BaselineConfig {
    BaselineConfig { dim: 8, layers: 2, epochs: 3, batch_size: 256, ..Default::default() }
}

fn quick_dgnn() -> DgnnConfig {
    DgnnConfig {
        dim: 8,
        layers: 2,
        memory_units: 4,
        epochs: 3,
        batch_size: 256,
        ..Default::default()
    }
}

/// Bitwise equality for f32 slices — `==` would paper over `-0.0` and NaN
/// differences, and the golden guarantee is *bit* identity.
fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x:?} vs {y:?}"
        );
    }
}

/// Scores every test user against a fixed item slate — a dense probe of
/// the fitted model's observable state.
fn score_probe(model: &dyn dgnn_eval::Recommender, num_users: usize, num_items: usize) -> Vec<f32> {
    let items: Vec<usize> = (0..num_items).collect();
    (0..num_users).flat_map(|u| model.score(u, &items)).collect()
}

// ---------------------------------------------------------------------------
// Golden tests: planned execution is bit-identical to unplanned.
// ---------------------------------------------------------------------------

macro_rules! golden_baseline {
    ($test:ident, $ty:ident) => {
        #[test]
        fn $test() {
            let data = tiny(SEED);
            let (nu, nv) = (data.graph.num_users(), data.graph.num_items());

            let mut off = $ty::new(quick_baseline());
            off.fit(&data, SEED);
            let mut on = $ty::new(quick_baseline().with_memory_plan());
            on.fit(&data, SEED);

            assert_bits_eq(&loss_of(&off), &loss_of(&on), "loss history");
            assert_bits_eq(
                &score_probe(&off, nu, nv),
                &score_probe(&on, nu, nv),
                "scores",
            );
        }
    };
}

/// Uniform access to each baseline's per-epoch loss history.
trait LossHistory {
    fn history(&self) -> &[f32];
}
impl LossHistory for Ngcf {
    fn history(&self) -> &[f32] {
        self.loss_history()
    }
}
impl LossHistory for Gccf {
    fn history(&self) -> &[f32] {
        self.loss_history()
    }
}
impl LossHistory for Dgcf {
    fn history(&self) -> &[f32] {
        &self.loss_history
    }
}
impl LossHistory for Mhcn {
    fn history(&self) -> &[f32] {
        &self.loss_history
    }
}
impl LossHistory for DisenHan {
    fn history(&self) -> &[f32] {
        &self.loss_history
    }
}

fn loss_of(m: &impl LossHistory) -> Vec<f32> {
    m.history().to_vec()
}

golden_baseline!(ngcf_planned_is_bit_identical, Ngcf);
golden_baseline!(gccf_planned_is_bit_identical, Gccf);
golden_baseline!(dgcf_planned_is_bit_identical, Dgcf);
golden_baseline!(mhcn_planned_is_bit_identical, Mhcn);
golden_baseline!(disenhan_planned_is_bit_identical, DisenHan);

#[test]
fn dgnn_planned_is_bit_identical() {
    let data = tiny(SEED);
    let (nu, nv) = (data.graph.num_users(), data.graph.num_items());

    let mut off = Dgnn::new(quick_dgnn());
    off.fit(&data, SEED);
    let mut on = Dgnn::new(quick_dgnn().with_memory_plan());
    on.fit(&data, SEED);

    assert_bits_eq(&off.loss_history, &on.loss_history, "DGNN loss history");
    assert_bits_eq(
        off.user_embeddings().as_slice(),
        on.user_embeddings().as_slice(),
        "DGNN user embeddings",
    );
    assert_bits_eq(
        off.item_embeddings().as_slice(),
        on.item_embeddings().as_slice(),
        "DGNN item embeddings",
    );
    assert_bits_eq(&score_probe(&off, nu, nv), &score_probe(&on, nu, nv), "DGNN scores");
}

// ---------------------------------------------------------------------------
// Safety proof over every traced model.
// ---------------------------------------------------------------------------

#[test]
fn checker_proves_every_traced_model() {
    let data = tiny(SEED);
    let bcfg = quick_baseline();
    let probe = TrainSampler::new(&data.graph)
        .batch(&mut StdRng::seed_from_u64(SEED ^ 0x9E37_79B9), bcfg.batch_size);

    let mut traces: Vec<(&str, ShapeTracer, Var)> = Vec::new();

    let mut m = Dgnn::new(quick_dgnn());
    m.prepare(&data.graph, SEED);
    let mut tr = ShapeTracer::new();
    let loss = m.record_step(&mut tr, &probe);
    traces.push(("DGNN", tr, loss));

    macro_rules! trace_of {
        ($name:literal, $ty:ident) => {{
            let mut tr = ShapeTracer::new();
            let (_, loss) = $ty::trace_step(&bcfg, &data, &probe, SEED, &mut tr);
            traces.push(($name, tr, loss));
        }};
    }
    trace_of!("NGCF", Ngcf);
    trace_of!("GCCF", Gccf);
    trace_of!("DGCF", Dgcf);
    trace_of!("MHCN", Mhcn);
    trace_of!("DisenHAN", DisenHan);

    for (name, tracer, loss) in &traces {
        let mplan = plan(tracer, *loss, &[]);
        let proof = check_plan(tracer, *loss, &[], &mplan)
            .unwrap_or_else(|v| panic!("{name}: plan failed its safety proof: {v}"));
        assert!(proof.nodes > 0, "{name}: empty proof");
        assert!(
            mplan.num_frees() > 0,
            "{name}: plan frees nothing — planning is vacuous"
        );
        assert!(
            mplan.peak_live_bytes() < mplan.total_value_bytes(),
            "{name}: peak-live bytes did not improve on keep-everything"
        );
    }
}

// ---------------------------------------------------------------------------
// Measured allocation reduction.
// ---------------------------------------------------------------------------

#[test]
fn dgnn_plan_halves_step_allocations() {
    let data = tiny(SEED);

    reset_alloc_counters();
    Dgnn::new(quick_dgnn()).fit(&data, SEED);
    let (fresh_off, _) = alloc_counters();

    reset_alloc_counters();
    Dgnn::new(quick_dgnn().with_memory_plan()).fit(&data, SEED);
    let (fresh_on, hits) = alloc_counters();

    assert!(hits > 0, "planned run never recycled a buffer");
    // Under DGNN_GRAPH_OPT=1 (the optimized CI stage) *both* runs execute
    // graph-optimized, so the "unplanned" baseline already avoids many
    // allocations via steals and folds; the plan must still strictly win,
    // but the 2x margin only applies to the plain comparison.
    if std::env::var("DGNN_GRAPH_OPT").as_deref() == Ok("1") {
        assert!(
            fresh_off > fresh_on,
            "plan must cut fresh allocations even under graph-opt: \
             {fresh_off} unplanned vs {fresh_on} planned"
        );
    } else {
        assert!(
            fresh_off >= 2 * fresh_on,
            "plan must cut fresh allocations at least 2x: {fresh_off} unplanned vs {fresh_on} planned"
        );
    }
}

// ---------------------------------------------------------------------------
// Property: random valid graphs always get overlap-free, provable plans.
// ---------------------------------------------------------------------------

/// Builds a random but shape-valid compute graph on the tracer: a chain
/// over `n × d` activations with random unary ops, random binary merges
/// with earlier nodes, and square-matrix projections, closed by a scalar
/// readout. Returns the loss variable.
fn random_graph(tr: &mut ShapeTracer, x: Var, w: Var, ops: &[(u8, usize)]) -> Var {
    let mut vars = vec![x];
    for &(op, pick) in ops {
        let prev = *vars.last().expect("non-empty");
        let other = vars[pick % vars.len()];
        let next = match op {
            0 => tr.sigmoid(prev),
            1 => tr.tanh(prev),
            2 => tr.leaky_relu(prev, 0.2),
            3 => tr.softplus(prev),
            4 => tr.scale(prev, 0.7),
            5 => tr.add(prev, other),
            6 => tr.mul(prev, other),
            7 => tr.matmul(prev, w),
            _ => {
                let ln = tr.layer_norm_rows(prev, 1e-5);
                tr.add(ln, other)
            }
        };
        vars.push(next);
    }
    let last = *vars.last().expect("non-empty");
    tr.mean_all(last)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_graphs_get_provable_plans(
        ops in collection::vec((0u8..9, any::<usize>()), 1..32),
        pin_last in any::<bool>(),
    ) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let xid = params.add("x", dgnn_tensor::Init::Uniform(0.5).build(6, 4, &mut rng));
        let wid = params.add("w", dgnn_tensor::Init::Uniform(0.5).build(4, 4, &mut rng));

        let mut tr = ShapeTracer::new();
        let x = tr.param(&params, xid);
        let w = tr.param(&params, wid);
        let loss = random_graph(&mut tr, x, w, &ops);

        // Optionally pin an interior node as a declared output — the plan
        // must keep it live forever.
        let outputs: Vec<Var> = if pin_last { vec![x] } else { vec![] };

        let mplan = plan(&tr, loss, &outputs);
        let proof = check_plan(&tr, loss, &outputs, &mplan);
        prop_assert!(proof.is_ok(), "checker rejected the plan: {:?}", proof.err());

        for out in &outputs {
            prop_assert!(
                matches!(mplan.nodes()[out.index()].free, FreePoint::Never),
                "declared output was scheduled for freeing"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Pool value-transparency spot check (the mechanism bit-identity rests on).
// ---------------------------------------------------------------------------

#[test]
fn recycled_buffers_never_leak_stale_values() {
    dgnn_tensor::BufferPool::new().install();
    dgnn_tensor::recycle(Matrix::full(3, 3, f32::NAN));
    let fresh = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
    let _ = dgnn_tensor::BufferPool::uninstall();
    let expect: Vec<f32> = (0..9).map(|i| i as f32).collect();
    assert_bits_eq(fresh.as_slice(), &expect, "recycled from_fn");
}
