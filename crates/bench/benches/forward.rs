//! Microbench: one full training step (forward + backward + Adam) for
//! DGNN, DGCF, and HGT on the tiny dataset — the per-batch version of
//! Table IV's per-epoch comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use dgnn_baselines::{BaselineConfig, Dgcf, Hgt};
use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::tiny;
use dgnn_eval::Trainable;
use std::hint::black_box;

fn bench_one_epoch(c: &mut Criterion) {
    let data = tiny(42);
    let mut group = c.benchmark_group("one_epoch_tiny");
    group.sample_size(10);

    group.bench_function("DGNN", |b| {
        b.iter(|| {
            let mut m = Dgnn::new(DgnnConfig {
                epochs: 1,
                batch_size: 512,
                ..DgnnConfig::default()
            });
            m.fit(black_box(&data), 7);
            black_box(m.loss_history.clone())
        })
    });
    group.bench_function("DGCF", |b| {
        b.iter(|| {
            let mut m = Dgcf::new(BaselineConfig {
                epochs: 1,
                batch_size: 512,
                ..BaselineConfig::default()
            });
            m.fit(black_box(&data), 7);
            black_box(m.loss_history.clone())
        })
    });
    group.bench_function("HGT", |b| {
        b.iter(|| {
            let mut m = Hgt::new(BaselineConfig {
                epochs: 1,
                batch_size: 512,
                ..BaselineConfig::default()
            });
            m.fit(black_box(&data), 7);
            black_box(m.loss_history.clone())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_one_epoch);
criterion_main!(benches);
