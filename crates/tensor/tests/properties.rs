//! Property-based tests for the dense/sparse kernels: algebraic identities
//! that must hold for arbitrary matrices, not just hand-picked ones.

use dgnn_tensor::{approx_eq, Csr, CsrBuilder, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: shape triple (m, k, n) small enough to exercise quickly.
fn dims3() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

/// Strategy: a sparse matrix as triplets over a `rows × cols` grid.
fn csr(rows: usize, cols: usize) -> impl Strategy<Value = Csr> {
    proptest::collection::vec(((0..rows), (0..cols), -5.0f32..5.0), 0..(rows * cols * 2))
        .prop_map(move |trips| {
            let mut b = CsrBuilder::new(rows, cols);
            for (r, c, v) in trips {
                b.push(r, c, v);
            }
            b.build()
        })
}

proptest! {
    #[test]
    fn matmul_is_associative((m, k, n) in dims3(), p in 1usize..5, seed in any::<u64>()) {
        // Build from seed via from_fn to keep case sizes bounded.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let c = Matrix::from_fn(n, p, |_, _| next());
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-2), "associativity violated");
    }

    #[test]
    fn matmul_distributes_over_add((m, k, n) in dims3(), seed in any::<u64>()) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / u32::MAX as f32) * 4.0 - 2.0
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let c = Matrix::from_fn(k, n, |_, _| next());
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-2));
    }

    #[test]
    fn transpose_of_product_reverses(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-3));
    }

    #[test]
    fn fused_transpose_products_match(a in matrix(4, 3), b in matrix(4, 2)) {
        prop_assert!(approx_eq(&a.matmul_tn(&b), &a.transpose().matmul(&b), 1e-3));
        let c = Matrix::from_fn(5, 3, |r, q| (r + q) as f32 * 0.3 - 1.0);
        prop_assert!(approx_eq(&a.matmul_nt(&c), &a.matmul(&c.transpose()), 1e-3));
    }

    #[test]
    fn add_commutes(a in matrix(3, 3), b in matrix(3, 3)) {
        prop_assert!(approx_eq(&a.add(&b), &b.add(&a), 0.0));
    }

    #[test]
    fn row_dots_equals_diagonal_of_product(a in matrix(4, 3), b in matrix(4, 3)) {
        let rd = a.row_dots(&b);
        let full = a.matmul_nt(&b);
        for i in 0..4 {
            prop_assert!((rd[(i, 0)] - full[(i, i)]).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(5, 4)) {
        let s = a.softmax_rows();
        prop_assert!(s.all_finite());
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm(a in matrix(5, 4)) {
        let n = a.l2_normalize_rows(1e-9);
        for r in 0..5 {
            let orig: f32 = a.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            let got: f32 = n.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            if orig > 1e-6 {
                prop_assert!((got - 1.0).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gather_then_scatter_restores_counts(idx in proptest::collection::vec(0usize..6, 1..20)) {
        let table = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let g = table.gather_rows(&idx);
        let mut acc = Matrix::zeros(6, 3);
        acc.scatter_add_rows(&idx, &g);
        // Each row of acc equals (times gathered) * table row.
        for r in 0..6 {
            let count = idx.iter().filter(|&&i| i == r).count() as f32;
            for c in 0..3 {
                prop_assert!((acc[(r, c)] - count * table[(r, c)]).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn spmm_agrees_with_dense(a in csr(5, 4), x in matrix(4, 3)) {
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        prop_assert!(approx_eq(&sparse, &dense, 1e-3));
    }

    #[test]
    fn csr_transpose_is_involution(a in csr(5, 7)) {
        prop_assert!(approx_eq(&a.transpose().transpose().to_dense(), &a.to_dense(), 0.0));
    }

    #[test]
    fn csr_row_normalized_is_stochastic(a in csr(6, 6)) {
        // Use absolute values so row sums are positive where rows are non-empty.
        let mut b = CsrBuilder::new(6, 6);
        for r in 0..6 {
            for (c, v) in a.row(r) {
                b.push(r, c, v.abs() + 0.01);
            }
        }
        let n = b.build().row_normalized();
        for r in 0..6 {
            let sum: f32 = n.row(r).map(|(_, v)| v).sum();
            if n.degree(r) > 0 {
                prop_assert!((sum - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn concat_slice_roundtrip(a in matrix(3, 2), b in matrix(3, 4)) {
        let c = Matrix::concat_cols(&[&a, &b]);
        prop_assert!(approx_eq(&c.slice_cols(0, 2), &a, 0.0));
        prop_assert!(approx_eq(&c.slice_cols(2, 6), &b, 0.0));
    }
}
