//! **Scale serving tier**: million-user-shaped load against the lazy
//! sharded store, measured end to end into `BENCH_scale.json`.
//!
//! Two phases, both driven by `loadgen --scale`:
//!
//! 1. **Bit-identity** — trains a quick DGNN on the tiny dataset, saves it
//!    both as a monolithic checkpoint and as a segmented one (4 user
//!    shards), and asserts the sharded engine returns *bit-identical*
//!    top-K (items and score bits) to the dense engine for **every** user,
//!    with and without seen-filtering, at kernel thread counts 1 and 4,
//!    in both `pread` and map modes, plus one served-over-HTTP
//!    cross-check. This is the correctness license for phase 2: once the
//!    sharded path is provably the same function, its numbers measure the
//!    *storage architecture*, not a different model.
//! 2. **Scale load** — streams the [`dgnn_data::scale_bench`] preset
//!    (2¹⁷ users, 128 user shards) through [`SegmentedWriter`] without
//!    ever materializing the full table, opens it lazily, and drives 64
//!    closed-loop clients drawing users from Zipf(θ=1.4) — head-heavy
//!    traffic that touches a strict subset of shards. The artifact records
//!    qps, latency percentiles, startup-time-to-first-answer, RSS growth
//!    (`/proc/self/statm` via `dgnn-obs`), and shard residency.
//!
//! `--check` gates (beyond the serve tier's zero-ok and qps-regression
//! checks): every probed user bit-identical, `/metrics` scrapes cleanly
//! with the process RSS gauges present, **lazy residency held** — shards
//! touched strictly below the shard count, resident user bytes at most
//! [`RESIDENCY_CEILING`] of the full user table, and process RSS growth
//! across open+serve below the full table size. The residency gates run
//! in *every* mode (they assert architecture, not machine speed); only
//! the qps comparison needs a baseline file.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Instant;

use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::{scale_bench, tiny, ScaleSpec};
use dgnn_eval::Trainable;
use dgnn_obs::export::snapshot_to_json;
use dgnn_obs::procstat;
use dgnn_serve::{Engine, MapMode, Query, SegmentedWriter, ServeConfig, Server};
use dgnn_tensor::parallel;

use crate::zipf::Zipf;
use crate::SEED;

/// Closed-loop client threads of the scale phase.
pub const CLIENTS: usize = 64;
/// Requests each scale client fires.
const REQUESTS_PER_CLIENT: usize = 20;
/// Zipf exponent of the request distribution. At θ=1.4 over 2¹⁷ users,
/// ~1.3k draws concentrate on the head: far fewer than all 128 shards
/// get touched, which is what the residency gates need to observe.
const ZIPF_THETA: f64 = 1.4;
/// Allowed relative qps drop before `--check` fails (serve-tier budget).
const REGRESSION_BUDGET: f64 = 0.25;
/// Resident user bytes must stay at or below this fraction of the full
/// user table under Zipf load.
const RESIDENCY_CEILING: f64 = 0.75;
/// Kernel thread counts the bit-identity probe pins.
const PROBE_THREADS: [usize; 2] = [1, 4];
/// Top-K compared per probed user.
const PROBE_K: usize = 10;

fn quick_dgnn() -> DgnnConfig {
    DgnnConfig { dim: 8, layers: 2, memory_units: 4, epochs: 4, batch_size: 256, ..Default::default() }
}

/// One blocking HTTP exchange; returns (status, body).
fn http_get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {target} HTTP/1.1\r\nHost: scale\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let body = raw.split_once("\r\n\r\n").map_or("", |(_, b)| b).to_string();
    Ok((status, body))
}

/// Compares every user's top-K between the dense and sharded engines at
/// one pinned kernel thread count: same items, same score **bits**, with
/// and without seen-filtering. Returns the number of diverging users.
fn probe_bit_identity(dense: &Engine, sharded: &Engine, threads: usize, tag: &str) -> usize {
    let saved = parallel::current_threads();
    parallel::set_threads(threads);
    let mut failures = 0;
    for exclude in [false, true] {
        let queries: Vec<Query> = (0..dense.num_users())
            .map(|u| Query { user: u as u32, k: PROBE_K, exclude_seen: exclude })
            .collect();
        let a = dense.recommend_batch(&queries);
        let b = sharded.recommend_batch(&queries);
        for (u, (ra, rb)) in a.iter().zip(&b).enumerate() {
            let same = match (ra, rb) {
                (Ok(xs), Ok(ys)) => {
                    xs.len() == ys.len()
                        && xs.iter().zip(ys).all(|(x, y)| {
                            x.item == y.item && x.score.to_bits() == y.score.to_bits()
                        })
                }
                _ => false,
            };
            if !same {
                eprintln!(
                    "bit-identity[{tag}]: user {u} diverges \
                     (threads={threads}, exclude_seen={exclude})"
                );
                failures += 1;
            }
        }
    }
    parallel::set_threads(saved);
    failures
}

/// Phase 1: dense vs. sharded equivalence on a real trained model.
/// Returns the bit-identity failure count.
fn bit_identity_phase(dir: &Path) -> Result<usize, String> {
    println!("--- phase 1: dense vs sharded bit-identity (tiny dataset) ---");
    let data = tiny(SEED);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, SEED);

    let dense_path = dir.join("dense.ckpt");
    model
        .save_checkpoint(&data.name, &dense_path)
        .map_err(|e| format!("scale: dense checkpoint: {e}"))?;
    let seg_dir = dir.join("segments");
    let num_users = data.graph.num_users();
    let user_shard_rows = num_users.div_ceil(4); // exactly 4 user shards
    let item_shard_rows = data.graph.num_items().div_ceil(2);
    let summary = model
        .save_checkpoint_segmented(&data.name, &seg_dir, user_shard_rows, item_shard_rows)
        .map_err(|e| format!("scale: segmented checkpoint: {e}"))?;
    println!(
        "segmented save: {} user + {} item segments, {} bytes",
        summary.user_segments, summary.item_segments, summary.total_bytes
    );

    let dense = Engine::load(&dense_path).map_err(|e| format!("scale: dense engine: {e}"))?;
    let mut failures = 0;
    let mut modes = vec![("pread", MapMode::Off)];
    if MapMode::Auto.resolves_to_map() {
        modes.push(("map", MapMode::On));
    } else {
        println!("map mode unsupported on this target; probing pread only");
    }
    for (tag, mode) in modes {
        let sharded = Engine::open_segmented_with(&seg_dir, mode)
            .map_err(|e| format!("scale: sharded engine ({tag}): {e}"))?;
        for threads in PROBE_THREADS {
            let f = probe_bit_identity(&dense, &sharded, threads, tag);
            println!(
                "probe[{tag}] threads={threads}: {num_users} users x2 seen-modes -> {f} failure(s)"
            );
            failures += f;
        }
    }

    // Served-over-HTTP cross-check: the sharded server must emit the dense
    // engine's exact item list.
    let sharded = Engine::open_segmented(&seg_dir).map_err(|e| format!("scale: http engine: {e}"))?;
    let server =
        Server::start(sharded, ServeConfig::default()).map_err(|e| format!("scale: server: {e}"))?;
    let reference = dense
        .recommend(Query { user: 1, k: PROBE_K, exclude_seen: true })
        .map_err(|e| format!("scale: reference query: {e}"))?;
    match http_get(server.addr(), &format!("/recommend?user=1&k={PROBE_K}&exclude_seen=true")) {
        Ok((200, body)) => {
            let items: Vec<String> = reference.iter().map(|s| s.item.to_string()).collect();
            let needle = format!("\"items\":[{}]", items.join(","));
            if !body.contains(&needle) {
                eprintln!("bit-identity[http]: served {body:?} does not contain {needle:?}");
                failures += 1;
            }
        }
        other => {
            eprintln!("bit-identity[http]: request failed: {other:?}");
            failures += 1;
        }
    }
    server.shutdown();
    Ok(failures)
}

/// Streams the scale preset to disk shard-by-shard; the full table is
/// never resident. Returns (total bytes, generation seconds).
fn build_scale_world(spec: &ScaleSpec, dir: &Path) -> Result<(u64, f64), String> {
    let t0 = Instant::now();
    let mut w = SegmentedWriter::create(dir).map_err(|e| format!("scale: writer: {e}"))?;
    w.set_meta("model", "scale-world");
    w.set_meta("dataset", spec.name);
    w.set_meta("seed", &SEED.to_string());
    for shard in spec.user_shards(SEED) {
        w.push_user_shard(&shard.emb, &shard.seen_indptr, &shard.seen_items)
            .map_err(|e| format!("scale: user shard {}: {e}", shard.index))?;
    }
    for shard in spec.item_shards(SEED) {
        w.push_item_shard(&shard.emb).map_err(|e| format!("scale: item shard {}: {e}", shard.index))?;
    }
    let summary = w.finish().map_err(|e| format!("scale: manifest: {e}"))?;
    Ok((summary.total_bytes, t0.elapsed().as_secs_f64()))
}

/// Zipf closed-loop load; returns (ok, err, elapsed_secs).
fn drive_zipf_load(addr: SocketAddr, zipf: &Zipf) -> (u64, u64, f64) {
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let mut z = zipf.fork(c as u64);
        // PAR: benchmark client threads generating socket load against the
        // server under test — not kernel work.
        handles.push(std::thread::spawn(move || {
            let (mut ok, mut err) = (0u64, 0u64);
            for _ in 0..REQUESTS_PER_CLIENT {
                let user = z.sample();
                match http_get(addr, &format!("/recommend?user={user}&k={PROBE_K}")) {
                    Ok((200, _)) => ok += 1,
                    _ => err += 1,
                }
            }
            (ok, err)
        }));
    }
    let (mut ok, mut err) = (0u64, 0u64);
    for h in handles {
        match h.join() {
            Ok((o, e)) => {
                ok += o;
                err += e;
            }
            Err(_) => err += REQUESTS_PER_CLIENT as u64,
        }
    }
    (ok, err, started.elapsed().as_secs_f64())
}

/// Validates the live `/metrics` scrape under the scale engine: parses as
/// Prometheus text and carries the process-RSS and shard-residency
/// series. Returns the number of failed expectations.
fn validate_scale_scrape(addr: SocketAddr) -> usize {
    let mut failures = 0;
    match http_get(addr, "/metrics") {
        Ok((200, body)) => match dgnn_obs::export::parse_prometheus_text(&body) {
            Ok(samples) => {
                let value = |name: &str| samples.iter().find(|s| s.name == name).map(|s| s.value);
                for name in ["proc_rss_bytes", "proc_peak_rss_bytes"] {
                    if value(name).is_none_or(|v| v <= 0.0) {
                        eprintln!("scrape: /metrics missing a positive {name}");
                        failures += 1;
                    }
                }
                for name in ["serve_shard_user_resident", "serve_shard_loads"] {
                    if value(name).is_none_or(|v| v <= 0.0) {
                        eprintln!("scrape: /metrics missing a positive {name}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("scrape: /metrics does not parse: {e}");
                failures += 1;
            }
        },
        other => {
            eprintln!("scrape: /metrics -> {other:?}");
            failures += 1;
        }
    }
    failures
}

/// Pulls the `scale/qps` gauge out of a baseline snapshot file (same
/// targeted scan as the serve tier's baseline reader).
fn baseline_qps(json: &str) -> Option<f64> {
    let key = "\"scale/qps\"";
    let tail = &json[json.find(key)? + key.len()..];
    let number: String = tail
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number.parse().ok()
}

/// Runs the scale tier. `check_path` switches artifact writing off and the
/// regression gates on. Returns `Err` with a human-readable reason on any
/// gate failure.
pub fn run(check_path: Option<&str>) -> Result<(), String> {
    println!("=== Scale serving tier (sharded store, lazy load, Zipf clients) ===");
    let work = Path::new("results/scale");
    std::fs::create_dir_all(work).map_err(|e| format!("scale: results dir: {e}"))?;

    let bit_identity_failures = bit_identity_phase(work)?;

    println!("--- phase 2: scale preset under Zipf load ---");
    let spec = scale_bench();
    let world = work.join("world");
    let (world_bytes, gen_secs) = build_scale_world(&spec, &world)?;
    let user_shards_total = spec.num_user_shards();
    let user_table_bytes = (spec.num_users * spec.dim * 4) as u64;
    let item_table_bytes = (spec.num_items * spec.dim * 4) as u64;
    println!(
        "generated {} ({} users, {} user shards, {world_bytes} bytes) in {gen_secs:.1}s",
        spec.name, spec.num_users, user_shards_total
    );

    // Build the request distribution *before* the RSS baseline so its
    // table (shared across clients) cannot masquerade as engine growth.
    let zipf = Zipf::new(spec.num_users, ZIPF_THETA, SEED);
    dgnn_obs::set_live_telemetry(true);

    let rss_before = procstat::rss_bytes().unwrap_or(0);
    let t_start = Instant::now();
    let engine = Engine::open_segmented(&world).map_err(|e| format!("scale: opening world: {e}"))?;
    let mapped = engine.shard_stats().is_some_and(|s| s.mapped);
    let server =
        Server::start(engine, ServeConfig::default()).map_err(|e| format!("scale: server: {e}"))?;
    let addr = server.addr();
    match http_get(addr, &format!("/recommend?user=0&k={PROBE_K}")) {
        Ok((200, _)) => {}
        other => return Err(format!("scale: first answer failed: {other:?}")),
    }
    let startup_ms = t_start.elapsed().as_secs_f64() * 1e3;
    println!("startup to first answer: {startup_ms:.0} ms (mapped: {mapped})");

    let (ok, err, elapsed) = drive_zipf_load(addr, &zipf);
    let qps = (ok + err) as f64 / elapsed.max(1e-9);
    println!(
        "load: {CLIENTS} Zipf(θ={ZIPF_THETA}) clients x {REQUESTS_PER_CLIENT} requests -> \
         {ok} ok / {err} err in {elapsed:.2}s ({qps:.0} qps)"
    );

    let rss_after = procstat::rss_bytes().unwrap_or(0);
    let peak_rss = procstat::peak_rss_bytes().unwrap_or(0);
    let rss_growth = rss_after.saturating_sub(rss_before);
    let scrape_failures = validate_scale_scrape(addr);

    // Residency comes from the shared gauges the lazy store publishes on
    // every first-touch load — the same series `/metrics` exports.
    let shared = dgnn_obs::shared::snapshot();
    let g = |name: &str| shared.gauges.get(name).copied().unwrap_or(0.0);
    let shards_touched = g("serve/shard/user_resident") as u64;
    let resident_user_bytes = g("serve/shard/user_resident_bytes") as u64;
    println!(
        "residency: {shards_touched}/{user_shards_total} user shards resident, \
         {resident_user_bytes}/{user_table_bytes} user-table bytes, \
         rss {rss_before} -> {rss_after} (+{rss_growth})"
    );

    let stats = server.stats();
    server.shutdown();

    // Gates that assert architecture run in every mode.
    let mut gate_failures = Vec::new();
    if bit_identity_failures > 0 {
        gate_failures.push(format!("{bit_identity_failures} bit-identity failure(s)"));
    }
    if scrape_failures > 0 {
        gate_failures.push(format!("{scrape_failures} telemetry scrape failure(s)"));
    }
    if ok == 0 {
        gate_failures.push("zero successful requests".to_string());
    }
    if shards_touched == 0 || shards_touched >= user_shards_total as u64 {
        gate_failures.push(format!(
            "laziness not observed: {shards_touched}/{user_shards_total} user shards resident"
        ));
    }
    if resident_user_bytes as f64 > RESIDENCY_CEILING * user_table_bytes as f64 {
        gate_failures.push(format!(
            "resident user bytes {resident_user_bytes} exceed {RESIDENCY_CEILING} x table \
             ({user_table_bytes})"
        ));
    }
    if rss_growth >= user_table_bytes + item_table_bytes {
        gate_failures.push(format!(
            "RSS grew by {rss_growth} bytes — not bounded below full-table residency \
             ({} bytes)",
            user_table_bytes + item_table_bytes
        ));
    }
    if !gate_failures.is_empty() {
        return Err(format!("REGRESSION scale: {}", gate_failures.join("; ")));
    }

    if let Some(path) = check_path {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("scale: reading baseline {path}: {e}"))?;
        let base = baseline_qps(&json)
            .ok_or_else(|| format!("scale: scale/qps missing from baseline {path}"))?;
        let floor = base * (1.0 - REGRESSION_BUDGET);
        if qps < floor {
            return Err(format!(
                "REGRESSION scale: {qps:.0} qps is more than {:.0}% below baseline {base:.0} \
                 (floor {floor:.0})",
                100.0 * REGRESSION_BUDGET
            ));
        }
        println!("qps check passed against {path} ({qps:.0} vs baseline {base:.0})");
        return Ok(());
    }

    // Fold everything into one snapshot and write the artifact.
    dgnn_obs::reset();
    dgnn_obs::enable();
    let summary = stats.publish(elapsed);
    dgnn_obs::gauge_set("scale/qps", qps);
    dgnn_obs::gauge_set("scale/latency_ms_p50", summary.latency_ms.0);
    dgnn_obs::gauge_set("scale/latency_ms_p99", summary.latency_ms.2);
    dgnn_obs::gauge_set("scale/startup_to_first_answer_ms", startup_ms);
    dgnn_obs::gauge_set("scale/gen_secs", gen_secs);
    dgnn_obs::gauge_set("scale/users", spec.num_users as f64);
    dgnn_obs::gauge_set("scale/items", spec.num_items as f64);
    dgnn_obs::gauge_set("scale/dim", spec.dim as f64);
    dgnn_obs::gauge_set("scale/clients", CLIENTS as f64);
    dgnn_obs::gauge_set("scale/requests_per_client", REQUESTS_PER_CLIENT as f64);
    dgnn_obs::gauge_set("scale/zipf_theta", ZIPF_THETA);
    dgnn_obs::gauge_set("scale/checkpoint_bytes", world_bytes as f64);
    dgnn_obs::gauge_set("scale/user_shards_total", user_shards_total as f64);
    dgnn_obs::gauge_set("scale/user_shards_touched", shards_touched as f64);
    dgnn_obs::gauge_set("scale/resident_user_bytes", resident_user_bytes as f64);
    dgnn_obs::gauge_set("scale/user_table_bytes", user_table_bytes as f64);
    dgnn_obs::gauge_set("scale/rss_before_bytes", rss_before as f64);
    dgnn_obs::gauge_set("scale/rss_after_bytes", rss_after as f64);
    dgnn_obs::gauge_set("scale/rss_growth_bytes", rss_growth as f64);
    dgnn_obs::gauge_set("scale/peak_rss_bytes", peak_rss as f64);
    dgnn_obs::gauge_set("scale/mapped", f64::from(u8::from(mapped)));
    dgnn_obs::counter_add("scale/ok", ok);
    dgnn_obs::counter_add("scale/err", err);
    dgnn_obs::counter_add("scale/bit_identity_failures", bit_identity_failures as u64);
    dgnn_obs::counter_add("scale/scrape_failures", scrape_failures as u64);
    let snapshot = dgnn_obs::snapshot();
    dgnn_obs::disable();
    dgnn_obs::reset();

    let mut out = String::from("{\n  \"models\": {\n");
    out.push_str(&format!("    \"DGNN-scale\": {}\n", snapshot_to_json(&snapshot, 4).trim_start()));
    out.push_str("  }\n}\n");
    std::fs::write("BENCH_scale.json", out).map_err(|e| format!("scale: writing artifact: {e}"))?;
    println!("\nwrote BENCH_scale.json and results/scale/");
    Ok(())
}
