//! Plain-text dataset persistence.
//!
//! Format (one record per line, `#` comments allowed):
//!
//! ```text
//! # header
//! meta <users> <items> <relations>
//! y <user> <item> <time>
//! s <user_a> <user_b>
//! t <item> <relation>
//! ```
//!
//! The real Ciao/Epinions/Yelp dumps can be converted to this format and
//! loaded with [`read_graph`]; everything downstream (splits, models,
//! experiments) is agnostic to whether the graph came from [`crate::synth`]
//! or from disk.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use dgnn_graph::{HeteroGraph, HeteroGraphBuilder};

/// Errors raised while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line.
    Malformed {
        /// 1-based line number of the offending record.
        line: usize,
        /// Human-readable description of what was wrong.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Serializes a graph to the text format.
pub fn write_graph(g: &HeteroGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "meta {} {} {}",
        g.num_users(),
        g.num_items(),
        g.num_relations()
    );
    for it in g.interactions() {
        let _ = writeln!(out, "y {} {} {}", it.user, it.item, it.time);
    }
    for &(a, b) in g.social_ties() {
        let _ = writeln!(out, "s {a} {b}");
    }
    for &(v, r) in g.item_relations() {
        let _ = writeln!(out, "t {v} {r}");
    }
    out
}

/// Writes a graph to a file.
pub fn save_graph(g: &HeteroGraph, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, write_graph(g))
}

/// Parses the text format.
pub fn read_graph(text: &str) -> Result<HeteroGraph, ParseError> {
    let mut builder: Option<HeteroGraphBuilder> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        let mut field = |what: &str| -> Result<usize, ParseError> {
            parts
                .next()
                .ok_or_else(|| ParseError::Malformed {
                    line: n,
                    message: format!("missing {what}"),
                })?
                .parse()
                .map_err(|_| ParseError::Malformed {
                    line: n,
                    message: format!("{what} is not an integer"),
                })
        };
        match tag {
            "meta" => {
                let users = field("user count")?;
                let items = field("item count")?;
                let rels = field("relation count")?;
                builder = Some(HeteroGraphBuilder::new(users, items, rels));
            }
            "y" | "s" | "t" => {
                let b = builder.as_mut().ok_or_else(|| ParseError::Malformed {
                    line: n,
                    message: "record before meta line".into(),
                })?;
                match tag {
                    "y" => {
                        let (u, v, t) =
                            (field("user")?, field("item")?, field("time")?);
                        b.interaction(u, v, t as u32);
                    }
                    "s" => {
                        let (a, c) = (field("user a")?, field("user b")?);
                        b.social_tie(a, c);
                    }
                    _ => {
                        let (v, r) = (field("item")?, field("relation")?);
                        b.item_relation(v, r);
                    }
                }
            }
            other => {
                return Err(ParseError::Malformed {
                    line: n,
                    message: format!("unknown record tag {other:?}"),
                })
            }
        }
    }
    builder
        .map(HeteroGraphBuilder::build)
        .ok_or(ParseError::Malformed { line: 0, message: "missing meta line".into() })
}

/// Loads a graph from a file.
pub fn load_graph(path: impl AsRef<Path>) -> Result<HeteroGraph, ParseError> {
    read_graph(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new(3, 4, 2);
        b.interaction(0, 1, 5)
            .interaction(2, 3, 1)
            .social_tie(0, 2)
            .item_relation(1, 0)
            .item_relation(3, 1);
        b.build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = toy();
        let text = write_graph(&g);
        let back = read_graph(&text).expect("roundtrip parses");
        assert_eq!(back.num_users(), g.num_users());
        assert_eq!(back.num_items(), g.num_items());
        assert_eq!(back.num_relations(), g.num_relations());
        assert_eq!(back.interactions(), g.interactions());
        assert_eq!(back.social_ties(), g.social_ties());
        assert_eq!(back.item_relations(), g.item_relations());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\nmeta 2 2 1\n  # indented comment\ny 0 1 0\n";
        let g = read_graph(text).expect("parses");
        assert_eq!(g.interactions().len(), 1);
    }

    #[test]
    fn missing_meta_is_an_error() {
        let err = read_graph("y 0 1 0\n").unwrap_err();
        assert!(err.to_string().contains("before meta"), "{err}");
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let err = read_graph("meta 2 2 1\ny 0 x 0\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let err = read_graph("meta 1 1 1\nq 0 0\n").unwrap_err();
        assert!(err.to_string().contains("unknown record tag"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let g = toy();
        let dir = std::env::temp_dir().join("dgnn-io-test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("toy.txt");
        save_graph(&g, &path).expect("save");
        let back = load_graph(&path).expect("load");
        assert_eq!(back.interactions(), g.interactions());
        let _ = std::fs::remove_file(path);
    }
}
