//! Scaled dataset presets calibrated to the paper's Table I.
//!
//! The real crawls are 20k–100k users; the presets keep each dataset's
//! *character* — per-user interaction rate, per-user social degree, and the
//! item/user ratio — at a scale where the full 15-model × 3-dataset grid of
//! Table II trains in minutes. See `PAPER_TABLE1` for the original numbers
//! printed side by side by the `table1` experiment binary.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::PaperDatasetStats;
use crate::synth::WorldSpec;
use crate::Dataset;

/// The original Table I statistics from the paper, for side-by-side
/// reporting.
pub const PAPER_TABLE1: [PaperDatasetStats; 3] = [
    PaperDatasetStats {
        name: "Ciao",
        users: 1_925,
        items: 15_053,
        interactions: 30_370,
        interaction_density_pct: 0.1048,
        social_ties: 65_084,
        social_density_pct: 1.7564,
    },
    PaperDatasetStats {
        name: "Epinions",
        users: 18_081,
        items: 251_722,
        interactions: 715_821,
        interaction_density_pct: 0.0157,
        social_ties: 572_784,
        social_density_pct: 0.1752,
    },
    PaperDatasetStats {
        name: "Yelp",
        users: 99_262,
        items: 105_142,
        interactions: 769_929,
        interaction_density_pct: 0.0074,
        social_ties: 1_298_522,
        social_density_pct: 0.0132,
    },
];

/// Number of sampled negatives per test user (the paper's protocol).
pub const NUM_EVAL_NEGATIVES: usize = 100;

fn materialize(spec: WorldSpec, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let full = spec.generate(&mut rng);
    Dataset::leave_one_out(spec.name, &full, 2, NUM_EVAL_NEGATIVES, &mut rng)
}

/// `ciao-s`: the densest-social dataset — few users, many items per user,
/// strong social signal (paper: 15.8 interactions/user, 33.8 ties/user).
pub fn ciao_small(seed: u64) -> Dataset {
    materialize(
        WorldSpec {
            name: "ciao-s",
            num_users: 300,
            num_items: 1_500,
            num_categories: 12,
            num_communities: 10,
            factor_dim: 8,
            target_interactions: 4_500,
            target_social_ties: 3_000,
            beta: 3.0,
            item_noise: 0.35,
            user_noise: 0.35,
            second_category_prob: 0.10,
        },
        seed,
    )
}

/// `epinions-s`: the largest catalog and interaction volume
/// (paper: 39.6 interactions/user, 13.9 items per user of catalog).
pub fn epinions_small(seed: u64) -> Dataset {
    materialize(
        WorldSpec {
            name: "epinions-s",
            num_users: 500,
            num_items: 3_500,
            num_categories: 16,
            num_communities: 14,
            factor_dim: 8,
            target_interactions: 12_000,
            target_social_ties: 5_000,
            beta: 3.0,
            item_noise: 0.40,
            user_noise: 0.40,
            second_category_prob: 0.10,
        },
        seed,
    )
}

/// `yelp-s`: the sparsest interactions, the most users, and the largest
/// total edge count (paper: 7.8 interactions/user, item/user ≈ 1.06,
/// largest social network).
pub fn yelp_small(seed: u64) -> Dataset {
    materialize(
        WorldSpec {
            name: "yelp-s",
            num_users: 1_200,
            num_items: 1_300,
            num_categories: 10,
            num_communities: 12,
            factor_dim: 8,
            target_interactions: 9_400,
            target_social_ties: 8_400,
            beta: 3.0,
            item_noise: 0.45,
            user_noise: 0.45,
            second_category_prob: 0.10,
        },
        seed,
    )
}

/// A tiny dataset for unit/integration tests and the quickstart example:
/// trains in well under a second.
pub fn tiny(seed: u64) -> Dataset {
    materialize(
        WorldSpec {
            name: "tiny",
            num_users: 60,
            num_items: 150,
            num_categories: 5,
            num_communities: 4,
            factor_dim: 6,
            target_interactions: 700,
            target_social_ties: 250,
            beta: 3.0,
            item_noise: 0.3,
            user_noise: 0.3,
            second_category_prob: 0.1,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_has_tests_and_training_data() {
        let ds = tiny(1);
        assert!(ds.num_test() > 20, "got {} test users", ds.num_test());
        assert!(ds.num_train() > 300);
        assert_eq!(ds.name, "tiny");
        // All negatives lists hit the protocol size (catalog is big enough).
        assert!(ds.test.iter().all(|t| t.negatives.len() == 100));
    }

    #[test]
    fn presets_preserve_relative_character() {
        // Cheap sanity check on the three scaled presets: ciao has the
        // densest interactions; yelp has the most users and item/user ≈ 1.
        let ciao = ciao_small(1);
        let yelp = yelp_small(1);
        assert!(ciao.graph.interaction_density() > yelp.graph.interaction_density());
        assert!(yelp.graph.num_users() > ciao.graph.num_users());
        let ratio = yelp.graph.num_items() as f64 / yelp.graph.num_users() as f64;
        assert!((0.8..=1.4).contains(&ratio), "yelp item/user ratio {ratio}");
    }
}
