//! Microbench: evaluation throughput — ranking 101 candidates per test
//! user and computing HR/NDCG at all cutoffs (the paper's protocol).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgnn_bench::datasets;
use dgnn_eval::{evaluate, Recommender};
use dgnn_tensor::{Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A fixed-embedding scorer standing in for a trained model.
struct FixedEmbeddings {
    user: Matrix,
    item: Matrix,
}

impl Recommender for FixedEmbeddings {
    fn name(&self) -> &str {
        "fixed"
    }
    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        let u = self.user.row(user);
        items
            .iter()
            .map(|&v| self.item.row(v).iter().zip(u).map(|(&a, &b)| a * b).sum())
            .collect()
    }
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_protocol");
    let mut rng = StdRng::seed_from_u64(9);
    for ds in datasets() {
        let model = FixedEmbeddings {
            user: Init::Uniform(0.1).build(ds.graph.num_users(), 48, &mut rng),
            item: Init::Uniform(0.1).build(ds.graph.num_items(), 48, &mut rng),
        };
        group.bench_with_input(
            BenchmarkId::new("all_cutoffs", &ds.name),
            &(model, ds.test),
            |b, (model, test)| b.iter(|| black_box(evaluate(model, test))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
