//! Exact t-SNE (van der Maaten & Hinton, JMLR 2008) — the projection the
//! paper uses for Figure 9.
//!
//! O(n²) per iteration, which is fine for the few-hundred-point samples a
//! visualization uses. Initialized from PCA for stability and determinism.

use dgnn_tensor::Matrix;

use crate::pca;

/// t-SNE hyperparameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum (0.5 for the first quarter, then this value).
    pub momentum: f32,
    /// Early-exaggeration factor applied for the first quarter.
    pub exaggeration: f32,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 20.0,
            iterations: 300,
            learning_rate: 20.0,
            momentum: 0.8,
            exaggeration: 4.0,
        }
    }
}

/// Embeds the rows of `x` into 2-D.
pub fn tsne_2d(x: &Matrix, cfg: &TsneConfig) -> Matrix {
    let n = x.rows();
    assert!(n >= 4, "tsne: need at least 4 points");

    // Symmetrized input affinities with per-point bandwidth calibrated to
    // the target perplexity by bisection.
    let d2 = pairwise_sq_dists(x);
    let perplexity = cfg.perplexity.min((n as f32 - 1.0) / 3.0).max(2.0);
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        let betas = calibrate_beta(&d2, i, n, perplexity);
        for j in 0..n {
            if i != j {
                p[i * n + j] = (-d2[i * n + j] * betas).exp();
            }
        }
        let sum: f32 = p[i * n..(i + 1) * n].iter().sum();
        if sum > 0.0 {
            for v in &mut p[i * n..(i + 1) * n] {
                *v /= sum;
            }
        }
    }
    // Symmetrize.
    let mut pij = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            pij[i * n + j] = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f32);
        }
    }

    // PCA init, scaled small.
    let init = pca::pca_2d(x);
    let scale = 1e-2 / (init.norm() / (n as f32).sqrt()).max(1e-6);
    let mut y: Vec<[f32; 2]> =
        (0..n).map(|i| [init[(i, 0)] * scale, init[(i, 1)] * scale]).collect();
    let mut vel = vec![[0.0f32; 2]; n];

    let exag_iters = cfg.iterations / 4;
    for it in 0..cfg.iterations {
        let exag = if it < exag_iters { cfg.exaggeration } else { 1.0 };
        let momentum = if it < exag_iters { 0.5 } else { cfg.momentum };

        // Student-t low-dimensional affinities.
        let mut qnum = vec![0.0f32; n * n];
        let mut qsum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let q = 1.0 / (1.0 + dx * dx + dy * dy);
                qnum[i * n + j] = q;
                qnum[j * n + i] = q;
                qsum += 2.0 * q;
            }
        }
        let qsum = qsum.max(1e-12);

        // Gradient and update.
        for i in 0..n {
            let mut g = [0.0f32; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = qnum[i * n + j];
                let coeff = (exag * pij[i * n + j] - q / qsum) * q;
                g[0] += 4.0 * coeff * (y[i][0] - y[j][0]);
                g[1] += 4.0 * coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                vel[i][k] = momentum * vel[i][k] - cfg.learning_rate * g[k];
                // Clamp the per-step displacement: exact t-SNE without
                // adaptive gains can overshoot during early exaggeration.
                vel[i][k] = vel[i][k].clamp(-2.0, 2.0);
                y[i][k] += vel[i][k];
            }
        }

        // Re-center to keep the embedding bounded.
        let mut mean = [0.0f32; 2];
        for yi in &y {
            mean[0] += yi[0];
            mean[1] += yi[1];
        }
        mean[0] /= n as f32;
        mean[1] /= n as f32;
        for yi in &mut y {
            yi[0] -= mean[0];
            yi[1] -= mean[1];
        }
    }

    Matrix::from_fn(n, 2, |r, c| y[r][c])
}

fn pairwise_sq_dists(x: &Matrix) -> Vec<f32> {
    let n = x.rows();
    let mut d2 = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f32 = x
                .row(i)
                .iter()
                .zip(x.row(j))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }
    d2
}

/// Bisection on β = 1/(2σ²) so row `i`'s conditional distribution has the
/// requested perplexity.
fn calibrate_beta(d2: &[f32], i: usize, n: usize, perplexity: f32) -> f32 {
    let target_h = perplexity.ln();
    let mut beta = 1.0f32;
    let (mut lo, mut hi) = (0.0f32, f32::INFINITY);
    for _ in 0..50 {
        let mut sum = 0.0f32;
        let mut dsum = 0.0f32;
        for j in 0..n {
            if j == i {
                continue;
            }
            let e = (-d2[i * n + j] * beta).exp();
            sum += e;
            dsum += d2[i * n + j] * e;
        }
        if sum <= 1e-12 {
            beta /= 2.0;
            continue;
        }
        // Shannon entropy of the conditional distribution.
        let h = beta * dsum / sum + sum.ln();
        let diff = h - target_h;
        if diff.abs() < 1e-4 {
            break;
        }
        if diff > 0.0 {
            lo = beta;
            beta = if hi.is_finite() { (beta + hi) / 2.0 } else { beta * 2.0 };
        } else {
            hi = beta;
            beta = (beta + lo) / 2.0;
        }
    }
    beta
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian-ish blobs in 8-D.
    fn blobs(n_per: usize) -> (Matrix, Vec<usize>) {
        let n = n_per * 2;
        let x = Matrix::from_fn(n, 8, |r, c| {
            let blob = r / n_per;
            let center = if blob == 0 { -3.0 } else { 3.0 };
            let noise = (((r * 31 + c * 17) % 19) as f32 / 19.0 - 0.5) * 0.5;
            if c < 4 {
                center + noise
            } else {
                noise
            }
        });
        let labels = (0..n).map(|r| r / n_per).collect();
        (x, labels)
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let (x, labels) = blobs(20);
        let y = tsne_2d(&x, &TsneConfig { iterations: 150, ..TsneConfig::default() });
        assert_eq!(y.shape(), (40, 2));
        assert!(y.all_finite());
        // Mean intra-blob distance < mean inter-blob distance.
        let dist = |a: usize, b: usize| -> f32 {
            let dx = y[(a, 0)] - y[(b, 0)];
            let dy = y[(a, 1)] - y[(b, 1)];
            (dx * dx + dy * dy).sqrt()
        };
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for a in 0..40 {
            for b in (a + 1)..40 {
                if labels[a] == labels[b] {
                    intra = (intra.0 + dist(a, b), intra.1 + 1);
                } else {
                    inter = (inter.0 + dist(a, b), inter.1 + 1);
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f32;
        let inter_mean = inter.0 / inter.1 as f32;
        assert!(
            inter_mean > intra_mean * 1.5,
            "blobs merged: intra {intra_mean}, inter {inter_mean}"
        );
    }

    #[test]
    fn deterministic_given_same_input() {
        let (x, _) = blobs(8);
        let cfg = TsneConfig { iterations: 50, ..TsneConfig::default() };
        let a = tsne_2d(&x, &cfg);
        let b = tsne_2d(&x, &cfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_few_points_rejected() {
        let x = Matrix::zeros(3, 2);
        tsne_2d(&x, &TsneConfig::default());
    }
}
