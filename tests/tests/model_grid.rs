//! Every model in the Table II roster trains and evaluates sanely on the
//! tiny dataset — the smoke version of the full experiment grid.

use dgnn_baselines::all_models;
use dgnn_core::Dgnn;
use dgnn_data::tiny;
use dgnn_eval::{evaluate_at, Trainable};
use dgnn_integration_tests::{quick_baseline, quick_dgnn};

#[test]
fn all_fifteen_models_produce_finite_metrics() {
    let data = tiny(42);
    let mut models = all_models(&quick_baseline());
    for model in &mut models {
        model.fit(&data, 7);
        let m = evaluate_at(model.as_ref(), &data.test, 10);
        assert!(m.hr.is_finite() && m.ndcg.is_finite(), "{} produced NaN", model.name());
        assert!((0.0..=1.0).contains(&m.hr), "{} HR out of range", model.name());
        assert!(m.ndcg <= m.hr + 1e-12, "{} NDCG exceeds HR bound", model.name());
    }
    let mut dgnn = Dgnn::new(quick_dgnn());
    dgnn.fit(&data, 7);
    let m = evaluate_at(&dgnn, &data.test, 10);
    assert!(m.hr.is_finite());
}

#[test]
fn model_names_are_unique() {
    let models = all_models(&quick_baseline());
    let mut names: Vec<&str> = models.iter().map(|m| m.name()).collect();
    names.push("DGNN");
    let mut deduped = names.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), names.len(), "duplicate model names: {names:?}");
}

#[test]
fn refitting_resets_state() {
    // Fitting the same model twice on different data must not leak state:
    // metrics are those of the second fit.
    let data_a = tiny(42);
    let data_b = tiny(43);
    let mut once = Dgnn::new(quick_dgnn());
    once.fit(&data_b, 7);
    let mut twice = Dgnn::new(quick_dgnn());
    twice.fit(&data_a, 7);
    twice.fit(&data_b, 7);
    let m_once = evaluate_at(&once, &data_b.test, 10);
    let m_twice = evaluate_at(&twice, &data_b.test, 10);
    assert_eq!(m_once.hr, m_twice.hr, "second fit must fully reset the model");
}
