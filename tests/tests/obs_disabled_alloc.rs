//! Disabled-mode cost proof: the observability hot path must not allocate
//! when recording is off. A counting global allocator measures the exact
//! number of heap allocations across a burst of disabled-mode calls.
//!
//! This lives in its own test binary because `#[global_allocator]` is a
//! process-wide choice; keeping a single `#[test]` here also keeps the
//! measurement window free of concurrent harness threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the `System` allocator unchanged;
// the only addition is a relaxed counter increment, which cannot violate
// any allocator invariant.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a matching `alloc` on `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_observability_hot_path_never_allocates() {
    dgnn_obs::reset();
    dgnn_obs::disable();

    // Warm up thread-locals outside the measurement window.
    {
        let _g = dgnn_obs::span("warmup");
        dgnn_obs::counter_add("warmup", 1);
        dgnn_obs::hist_record("warmup", 1.0);
        dgnn_obs::record_op("matmul", dgnn_obs::OpPhase::Forward, 1);
    }

    // The counter is process-wide, so a stray allocation on the libtest
    // harness thread during the window would be charged to us. Take the
    // minimum over a few attempts: if ANY window of 10k calls observes
    // zero allocations, the hot path itself is allocation-free, and any
    // nonzero reading was cross-thread noise.
    let mut min_allocs = u64::MAX;
    for _ in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..10_000 {
            let _batch = dgnn_obs::span("batch");
            let _fwd = dgnn_obs::span("forward");
            dgnn_obs::counter_add("grad_nonfinite", 1);
            dgnn_obs::gauge_set("lr", 0.01);
            dgnn_obs::hist_record("grad_norm/preclip", 2.5);
            dgnn_obs::record_op("matmul", dgnn_obs::OpPhase::Forward, 120);
            dgnn_obs::record_op("spmm", dgnn_obs::OpPhase::Backward, 80);
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        min_allocs = min_allocs.min(after - before);
        if min_allocs == 0 {
            break;
        }
    }
    assert_eq!(
        min_allocs, 0,
        "disabled-mode recording must be allocation-free"
    );

    // The same calls while disabled must also have recorded nothing.
    assert!(dgnn_obs::take_events().is_empty());
    let snap = dgnn_obs::snapshot();
    assert!(snap.counters.is_empty() && snap.histograms.is_empty() && snap.ops.is_empty());
}
