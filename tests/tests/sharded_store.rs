//! Segmented-checkpoint and sharded-store contracts, end to end:
//!
//! * dense ↔ segmented round-trip is **bit-identical** (every tensor,
//!   every seen list, the carried metadata);
//! * the sharded engine answers bit-identically to the dense engine for
//!   every user, at kernel thread counts 1 and 4, in both positional-read
//!   and map modes;
//! * every corruption of every file — truncation at any prefix, byte
//!   flips anywhere, a missing or stray segment — surfaces as a typed
//!   [`CheckpointError`], never a panic and never silently-wrong data;
//! * lazy loading is observable (residency counts move only on first
//!   touch) and load failures are **sticky**: a corrupt shard yields the
//!   same `ShardUnavailable` on every query that needs it while healthy
//!   shards keep serving.

use std::path::{Path, PathBuf};

use dgnn_serve::{
    save_segmented, Checkpoint, CheckpointError, Engine, MapMode, Query, QueryError,
    SegmentedCheckpoint,
};
use dgnn_tensor::{parallel, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USERS: usize = 41; // deliberately not a multiple of the shard size
const ITEMS: usize = 23;
const DIM: usize = 8;
const USER_SHARD_ROWS: usize = 12; // 4 shards: 12+12+12+5
const ITEM_SHARD_ROWS: usize = 9; // 3 shards: 9+9+5

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dgnn-sharded-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating test dir");
    dir
}

/// A synthetic but structurally faithful checkpoint: random embeddings,
/// a valid CSR seen-list, and the metadata a trained export carries.
fn synth_checkpoint(seed: u64) -> Checkpoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fill = |rows: usize| {
        (0..rows * DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect::<Vec<f32>>()
    };
    let user = Matrix::from_vec(USERS, DIM, fill(USERS));
    let item = Matrix::from_vec(ITEMS, DIM, fill(ITEMS));
    let mut indptr = vec![0u32];
    let mut items = Vec::new();
    for u in 0..USERS {
        for j in 0..(u % 4) {
            items.push(((u * 7 + j * 3) % ITEMS) as u32);
        }
        indptr.push(items.len() as u32);
    }
    let mut c = Checkpoint::new();
    c.set_meta("model", "synthetic");
    c.set_meta("dataset", "sharded-store-test");
    c.push_matrix("final/user_scoring", &user);
    c.push_matrix("final/item", &item);
    c.push_u32("seen/indptr", indptr);
    c.push_u32("seen/items", items);
    c
}

fn save_fixture(name: &str) -> (Checkpoint, PathBuf) {
    let dir = fresh_dir(name);
    let ckpt = synth_checkpoint(2023);
    save_segmented(&ckpt, &dir, USER_SHARD_ROWS, ITEM_SHARD_ROWS).expect("segmented save");
    (ckpt, dir)
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn segmented_roundtrip_reassembles_bit_identical() {
    let (ckpt, dir) = save_fixture("roundtrip");
    let mut modes = vec![MapMode::Off];
    if MapMode::Auto.resolves_to_map() {
        modes.push(MapMode::On);
    }
    for mode in modes {
        let seg = SegmentedCheckpoint::open_with(&dir, mode).expect("open");
        seg.verify_all().expect("all digests verify");
        let back = seg.reassemble().expect("reassemble");
        for name in ["final/user_scoring", "final/item"] {
            assert_eq!(
                bits(&ckpt.matrix(name).expect("source tensor")),
                bits(&back.matrix(name).expect("round-tripped tensor")),
                "{name} not bit-identical through the segmented format"
            );
        }
        for name in ["seen/indptr", "seen/items"] {
            assert_eq!(
                ckpt.u32s(name).expect("source list"),
                back.u32s(name).expect("round-tripped list"),
                "{name} not identical through the segmented format"
            );
        }
        assert_eq!(back.meta("model"), Some("synthetic"));
        assert_eq!(back.meta("dataset"), Some("sharded-store-test"));
    }
}

#[test]
fn sharded_engine_is_bit_identical_to_dense_at_both_thread_counts() {
    let (ckpt, dir) = save_fixture("bitident");
    let dense = Engine::from_checkpoint(&ckpt).expect("dense engine");
    let mut modes = vec![MapMode::Off];
    if MapMode::Auto.resolves_to_map() {
        modes.push(MapMode::On);
    }
    let saved = parallel::current_threads();
    for mode in modes {
        let sharded = Engine::open_segmented_with(&dir, mode).expect("sharded engine");
        for threads in [1usize, 4] {
            parallel::set_threads(threads);
            for exclude_seen in [false, true] {
                let queries: Vec<Query> = (0..USERS)
                    .map(|u| Query { user: u as u32, k: 5, exclude_seen })
                    .collect();
                let a = dense.recommend_batch(&queries);
                let b = sharded.recommend_batch(&queries);
                for (u, (ra, rb)) in a.iter().zip(&b).enumerate() {
                    let (xs, ys) = (
                        ra.as_ref().expect("dense answers every valid user"),
                        rb.as_ref().expect("sharded answers every valid user"),
                    );
                    assert_eq!(xs.len(), ys.len());
                    for (x, y) in xs.iter().zip(ys) {
                        assert_eq!(
                            (x.item, x.score.to_bits()),
                            (y.item, y.score.to_bits()),
                            "user {u} diverges (threads={threads}, exclude_seen={exclude_seen})"
                        );
                    }
                }
            }
        }
    }
    parallel::set_threads(saved);
}

/// Opening plus full verification plus reassembly must yield a typed
/// error for a damaged directory — and must never panic.
fn open_all(dir: &Path) -> Result<(), CheckpointError> {
    let seg = SegmentedCheckpoint::open_with(dir, MapMode::Off)?;
    seg.verify_all()?;
    seg.reassemble().map(|_| ())
}

#[test]
fn every_truncation_of_every_file_is_a_typed_error() {
    let (_, dir) = save_fixture("truncate");
    let files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("listing fixture")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(files.len(), 1 + 4 + 3, "manifest + 4 user + 3 item segments");
    for file in &files {
        let original = std::fs::read(file).expect("reading fixture file");
        for keep in [0usize, 1, 4, original.len() / 2, original.len() - 1] {
            std::fs::write(file, &original[..keep]).expect("truncating");
            let err = open_all(&dir).expect_err(&format!(
                "{} truncated to {keep} bytes must fail",
                file.display()
            ));
            // Any typed variant is acceptable; reaching here already proves
            // no panic. Exercise Display for coverage of the error path.
            let _ = err.to_string();
        }
        std::fs::write(file, &original).expect("restoring");
    }
    open_all(&dir).expect("fixture restored to a valid state");
}

#[test]
fn every_byte_flip_region_of_every_file_is_a_typed_error() {
    let (_, dir) = save_fixture("byteflip");
    let files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("listing fixture")
        .map(|e| e.expect("dir entry").path())
        .collect();
    for file in &files {
        let original = std::fs::read(file).expect("reading fixture file");
        let n = original.len();
        for offset in [0usize, n / 3, 2 * n / 3, n - 1] {
            let mut mutated = original.clone();
            mutated[offset] ^= 0xA5;
            std::fs::write(file, &mutated).expect("writing flip");
            let err = open_all(&dir).expect_err(&format!(
                "{} with byte {offset} flipped must fail",
                file.display()
            ));
            let _ = err.to_string();
        }
        std::fs::write(file, &original).expect("restoring");
    }
    open_all(&dir).expect("fixture restored to a valid state");
}

#[test]
fn missing_and_stray_segments_are_detected_by_name() {
    let (_, dir) = save_fixture("inventory");

    // A stray segment the manifest does not know about.
    std::fs::write(dir.join("user-00099.seg"), b"not a segment").expect("planting stray");
    match open_all(&dir) {
        Err(CheckpointError::ExtraSegment(name)) => assert!(name.contains("user-00099.seg")),
        other => panic!("stray segment must be ExtraSegment, got {other:?}"),
    }
    std::fs::remove_file(dir.join("user-00099.seg")).expect("removing stray");

    // A manifest-listed segment that is gone.
    let victim = dir.join("item-00001.seg");
    let bytes = std::fs::read(&victim).expect("reading victim");
    std::fs::remove_file(&victim).expect("deleting victim");
    match open_all(&dir) {
        Err(CheckpointError::MissingSegment(name)) => assert!(name.contains("item-00001.seg")),
        other => panic!("deleted segment must be MissingSegment, got {other:?}"),
    }
    std::fs::write(&victim, &bytes).expect("restoring victim");
    open_all(&dir).expect("fixture restored to a valid state");

    // A digest mismatch names the exact segment. Flip a byte in the middle
    // of the payload (headers would fail parse first; the digest check runs
    // before parsing, so any offset reports the same way).
    let mut mutated = bytes.clone();
    let mid = mutated.len() / 2;
    mutated[mid] ^= 0xFF;
    std::fs::write(&victim, &mutated).expect("corrupting victim");
    let seg = SegmentedCheckpoint::open_with(&dir, MapMode::Off).expect("manifest still valid");
    match seg.load_item_shard(1) {
        Err(CheckpointError::SegmentDigestMismatch { segment, .. }) => {
            assert!(segment.contains("item-00001.seg"));
        }
        other => panic!("digest mismatch must be typed, got {other:?}"),
    }
    std::fs::write(&victim, &bytes).expect("restoring victim");
}

#[test]
fn lazy_loading_is_observable_and_shard_failures_are_sticky() {
    let (_, dir) = save_fixture("lazy");
    let engine = Engine::open_segmented_with(&dir, MapMode::Off).expect("sharded engine");
    let stats0 = engine.shard_stats().expect("sharded engines report stats");
    assert_eq!(stats0.user_resident, 0, "nothing resident before first touch");
    assert_eq!(stats0.user_total, 4);
    assert_eq!(stats0.user_table_bytes, (USERS * DIM * 4) as u64);

    // First touch loads exactly the shard of user 0.
    engine.recommend(Query { user: 0, k: 5, exclude_seen: false }).expect("healthy query");
    let stats1 = engine.shard_stats().expect("stats after touch");
    assert_eq!(stats1.user_resident, 1);
    assert_eq!(stats1.user_resident_bytes, (USER_SHARD_ROWS * DIM * 4) as u64);

    // Repeat touch keeps residency flat — no reload.
    engine.recommend(Query { user: 1, k: 5, exclude_seen: true }).expect("same-shard query");
    assert_eq!(engine.shard_stats().expect("stats").user_resident, 1);

    // Corrupt the *last* user shard on disk after open: its first touch
    // must fail with a typed 503-mapped error, the failure must be sticky
    // (no reread), and healthy shards must keep answering.
    let victim = dir.join("user-00003.seg");
    let bytes = std::fs::read(&victim).expect("reading victim");
    let mut mutated = bytes.clone();
    let mid = mutated.len() / 2;
    mutated[mid] ^= 0xFF;
    std::fs::write(&victim, &mutated).expect("corrupting victim");

    let last = (USERS - 1) as u32;
    let first_err = engine
        .recommend(Query { user: last, k: 5, exclude_seen: false })
        .expect_err("corrupt shard must not serve");
    match &first_err {
        QueryError::ShardUnavailable { shard, .. } => assert_eq!(*shard, 3),
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }

    // Healing the file on disk must NOT heal the engine: the failure was
    // latched at first touch, so responses stay deterministic.
    std::fs::write(&victim, &bytes).expect("restoring victim");
    let second_err = engine
        .recommend(Query { user: last, k: 5, exclude_seen: false })
        .expect_err("shard failure must be sticky");
    assert_eq!(first_err, second_err, "degraded responses must be deterministic");

    // Healthy shards are unaffected throughout.
    engine.recommend(Query { user: 0, k: 5, exclude_seen: false }).expect("healthy shard");

    // A fresh open sees the healed file and serves everything.
    let healed = Engine::open_segmented_with(&dir, MapMode::Off).expect("reopen");
    healed.recommend(Query { user: last, k: 5, exclude_seen: false }).expect("healed query");
}
