//! Graph-optimizing compiler passes over a traced step: constant folding,
//! common-subexpression elimination, and op fusion.
//!
//! The optimizer consumes the same [`ShapeTracer`] graph the memory planner
//! does and emits a [`RewritePlan`] — a per-node action table the tape
//! executes as *patches* over the original graph. No node is renumbered or
//! removed: an action only changes how that node's forward value is
//! produced, so gradients, the memory plan, and every downstream consumer
//! carry over unchanged and optimized execution stays bit-identical to
//! unoptimized execution.
//!
//! # The passes
//!
//! 1. **Constant folding** ([`RewriteAction::Fold`]): training-invariant
//!    subgraphs — nodes whose transitive leaves are all constants, with no
//!    parameter, dropout, or per-batch-payload op (`gather`, segment ops)
//!    in the cone — are hoisted into a cross-step fold cache. The first
//!    step computes and caches them; every later step serves the cached
//!    value after verifying the cached operands still match bit-for-bit.
//!    `spmm` *is* foldable: its adjacency is a persistent `Rc<Csr>` shared
//!    across steps, which is exactly what the runtime verifier keys on.
//! 2. **CSE** ([`RewriteAction::CopyOf`]): value numbering keyed on
//!    `(op, attr, canonical input numbers, param id)` finds nodes that
//!    provably recompute an earlier node's value; duplicates become pooled
//!    copies of the representative. Constants and dropout never participate
//!    (the runtime congruence verifier refuses them), and folded nodes are
//!    served from the cache already.
//! 3. **Op fusion** ([`RewriteAction::Steal`] / [`RewriteAction::Stream`] /
//!    [`RewriteAction::ElideGather`] + [`RewriteAction::GatherMatMul`]):
//!    * a `gather` feeding exactly one `matmul` outside the loss cone is
//!      elided entirely — the fused kernel reads the gathered rows straight
//!      out of the embedding table;
//!    * elementwise epilogues (`add`, `sub`, `add_row`, `scale`, `neg`,
//!      `add_scalar`) whose first operand is statically dead afterwards
//!      steal that operand's buffer and run in place — fusing
//!      `matmul → add → …` chains without a second allocation;
//!    * remaining broadcast ops (`add_row`, `mul_row`, `mul_col`) stream
//!      through a single-pass lowered kernel instead of clone-then-update.
//!
//! Every emitted plan must still be proven sound by the *independent*
//! [`crate::check_rewrites`] before a trainer may execute it; the two
//! modules deliberately share no code.

use std::collections::HashMap;

use dgnn_autograd::meta::{grad_reads, InputReads};
use dgnn_autograd::{ParamId, RewriteAction, RewritePlan, Var};

use crate::tracer::ShapeTracer;

/// What the optimizer did to one graph, for reports and gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerStats {
    /// Nodes in the traced graph.
    pub nodes_before: usize,
    /// Nodes that still recompute their value every step after rewriting
    /// (`Compute`/`Steal`/`Stream`/`GatherMatMul`); folded nodes, CSE
    /// copies, and elided gathers no longer do.
    pub nodes_after: usize,
    /// Training-invariant interior nodes hoisted into the fold cache
    /// (constant leaves that merely validate the cache are not counted).
    pub folded: usize,
    /// Nodes rewritten to pooled copies of an earlier congruent node.
    pub cse_hits: usize,
    /// Fused ops: buffer steals + streamed broadcasts + gather→matmul pairs.
    pub fused: usize,
}

/// Ops whose cone must not be folded: their payload (`Rc` index / segment
/// vectors, dropout masks) is rebuilt per batch, so a cached value would
/// never verify and the fold slot would refresh every step for nothing.
fn blocks_folding(op: &str) -> bool {
    matches!(op, "param" | "dropout" | "gather" | "segment_softmax" | "segment_weighted_sum")
}

/// Ops the tape can evaluate in place in their first operand's buffer.
fn steal_epilogue(op: &str) -> bool {
    matches!(op, "add" | "sub" | "add_row" | "scale" | "neg" | "add_scalar")
}

/// Ops with a single-pass streaming kernel.
fn streamable(op: &str) -> bool {
    matches!(op, "add_row" | "mul_row" | "mul_col")
}

/// Nodes from which `root` is reachable along input edges (the "cone" the
/// reverse sweep can visit), including `root` itself.
fn ancestors_of(nodes: &[crate::tracer::TraceNode], root: usize) -> Vec<bool> {
    let mut marked = vec![false; nodes.len()];
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut marked[i], true) {
            continue;
        }
        stack.extend(nodes[i].inputs.iter().copied());
    }
    marked
}

/// Per-node training-invariance: true when the node's value is identical
/// across steps — every transitive leaf is a constant and no per-batch op
/// sits in the cone. Shared with the audit's foldable-subgraph advisory.
pub(crate) fn mark_invariant(nodes: &[crate::tracer::TraceNode]) -> Vec<bool> {
    let mut inv = vec![false; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        inv[i] = if node.op == "constant" {
            true
        } else if blocks_folding(node.op) {
            false
        } else {
            !node.inputs.is_empty() && node.inputs.iter().all(|&j| inv[j])
        };
    }
    inv
}

/// CSE value numbering: returns `vn[i]` — the index of the earliest node
/// provably computing the same value as `i`. Nodes in `skip` (folded,
/// non-participating) number as themselves. Shared with the audit's
/// common-subexpression advisory.
pub(crate) fn value_numbers(nodes: &[crate::tracer::TraceNode], skip: &[bool]) -> Vec<u32> {
    #[derive(PartialEq, Eq, Hash)]
    struct Key {
        op: &'static str,
        attr: u64,
        inputs: Vec<u32>,
        param: Option<ParamId>,
    }
    let mut table: HashMap<Key, u32> = HashMap::new();
    let mut vn = vec![0u32; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        vn[i] = i as u32;
        // The runtime congruence verifier refuses constants (no cheap value
        // identity) and dropout (fresh mask per step); skip them here so the
        // plan never claims a copy the tape would reject.
        if matches!(node.op, "constant" | "dropout") || skip[i] {
            continue;
        }
        let key = Key {
            op: node.op,
            attr: node.attr,
            inputs: node.inputs.iter().map(|&j| vn[j]).collect(),
            param: node.param,
        };
        match table.get(&key) {
            Some(&rep) => vn[i] = rep,
            None => {
                table.insert(key, i as u32);
            }
        }
    }
    vn
}

/// Computes a rewrite plan for a traced step.
///
/// * `loss` — the scalar the trainer differentiates; fusion legality
///   depends on which nodes the reverse sweep can read.
/// * `outputs` — nodes the caller reads after the step; they are pinned,
///   so their buffers are never stolen and their gathers never elided.
///
/// The returned plan is a *claim*. Callers must prove it with the
/// independent [`crate::check_rewrites`] before execution — the training
/// harness refuses unproven plans. (The tape additionally re-verifies every
/// action at run time and falls back to plain recomputation, so even a
/// stale plan costs speed, never bits.)
///
/// # Panics
/// Panics if `loss` or any output is out of range for the trace.
pub fn optimize(tracer: &ShapeTracer, loss: Var, outputs: &[Var]) -> (RewritePlan, OptimizerStats) {
    let nodes = tracer.nodes();
    let n = nodes.len();
    let l = loss.index();
    assert!(l < n, "loss node {l} out of range for a trace of {n} nodes");

    let mut pinned = vec![false; n];
    pinned[l] = true;
    for v in outputs {
        assert!(v.index() < n, "output node {} out of range for a trace of {n} nodes", v.index());
        pinned[v.index()] = true;
    }

    let mut actions = vec![RewriteAction::Compute; n];
    let mut stats = OptimizerStats { nodes_before: n, ..OptimizerStats::default() };

    // --- pass 1: constant folding ------------------------------------------
    // Fold every invariant interior node, plus the constant leaves feeding
    // the folded region: the tape only serves a cached slot when *all* of a
    // node's inputs are themselves verified-valid fold slots this step, so
    // the region must be input-closed down to its leaves.
    let invariant = mark_invariant(nodes);
    let mut in_fold_region = vec![false; n];
    for i in 0..n {
        if invariant[i] && nodes[i].op != "constant" {
            in_fold_region[i] = true;
            for &j in &nodes[i].inputs {
                if nodes[j].op == "constant" {
                    in_fold_region[j] = true;
                }
            }
        }
    }
    let mut num_fold_slots = 0u32;
    for i in 0..n {
        if in_fold_region[i] {
            // REWRITE: each folded node gets its own cache slot; the slot is
            // verified against the node's operands before every reuse.
            actions[i] = RewriteAction::Fold(num_fold_slots);
            num_fold_slots += 1;
            if nodes[i].op != "constant" {
                stats.folded += 1;
            }
        }
    }

    // --- pass 2: common-subexpression elimination --------------------------
    // Folded nodes are already served from the cache; excluding them also
    // keeps the fold region input-closed (a CopyOf inside it would break
    // the all-inputs-are-valid-slots invariant the tape checks).
    let vn = value_numbers(nodes, &in_fold_region);
    for i in 0..n {
        let rep = vn[i] as usize;
        if rep != i {
            actions[i] = RewriteAction::CopyOf(vn[i]);
            stats.cse_hits += 1;
        }
    }

    // --- pass 3: op fusion --------------------------------------------------
    // Liveness bookkeeping the steal rule needs: every consumer of each
    // node, and the loss cone (which decides backward reads).
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (c, node) in nodes.iter().enumerate() {
        for &i in &node.inputs {
            consumers[i].push(c);
        }
    }
    let anc_of_loss = ancestors_of(nodes, l);

    // 3a: gather→matmul. A gather whose *only* reader is one matmul's left
    // operand, outside the loss cone (matmul backward reads both input
    // values, which would need the elided gather materialized), never needs
    // a value at all: the fused kernel multiplies straight out of the table.
    for m in 0..n {
        if nodes[m].op != "matmul" || actions[m] != RewriteAction::Compute {
            continue;
        }
        let (g, b) = (nodes[m].inputs[0], nodes[m].inputs[1]);
        if nodes[g].op != "gather"
            || g == b
            || actions[g] != RewriteAction::Compute
            || pinned[g]
            || anc_of_loss[m]
            || consumers[g].len() != 1
        {
            continue;
        }
        // Nothing may copy from the elided gather either.
        let copied = (0..n).any(|k| actions[k] == RewriteAction::CopyOf(g as u32));
        if copied {
            continue;
        }
        actions[g] = RewriteAction::ElideGather;
        actions[m] = RewriteAction::GatherMatMul;
        stats.fused += 1;
    }

    // 3b: in-place epilogues. Node i may steal src = inputs[0]'s buffer when
    // that buffer is provably dead after i: no later forward reader (plain
    // consumers, CSE copiers, fused matmuls reading an elided gather's
    // table), no backward reader anywhere (backward runs after all forward
    // steps), not pinned, and exactly one steal per source.
    let mut stolen = vec![false; n];
    // Forward read times beyond the consumer list: CSE copies read their
    // source at copy time; a fused matmul reads the elided gather's table.
    let mut extra_read_until = vec![0usize; n];
    for k in 0..n {
        match actions[k] {
            RewriteAction::CopyOf(j) => {
                extra_read_until[j as usize] = extra_read_until[j as usize].max(k);
            }
            RewriteAction::GatherMatMul => {
                let g = nodes[k].inputs[0];
                let table = nodes[g].inputs[0];
                extra_read_until[table] = extra_read_until[table].max(k);
            }
            _ => {}
        }
    }
    let backward_reads_value = |src: usize| -> bool {
        // Any consumer in the loss cone whose gradient rule reads src's
        // value keeps the buffer alive into the reverse sweep — as does
        // src's own output-reading gradient (e.g. sigmoid) when src itself
        // is in the cone.
        for &c in &consumers[src] {
            if !anc_of_loss[c] {
                continue;
            }
            let reads = grad_reads(nodes[c].op);
            let hit = match reads.inputs {
                InputReads::None => false,
                InputReads::First => nodes[c].inputs.first() == Some(&src),
                InputReads::All => true,
            };
            if hit {
                return true;
            }
        }
        anc_of_loss[src] && grad_reads(nodes[src].op).output
    };
    for i in 0..n {
        if actions[i] != RewriteAction::Compute || !steal_epilogue(nodes[i].op) {
            continue;
        }
        let src = nodes[i].inputs[0];
        // The in-place kernels require a distinct right-hand operand.
        if nodes[i].inputs.len() > 1 && nodes[i].inputs[1] == src {
            continue;
        }
        let last_forward_read =
            consumers[src].iter().copied().max().unwrap_or(src).max(extra_read_until[src]);
        if pinned[src]
            || stolen[src]
            || actions[src] == RewriteAction::ElideGather
            || last_forward_read != i
            || backward_reads_value(src)
        {
            continue;
        }
        actions[i] = RewriteAction::Steal;
        stolen[src] = true;
        stats.fused += 1;
    }

    // 3c: streaming kernels for whatever broadcasts remain.
    for i in 0..n {
        if actions[i] == RewriteAction::Compute && streamable(nodes[i].op) {
            actions[i] = RewriteAction::Stream;
            stats.fused += 1;
        }
    }

    stats.nodes_after = actions
        .iter()
        .filter(|a| {
            matches!(
                a,
                RewriteAction::Compute
                    | RewriteAction::Steal
                    | RewriteAction::Stream
                    | RewriteAction::GatherMatMul
            )
        })
        .count();

    // REWRITE: the action table is lowered here and nowhere else; the
    // independent checker proves it before any trainer executes it.
    (RewritePlan::new(actions, num_fold_slots), stats)
}

#[cfg(test)]
mod tests {
    use dgnn_autograd::{ParamSet, Recorder};
    use dgnn_tensor::{Init, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn invariant_constant_chains_fold_and_verify() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let w = params.add("w", Init::Uniform(0.5).build(4, 4, &mut rng));
        let mut tr = ShapeTracer::new();
        let c1 = tr.constant(Matrix::full(4, 4, 0.25));
        let c2 = tr.constant(Matrix::full(4, 4, 0.5));
        let pre = tr.add(c1, c2); // invariant interior
        let nrm = tr.l2_normalize_rows(pre, 1e-6); // still invariant
        let wv = tr.param(&params, w);
        let h = tr.matmul(nrm, wv);
        let s = tr.sigmoid(h);
        let loss = tr.mean_all(s);

        let (plan, stats) = optimize(&tr, loss, &[]);
        assert_eq!(stats.folded, 2, "add + l2_normalize_rows should fold");
        assert!(matches!(plan.action(pre.index()), RewriteAction::Fold(_)));
        assert!(matches!(plan.action(nrm.index()), RewriteAction::Fold(_)));
        assert!(matches!(plan.action(c1.index()), RewriteAction::Fold(_)));
        assert!(matches!(plan.action(h.index()), RewriteAction::Compute | RewriteAction::Steal));
        assert!(crate::check_rewrites(&tr, loss, &[], &plan).is_ok());
    }

    #[test]
    fn duplicate_subexpressions_become_copies() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(6);
        let w = params.add("w", Init::Uniform(0.5).build(3, 3, &mut rng));
        let mut tr = ShapeTracer::new();
        let wv = tr.param(&params, w);
        let s1 = tr.sigmoid(wv);
        let s2 = tr.sigmoid(wv); // recomputes s1
        let both = tr.mul(s1, s2);
        let loss = tr.mean_all(both);

        let (plan, stats) = optimize(&tr, loss, &[]);
        assert_eq!(plan.action(s2.index()), RewriteAction::CopyOf(s1.index() as u32));
        assert!(stats.cse_hits >= 1);
        assert!(stats.nodes_after < stats.nodes_before);
        assert!(crate::check_rewrites(&tr, loss, &[], &plan).is_ok());
    }

    #[test]
    fn dead_first_operands_are_stolen_but_live_ones_are_not() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let x = params.add("x", Init::Uniform(0.5).build(4, 4, &mut rng));
        let w = params.add("w", Init::Uniform(0.5).build(4, 4, &mut rng));
        let mut tr = ShapeTracer::new();
        let xv = tr.param(&params, x);
        let wv = tr.param(&params, w);
        let h = tr.matmul(xv, wv);
        // h's only reader; gradients of add read nothing: the matmul's
        // buffer dies here and the neg runs in place.
        let shifted = tr.neg(h);
        // `mul` gradients read both operands, so `shifted` stays live into
        // backward and must NOT be stolen by the scale below.
        let sq = tr.mul(shifted, shifted);
        let sc = tr.scale(shifted, 0.5);
        let merged = tr.add(sq, sc);
        let loss = tr.mean_all(merged);

        let (plan, stats) = optimize(&tr, loss, &[]);
        assert_eq!(plan.action(shifted.index()), RewriteAction::Steal, "neg should steal h");
        assert_ne!(plan.action(sc.index()), RewriteAction::Steal, "shifted is read in backward");
        assert!(stats.fused >= 1);
        assert!(crate::check_rewrites(&tr, loss, &[], &plan).is_ok());
    }

    #[test]
    fn eval_only_gathers_fuse_into_their_matmul() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(8);
        let emb = params.add("emb", Init::Uniform(0.5).build(10, 4, &mut rng));
        let w = params.add("w", Init::Uniform(0.5).build(4, 4, &mut rng));
        let mut tr = ShapeTracer::new();
        let table = tr.param(&params, emb);
        let wv = tr.param(&params, w);
        // Eval-only scoring branch: gather → matmul, declared an output.
        let idx = std::rc::Rc::new(vec![1usize, 3, 5]);
        let g = tr.gather(table, idx);
        let scores = tr.matmul(g, wv);
        // The loss path never sees the scoring branch.
        let h = tr.matmul(table, wv);
        let s = tr.sigmoid(h);
        let loss = tr.mean_all(s);

        let (plan, stats) = optimize(&tr, loss, &[scores]);
        assert_eq!(plan.action(g.index()), RewriteAction::ElideGather);
        assert_eq!(plan.action(scores.index()), RewriteAction::GatherMatMul);
        assert!(stats.fused >= 1);
        assert!(crate::check_rewrites(&tr, loss, &[scores], &plan).is_ok());
    }

    #[test]
    fn gathers_in_the_loss_cone_are_left_alone() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(9);
        let emb = params.add("emb", Init::Uniform(0.5).build(10, 4, &mut rng));
        let w = params.add("w", Init::Uniform(0.5).build(4, 4, &mut rng));
        let mut tr = ShapeTracer::new();
        let table = tr.param(&params, emb);
        let wv = tr.param(&params, w);
        let idx = std::rc::Rc::new(vec![1usize, 3, 5]);
        let g = tr.gather(table, idx);
        let h = tr.matmul(g, wv);
        let s = tr.sigmoid(h);
        let loss = tr.mean_all(s);

        let (plan, _) = optimize(&tr, loss, &[]);
        assert_eq!(plan.action(g.index()), RewriteAction::Compute);
        assert_ne!(plan.action(h.index()), RewriteAction::GatherMatMul);
        assert!(crate::check_rewrites(&tr, loss, &[], &plan).is_ok());
    }

    #[test]
    fn broadcasts_stream_and_plans_stay_provable() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(10);
        let x = params.add("x", Init::Uniform(0.5).build(4, 4, &mut rng));
        let b = params.add("b", Init::Uniform(0.5).build(1, 4, &mut rng));
        let mut tr = ShapeTracer::new();
        let xv = tr.param(&params, x);
        let bv = tr.param(&params, b);
        let sq = tr.mul(xv, xv); // keeps xv alive into backward
        let shifted = tr.add_row(sq, bv);
        let loss = tr.mean_all(shifted);

        let (plan, stats) = optimize(&tr, loss, &[]);
        assert!(matches!(
            plan.action(shifted.index()),
            RewriteAction::Steal | RewriteAction::Stream
        ));
        assert!(stats.fused >= 1);
        assert!(crate::check_rewrites(&tr, loss, &[], &plan).is_ok());
        // The rewrite-aware memory plan must also prove out.
        let mplan = crate::plan_with_rewrites(&tr, loss, &[], &plan);
        assert!(crate::check_plan_with_rewrites(&tr, loss, &[], &plan, &mplan).is_ok());
    }
}
