//! Pretraining extension: warm-start DGNN from self-supervised link
//! prediction on the side relations (`S`, `T`) only — the paper's stated
//! future-work direction, useful when interaction data is scarce.
//!
//! ```text
//! cargo run --release -p dgnn-examples --bin pretrain_cold_start
//! ```

use dgnn_core::{Dgnn, DgnnConfig, Pretrainer};
use dgnn_data::tiny;
use dgnn_eval::groups::evaluate_by_group;
use dgnn_eval::Trainable;
use dgnn_examples::report;

fn main() {
    let data = tiny(42);
    let cfg = DgnnConfig { epochs: 12, batch_size: 512, ..DgnnConfig::default() };

    // Stage 1: pretext tasks on the side relations (no interactions used).
    let pre = Pretrainer { dim: cfg.dim, epochs: 40, ..Pretrainer::default() };
    let embeddings = pre.run(&data.graph, 7);
    println!(
        "pretrained {}x{} user / {}x{} item embeddings from {} social ties and {} item-relation links",
        embeddings.user.rows(),
        embeddings.user.cols(),
        embeddings.item.rows(),
        embeddings.item.cols(),
        data.graph.social_ties().len(),
        data.graph.item_relations().len()
    );

    // Stage 2: supervised BPR training, warm vs. cold init.
    let mut warm = Dgnn::new(cfg.clone()).with_pretrained(embeddings);
    warm.fit(&data, 7);
    let mut cold = Dgnn::new(cfg);
    cold.fit(&data, 7);

    println!("\noverall:");
    print!("cold init:  ");
    report(&cold, &data.test, 10);
    print!("warm init:  ");
    report(&warm, &data.test, 10);

    // Where it matters: the sparsest-user quartile.
    let counts = data.train_counts_per_user();
    let g_cold = evaluate_by_group(&cold, &data.test, &counts, 10);
    let g_warm = evaluate_by_group(&warm, &data.test, &counts, 10);
    println!(
        "\ncoldest quartile HR@10: cold init {:.4} vs warm init {:.4}",
        g_cold.metrics[0].hr, g_warm.metrics[0].hr
    );
}
