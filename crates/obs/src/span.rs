//! Hierarchical span recording: RAII guards buffering begin/end events.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};

use crate::clock::now_ns;

thread_local! {
    static EVENTS: RefCell<Vec<SpanEvent>> = const { RefCell::new(Vec::new()) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Begin or end of a span — events always come in balanced pairs because
/// the only producer is [`SpanGuard`]'s construction/drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
}

impl SpanPhase {
    /// Chrome trace-event phase letter (`"B"` / `"E"`).
    pub fn chrome_ph(self) -> &'static str {
        match self {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
        }
    }
}

/// One buffered span event.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name. `Cow` keeps the hot path allocation-free: permanent
    /// instrumentation uses `&'static str`, cold per-model spans may own.
    pub name: Cow<'static, str>,
    /// Begin or end.
    pub phase: SpanPhase,
    /// [`now_ns`] timestamp.
    pub t_ns: u64,
    /// Nesting depth at the event (0 = top level). Begin and end of one
    /// span carry the same depth.
    pub depth: u32,
}

/// RAII span: records a begin event on creation (when enabled) and the
/// matching end event on drop. A guard created while disabled is inert —
/// it records nothing on drop even if recording is enabled in between,
/// so pairs always balance.
#[must_use = "a span measures the region until the guard drops; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `Some` only when the begin event was recorded.
    name: Option<Cow<'static, str>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let depth = DEPTH.with(|d| {
                let v = d.get().saturating_sub(1);
                d.set(v);
                v
            });
            push_event(SpanEvent { name, phase: SpanPhase::End, t_ns: now_ns(), depth });
        }
    }
}

fn begin(name: Cow<'static, str>) -> SpanGuard {
    if !crate::is_enabled() {
        return SpanGuard { name: None };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    // For static names this clone copies two words; only owned (cold-path)
    // names pay a heap copy for the begin event.
    push_event(SpanEvent { name: name.clone(), phase: SpanPhase::Begin, t_ns: now_ns(), depth });
    SpanGuard { name: Some(name) }
}

/// Opens a span with a static name (the zero-allocation hot path).
pub fn span(name: &'static str) -> SpanGuard {
    begin(Cow::Borrowed(name))
}

/// Opens a span with an owned name (cold paths: per-model labels built
/// with `format!`). Prefer [`span`] inside training loops.
pub fn span_owned(name: String) -> SpanGuard {
    if !crate::is_enabled() {
        // Dropping the caller's String here is the cheapest honest option;
        // callers on hot paths should use `span` with a static name.
        return SpanGuard { name: None };
    }
    begin(Cow::Owned(name))
}

/// Runs `f` inside a span and returns `(result, elapsed_ns)`.
///
/// The duration is measured unconditionally — harness code that needs a
/// wall-clock number (e.g. `CellResult::train_time`) gets it whether or
/// not recording is enabled; the span events are emitted only when it is.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, u64) {
    let guard = span(name);
    let t0 = now_ns();
    let out = f();
    let dt = now_ns().saturating_sub(t0);
    drop(guard);
    (out, dt)
}

fn push_event(e: SpanEvent) {
    EVENTS.with(|buf| buf.borrow_mut().push(e));
}

pub(crate) fn take_events() -> Vec<SpanEvent> {
    EVENTS.with(|buf| std::mem::take(&mut *buf.borrow_mut()))
}

pub(crate) fn clear_events() {
    EVENTS.with(|buf| buf.borrow_mut().clear());
    DEPTH.with(|d| d.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_created_disabled_stays_inert_across_enable() {
        crate::disable();
        clear_events();
        let g = span("late");
        crate::enable();
        drop(g);
        crate::disable();
        assert!(take_events().is_empty(), "no orphan end event may appear");
    }

    #[test]
    fn depth_recovers_after_clear() {
        crate::enable();
        let g = span("a");
        clear_events(); // simulates a mid-span reset
        drop(g); // end event is still recorded, at saturated depth 0
        let ev = take_events();
        crate::disable();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].depth, 0);
    }
}
