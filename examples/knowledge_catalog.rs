//! Knowledge-aware catalog: demonstrates the item-relation matrix `T` —
//! the paper's second motivating signal — and the custom-dataset workflow.
//!
//! Builds a small e-commerce-style catalog *by hand* through the
//! `HeteroGraphBuilder` API (no synthetic generator), persists it with
//! `dgnn_data::io`, reloads it, trains DGNN with and without the knowledge
//! edges, and shows that category information changes the ranking for a
//! user whose taste is concentrated in one category.
//!
//! ```text
//! cargo run --release -p dgnn-examples --bin knowledge_catalog
//! ```

use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::{io, Dataset};
use dgnn_eval::{Recommender, Trainable};
use dgnn_examples::report;
use dgnn_graph::HeteroGraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Categories: 0 = cameras, 1 = lenses, 2 = kitchen, 3 = garden.
const CATEGORIES: usize = 4;

fn build_catalog() -> dgnn_graph::HeteroGraph {
    let users = 40;
    let items = 160;
    let mut rng = StdRng::seed_from_u64(99);
    let mut b = HeteroGraphBuilder::new(users, items, CATEGORIES);
    // Items cycle through the categories.
    for v in 0..items {
        b.item_relation(v, v % CATEGORIES);
    }
    // Each user favors one category (80%) with occasional exploration.
    for u in 0..users {
        let fav = u % CATEGORIES;
        for t in 0..12u32 {
            let cat = if rng.gen_bool(0.8) { fav } else { rng.gen_range(0..CATEGORIES) };
            let item = (rng.gen_range(0..items / CATEGORIES)) * CATEGORIES + cat;
            b.interaction(u, item, t);
        }
        // A couple of same-taste friends.
        for _ in 0..2 {
            let friend = (u + CATEGORIES * rng.gen_range(1..users / CATEGORIES)) % users;
            if friend != u {
                b.social_tie(u, friend);
            }
        }
    }
    b.build()
}

fn main() {
    // Build → save → load roundtrip: the workflow for custom datasets.
    let catalog = build_catalog();
    let path = std::env::temp_dir().join("dgnn_knowledge_catalog.txt");
    io::save_graph(&catalog, &path).expect("save catalog");
    let reloaded = io::load_graph(&path).expect("load catalog");
    println!("catalog saved to {} and reloaded ({} interactions)", path.display(), reloaded.interactions().len());

    let mut rng = StdRng::seed_from_u64(1);
    let data = Dataset::leave_one_out("catalog", &reloaded, 2, 100, &mut rng);

    let cfg = DgnnConfig { epochs: 15, batch_size: 512, ..DgnnConfig::default() };
    let mut with_t = Dgnn::new(cfg.clone());
    with_t.fit(&data, 7);
    let mut without_t = Dgnn::new(cfg.without_knowledge());
    without_t.fit(&data, 7);

    println!("\neffect of the item-relation matrix T:");
    report(&with_t, &data.test, 10);
    print!("(-T)    ");
    report(&without_t, &data.test, 10);

    // Category purity of top recommendations for a camera lover (user 0).
    let user = 0usize;
    let seen = data.graph.items_of(user);
    let candidates: Vec<usize> =
        (0..data.graph.num_items()).filter(|v| !seen.contains(v)).collect();
    for (label, model) in [("with T", &with_t), ("without T", &without_t)] {
        let scores = model.score(user, &candidates);
        let mut ranked: Vec<(usize, f32)> = candidates.iter().copied().zip(scores).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        let top: Vec<usize> = ranked.iter().take(10).map(|&(v, _)| v).collect();
        let in_fav = top.iter().filter(|&&v| v % CATEGORIES == 0).count();
        println!(
            "top-10 for camera-lover user 0 ({label}): {in_fav}/10 in the favorite category"
        );
    }
}
