//! [`ShapeTracer`]: abstract interpretation of compute graphs over the
//! shape domain.
//!
//! The tracer implements [`Recorder`], so any model written against
//! `R: Recorder` — DGNN itself and the traced baselines — can be "run"
//! without allocating a single output tensor: each op records only its
//! output shape, a boundedness bit, an abstract lower bound, its input
//! edges, and a static op name. Structural problems (shape mismatches,
//! out-of-range gather indices, non-covering segment pointers, `exp` of
//! unbounded inputs, `ln`/`div`/`sqrt` outside their safe domain) surface
//! as [`Diagnostic`]s at trace time, *before* any training step executes.

use std::rc::Rc;

use dgnn_autograd::{ParamId, ParamSet, Recorder, Var};
use dgnn_tensor::{Csr, Matrix};

/// The class of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// Operand shapes are incompatible with the op's contract.
    ShapeMismatch,
    /// A gather index or segment pointer addresses rows that do not exist.
    IndexRange,
    /// A parameter registered in the [`ParamSet`] never contributes to the
    /// loss (either never traced, or traced with no path to the loss).
    UnusedParam,
    /// A recorded node that is reachable from neither the loss nor any
    /// declared output — compute that `backward` can never see.
    DeadSubgraph,
    /// An op fed a value outside its numerically safe domain: `exp` of an
    /// unbounded input (overflow), or `ln`/`div`/`sqrt` of a value not
    /// provably bounded away from zero / non-negative (−∞, ±∞, NaN).
    UnstableDomain,
    /// Advisory: a node provably recomputes an earlier node's value — the
    /// graph optimizer's CSE pass would serve it as a copy. Not an error;
    /// [`crate::AuditReport::is_clean`] ignores it.
    CommonSubexpression,
    /// Advisory: a training-invariant subgraph (constant leaves only) is
    /// recomputed every step — the graph optimizer's constant-folding pass
    /// would hoist it into the cross-step fold cache. Not an error;
    /// [`crate::AuditReport::is_clean`] ignores it.
    FoldableSubgraph,
}

impl DiagnosticKind {
    /// Stable machine-readable name (used by the `--json` report mode).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::ShapeMismatch => "shape_mismatch",
            Self::IndexRange => "index_range",
            Self::UnusedParam => "unused_param",
            Self::DeadSubgraph => "dead_subgraph",
            Self::UnstableDomain => "unstable_domain",
            Self::CommonSubexpression => "common_subexpression",
            Self::FoldableSubgraph => "foldable_subgraph",
        }
    }

    /// True for findings that flag a missed optimization rather than a bug.
    /// Advisory findings never make a graph "unclean".
    pub fn is_advisory(self) -> bool {
        matches!(self, Self::CommonSubexpression | Self::FoldableSubgraph)
    }
}

/// Abstract lower bound of a traced value, ordered by strength.
///
/// The domain is deliberately `f32`-sound: `sigmoid`, `softmax`, `exp` and
/// `softplus` map to [`Lower::NonNeg`], *not* [`Lower::Positive`], because
/// their mathematical positivity underflows to an exact `0.0` for extreme
/// inputs. The only blessed route to `Positive` is adding a positive
/// constant — the `ln(x + ε)` idiom — or starting from a positive constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Lower {
    /// May be negative (or NaN).
    Unknown,
    /// Provably `≥ 0`, but `0.0` itself is reachable (including by
    /// floating-point underflow of mathematically positive values).
    NonNeg,
    /// Provably bounded away from zero.
    Positive,
}

/// One structured finding about a traced compute graph.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// What went wrong.
    pub kind: DiagnosticKind,
    /// Index of the node where the problem was detected (op provenance);
    /// `None` for set-level findings such as never-traced parameters.
    pub node: Option<usize>,
    /// Static name of that node's op, when a node is implicated.
    pub op: Option<&'static str>,
    /// Human-readable description with the concrete shapes/indices.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.node, self.op) {
            (Some(n), Some(op)) => write!(f, "[{:?}] node {n} ({op}): {}", self.kind, self.message),
            _ => write!(f, "[{:?}] {}", self.kind, self.message),
        }
    }
}

/// One abstract node: shape + provenance, no tensor data.
#[derive(Debug)]
pub(crate) struct TraceNode {
    pub op: &'static str,
    pub shape: (usize, usize),
    pub inputs: Vec<usize>,
    pub param: Option<ParamId>,
    /// Opaque op attribute for value-numbering: the bit pattern of a scalar
    /// coefficient (`scale`/`add_scalar`/`leaky_relu`/eps), packed slice
    /// bounds, or the address of a shared index/adjacency payload
    /// (`gather`/`spmm`/segment ops). Two nodes of the same op kind compute
    /// the same function of their inputs iff their attrs are equal — the
    /// same discrimination the runtime rewrite verifier applies. `0` for
    /// attribute-free ops.
    pub attr: u64,
    /// True when the op's output lies in a fixed interval regardless of
    /// how far parameters drift during training (σ, tanh, softmax, norms,
    /// and compositions of bounded inputs). Leaves: constants are bounded
    /// (they never change), parameters are not.
    pub bounded: bool,
    /// Abstract lower bound of the output (the `ln`/`div`/`sqrt` domain).
    pub lower: Lower,
}

/// Abstract interpreter over the shape domain; the second [`Recorder`]
/// implementation next to `Tape`.
///
/// Feed it the exact graph-building code the trainer uses (e.g.
/// `Dgnn::record_step`), then inspect [`ShapeTracer::diagnostics`] or run
/// the reachability auditor in [`crate::audit`].
#[derive(Debug, Default)]
pub struct ShapeTracer {
    nodes: Vec<TraceNode>,
    diags: Vec<Diagnostic>,
}

impl ShapeTracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of traced nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Diagnostics collected while tracing (shape, index-range, and
    /// stability findings). Reachability findings require the auditor.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Static op name of a traced node.
    pub fn op_name(&self, v: Var) -> &'static str {
        self.nodes[v.index()].op
    }

    pub(crate) fn nodes(&self) -> &[TraceNode] {
        &self.nodes
    }

    fn push(
        &mut self,
        op: &'static str,
        shape: (usize, usize),
        inputs: &[Var],
        bounded: bool,
        param: Option<ParamId>,
    ) -> Var {
        self.push_with(op, shape, inputs, bounded, param, Lower::Unknown)
    }

    #[allow(clippy::too_many_arguments)]
    fn push_with(
        &mut self,
        op: &'static str,
        shape: (usize, usize),
        inputs: &[Var],
        bounded: bool,
        param: Option<ParamId>,
        lower: Lower,
    ) -> Var {
        self.nodes.push(TraceNode {
            op,
            shape,
            inputs: inputs.iter().map(|v| v.index()).collect(),
            param,
            attr: 0,
            bounded,
            lower,
        });
        Var::from_index(self.nodes.len() - 1)
    }

    /// Stamps the value-numbering attribute on a just-pushed node.
    fn tag(&mut self, v: Var, attr: u64) -> Var {
        self.nodes[v.index()].attr = attr;
        v
    }

    fn diag(&mut self, kind: DiagnosticKind, op: &'static str, message: String) {
        // The offending node is the one about to be pushed.
        self.diags.push(Diagnostic { kind, node: Some(self.nodes.len()), op: Some(op), message });
    }

    fn shape_of(&self, v: Var) -> (usize, usize) {
        self.nodes[v.index()].shape
    }

    fn bounded_of(&self, v: Var) -> bool {
        self.nodes[v.index()].bounded
    }

    fn lower_of(&self, v: Var) -> Lower {
        self.nodes[v.index()].lower
    }

    /// `NonNeg` when both operands are provably non-negative (products and
    /// sums of non-negatives stay non-negative, but `Positive` is *not*
    /// preserved: `f32` products/quotients of positives can underflow to 0).
    fn nonneg_if_both(&self, a: Var, b: Var) -> Lower {
        if self.lower_of(a) >= Lower::NonNeg && self.lower_of(b) >= Lower::NonNeg {
            Lower::NonNeg
        } else {
            Lower::Unknown
        }
    }

    /// Reductions (sums/means) of non-negative inputs stay non-negative;
    /// positivity does not survive (an all-zero row is reachable).
    fn nonneg_reduce(&self, a: Var) -> Lower {
        if self.lower_of(a) >= Lower::NonNeg { Lower::NonNeg } else { Lower::Unknown }
    }

    /// Checks an elementwise binary op's operands for equal shapes.
    fn require_same(&mut self, op: &'static str, a: Var, b: Var) {
        let (sa, sb) = (self.shape_of(a), self.shape_of(b));
        if sa != sb {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                op,
                format!("operand shapes {sa:?} and {sb:?} differ"),
            );
        }
    }

    /// Unary shape-preserving op helper.
    fn unary(&mut self, op: &'static str, a: Var, bounded: bool, lower: Lower) -> Var {
        let shape = self.shape_of(a);
        self.push_with(op, shape, &[a], bounded, None, lower)
    }

    /// Binary elementwise op helper (requires equal shapes).
    fn binary(&mut self, op: &'static str, a: Var, b: Var, lower: Lower) -> Var {
        self.require_same(op, a, b);
        let shape = self.shape_of(a);
        let bounded = self.bounded_of(a) && self.bounded_of(b);
        self.push_with(op, shape, &[a, b], bounded, None, lower)
    }

    /// Validates a CSR-style segment pointer against an edge count.
    fn check_segments(&mut self, op: &'static str, seg: &[usize], edges: usize) {
        match seg.last() {
            None => {
                self.diag(DiagnosticKind::IndexRange, op, "empty segment pointer".to_string());
            }
            Some(&end) if end != edges => {
                self.diag(
                    DiagnosticKind::IndexRange,
                    op,
                    format!("segment pointer covers {end} edges but input has {edges}"),
                );
            }
            _ => {}
        }
        if seg.windows(2).any(|w| w[0] > w[1]) {
            self.diag(
                DiagnosticKind::IndexRange,
                op,
                "segment pointer is not monotonically non-decreasing".to_string(),
            );
        }
    }
}

impl Recorder for ShapeTracer {
    fn constant(&mut self, value: Matrix) -> Var {
        // Constants never change during training, so they are bounded, and
        // their lower bound can be read straight off the data.
        let lower = if value.as_slice().iter().all(|&x| x > 0.0) {
            Lower::Positive
        } else if value.as_slice().iter().all(|&x| x >= 0.0) {
            Lower::NonNeg
        } else {
            Lower::Unknown
        };
        self.push_with("constant", value.shape(), &[], true, None, lower)
    }

    fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        // Parameters drift arbitrarily far under optimization: unbounded.
        self.push("param", params.value(id).shape(), &[], false, Some(id))
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.shape_of(v)
    }

    fn add(&mut self, a: Var, b: Var) -> Var {
        // For non-negative operands the f32 sum rounds to ≥ max(a, b), so
        // the stronger of the two bounds survives (overflow goes to +inf,
        // which is still positive).
        let lower = if self.lower_of(a) >= Lower::NonNeg && self.lower_of(b) >= Lower::NonNeg {
            self.lower_of(a).max(self.lower_of(b))
        } else {
            Lower::Unknown
        };
        self.binary("add", a, b, lower)
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary("sub", a, b, Lower::Unknown)
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        // A square x ⊙ x is non-negative for every real input (the analysis,
        // like the rest of this crate, assumes values have not already
        // diverged to NaN).
        let lower = if a == b { Lower::NonNeg } else { self.nonneg_if_both(a, b) };
        self.binary("mul", a, b, lower)
    }

    fn neg(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        self.unary("neg", a, bounded, Lower::Unknown)
    }

    fn scale(&mut self, a: Var, k: f32) -> Var {
        let bounded = self.bounded_of(a);
        // k > 0 preserves non-negativity but not positivity (k·x can
        // underflow to 0); k == 0 yields exact zeros.
        let lower = if (k > 0.0 && self.lower_of(a) >= Lower::NonNeg) || k == 0.0 {
            Lower::NonNeg
        } else {
            Lower::Unknown
        };
        let v = self.unary("scale", a, bounded, lower);
        self.tag(v, u64::from(k.to_bits()))
    }

    fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        let bounded = self.bounded_of(a);
        // The blessed route to `Positive`: x ≥ 0 plus a positive constant k
        // rounds to ≥ max(x, k) ≥ k > 0 in f32 — this is the `ln(x + ε)`
        // idiom the domain checker wants to see.
        let lower = if k > 0.0 && self.lower_of(a) >= Lower::NonNeg {
            Lower::Positive
        } else if k == 0.0 {
            self.lower_of(a)
        } else {
            Lower::Unknown
        };
        let v = self.unary("add_scalar", a, bounded, lower);
        self.tag(v, u64::from(k.to_bits()))
    }

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (sa, sb) = (self.shape_of(a), self.shape_of(b));
        if sa.1 != sb.0 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "matmul",
                format!("inner dimensions disagree: {sa:?} · {sb:?}"),
            );
        }
        let bounded = self.bounded_of(a) && self.bounded_of(b);
        let lower = self.nonneg_if_both(a, b);
        self.push_with("matmul", (sa.0, sb.1), &[a, b], bounded, None, lower)
    }

    fn transpose(&mut self, a: Var) -> Var {
        let (r, c) = self.shape_of(a);
        let bounded = self.bounded_of(a);
        let lower = self.lower_of(a);
        self.push_with("transpose", (c, r), &[a], bounded, None, lower)
    }

    fn spmm_with(&mut self, adj: &Rc<Csr>, adj_t: &Rc<Csr>, b: Var) -> Var {
        let sb = self.shape_of(b);
        if adj.rows() != adj_t.cols() || adj.cols() != adj_t.rows() {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "spmm",
                format!(
                    "adj_t {}×{} is not the transpose of adj {}×{}",
                    adj_t.rows(),
                    adj_t.cols(),
                    adj.rows(),
                    adj.cols()
                ),
            );
        }
        if adj.cols() != sb.0 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "spmm",
                format!("adj is {}×{} but dense operand is {sb:?}", adj.rows(), adj.cols()),
            );
        }
        // The adjacency is a fixed constant, so boundedness follows b.
        let bounded = self.bounded_of(b);
        let v = self.push("spmm", (adj.rows(), sb.1), &[b], bounded, None);
        self.tag(v, Rc::as_ptr(adj) as usize as u64)
    }

    fn sigmoid(&mut self, a: Var) -> Var {
        // Mathematically positive, but σ(x) underflows to exact 0.0 for
        // x ≲ −90, so only NonNeg is f32-sound.
        self.unary("sigmoid", a, true, Lower::NonNeg)
    }

    fn tanh(&mut self, a: Var) -> Var {
        self.unary("tanh", a, true, Lower::Unknown)
    }

    fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        let bounded = self.bounded_of(a);
        // Identity on non-negative inputs, so a known bound passes through.
        let lower =
            if self.lower_of(a) >= Lower::NonNeg { self.lower_of(a) } else { Lower::Unknown };
        let v = self.unary("leaky_relu", a, bounded, lower);
        self.tag(v, u64::from(alpha.to_bits()))
    }

    fn relu(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        self.unary("relu", a, bounded, Lower::NonNeg)
    }

    fn exp(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        if !bounded {
            self.diag(
                DiagnosticKind::UnstableDomain,
                "exp",
                "exp of an unbounded input: overflows to inf once logits drift; \
                 bound the input (sigmoid/tanh/softmax/normalize) or use softplus"
                    .to_string(),
            );
        }
        // e^x underflows to exact 0.0 below x ≈ −103: NonNeg, not Positive.
        self.unary("exp", a, bounded, Lower::NonNeg)
    }

    fn softplus(&mut self, a: Var) -> Var {
        // Tape's softplus forward is the numerically stable
        // `max(x, 0) + ln(1 + e^{-|x|})`, so no stability diagnostic here.
        let bounded = self.bounded_of(a);
        self.unary("softplus", a, bounded, Lower::NonNeg)
    }

    fn ln(&mut self, a: Var) -> Var {
        if self.lower_of(a) != Lower::Positive {
            self.diag(
                DiagnosticKind::UnstableDomain,
                "ln",
                "ln of a value not provably bounded away from zero: yields -inf/NaN \
                 the moment an entry reaches 0; use the ln(x + \u{3b5}) idiom \
                 (add_scalar of a non-negative input with \u{3b5} > 0)"
                    .to_string(),
            );
        }
        // ln of a bounded positive interval is bounded; the output can be
        // negative (inputs in (0, 1)), so the lower bound is Unknown.
        let bounded = self.bounded_of(a) && self.lower_of(a) == Lower::Positive;
        self.unary("ln", a, bounded, Lower::Unknown)
    }

    fn div(&mut self, a: Var, b: Var) -> Var {
        if self.lower_of(b) != Lower::Positive {
            self.diag(
                DiagnosticKind::UnstableDomain,
                "div",
                "division by a value not provably bounded away from zero: yields \
                 \u{b1}inf/NaN the moment an entry reaches 0; add a positive \u{3b5} \
                 to a non-negative divisor first"
                    .to_string(),
            );
        }
        // A bounded numerator over a divisor bounded away from zero stays
        // bounded; quotients of non-negatives can underflow to 0 → NonNeg.
        let divisor_safe = self.lower_of(b) == Lower::Positive;
        let bounded = self.bounded_of(a) && self.bounded_of(b) && divisor_safe;
        let lower = if self.lower_of(a) >= Lower::NonNeg && divisor_safe {
            Lower::NonNeg
        } else {
            Lower::Unknown
        };
        self.require_same("div", a, b);
        let shape = self.shape_of(a);
        self.push_with("div", shape, &[a, b], bounded, None, lower)
    }

    fn sqrt(&mut self, a: Var) -> Var {
        if self.lower_of(a) == Lower::Unknown {
            self.diag(
                DiagnosticKind::UnstableDomain,
                "sqrt",
                "sqrt of a value not provably non-negative: yields NaN for any \
                 negative entry; square, relu, or add a positive \u{3b5} first"
                    .to_string(),
            );
        }
        // √ preserves both non-negativity and positivity exactly in f32
        // (no underflow: √x ≥ x for x in [0, 1]).
        let bounded = self.bounded_of(a);
        let lower = self.lower_of(a);
        self.unary("sqrt", a, bounded, lower)
    }

    fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (sa, sr) = (self.shape_of(a), self.shape_of(row));
        if sr != (1, sa.1) {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "add_row",
                format!("row vector is {sr:?}, want (1, {}) to broadcast over {sa:?}", sa.1),
            );
        }
        let bounded = self.bounded_of(a) && self.bounded_of(row);
        let lower = if self.lower_of(a) >= Lower::NonNeg && self.lower_of(row) >= Lower::NonNeg {
            self.lower_of(a).max(self.lower_of(row))
        } else {
            Lower::Unknown
        };
        self.push_with("add_row", sa, &[a, row], bounded, None, lower)
    }

    fn mul_row(&mut self, a: Var, row: Var) -> Var {
        let (sa, sr) = (self.shape_of(a), self.shape_of(row));
        if sr != (1, sa.1) {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "mul_row",
                format!("row vector is {sr:?}, want (1, {}) to broadcast over {sa:?}", sa.1),
            );
        }
        let bounded = self.bounded_of(a) && self.bounded_of(row);
        let lower = self.nonneg_if_both(a, row);
        self.push_with("mul_row", sa, &[a, row], bounded, None, lower)
    }

    fn mul_col(&mut self, a: Var, col: Var) -> Var {
        let (sa, sc) = (self.shape_of(a), self.shape_of(col));
        if sc != (sa.0, 1) {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "mul_col",
                format!("column vector is {sc:?}, want ({}, 1) to broadcast over {sa:?}", sa.0),
            );
        }
        let bounded = self.bounded_of(a) && self.bounded_of(col);
        let lower = self.nonneg_if_both(a, col);
        self.push_with("mul_col", sa, &[a, col], bounded, None, lower)
    }

    fn sum_all(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        let lower = self.nonneg_reduce(a);
        self.push_with("sum_all", (1, 1), &[a], bounded, None, lower)
    }

    fn mean_all(&mut self, a: Var) -> Var {
        let bounded = self.bounded_of(a);
        let lower = self.nonneg_reduce(a);
        self.push_with("mean_all", (1, 1), &[a], bounded, None, lower)
    }

    fn row_sum(&mut self, a: Var) -> Var {
        let (r, _) = self.shape_of(a);
        let bounded = self.bounded_of(a);
        let lower = self.nonneg_reduce(a);
        self.push_with("row_sum", (r, 1), &[a], bounded, None, lower)
    }

    fn col_mean(&mut self, a: Var) -> Var {
        let (_, c) = self.shape_of(a);
        let bounded = self.bounded_of(a);
        let lower = self.nonneg_reduce(a);
        self.push_with("col_mean", (1, c), &[a], bounded, None, lower)
    }

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let rows = parts.first().map_or(0, |&p| self.shape_of(p).0);
        let mut cols = 0;
        let mut bounded = true;
        // The concatenation's bound is the weakest bound among its parts.
        let mut lower = Lower::Positive;
        for &p in parts {
            let sp = self.shape_of(p);
            if sp.0 != rows {
                self.diag(
                    DiagnosticKind::ShapeMismatch,
                    "concat_cols",
                    format!("part has {} rows, first part has {rows}", sp.0),
                );
            }
            cols += sp.1;
            bounded &= self.bounded_of(p);
            lower = lower.min(self.lower_of(p));
        }
        if parts.is_empty() {
            lower = Lower::Unknown;
        }
        self.push_with("concat_cols", (rows, cols), parts, bounded, None, lower)
    }

    fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let sa = self.shape_of(a);
        if start > end || end > sa.1 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "slice_cols",
                format!("column slice [{start}, {end}) out of bounds for {sa:?}"),
            );
        }
        let bounded = self.bounded_of(a);
        let lower = self.lower_of(a);
        let v = self.push_with(
            "slice_cols",
            (sa.0, end.saturating_sub(start)),
            &[a],
            bounded,
            None,
            lower,
        );
        self.tag(v, ((start as u64) << 32) | (end as u64 & 0xFFFF_FFFF))
    }

    fn gather(&mut self, a: Var, idx: Rc<Vec<usize>>) -> Var {
        let sa = self.shape_of(a);
        if let Some(&bad) = idx.iter().find(|&&i| i >= sa.0) {
            self.diag(
                DiagnosticKind::IndexRange,
                "gather",
                format!("index {bad} out of range for a table with {} rows", sa.0),
            );
        }
        let bounded = self.bounded_of(a);
        let lower = self.lower_of(a);
        let v = self.push_with("gather", (idx.len(), sa.1), &[a], bounded, None, lower);
        self.tag(v, Rc::as_ptr(&idx) as usize as u64)
    }

    fn layer_norm_rows(&mut self, a: Var, eps: f32) -> Var {
        let v = self.unary("layer_norm_rows", a, true, Lower::Unknown);
        self.tag(v, u64::from(eps.to_bits()))
    }

    fn l2_normalize_rows(&mut self, a: Var, eps: f32) -> Var {
        // Rescaling by a positive norm preserves sign (entrywise).
        let lower = self.nonneg_reduce(a);
        let v = self.unary("l2_normalize_rows", a, true, lower);
        self.tag(v, u64::from(eps.to_bits()))
    }

    fn row_dots(&mut self, a: Var, b: Var) -> Var {
        self.require_same("row_dots", a, b);
        let (r, _) = self.shape_of(a);
        let bounded = self.bounded_of(a) && self.bounded_of(b);
        let lower = self.nonneg_if_both(a, b);
        self.push_with("row_dots", (r, 1), &[a, b], bounded, None, lower)
    }

    fn softmax_rows(&mut self, a: Var) -> Var {
        // Softmax entries underflow to exact 0.0 once logits spread past
        // ~ln(f32::MAX): NonNeg, not Positive.
        self.unary("softmax_rows", a, true, Lower::NonNeg)
    }

    fn segment_softmax(&mut self, logits: Var, seg: Rc<Vec<usize>>) -> Var {
        let sl = self.shape_of(logits);
        if sl.1 != 1 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "segment_softmax",
                format!("logits must be E × 1, got {sl:?}"),
            );
        }
        self.check_segments("segment_softmax", &seg, sl.0);
        let v = self.push_with("segment_softmax", sl, &[logits], true, None, Lower::NonNeg);
        self.tag(v, Rc::as_ptr(&seg) as usize as u64)
    }

    fn segment_weighted_sum(&mut self, w: Var, v: Var, seg: Rc<Vec<usize>>) -> Var {
        let (sw, sv) = (self.shape_of(w), self.shape_of(v));
        if sw.1 != 1 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "segment_weighted_sum",
                format!("weights must be E × 1, got {sw:?}"),
            );
        }
        if sw.0 != sv.0 {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "segment_weighted_sum",
                format!("{} weights for {} value rows", sw.0, sv.0),
            );
        }
        self.check_segments("segment_weighted_sum", &seg, sv.0);
        let n = seg.len().saturating_sub(1);
        let bounded = self.bounded_of(w) && self.bounded_of(v);
        let lower = self.nonneg_if_both(w, v);
        let out = self.push_with("segment_weighted_sum", (n, sv.1), &[w, v], bounded, None, lower);
        self.tag(out, Rc::as_ptr(&seg) as usize as u64)
    }

    fn dropout_mask(&mut self, a: Var, mask: Matrix) -> Var {
        let sa = self.shape_of(a);
        if mask.shape() != sa {
            self.diag(
                DiagnosticKind::ShapeMismatch,
                "dropout",
                format!("mask is {:?}, input is {sa:?}", mask.shape()),
            );
        }
        let bounded = self.bounded_of(a);
        // The mask is entrywise 0 or 1/(1-p) ≥ 0, so non-negativity survives
        // but positivity does not (masked entries become exact zeros).
        let lower = self.nonneg_reduce(a);
        self.push_with("dropout", sa, &[a], bounded, None, lower)
    }
}
