//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset this workspace's `[[bench]]` targets use —
//! `criterion_group!`/`criterion_main!`, `Criterion::{benchmark_group,
//! bench_function}`, `BenchmarkGroup::{bench_function, bench_with_input,
//! finish}`, `BenchmarkId`, and `Bencher::iter` — with a simple
//! warmup-then-measure timer instead of criterion's statistical engine.
//! Results print as `name ... median <time> (<iters> iters)`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which some benches import directly).
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on timed iterations.
const MAX_ITERS: u32 = 1_000_000;

/// Runs one benchmark body repeatedly and reports the per-iteration time.
pub struct Bencher {
    median_ns: f64,
    iters: u32,
}

impl Bencher {
    fn new() -> Self {
        Self { median_ns: 0.0, iters: 0 }
    }

    /// Times `f`: one warmup call, then as many calls as fit in the target
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup + result sink
        let start = Instant::now();
        let mut iters = 0u32;
        while start.elapsed() < TARGET && iters < MAX_ITERS {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.median_ns = start.elapsed().as_nanos() as f64 / f64::from(self.iters);
    }
}

fn report(name: &str, b: &Bencher) {
    let ns = b.median_ns;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    println!("{name:<50} {human:>12}  ({} iters)", b.iters);
}

/// Identifier for a parameterized benchmark (`<name>/<parameter>`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { full: format!("{}/{}", name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, prefix: name.into() }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, mut f: F) {
        let mut b = Bencher::new();
        f(&mut b);
        report(&name.to_string(), &b);
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.prefix, id), &b);
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.prefix, id), &b);
    }

    /// Ends the group (upstream flushes reports here; a no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
