//! Shared baseline scaffolding: configuration, the flexible training loop,
//! and the cached-embedding scorer.

use std::rc::Rc;

use dgnn_autograd::{Adam, Optimizer, ParamSet, PlanHarness, Recorder, Tape, Var};
use dgnn_data::{TrainSampler, Triple};
use dgnn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyperparameters shared by all baselines (matched to DGNN's defaults so
/// Table II compares architectures, not budgets).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Propagation layers (where the model has a notion of layers).
    pub layers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// BPR batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Execute training steps under a proven static memory plan (traced
    /// baselines only: NGCF, GCCF, DGCF, MHCN, DisenHAN; the others train
    /// unplanned regardless). Bit-identical to unplanned execution.
    pub use_memory_plan: bool,
    /// Execute training steps under a checker-proven rewrite plan (traced
    /// baselines only, like `use_memory_plan`): constant folding, CSE, and
    /// op fusion over the traced step. Bit-identical to unoptimized
    /// execution; composes with `use_memory_plan`.
    pub use_graph_opt: bool,
    /// Kernel-pool thread count for training (`0` inherits the ambient
    /// setting: `DGNN_THREADS` or the hardware default). Any value produces
    /// bit-identical results; `1` forces fully serial kernels.
    pub threads: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            layers: 2,
            epochs: 30,
            batch_size: 2048,
            learning_rate: 0.01,
            weight_decay: 1e-4,
            use_memory_plan: false,
            use_graph_opt: false,
            threads: 0,
        }
    }
}

impl BaselineConfig {
    /// Enables statically planned, pooled training-step execution.
    pub fn with_memory_plan(mut self) -> Self {
        self.use_memory_plan = true;
        self
    }

    /// Enables checker-proven graph-optimized execution (constant folding,
    /// CSE, op fusion) for training steps.
    pub fn with_graph_opt(mut self) -> Self {
        self.use_graph_opt = true;
        self
    }

    /// Pins the kernel-pool thread count for training (`0` = inherit).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Gathered per-batch triple indices as shared vectors for `Tape::gather`.
pub(crate) struct BatchIdx {
    pub users: Rc<Vec<usize>>,
    pub pos: Rc<Vec<usize>>,
    pub neg: Rc<Vec<usize>>,
}

impl BatchIdx {
    pub fn new(triples: &[Triple]) -> Self {
        Self {
            users: Rc::new(triples.iter().map(|t| t.user as usize).collect()),
            pos: Rc::new(triples.iter().map(|t| t.pos as usize).collect()),
            neg: Rc::new(triples.iter().map(|t| t.neg as usize).collect()),
        }
    }
}

/// BPR loss over final user/item embedding matrices for a batch.
pub(crate) fn bpr_from_embeddings<R: Recorder>(
    tape: &mut R,
    users_final: Var,
    items_final: Var,
    idx: &BatchIdx,
) -> Var {
    let ue = tape.gather(users_final, Rc::clone(&idx.users));
    let pe = tape.gather(items_final, Rc::clone(&idx.pos));
    let ne = tape.gather(items_final, Rc::clone(&idx.neg));
    let ps = tape.row_dots(ue, pe);
    let ns = tape.row_dots(ue, ne);
    tape.bpr_loss(ps, ns)
}

/// A deterministic probe batch for tracing a planned step. Drawn from its
/// own RNG so the training stream is untouched and planned runs remain
/// bit-identical to unplanned ones.
pub(crate) fn probe_batch(sampler: &TrainSampler, batch_size: usize, seed: u64) -> Vec<Triple> {
    sampler.batch(&mut StdRng::seed_from_u64(seed ^ 0x9E37_79B9), batch_size)
}

/// Flexible training loop: `forward` receives the tape, parameters, the
/// batch, and an RNG (for models with auxiliary sampling such as EATNN's
/// social task or MHCN's embedding corruption) and returns the scalar loss.
///
/// With `harness` set (a proven harness from
/// [`dgnn_core::training::build_harness`]), every step runs planned and/or
/// graph-optimized: intermediates retire into the harness's buffer pool at
/// their static death points, and proven rewrites (folds, CSE copies,
/// fused kernels) replace node-by-node recompute. The arithmetic is
/// bit-identical either way.
///
/// Returns mean loss per epoch.
pub(crate) fn train_loop(
    cfg: &BaselineConfig,
    params: &mut ParamSet,
    adam: &mut Adam,
    sampler: &TrainSampler,
    seed: u64,
    mut harness: Option<PlanHarness>,
    mut forward: impl FnMut(&mut Tape, &ParamSet, &[Triple], &mut StdRng) -> Var,
) -> Vec<f32> {
    let (epochs, batch_size) = (cfg.epochs, cfg.batch_size);
    if cfg.threads > 0 {
        dgnn_tensor::parallel::set_threads(cfg.threads);
    }
    dgnn_obs::gauge_set(
        "parallel/threads",
        dgnn_tensor::parallel::current_threads() as f64,
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E11E5);
    let batches = sampler.num_positives().div_ceil(batch_size).max(1);
    let mut losses = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        let _epoch_span = dgnn_obs::span("epoch");
        let mut epoch_loss = 0.0;
        for _ in 0..batches {
            let _batch_span = dgnn_obs::span("batch");
            let triples = sampler.batch(&mut rng, batch_size);
            let mut tape = match harness.as_mut() {
                Some(h) => h.begin_step(),
                None => Tape::new(),
            };
            let loss = {
                let _fwd = dgnn_obs::span("forward");
                forward(&mut tape, params, &triples, &mut rng)
            };
            params.zero_grads();
            {
                let _bwd = dgnn_obs::span("backward");
                epoch_loss += tape.backward_into(loss, params);
            }
            {
                let _opt_span = dgnn_obs::span("optimizer");
                let pre = params.clip_grad_norm(50.0);
                dgnn_obs::hist_record("grad_norm/preclip", f64::from(pre));
                if pre.is_finite() {
                    dgnn_obs::hist_record("grad_norm/postclip", f64::from(pre.min(50.0)));
                }
                adam.step(params);
            }
            if let Some(h) = harness.as_mut() {
                h.end_step(tape);
            }
        }
        let mean = epoch_loss / batches as f32;
        dgnn_obs::hist_record("epoch_mean_loss", f64::from(mean));
        losses.push(mean);
    }
    losses
}

/// Cached final embeddings + dot-product scoring — the inference side every
/// baseline shares.
#[derive(Debug)]
pub(crate) struct Scorer {
    pub user: Matrix,
    pub item: Matrix,
}

impl Default for Scorer {
    fn default() -> Self {
        Self { user: Matrix::zeros(0, 0), item: Matrix::zeros(0, 0) }
    }
}

impl Scorer {
    pub fn score(&self, model_name: &str, user: usize, items: &[usize]) -> Vec<f32> {
        assert!(
            !self.user.is_empty(),
            "{model_name}::score called before fit"
        );
        // Routed through the GEMM entry points (not a hand-rolled dot
        // loop) so the fold order matches the serving engine's on every
        // `DGNN_GEMM` backend: a checkpointed model must serve these
        // exact bits.
        let u = self.user.gather_rows(&[user]);
        u.matmul_nt(&self.item.gather_rows(items)).as_slice().to_vec()
    }

    #[cfg(test)]
    pub fn is_fitted(&self) -> bool {
        !self.user.is_empty()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use dgnn_data::{tiny, Dataset};
    use dgnn_eval::{evaluate_at, Trainable};

    use super::BaselineConfig;

    /// Fast config for smoke tests.
    pub fn quick() -> BaselineConfig {
        BaselineConfig { dim: 8, layers: 2, epochs: 4, batch_size: 256, ..Default::default() }
    }

    /// Trains the model on the tiny dataset and asserts it beats the
    /// ~0.099 HR@10 of random ranking.
    pub fn assert_beats_random(model: &mut dyn Trainable) -> f64 {
        let data: Dataset = tiny(42);
        model.fit(&data, 7);
        let m = evaluate_at(model, &data.test, 10);
        assert!(
            m.hr > 0.12,
            "{} HR@10 = {:.4} is not better than random",
            model.name(),
            m.hr
        );
        m.hr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_matches_dgnn() {
        let c = BaselineConfig::default();
        assert_eq!(c.dim, 16);
        assert_eq!(c.epochs, 30);
        assert_eq!(c.batch_size, 2048);
    }

    #[test]
    fn scorer_panics_before_fit() {
        let s = Scorer::default();
        assert!(!s.is_fitted());
        let r = std::panic::catch_unwind(|| s.score("X", 0, &[0]));
        assert!(r.is_err());
    }
}
