//! Quantitative separation metrics backing the paper's visual claims.

use dgnn_tensor::Matrix;

fn euclid(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt()
}

/// Mean silhouette coefficient of `points` under `labels` — the standard
/// clustering-quality score in `[-1, 1]`; higher = better-separated
/// clusters. This is the number Figure 9's "DGNN separates users better"
/// claim is checked against.
pub fn silhouette(points: &Matrix, labels: &[usize]) -> f64 {
    let n = points.rows();
    assert_eq!(labels.len(), n, "silhouette: label/point mismatch");
    let num_clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
    assert!(num_clusters >= 2, "silhouette: need at least two clusters");

    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        // Mean distance to each cluster.
        let mut sums = vec![0.0f64; num_clusters];
        let mut counts = vec![0usize; num_clusters];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[labels[j]] += euclid(points.row(i), points.row(j));
            counts[labels[j]] += 1;
        }
        let own = labels[i];
        if counts[own] == 0 {
            continue; // singleton cluster: silhouette undefined, skip
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..num_clusters)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        total += (b - a) / a.max(b).max(1e-12);
        counted += 1;
    }
    assert!(counted > 0, "silhouette: no scorable points");
    total / counted as f64
}

/// Inter/intra cluster distance ratio (> 1 means separated): mean pairwise
/// distance across clusters divided by mean pairwise distance within
/// clusters.
pub fn cluster_separation(points: &Matrix, labels: &[usize]) -> f64 {
    let n = points.rows();
    assert_eq!(labels.len(), n, "cluster_separation: label/point mismatch");
    let mut intra = (0.0f64, 0usize);
    let mut inter = (0.0f64, 0usize);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = euclid(points.row(i), points.row(j));
            if labels[i] == labels[j] {
                intra = (intra.0 + d, intra.1 + 1);
            } else {
                inter = (inter.0 + d, inter.1 + 1);
            }
        }
    }
    assert!(intra.1 > 0 && inter.1 > 0, "cluster_separation: degenerate labeling");
    (inter.0 / inter.1 as f64) / (intra.0 / intra.1 as f64).max(1e-12)
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| (x as f64) * (y as f64)).sum();
    let na: f64 = a.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    dot / (na * nb).max(1e-12)
}

/// Figure 10's quantitative claim: the mean cosine similarity of
/// memory-attention vectors over *connected* pairs minus the mean over
/// *random* pairs. Positive gap ⇒ the relation's attention is shared by
/// related users.
pub fn attention_similarity_gap(
    attention: &Matrix,
    connected_pairs: &[(usize, usize)],
    random_pairs: &[(usize, usize)],
) -> f64 {
    assert!(!connected_pairs.is_empty(), "attention gap: no connected pairs");
    assert!(!random_pairs.is_empty(), "attention gap: no random pairs");
    let mean = |pairs: &[(usize, usize)]| -> f64 {
        pairs
            .iter()
            .map(|&(a, b)| cosine(attention.row(a), attention.row(b)))
            .sum::<f64>()
            / pairs.len() as f64
    };
    mean(connected_pairs) - mean(random_pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Matrix, Vec<usize>) {
        let pts = Matrix::from_fn(20, 2, |r, c| {
            let center = if r < 10 { 0.0 } else { 10.0 };
            center + ((r * 3 + c) % 5) as f32 * 0.1
        });
        let labels = (0..20).map(|r| usize::from(r >= 10)).collect();
        (pts, labels)
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (pts, labels) = two_blobs();
        let s = silhouette(&pts, &labels);
        assert!(s > 0.8, "silhouette {s}");
    }

    #[test]
    fn silhouette_low_for_shuffled_labels() {
        let (pts, labels) = two_blobs();
        let shuffled: Vec<usize> = labels.iter().map(|&l| 1 - l).enumerate()
            .map(|(i, l)| if i % 2 == 0 { l } else { 1 - l })
            .collect();
        let good = silhouette(&pts, &labels);
        let bad = silhouette(&pts, &shuffled);
        assert!(good > bad);
    }

    #[test]
    fn separation_ratio_above_one_for_blobs() {
        let (pts, labels) = two_blobs();
        assert!(cluster_separation(&pts, &labels) > 2.0);
    }

    #[test]
    fn attention_gap_positive_when_connected_pairs_agree() {
        // Rows 0/1 nearly parallel, row 2 orthogonal-ish.
        let attn = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.9, 0.1, 0.0, 1.0]);
        let gap = attention_similarity_gap(&attn, &[(0, 1)], &[(0, 2)]);
        assert!(gap > 0.5, "gap {gap}");
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn silhouette_rejects_single_cluster() {
        let pts = Matrix::zeros(4, 2);
        silhouette(&pts, &[0, 0, 0, 0]);
    }
}
