//! Self-supervised pretraining on the side relations — the paper's stated
//! future-work direction ("explore the heterogeneous relational data under
//! a pre-trained framework to augment the side knowledge learning",
//! Section VI), implemented as an optional stage before [`crate::Dgnn`]
//! training.
//!
//! The pretext task is link prediction on the *side* matrices only: user
//! embeddings are trained so friends outrank non-friends (`S`), and item /
//! relation-node embeddings so an item outranks a random item under its own
//! category node (`T`). No interaction data is touched, so the stage is
//! usable even before any behavioral data exists — the cold-start setting
//! the paper motivates.

use dgnn_autograd::{Adam, Optimizer, ParamSet, Recorder, Tape};
use dgnn_graph::HeteroGraph;
use dgnn_tensor::{Init, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::rc::Rc;

/// Pretrained initial embeddings for [`crate::Dgnn`].
#[derive(Debug, Clone)]
pub struct PretrainedEmbeddings {
    /// `|U| × d` user table.
    pub user: Matrix,
    /// `|V| × d` item table.
    pub item: Matrix,
    /// `max(|R|, 1) × d` relation-node table.
    pub rel: Matrix,
}

/// Configuration of the pretraining stage.
#[derive(Debug, Clone)]
pub struct Pretrainer {
    /// Embedding dimensionality — must match the downstream
    /// [`crate::DgnnConfig::dim`].
    pub dim: usize,
    /// Pretraining epochs.
    pub epochs: usize,
    /// Link-prediction pairs per batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl Default for Pretrainer {
    fn default() -> Self {
        Self { dim: 16, epochs: 10, batch_size: 1024, learning_rate: 0.01 }
    }
}

impl Pretrainer {
    /// Runs the pretext tasks on the side relations of `g` and returns the
    /// warmed-up embedding tables.
    pub fn run(&self, g: &HeteroGraph, seed: u64) -> PretrainedEmbeddings {
        assert!(self.dim > 0 && self.batch_size > 0, "invalid pretrainer config");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E7A11);
        let mut params = ParamSet::new();
        let user =
            params.add("pre/user", Init::Uniform(0.1).build(g.num_users(), self.dim, &mut rng));
        let item =
            params.add("pre/item", Init::Uniform(0.1).build(g.num_items(), self.dim, &mut rng));
        let rel = params.add(
            "pre/rel",
            Init::Uniform(0.1).build(g.num_relations().max(1), self.dim, &mut rng),
        );
        let mut adam = Adam::new(self.learning_rate, 1e-5);

        // Flatten the side relations once.
        let mut ties: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in g.social_ties() {
            ties.push((a as usize, b as usize));
            ties.push((b as usize, a as usize));
        }
        let links: Vec<(usize, usize)> = g
            .item_relations()
            .iter()
            .map(|&(v, r)| (v as usize, r as usize))
            .collect();

        for _ in 0..self.epochs {
            let mut tape = Tape::new();
            let eu = tape.param(&params, user);
            let ev = tape.param(&params, item);
            let er = tape.param(&params, rel);

            let mut losses = Vec::new();
            // Social pretext: friend vs. random user.
            if !ties.is_empty() {
                let n = self.batch_size.min(ties.len() * 4);
                let mut a = Vec::with_capacity(n);
                let mut p = Vec::with_capacity(n);
                let mut q = Vec::with_capacity(n);
                for _ in 0..n {
                    let (x, y) = ties[rng.gen_range(0..ties.len())];
                    a.push(x);
                    p.push(y);
                    q.push(rng.gen_range(0..g.num_users()));
                }
                let ae = tape.gather(eu, Rc::new(a));
                let pe = tape.gather(eu, Rc::new(p));
                let qe = tape.gather(eu, Rc::new(q));
                let ps = tape.row_dots(ae, pe);
                let ns = tape.row_dots(ae, qe);
                losses.push(tape.bpr_loss(ps, ns));
            }
            // Knowledge pretext: the category's own item vs. a random item.
            if !links.is_empty() {
                let n = self.batch_size.min(links.len() * 4);
                let mut r_idx = Vec::with_capacity(n);
                let mut p = Vec::with_capacity(n);
                let mut q = Vec::with_capacity(n);
                for _ in 0..n {
                    let (v, r) = links[rng.gen_range(0..links.len())];
                    r_idx.push(r);
                    p.push(v);
                    q.push(rng.gen_range(0..g.num_items()));
                }
                let re = tape.gather(er, Rc::new(r_idx));
                let pe = tape.gather(ev, Rc::new(p));
                let qe = tape.gather(ev, Rc::new(q));
                let ps = tape.row_dots(re, pe);
                let ns = tape.row_dots(re, qe);
                losses.push(tape.bpr_loss(ps, ns));
            }
            let Some(&first) = losses.first() else {
                break; // no side information at all: nothing to pretrain
            };
            let total = losses[1..].iter().fold(first, |acc, &l| tape.add(acc, l));
            params.zero_grads();
            tape.backward_into(total, &mut params);
            adam.step(&mut params);
        }

        PretrainedEmbeddings {
            user: params.value(user).clone(),
            item: params.value(item).clone(),
            rel: params.value(rel).clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_data::tiny;

    #[test]
    fn pretraining_embeds_social_homophily() {
        let data = tiny(42);
        let g = &data.graph;
        let pre = Pretrainer { dim: 8, epochs: 40, ..Pretrainer::default() };
        let emb = pre.run(g, 7);
        assert_eq!(emb.user.shape(), (g.num_users(), 8));
        assert_eq!(emb.item.shape(), (g.num_items(), 8));

        // Friends should now be closer (higher dot) than random pairs.
        let dot = |a: usize, b: usize| -> f32 {
            emb.user.row(a).iter().zip(emb.user.row(b)).map(|(&x, &y)| x * y).sum()
        };
        let mut friend_score = 0.0;
        for &(a, b) in g.social_ties() {
            friend_score += dot(a as usize, b as usize);
        }
        friend_score /= g.social_ties().len() as f32;
        let mut random_score = 0.0;
        let n = g.num_users();
        for a in 0..n {
            random_score += dot(a, (a + n / 2) % n);
        }
        random_score /= n as f32;
        assert!(
            friend_score > random_score,
            "friends ({friend_score:.4}) should score above random ({random_score:.4})"
        );
    }

    #[test]
    fn pretraining_is_deterministic() {
        let data = tiny(1);
        let pre = Pretrainer { dim: 4, epochs: 3, ..Pretrainer::default() };
        let a = pre.run(&data.graph, 9);
        let b = pre.run(&data.graph, 9);
        assert_eq!(a.user.as_slice(), b.user.as_slice());
        assert_eq!(a.item.as_slice(), b.item.as_slice());
    }

    #[test]
    fn graph_without_side_relations_yields_initial_tables() {
        use dgnn_graph::HeteroGraphBuilder;
        let mut b = HeteroGraphBuilder::new(3, 5, 0);
        b.interaction(0, 0, 0);
        let g = b.build();
        let pre = Pretrainer { dim: 4, epochs: 5, ..Pretrainer::default() };
        let emb = pre.run(&g, 1);
        assert_eq!(emb.user.shape(), (3, 4));
        assert!(emb.user.all_finite());
    }
}
