//! Static verification for DGNN compute graphs, plus workspace source lints.
//!
//! # Why a second interpreter
//!
//! Every model in this workspace builds its forward pass against
//! `R: Recorder` ([`dgnn_autograd::Recorder`]). The trainer instantiates
//! `R = Tape` and gets values + gradients. This crate instantiates
//! `R = ShapeTracer` and gets a *shape-domain abstract interpretation* of
//! the identical graph: no tensor is allocated, no FLOP is spent, and the
//! whole trace of the tiny dataset finishes in microseconds.
//!
//! Because both interpreters share one builder surface, the verifier can
//! never drift from the trained model — whatever graph `fit` would
//! differentiate is exactly the graph the auditor sees.
//!
//! # What gets caught, before any training step
//!
//! | kind | detected | example |
//! |------|----------|---------|
//! | [`DiagnosticKind::ShapeMismatch`] | at trace time | `matmul` inner dims disagree |
//! | [`DiagnosticKind::IndexRange`] | at trace time | `gather` index ≥ table rows; bad segment pointer |
//! | [`DiagnosticKind::UnstableDomain`] | at trace time | `exp` of an unbounded logit; `ln`/`div`/`sqrt` not bounded away from 0/negative |
//! | [`DiagnosticKind::UnusedParam`] | by [`audit`] | registered param with no path to the loss |
//! | [`DiagnosticKind::DeadSubgraph`] | by [`audit`] | recorded compute `backward` never sees |
//! | [`DiagnosticKind::CommonSubexpression`] | by [`audit`] (advisory) | a node recomputing an earlier node's value |
//! | [`DiagnosticKind::FoldableSubgraph`] | by [`audit`] (advisory) | training-invariant compute redone every step |
//!
//! # Usage
//!
//! ```
//! use dgnn_analysis::{audit, ShapeTracer};
//! use dgnn_autograd::{ParamSet, Recorder};
//! use dgnn_tensor::{Init, Matrix};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! # use rand::SeedableRng;
//! let mut params = ParamSet::new();
//! let w = params.add("w", Init::XavierUniform.build(4, 4, &mut rng));
//!
//! let mut tr = ShapeTracer::new();
//! let x = tr.constant(Matrix::zeros(8, 4));
//! let wv = tr.param(&params, w);
//! let h = tr.matmul(x, wv);
//! let s = tr.sigmoid(h);
//! let loss = tr.mean_all(s);
//!
//! let report = audit(&tr, loss, &[], &params);
//! assert!(report.is_clean(), "{report}");
//! ```
//!
//! # Memory planning
//!
//! A second analysis pass, [`plan`], turns the same trace into a
//! [`MemoryPlan`]: per-node last-use times over the forward *and* reverse
//! sweeps (using [`dgnn_autograd::meta::grad_reads`] to know which inputs
//! each op's gradient actually touches), static free points, shape-bucketed
//! buffer reuse classes, and the step's static peak-live-bytes. The plan is
//! proven safe by the *independent* interval-overlap checker
//! [`check_plan`] before the trainer executes it via
//! [`dgnn_autograd::PlanHarness`] and the `dgnn_tensor` buffer pool.
//!
//! # Graph optimization
//!
//! A third pass, [`optimize`], rewrites the trace for speed without
//! changing a single output bit: constant folding of training-invariant
//! subgraphs into a cross-step cache, common-subexpression elimination over
//! purity- and attribute-keyed value numbering, and op fusion (in-place
//! epilogues, streaming broadcasts, gather→matmul). The result is a
//! [`dgnn_autograd::RewritePlan`] of per-node *patches* — no node is
//! renumbered, so gradients and the memory plan carry over unchanged. Every
//! plan must be proven by the *independent* [`check_rewrites`] (which
//! shares no code with the optimizer, mirroring the planner/checker split)
//! before a trainer executes it; [`plan_with_rewrites`] /
//! [`check_plan_with_rewrites`] make the memory plan aware of the extra
//! reads rewritten execution performs.
//!
//! The source-level lint harness lives in the `lint` binary
//! (`cargo run -p dgnn-analysis --bin lint`); it is a std-only walker that
//! enforces panic-hygiene and safety-comment rules over `crates/*/src`.

mod audit;
mod checker;
pub mod json;
mod optimizer;
mod planner;
pub mod race_checker;
mod rewrite_checker;
mod tracer;

pub use audit::{audit, AuditReport};
pub use checker::{check_plan, check_plan_with_rewrites, PlanProof, PlanViolation};
pub use optimizer::{optimize, OptimizerStats};
pub use planner::{plan, plan_with_rewrites, FreePoint, MemoryPlan, NodePlan};
pub use rewrite_checker::{check_rewrites, RewriteProof, RewriteViolation};
pub use tracer::{Diagnostic, DiagnosticKind, ShapeTracer};
