//! Checkpoint round-trip, corruption, and serving-determinism tests.
//!
//! The contract under test: a checkpoint is a *bit-exact* snapshot of a
//! trained model's scoring function. Saving, loading, and serving through
//! `dgnn-serve` must reproduce the in-memory model's scores and top-K
//! lists to the last bit, at any kernel-pool thread count — and feeding
//! the loader damaged bytes must produce a typed error, never a panic.

use std::path::PathBuf;

use dgnn_baselines::{Gccf, Ngcf};
use dgnn_core::Dgnn;
use dgnn_data::tiny;
use dgnn_eval::{Recommender, Trainable};
use dgnn_integration_tests::{quick_baseline, quick_dgnn};
use dgnn_serve::{Checkpoint, CheckpointError, Engine, Query};
use dgnn_tensor::{parallel, top_k_row, Matrix};

const SEED: u64 = 2023;

/// Unique scratch path (tests in one binary run concurrently).
fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dgnn-serve-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.ckpt", std::process::id()))
}

fn assert_score_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x:?} vs {y:?}");
    }
}

// ---------------------------------------------------------------- golden

#[test]
fn dgnn_roundtrip_scores_bit_identical() {
    let data = tiny(SEED);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, SEED);
    let path = tmp("dgnn-golden");
    model.save_checkpoint(&data.name, &path).unwrap();

    let restored = Dgnn::load_checkpoint(&path).unwrap();
    for case in &data.test {
        let candidates: Vec<usize> = case.candidates().map(|v| v as usize).collect();
        let want = model.score(case.user as usize, &candidates);
        let got = restored.score(case.user as usize, &candidates);
        assert_score_bits_eq(&want, &got, "DGNN user score");
    }
    std::fs::remove_file(&path).ok();
}

/// The generic embedding-export path must serve the two CF baselines'
/// dot-product scorer bit-for-bit through the inference engine.
#[test]
fn baseline_roundtrip_scores_bit_identical() {
    let data = tiny(SEED);

    let mut ngcf = Ngcf::new(quick_baseline());
    ngcf.fit(&data, SEED);
    assert_baseline_served_exactly(&ngcf, &data, "ngcf-golden");

    let mut gccf = Gccf::new(quick_baseline());
    gccf.fit(&data, SEED);
    assert_baseline_served_exactly(&gccf, &data, "gccf-golden");
}

fn assert_baseline_served_exactly(
    model: &(impl dgnn_eval::EmbeddingExport + Recommender),
    data: &dgnn_data::Dataset,
    tag: &str,
) {
    let path = tmp(tag);
    dgnn_serve::save_recommender(model, &data.name, &path).unwrap();
    let engine = Engine::load(&path).unwrap();
    assert_eq!(engine.meta("model"), Some(model.name()));
    for case in data.test.iter().take(20) {
        let all = engine.scores_for(case.user).unwrap();
        let candidates: Vec<usize> = case.candidates().map(|v| v as usize).collect();
        let want = model.score(case.user as usize, &candidates);
        let got: Vec<f32> = candidates.iter().map(|&v| all[v]).collect();
        assert_score_bits_eq(&want, &got, &format!("{} served score", model.name()));
    }
    std::fs::remove_file(&path).ok();
}

// ------------------------------------------------------------ corruption

/// A small hand-built checkpoint — corruption tests don't need training.
fn sample_checkpoint() -> Checkpoint {
    let mut ckpt = Checkpoint::new();
    ckpt.set_meta("model", "sample");
    ckpt.set_meta("dim", "3");
    ckpt.push_matrix("final/user", &Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
    ckpt.push_matrix("final/item", &Matrix::from_vec(4, 3, (0..12).map(|i| i as f32).collect()));
    ckpt.push_u32("seen/indptr", vec![0, 1, 2]);
    ckpt.push_u32("seen/items", vec![3, 0]);
    ckpt
}

#[test]
fn every_truncation_errors_without_panicking() {
    let bytes = sample_checkpoint().to_bytes();
    assert!(Checkpoint::from_bytes(&bytes).is_ok(), "untouched bytes must load");
    for len in 0..bytes.len() {
        let got = Checkpoint::from_bytes(&bytes[..len]);
        assert!(got.is_err(), "prefix of {len}/{} bytes decoded successfully", bytes.len());
    }
    // Trailing garbage is corruption too, not ignorable padding.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(matches!(Checkpoint::from_bytes(&extended), Err(CheckpointError::Corrupt(_))));
}

#[test]
fn single_byte_flips_never_panic_and_targeted_flips_are_typed() {
    let bytes = sample_checkpoint().to_bytes();
    // Sweep: no single-byte flip may panic (errors are fine; a flip in a
    // tensor *name* is not integrity-checked and may legitimately load).
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        let _ = Checkpoint::from_bytes(&bad);
    }
    // Magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(Checkpoint::from_bytes(&bad), Err(CheckpointError::BadMagic)));
    // Version field (bytes 4..8, little-endian).
    let mut bad = bytes.clone();
    bad[4] = 99;
    assert!(matches!(
        Checkpoint::from_bytes(&bad),
        Err(CheckpointError::UnsupportedVersion(99))
    ));
    // Meta byte: digest mismatch.
    let meta_pos = bytes
        .windows(b"model=sample".len())
        .position(|w| w == b"model=sample")
        .expect("meta text present");
    let mut bad = bytes.clone();
    bad[meta_pos] ^= 0x01;
    assert!(matches!(Checkpoint::from_bytes(&bad), Err(CheckpointError::DigestMismatch)));
    // Payload byte: the f32 1.0 (0x3f800000 LE) only occurs in tensor data.
    let payload_pos = bytes
        .windows(4)
        .position(|w| w == 1.0f32.to_le_bytes())
        .expect("payload float present");
    let mut bad = bytes.clone();
    bad[payload_pos] ^= 0x01;
    assert!(matches!(
        Checkpoint::from_bytes(&bad),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));
}

#[test]
fn io_and_missing_tensor_errors_are_typed() {
    let missing = Engine::load(std::path::Path::new("/nonexistent/dgnn.ckpt"));
    assert!(matches!(missing, Err(CheckpointError::Io(_))));
    // An engine needs final embeddings; a meta-only checkpoint must say so.
    let mut ckpt = Checkpoint::new();
    ckpt.set_meta("model", "empty");
    let got = Engine::from_checkpoint(&Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap());
    assert!(matches!(got, Err(CheckpointError::MissingTensor(_))));
}

// ---------------------------------------------------- serving determinism

/// The acceptance-criteria proof: train → save → load → the served top-K
/// list equals the in-memory model's, for every test user, with the
/// kernel pool at 1 and at 4 threads.
#[test]
fn served_topk_matches_in_memory_model_at_any_thread_count() {
    let data = tiny(SEED);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, SEED);
    let path = tmp("dgnn-e2e");
    model.save_checkpoint(&data.name, &path).unwrap();
    let engine = Engine::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let num_items = data.graph.num_items();
    let all_items: Vec<usize> = (0..num_items).collect();
    const K: usize = 10;

    let mut users: Vec<u32> = data.test.iter().map(|c| c.user).collect();
    users.sort_unstable();
    users.dedup();

    let mut per_thread_lists: Vec<Vec<(Vec<u32>, Vec<u32>)>> = Vec::new();
    for threads in [1usize, 4] {
        parallel::set_threads(threads);
        if threads > 1 {
            parallel::set_min_par_work(1);
        }
        let mut lists = Vec::new();
        for &user in &users {
            // In-memory reference: score every item, select with the same
            // total order (score desc, index asc) the server uses.
            let scores = model.score(user as usize, &all_items);
            let mut idx = vec![0u32; K];
            let mut sel = vec![0f32; K];
            top_k_row(&scores, &mut idx, &mut sel);

            let served = engine
                .recommend(Query { user, k: K, exclude_seen: false })
                .unwrap();
            let served_items: Vec<u32> = served.iter().map(|s| s.item).collect();
            assert_eq!(served_items, idx, "user {user}: served top-{K} diverges in memory");
            let served_bits: Vec<u32> = served.iter().map(|s| s.score.to_bits()).collect();
            let want_bits: Vec<u32> = sel.iter().map(|s| s.to_bits()).collect();
            assert_eq!(served_bits, want_bits, "user {user}: served scores diverge");
            lists.push((served_items, served_bits));
        }
        parallel::set_threads(1);
        parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
        per_thread_lists.push(lists);
    }
    assert_eq!(
        per_thread_lists[0], per_thread_lists[1],
        "top-K lists changed with the kernel-pool thread count"
    );
}
