//! Dataset layer for the DGNN reproduction.
//!
//! The paper evaluates on three review-site crawls (Ciao, Epinions, Yelp)
//! that are not redistributable. This crate substitutes a *latent-factor
//! world model* ([`synth`]) that emits all three relation families —
//! interactions `Y`, social ties `S`, item–relation links `T` — from one
//! shared ground-truth factor space, so social homophily and item semantic
//! relatedness are genuinely present in the data (see DESIGN.md §1 for why
//! this preserves the evaluation's shape). Real dumps can be dropped in
//! through the plain-text [`io`] format.
//!
//! The rest of the crate is protocol plumbing shared by every model:
//! leave-one-out splitting with 100 sampled negatives per test user
//! ([`Dataset`]), training-triple sampling ([`TrainSampler`]), and the
//! statistics printed in the paper's Table I ([`stats`]).

#![warn(missing_docs)]

mod dataset;
pub mod io;
pub mod kcore;
mod presets;
mod sampler;
pub mod scale;
pub mod stats;
pub mod synth;

pub use dataset::{Dataset, TestInstance};
pub use kcore::k_core;
pub use presets::{ciao_small, epinions_small, tiny, yelp_small, PAPER_TABLE1};
pub use sampler::{TrainSampler, Triple};
pub use scale::{scale_1m, scale_bench, scale_tiny, ScaleShard, ScaleSpec};
pub use stats::{DatasetStats, PaperDatasetStats};
pub use synth::WorldSpec;
