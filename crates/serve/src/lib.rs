//! Checkpointing and online top-K inference serving for the DGNN stack.
//!
//! Four layers, zero external dependencies (std + workspace crates only):
//!
//! 1. [`checkpoint`] — a versioned, checksummed little-endian binary
//!    format for named tensors plus model metadata. Loading untrusted
//!    bytes returns [`CheckpointError`], never panics.
//!    Segmented checkpoints ([`segment`]) extend the same guarantees to a
//!    manifest-plus-shard-files layout, and [`shard`] lazily faults those
//!    shards in (mmap or pread, `DGNN_MMAP` knob) at serve time.
//! 2. [`engine`] — loads a checkpoint, materializes the post-propagation
//!    scoring embeddings once (re-applying the Eq. 9–10 social
//!    recalibration when τ is stored), and answers top-K queries with a
//!    batched `matmul_nt` + heap-based partial select — bit-identical to
//!    the in-memory model's scorer at any thread count or batch shape.
//! 3. [`http`] — a std-only HTTP/1.1 server with a fixed worker pool and
//!    a micro-batcher coalescing concurrent queries into one engine
//!    dispatch per tick; malformed input gets JSON 4xx/5xx, never a panic.
//! 4. Stats ([`stats`]) — bounded latency/batch-size collectors published
//!    through the `dgnn-obs` snapshot pipeline so serve benchmarks share
//!    the schema of the training profiles.
//! 5. Tracing ([`trace`]) — per-request phase timings ([`RequestTrace`])
//!    recorded live into process-shared histograms, scraped via
//!    `GET /metrics` (Prometheus) and `GET /stats` (JSON), with an
//!    always-on flight recorder dumped on worker panic and at
//!    `GET /debug/flight`.
//!
//! Models expose their state either through the generic
//! [`dgnn_eval::EmbeddingExport`] path ([`export_recommender`], for plain
//! dot-product scorers like NGCF/GCCF) or through model-specific methods
//! (`Dgnn::save_checkpoint`, which additionally stores every parameter,
//! the τ matrix, and the users' seen-item lists).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod engine;
pub mod http;
pub mod segment;
pub mod shard;
pub mod stats;
pub mod trace;

use std::path::Path;

use dgnn_eval::EmbeddingExport;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use engine::{Engine, Query, QueryError, ScoredItem};
pub use http::{ServeConfig, Server};
pub use segment::{save_segmented, SegmentedCheckpoint, SegmentedSummary, SegmentedWriter, UserShard};
pub use shard::{MapMode, ShardStats};
pub use stats::{ServerStats, StatsSummary};
pub use trace::{PhaseBreakdown, RequestTrace, ServeTelemetry};

/// Builds a checkpoint from any dot-product recommender's final
/// embeddings. The loaded [`Engine`] then scores exactly like the model's
/// `score` (same sequential dot product), so round-trips are bit-exact.
pub fn export_recommender(model: &impl EmbeddingExport, dataset: &str) -> Checkpoint {
    let (user, item) = model.embeddings();
    let mut ckpt = Checkpoint::new();
    ckpt.set_meta("model", model.name());
    ckpt.set_meta("dataset", dataset);
    ckpt.set_meta("dim", &item.cols().to_string());
    ckpt.push_matrix("final/user", user);
    ckpt.push_matrix("final/item", item);
    ckpt
}

/// [`export_recommender`] + [`Checkpoint::save`] in one call.
pub fn save_recommender(
    model: &impl EmbeddingExport,
    dataset: &str,
    path: &Path,
) -> Result<(), CheckpointError> {
    export_recommender(model, dataset).save(path)
}
