//! **E2 — Table II**: overall HR@10 / NDCG@10 of all 15 models on the
//! three datasets, with the paper's "Imp" (DGNN improvement over each
//! baseline) rows. Also persists the full grid (all cutoffs) to
//! `results/grid.csv`, which `table3` reuses.

use dgnn_bench::{
    cutoff_index, datasets, improvement_pct, print_metric_table, roster, run_cell, write_csv,
    CellResult, SEED,
};

fn main() {
    let data = datasets();
    let mut results: Vec<CellResult> = Vec::new();
    for ds in &data {
        for mut model in roster() {
            eprintln!("training {} on {} …", model.name(), ds.name);
            let cell = run_cell(model.as_mut(), ds, SEED);
            eprintln!(
                "  HR@10 {:.4}  NDCG@10 {:.4}  ({:.1?} train)",
                cell.metrics[1].hr, cell.metrics[1].ndcg, cell.train_time
            );
            results.push(cell);
        }
    }

    print_metric_table("Table II: overall performance", &results, 10);

    // Improvement rows: DGNN vs every baseline, per dataset.
    let i10 = cutoff_index(10);
    println!("\n--- DGNN improvement over baselines (Imp, %) ---");
    for ds in &data {
        let dgnn = results
            .iter()
            .find(|r| r.model == "DGNN" && r.dataset == ds.name)
            .expect("every dataset has a DGNN row");
        println!("{}:", ds.name);
        for r in results.iter().filter(|r| r.dataset == ds.name && r.model != "DGNN") {
            println!(
                "  vs {:<10} HR +{:>6.2}%   NDCG +{:>6.2}%",
                r.model,
                improvement_pct(dgnn.metrics[i10].hr, r.metrics[i10].hr),
                improvement_pct(dgnn.metrics[i10].ndcg, r.metrics[i10].ndcg),
            );
        }
    }

    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.3},{:.3}",
                r.model,
                r.dataset,
                r.metrics[0].hr,
                r.metrics[0].ndcg,
                r.metrics[1].hr,
                r.metrics[1].ndcg,
                r.metrics[2].hr,
                r.metrics[2].ndcg,
                r.train_time.as_secs_f64(),
                r.eval_time.as_secs_f64(),
            )
        })
        .collect();
    let path = write_csv(
        "grid",
        "model,dataset,hr5,ndcg5,hr10,ndcg10,hr20,ndcg20,train_s,eval_s",
        &rows,
    );
    println!("\nraw grid: {}", path.display());
}
