//! Monotonic process clock.
//!
//! All observability timestamps are nanoseconds since the first clock read
//! of the process, from one shared [`Instant`] origin — so events recorded
//! by different crates land on a single comparable timeline and exported
//! traces start near zero.

use std::sync::OnceLock;
use std::time::Instant;

static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call in this process.
///
/// Saturates at `u64::MAX` (≈ 584 years of uptime).
pub fn now_ns() -> u64 {
    let origin = ORIGIN.get_or_init(Instant::now);
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
