//! End-to-end pipeline tests: data generation → persistence → split →
//! training → evaluation, across crate boundaries.

use dgnn_core::Dgnn;
use dgnn_data::{io, tiny, Dataset};
use dgnn_eval::{evaluate, evaluate_at, Trainable};
use dgnn_integration_tests::{quick_dgnn, RANDOM_HR10};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dgnn_full_pipeline_beats_random() {
    let data = tiny(42);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, 7);
    let m = evaluate_at(&model, &data.test, 10);
    assert!(
        m.hr > RANDOM_HR10 * 1.3,
        "HR@10 {:.4} should clearly beat random {:.4}",
        m.hr,
        RANDOM_HR10
    );
    // NDCG is bounded by HR (single positive, gain ≤ 1 per hit).
    assert!(m.ndcg <= m.hr + 1e-12);
}

#[test]
fn pipeline_survives_disk_roundtrip() {
    // Generate a world, persist it, reload, and train on the reloaded copy:
    // results must be identical to training on the original.
    let spec = dgnn_data::WorldSpec {
        name: "roundtrip",
        num_users: 50,
        num_items: 140,
        num_categories: 4,
        num_communities: 4,
        factor_dim: 6,
        target_interactions: 500,
        target_social_ties: 150,
        beta: 3.0,
        item_noise: 0.3,
        user_noise: 0.3,
        second_category_prob: 0.1,
    };
    let mut rng = StdRng::seed_from_u64(5);
    let original = spec.generate(&mut rng);
    let text = io::write_graph(&original);
    let reloaded = io::read_graph(&text).expect("roundtrip parse");

    let mut rng_a = StdRng::seed_from_u64(1);
    let mut rng_b = StdRng::seed_from_u64(1);
    let data_a = Dataset::leave_one_out("a", &original, 2, 50, &mut rng_a);
    let data_b = Dataset::leave_one_out("b", &reloaded, 2, 50, &mut rng_b);

    let mut model_a = Dgnn::new(quick_dgnn());
    let mut model_b = Dgnn::new(quick_dgnn());
    model_a.fit(&data_a, 3);
    model_b.fit(&data_b, 3);
    assert_eq!(model_a.loss_history, model_b.loss_history);
    assert_eq!(
        model_a.user_embeddings().as_slice(),
        model_b.user_embeddings().as_slice()
    );
}

#[test]
fn evaluation_is_pure() {
    // Scoring twice gives identical metrics (no hidden state mutation).
    let data = tiny(11);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, 7);
    let a = evaluate(&model, &data.test);
    let b = evaluate(&model, &data.test);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.hr, y.hr);
        assert_eq!(x.ndcg, y.ndcg);
    }
}

#[test]
fn more_training_does_not_hurt_badly() {
    // 1 epoch vs 6 epochs: the longer run should not be (much) worse —
    // a training-dynamics smoke test across the full stack.
    let data = tiny(13);
    let mut short = Dgnn::new(dgnn_core::DgnnConfig { epochs: 1, ..quick_dgnn() });
    let mut long = Dgnn::new(dgnn_core::DgnnConfig { epochs: 6, ..quick_dgnn() });
    short.fit(&data, 7);
    long.fit(&data, 7);
    let hr_short = evaluate_at(&short, &data.test, 10).hr;
    let hr_long = evaluate_at(&long, &data.test, 10).hr;
    assert!(
        hr_long >= hr_short * 0.8,
        "long {hr_long:.4} collapsed vs short {hr_short:.4}"
    );
}
