//! Failure-injection tests: every model must survive degenerate graphs —
//! isolated users, audience-less items, missing relation families — and the
//! data layer must reject genuinely impossible configurations loudly.

use dgnn_baselines::all_models;
use dgnn_core::Dgnn;
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{evaluate_at, Recommender, Trainable};
use dgnn_graph::HeteroGraphBuilder;
use dgnn_integration_tests::{quick_baseline, quick_dgnn};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A hostile little world: isolated users (no edges at all), items nobody
/// touched, a user with no friends, no relation nodes.
fn degenerate_dataset() -> Dataset {
    let mut b = HeteroGraphBuilder::new(8, 130, 0);
    // Only users 0..4 interact; 4..8 are fully isolated.
    for u in 0..4 {
        for k in 0..4 {
            b.interaction(u, u * 4 + k, k as u32);
        }
    }
    // One social edge among the active, one among the isolated.
    b.social_tie(0, 1).social_tie(6, 7);
    let full = b.build();
    let mut rng = StdRng::seed_from_u64(0);
    Dataset::leave_one_out("degenerate", &full, 2, 30, &mut rng)
}

#[test]
fn dgnn_survives_degenerate_graph() {
    let data = degenerate_dataset();
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, 3);
    assert!(model.loss_history.iter().all(|l| l.is_finite()));
    // Scoring an isolated user must still work (cold embedding, no NaN).
    let scores = model.score(6, &[0, 1, 2]);
    assert!(scores.iter().all(|s| s.is_finite()));
    let m = evaluate_at(&model, &data.test, 10);
    assert!(m.hr.is_finite());
}

#[test]
fn every_baseline_survives_degenerate_graph() {
    let data = degenerate_dataset();
    for mut model in all_models(&quick_baseline()) {
        model.fit(&data, 3);
        let scores = model.score(7, &[0, 5, 9]);
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "{} produced non-finite scores on the degenerate graph",
            model.name()
        );
    }
}

#[test]
fn sampler_rejects_saturated_user() {
    // A user who interacted with the whole catalog makes BPR undefined:
    // this must fail fast, not hang.
    let mut b = HeteroGraphBuilder::new(1, 3, 0);
    for v in 0..3 {
        b.interaction(0, v, v as u32);
    }
    let g = b.build();
    let r = std::panic::catch_unwind(|| TrainSampler::new(&g));
    assert!(r.is_err(), "saturated user must be rejected");
}

#[test]
fn zero_epoch_training_leaves_usable_model() {
    let data = degenerate_dataset();
    let mut model = Dgnn::new(dgnn_core::DgnnConfig { epochs: 0, ..quick_dgnn() });
    model.fit(&data, 3);
    // No training happened, but finalize ran: scoring must work.
    let scores = model.score(0, &[0, 1]);
    assert!(scores.iter().all(|s| s.is_finite()));
    assert!(model.loss_history.is_empty());
}
