//! The workspace's single percentile definition.
//!
//! Serving stats (`dgnn-serve`), the load harness, and the streaming
//! histogram's quantile estimator all answer "what is p99?" — and before
//! this module each carried its own indexing convention. One definition
//! lives here: **nearest-rank over a zero-based sorted array**,
//! `index = round(q · (n − 1))`. It is exact (returns an observed value,
//! never an interpolation), agrees with the previous `stats.rs` math
//! byte-for-byte, and is proptested against a sorted-vector oracle in
//! `tests/tests/telemetry.rs` alongside the [`crate::StreamHist`]
//! estimate.

/// Zero-based nearest-rank index of quantile `q` in `n` sorted samples:
/// `round(q·(n−1))`, clamped into `[0, n−1]`. `n = 0` returns 0 (callers
/// must handle the empty case themselves; every helper here returns 0.0).
pub fn rank(q: f64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let idx = (q.clamp(0.0, 1.0) * (n - 1) as f64).round() as usize;
    idx.min(n - 1)
}

/// Nearest-rank percentile of an **already sorted** (ascending) slice.
/// Returns 0.0 when empty.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[rank(q, sorted.len())]
}

/// Nearest-rank percentile of an **already sorted** (ascending) `u64`
/// slice — the serving tier stores latencies as integral microseconds.
/// Returns 0.0 when empty.
pub fn percentile_sorted_u64(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[rank(q, sorted.len())] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_matches_the_legacy_stats_definition() {
        // The old stats.rs computed round(q*(n-1)): for n=6, p50 -> idx 3.
        assert_eq!(rank(0.50, 6), 3);
        assert_eq!(rank(0.99, 6), 5);
        assert_eq!(rank(0.0, 6), 0);
        assert_eq!(rank(1.0, 6), 5);
        assert_eq!(rank(0.5, 1), 0);
        assert_eq!(rank(0.5, 0), 0);
        // Out-of-range q clamps instead of indexing out of bounds.
        assert_eq!(rank(2.0, 4), 3);
        assert_eq!(rank(-1.0, 4), 0);
    }

    #[test]
    fn percentiles_pick_observed_values() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile_sorted(&v, 0.5), 3.0);
        assert_eq!(percentile_sorted(&v, 1.0), 100.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        let u = [10u64, 20, 30];
        assert_eq!(percentile_sorted_u64(&u, 0.5), 20.0);
        assert_eq!(percentile_sorted_u64(&[], 0.5), 0.0);
    }
}
