//! Train/test split and evaluation instances.

use dgnn_graph::{HeteroGraph, HeteroGraphBuilder, Interaction};
use rand::seq::SliceRandom;
use rand::Rng;

/// One evaluation case: the paper's protocol holds out a positive item per
/// user and ranks it against 100 sampled non-interacted items
/// (Section V-A3).
#[derive(Debug, Clone)]
pub struct TestInstance {
    /// The evaluated user.
    pub user: u32,
    /// The held-out positive item.
    pub pos_item: u32,
    /// 100 (or fewer on tiny catalogs) never-interacted negatives.
    pub negatives: Vec<u32>,
}

impl TestInstance {
    /// The candidate list a model must rank: positive first, then
    /// negatives. (Order carries no information; models score, not rank,
    /// this list.)
    pub fn candidates(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.pos_item).chain(self.negatives.iter().copied())
    }
}

/// A complete experiment dataset: the training graph plus held-out
/// evaluation instances.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (`ciao-s`, `epinions-s`, `yelp-s`, …).
    pub name: String,
    /// Training graph: all social ties and item relations, plus the
    /// training portion of the interactions.
    pub graph: HeteroGraph,
    /// Held-out test cases (one per user with enough history).
    pub test: Vec<TestInstance>,
}

impl Dataset {
    /// Builds a dataset from a *full* interaction graph using leave-one-out:
    /// for every user with at least `min_history + 1` interactions, the
    /// latest interaction becomes the test positive, the rest train. The
    /// `num_negatives` negatives are drawn uniformly from items the user
    /// never interacted with.
    pub fn leave_one_out(
        name: impl Into<String>,
        full: &HeteroGraph,
        min_history: usize,
        num_negatives: usize,
        rng: &mut impl Rng,
    ) -> Dataset {
        let num_users = full.num_users();
        let num_items = full.num_items();

        // Latest interaction per user.
        let mut latest: Vec<Option<Interaction>> = vec![None; num_users];
        let mut history: Vec<usize> = vec![0; num_users];
        for it in full.interactions() {
            history[it.user as usize] += 1;
            let slot = &mut latest[it.user as usize];
            if slot.map_or(true, |cur| it.time > cur.time) {
                *slot = Some(*it);
            }
        }

        let mut builder =
            HeteroGraphBuilder::new(num_users, num_items, full.num_relations());
        for &(a, b) in full.social_ties() {
            builder.social_tie(a as usize, b as usize);
        }
        for &(v, r) in full.item_relations() {
            builder.item_relation(v as usize, r as usize);
        }

        let mut test = Vec::new();
        for it in full.interactions() {
            let u = it.user as usize;
            // Match on the item, not the exact record: a duplicate
            // (user, item) pair at an earlier timestamp would otherwise
            // leak the held-out positive into the training graph.
            let held_out = history[u] > min_history
                && latest[u].is_some_and(|pos| it.item == pos.item);
            if !held_out {
                builder.interaction(u, it.item as usize, it.time);
            }
        }
        for u in 0..num_users {
            if history[u] <= min_history {
                continue;
            }
            let Some(pos) = latest[u] else { continue };
            let interacted: Vec<bool> = {
                let mut seen = vec![false; num_items];
                for it in full.interactions() {
                    if it.user as usize == u {
                        seen[it.item as usize] = true;
                    }
                }
                seen
            };
            let pool: Vec<u32> =
                (0..num_items as u32).filter(|&v| !interacted[v as usize]).collect();
            let take = num_negatives.min(pool.len());
            let negatives: Vec<u32> =
                pool.choose_multiple(rng, take).copied().collect();
            test.push(TestInstance { user: u as u32, pos_item: pos.item, negatives });
        }

        Dataset { name: name.into(), graph: builder.build(), test }
    }

    /// Number of training interactions.
    pub fn num_train(&self) -> usize {
        self.graph.interactions().len()
    }

    /// Number of evaluated users.
    pub fn num_test(&self) -> usize {
        self.test.len()
    }

    /// Per-user training interaction counts (for the sparsity-group
    /// analysis of the paper's Figure 6).
    pub fn train_counts_per_user(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.graph.num_users()];
        for it in self.graph.interactions() {
            counts[it.user as usize] += 1;
        }
        counts
    }

    /// Per-user social degree (for Figure 6's social-sparsity split).
    pub fn social_degree_per_user(&self) -> Vec<usize> {
        (0..self.graph.num_users()).map(|u| self.graph.friends_of(u).len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn full_graph() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new(3, 30, 2);
        // User 0: 3 interactions; latest is item 2 at t=9.
        b.interaction(0, 0, 1).interaction(0, 1, 5).interaction(0, 2, 9);
        // User 1: only 1 interaction — below min history, never tested.
        b.interaction(1, 3, 2);
        // User 2: 2 interactions; latest item 5 at t=7.
        b.interaction(2, 4, 3).interaction(2, 5, 7);
        b.social_tie(0, 1).item_relation(0, 0).item_relation(5, 1);
        b.build()
    }

    #[test]
    fn holds_out_latest_interaction() {
        let full = full_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let ds = Dataset::leave_one_out("t", &full, 1, 10, &mut rng);
        let case0 = ds.test.iter().find(|c| c.user == 0).expect("user 0 tested");
        assert_eq!(case0.pos_item, 2);
        let case2 = ds.test.iter().find(|c| c.user == 2).expect("user 2 tested");
        assert_eq!(case2.pos_item, 5);
        // User 1 has too little history.
        assert!(ds.test.iter().all(|c| c.user != 1));
        // Held-out interactions are absent from the training graph.
        assert!(!ds.graph.items_of(0).contains(&2));
        assert!(ds.graph.items_of(0).contains(&0));
        assert_eq!(ds.num_train(), 4);
    }

    #[test]
    fn duplicate_interactions_with_held_out_item_do_not_leak() {
        let mut b = HeteroGraphBuilder::new(1, 20, 1);
        // Item 4 is interacted twice; the t=9 copy becomes the test
        // positive and the t=1 copy must not survive into training.
        b.interaction(0, 4, 1).interaction(0, 3, 5).interaction(0, 4, 9);
        let full = b.build();
        let mut rng = StdRng::seed_from_u64(11);
        let ds = Dataset::leave_one_out("t", &full, 1, 10, &mut rng);
        assert_eq!(ds.test.len(), 1);
        assert_eq!(ds.test[0].pos_item, 4);
        assert!(!ds.graph.items_of(0).contains(&4));
        assert_eq!(ds.graph.items_of(0), &[3]);
    }

    #[test]
    fn negatives_never_interacted_and_exclude_positive() {
        let full = full_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let ds = Dataset::leave_one_out("t", &full, 1, 10, &mut rng);
        for case in &ds.test {
            assert_eq!(case.negatives.len(), 10);
            for &n in &case.negatives {
                assert_ne!(n, case.pos_item);
                assert!(
                    !full.items_of(case.user as usize).contains(&(n as usize)),
                    "negative {n} was interacted by user {}",
                    case.user
                );
            }
        }
    }

    #[test]
    fn social_and_knowledge_edges_survive_split() {
        let full = full_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let ds = Dataset::leave_one_out("t", &full, 1, 5, &mut rng);
        assert_eq!(ds.graph.social_ties().len(), 1);
        assert_eq!(ds.graph.item_relations().len(), 2);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let full = full_graph();
        let a = Dataset::leave_one_out("t", &full, 1, 10, &mut StdRng::seed_from_u64(7));
        let b = Dataset::leave_one_out("t", &full, 1, 10, &mut StdRng::seed_from_u64(7));
        for (x, y) in a.test.iter().zip(&b.test) {
            assert_eq!(x.negatives, y.negatives);
        }
    }

    #[test]
    fn candidates_lead_with_positive() {
        let inst =
            TestInstance { user: 0, pos_item: 9, negatives: vec![1, 2, 3] };
        let c: Vec<u32> = inst.candidates().collect();
        assert_eq!(c, vec![9, 1, 2, 3]);
    }

    #[test]
    fn per_user_count_helpers() {
        let full = full_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let ds = Dataset::leave_one_out("t", &full, 1, 5, &mut rng);
        let counts = ds.train_counts_per_user();
        assert_eq!(counts, vec![2, 1, 1]);
        let soc = ds.social_degree_per_user();
        assert_eq!(soc, vec![1, 1, 0]);
    }
}
