//! Monotonic process clock.
//!
//! All observability timestamps are nanoseconds since the first clock read
//! of the process, from one shared [`Instant`] origin — so events recorded
//! by different crates land on a single comparable timeline and exported
//! traces start near zero.

use std::sync::OnceLock;
use std::time::Instant;

static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call in this process.
///
/// Saturates at `u64::MAX` (≈ 584 years of uptime).
pub fn now_ns() -> u64 {
    let origin = ORIGIN.get_or_init(Instant::now);
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// CPU time consumed by the calling thread, in nanoseconds.
///
/// Unlike [`now_ns`], descheduled intervals (other processes, hypervisor
/// steal) do not accumulate, which makes this the right clock for
/// overhead *comparisons* on shared machines: wall time charges whichever
/// measurement happens to be running for every preemption, while CPU time
/// counts only work the thread itself did. Returns `None` on targets
/// without a precise per-thread CPU clock.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn thread_cpu_ns() -> Option<u64> {
    const SYS_CLOCK_GETTIME: i64 = 228;
    const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
    let mut ts = [0i64; 2]; // struct timespec { tv_sec, tv_nsec }, both i64 on x86_64
    let ret: i64;
    // SAFETY: raw clock_gettime(2) syscall; the kernel writes exactly one
    // 16-byte timespec to `ts`, which is a valid, aligned, live 2×i64
    // buffer, and the asm clobbers only rax/rcx/r11 as the x86_64 syscall
    // ABI specifies. No Rust memory is otherwise touched.
    unsafe {
        // SIMD: inline asm for a raw syscall, not data-path vector code —
        // the GEMM subsystem's SIMD contracts do not apply here.
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_CLOCK_GETTIME => ret,
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    (ret == 0)
        .then(|| (ts[0] as u64).saturating_mul(1_000_000_000).saturating_add(ts[1] as u64))
}

/// See the x86_64-linux implementation; no precise source on this target.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn thread_cpu_ns() -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_cpu_clock_is_monotone_and_advances_under_load() {
        let Some(a) = thread_cpu_ns() else { return };
        // Burn enough CPU that the clock must visibly advance.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let b = thread_cpu_ns().expect("clock vanished between calls");
        assert!(b > a, "thread CPU clock did not advance: {a} -> {b}");
    }
}
