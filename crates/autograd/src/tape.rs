//! The autodiff tape: forward-op recording and the reverse pass.
//!
//! Allocation discipline: this file is the workspace's hottest allocation
//! site, so the source lint forbids `.clone()` here unless the line carries
//! a `// PLAN:` comment explaining why the copy is necessary and how the
//! memory planner accounts for it.
//!
//! With [`Tape::with_rewrites`] the tape becomes an *optimizing executor*:
//! each recorded op consults a static [`RewritePlan`] action before
//! computing its forward value — serving CSE copies, fold-cache hits, and
//! fused kernels instead of plain recomputation. Every action is verified
//! at runtime (operand congruence, buffer availability) and falls back to
//! plain evaluation on any mismatch, so a stale plan can cost speed but
//! never correctness.

use std::cell::RefCell;
use std::rc::Rc;

use dgnn_tensor::{stable_sigmoid, Csr, Matrix};

use crate::params::{ParamId, ParamSet};
use crate::plan::TapePlan;
use crate::recorder::{Recorder, Var};
use crate::rewrite::{RewriteAction, RewritePlan};

/// One recorded operation. Kept private: the public API is the builder
/// surface of [`Recorder`] as implemented by [`Tape`]. `Clone` exists for
/// the fold cache, which stores an op snapshot per slot — the clone keeps
/// any `Rc` payloads alive across steps, so pointer-equality congruence
/// cannot be fooled by an address reuse.
#[derive(Debug, Clone)]
enum Op {
    /// Constant or parameter leaf; `param` links back to the [`ParamSet`].
    Leaf { param: Option<ParamId> },
    Add(Var, Var),
    Sub(Var, Var),
    /// Elementwise product. `a` and `b` may be the same variable.
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    MatMul(Var, Var),
    Transpose(Var),
    Sigmoid(Var),
    Tanh(Var),
    LeakyRelu(Var, f32),
    Relu(Var),
    Exp(Var),
    /// `ln(1 + eˣ)` with a numerically stable forward.
    Softplus(Var),
    /// Natural logarithm (domain-checked statically by the auditor).
    Ln(Var),
    /// Elementwise quotient `a ⊘ b`.
    Div(Var, Var),
    /// Elementwise square root.
    Sqrt(Var),
    /// Add a `1 × d` row vector to every row.
    AddRow(Var, Var),
    /// Multiply every row elementwise by a `1 × d` row vector.
    MulRow(Var, Var),
    /// Multiply row `i` by scalar `col[i]` (`col` is `n × 1`).
    MulCol(Var, Var),
    SumAll(Var),
    MeanAll(Var),
    RowSum(Var),
    ColMean(Var),
    ConcatCols(Vec<Var>),
    SliceCols { a: Var, start: usize, end: usize },
    /// Embedding lookup: output row `i` is `a.row(idx[i])`.
    Gather { a: Var, idx: Rc<Vec<usize>> },
    /// Sparse propagation `a · b`; `at` is `aᵀ` for the backward pass.
    Spmm { a: Rc<Csr>, at: Rc<Csr>, b: Var },
    /// Row-wise LayerNorm without affine terms (compose with
    /// [`Recorder::mul_row`]/[`Recorder::add_row`] for ω₁/ω₂ of the
    /// paper's Eq. 7).
    LayerNormRow { a: Var, eps: f32 },
    /// Row-wise L2 normalization (DGCF intent routing).
    RowL2Norm { a: Var, eps: f32 },
    /// `n × 1` of per-row dot products of two equally-shaped matrices.
    RowDots(Var, Var),
    SoftmaxRows(Var),
    /// Per-segment softmax over a column vector of edge logits, segments
    /// given by a CSR-style `seg` pointer (edges grouped by target node).
    SegmentSoftmax { logits: Var, seg: Rc<Vec<usize>> },
    /// `out[n] = Σ_{e ∈ seg(n)} w[e] · v.row(e)` — attention aggregation.
    SegmentWeightedSum { w: Var, v: Var, seg: Rc<Vec<usize>> },
    /// Elementwise product with a fixed (non-differentiated) mask.
    Dropout { a: Var, mask: Matrix },
}

impl Op {
    /// Portable op-kind name, matching [`crate::meta::ALL_OPS`] — the key
    /// under which `dgnn-obs` aggregates this op's profile, chosen so a
    /// profile row lines up with the static analyzer's view of the graph.
    fn kind(&self) -> &'static str {
        match self {
            Op::Leaf { param: Some(_) } => "param",
            Op::Leaf { param: None } => "constant",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Neg(..) => "neg",
            Op::Scale(..) => "scale",
            Op::AddScalar(..) => "add_scalar",
            Op::MatMul(..) => "matmul",
            Op::Transpose(..) => "transpose",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Relu(..) => "relu",
            Op::Exp(..) => "exp",
            Op::Softplus(..) => "softplus",
            Op::Ln(..) => "ln",
            Op::Div(..) => "div",
            Op::Sqrt(..) => "sqrt",
            Op::AddRow(..) => "add_row",
            Op::MulRow(..) => "mul_row",
            Op::MulCol(..) => "mul_col",
            Op::SumAll(..) => "sum_all",
            Op::MeanAll(..) => "mean_all",
            Op::RowSum(..) => "row_sum",
            Op::ColMean(..) => "col_mean",
            Op::ConcatCols(..) => "concat_cols",
            Op::SliceCols { .. } => "slice_cols",
            Op::Gather { .. } => "gather",
            Op::Spmm { .. } => "spmm",
            Op::LayerNormRow { .. } => "layer_norm_rows",
            Op::RowL2Norm { .. } => "l2_normalize_rows",
            Op::RowDots(..) => "row_dots",
            Op::SoftmaxRows(..) => "softmax_rows",
            Op::SegmentSoftmax { .. } => "segment_softmax",
            Op::SegmentWeightedSum { .. } => "segment_weighted_sum",
            Op::Dropout { .. } => "dropout",
        }
    }
}

/// Calls `f` on each graph input of `op` (leaves have none; the dropout
/// mask and index/segment payloads are not graph inputs).
fn for_each_input(op: &Op, f: &mut dyn FnMut(Var)) {
    use Op::*;
    match op {
        Leaf { .. } => {}
        Add(a, b) | Sub(a, b) | Mul(a, b) | Div(a, b) | MatMul(a, b) | AddRow(a, b)
        | MulRow(a, b) | MulCol(a, b) | RowDots(a, b) => {
            f(*a);
            f(*b);
        }
        Neg(a) | Scale(a, _) | AddScalar(a, _) | Transpose(a) | Sigmoid(a) | Tanh(a)
        | LeakyRelu(a, _) | Relu(a) | Exp(a) | Softplus(a) | Ln(a) | Sqrt(a) | SumAll(a)
        | MeanAll(a) | RowSum(a) | ColMean(a) | SoftmaxRows(a) => f(*a),
        ConcatCols(parts) => parts.iter().for_each(|&p| f(p)),
        SliceCols { a, .. }
        | Gather { a, .. }
        | LayerNormRow { a, .. }
        | RowL2Norm { a, .. }
        | Dropout { a, .. } => f(*a),
        Spmm { b, .. } => f(*b),
        SegmentSoftmax { logits, .. } => f(*logits),
        SegmentWeightedSum { w, v, .. } => {
            f(*w);
            f(*v);
        }
    }
}

struct Node {
    op: Op,
    value: Matrix,
    /// Forward shape, kept after `value` is freed: several backward rules
    /// (`sum_all`, `gather`, `slice_cols`, …) need only the shape, and
    /// routing them here lets the planner free those values early.
    shape: (usize, usize),
    /// True once a memory plan retired this node's value; any later value
    /// read is a planner bug and panics loudly (the runtime backstop behind
    /// the static safety proof).
    freed: bool,
    /// True when an in-place rewrite moved this node's buffer into a later
    /// node (or the value was elided entirely, for fused gathers). The
    /// shape stays readable; a value read panics like a freed read.
    stolen: bool,
}

/// Runtime rewrite counters: how many of each static [`RewriteAction`]
/// actually fired during one tape's life, and how many fell back to plain
/// evaluation because their runtime verification failed. Tests and the
/// bench harness read these to prove the optimizer is not vacuous.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RewriteCounters {
    /// CSE copies served after runtime congruence verification.
    pub cse_copies: u64,
    /// Fold-cache hits: values served (or constants validated) without
    /// recomputing the invariant subgraph.
    pub fold_hits: u64,
    /// Fold-cache refreshes: invariant values recomputed and re-cached
    /// (once per fit in steady training).
    pub fold_refreshes: u64,
    /// In-place buffer steals applied.
    pub steals: u64,
    /// Single-pass streamed broadcast kernels executed.
    pub streams: u64,
    /// gather→matmul fusions executed.
    pub gather_fusions: u64,
    /// Actions whose runtime verification failed and ran as plain computes
    /// (sound either way; nonzero means the plan was stale).
    pub fallbacks: u64,
}

/// Cross-step cache for constant-folded subgraphs.
///
/// One slot per folded node (constants at the region's frontier included).
/// An entry holds the node's op snapshot and its last computed value; a
/// per-step `valid` bit records whether the slot was verified equal to the
/// current computation *this* step. Interior nodes hit only when their op
/// is congruent with the snapshot **and** every input slot already
/// validated this step; constants validate by bit-comparing their data.
/// Any refresh leaves the slot invalid for the remainder of the step, so a
/// changed input forces the whole downstream region to recompute — stale
/// values can never be served.
#[derive(Debug)]
pub struct FoldCache {
    entries: Vec<Option<FoldEntry>>,
    valid: Vec<bool>,
}

#[derive(Debug)]
struct FoldEntry {
    /// `None` for constant leaves (validated by bit-comparing `value`);
    /// `Some` for interior ops (validated by congruence + input validity).
    op: Option<Op>,
    value: Matrix,
}

impl FoldCache {
    /// An empty cache with `slots` slots (all cold and invalid).
    pub fn new(slots: usize) -> Self {
        Self { entries: (0..slots).map(|_| None).collect(), valid: vec![false; slots] }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Invalidates every slot for a new step (entries persist; validity is
    /// re-established by this step's verifications).
    pub fn begin_step(&mut self) {
        self.valid.fill(false);
    }

    fn is_valid(&self, s: usize) -> bool {
        self.valid.get(s).copied().unwrap_or(false)
    }

    fn set_valid(&mut self, s: usize) {
        self.valid[s] = true;
    }

    fn refresh(&mut self, s: usize, op: Option<Op>, value: Matrix) {
        self.entries[s] = Some(FoldEntry { op, value });
        // Deliberately NOT valid: downstream slots cached against the old
        // value must recompute this step before they may hit again.
        self.valid[s] = false;
    }
}

/// Rewrite-execution state armed by [`Tape::with_rewrites`].
struct RewriteState {
    plan: Rc<RewritePlan>,
    fold: Rc<RefCell<FoldCache>>,
    /// Runtime value numbering: `canon[i]` is the earliest node whose value
    /// node `i` is a *verified* bit-copy of (itself when no copy fired).
    /// Congruence compares canon indices, so chains of CSE copies resolve —
    /// and because the table reflects copies that actually happened, it
    /// stays sound even when the static plan was wrong.
    canon: Vec<u32>,
    /// Canon source recorded by a successful copy, consumed by the next push.
    pending_canon: Option<u32>,
    counters: RewriteCounters,
}

/// Records one forward pass and computes gradients on demand.
///
/// A tape is cheap to construct; build a fresh one per training step. The
/// graph-building surface lives on the [`Recorder`] trait so that models
/// written against `R: Recorder` can also be abstractly interpreted (shape
/// checking, dead-subgraph audits) without executing any tensor math.
///
/// With [`Tape::with_plan`] the tape becomes a *planned executor*: forward
/// values are retired into the thread's [`dgnn_tensor::BufferPool`] at
/// their statically computed death points — during recording (values whose
/// last consumer is a forward op) and during [`Tape::backward_into`]
/// (values last read by a gradient rule). Planned and unplanned execution
/// are bit-identical; the plan only changes *when storage is reused*.
///
/// With [`Tape::with_rewrites`] the tape additionally executes a
/// checker-proven [`RewritePlan`] (see `dgnn_analysis::optimize`):
/// training-invariant subgraphs are served from a cross-step [`FoldCache`],
/// congruent recomputations become buffer copies, and hot op sequences run
/// as fused kernels. Optimized execution is bit-identical to unoptimized
/// execution — every rewrite preserves the exact f32 operation order.
pub struct Tape {
    nodes: Vec<Node>,
    finite_checks: bool,
    plan: Option<Rc<TapePlan>>,
    rewrites: Option<RewriteState>,
    /// `Some(mark)` while per-op profiling is armed (observability enabled
    /// at construction): the timestamp of the previous op boundary.
    /// Forward durations are *inter-push deltas* — everything since the
    /// last boundary is attributed to the op being pushed — so one clock
    /// read per op covers compute that happens in the `Recorder` methods
    /// before `push` runs.
    obs_mark: Option<u64>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape. Per-op profiling is armed here iff
    /// [`dgnn_obs::is_enabled`] at this moment; a tape built while
    /// observability is off stays unobserved for its whole life, keeping
    /// each step's profile internally consistent.
    pub fn new() -> Self {
        let obs_mark = dgnn_obs::is_enabled().then(dgnn_obs::now_ns);
        Self { nodes: Vec::new(), finite_checks: false, plan: None, rewrites: None, obs_mark }
    }

    /// Arms a memory plan: as recording and backward proceed, node values
    /// are freed at the plan's death points (see [`TapePlan`]). The plan
    /// must have been computed for exactly the graph about to be recorded;
    /// the tape asserts the node counts match and panics on any read of a
    /// freed value.
    pub fn with_plan(mut self, plan: Rc<TapePlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Arms a rewrite plan: each subsequently recorded op executes its
    /// statically assigned [`RewriteAction`] (runtime-verified, with plain
    /// evaluation as the fallback). `fold` carries constant-folded values
    /// across steps; size it with [`RewritePlan::num_fold_slots`] and call
    /// [`FoldCache::begin_step`] before each step.
    ///
    /// # Panics
    /// Panics if recording already started or the fold cache is sized for a
    /// different plan.
    pub fn with_rewrites(mut self, plan: Rc<RewritePlan>, fold: Rc<RefCell<FoldCache>>) -> Self {
        assert!(self.nodes.is_empty(), "with_rewrites must be called before recording");
        assert_eq!(
            fold.borrow().slots(),
            plan.num_fold_slots() as usize,
            "fold cache sized for a different rewrite plan"
        );
        self.rewrites = Some(RewriteState {
            plan,
            fold,
            canon: Vec::new(),
            pending_canon: None,
            counters: RewriteCounters::default(),
        });
        self
    }

    /// True when a memory plan is armed.
    pub fn is_planned(&self) -> bool {
        self.plan.is_some()
    }

    /// True when a rewrite plan is armed.
    pub fn is_rewritten(&self) -> bool {
        self.rewrites.is_some()
    }

    /// Runtime rewrite counters (None when no rewrite plan is armed).
    pub fn rewrite_counters(&self) -> Option<RewriteCounters> {
        self.rewrites.as_ref().map(|rw| rw.counters)
    }

    /// Enables (or disables) the runtime finite-value guard: with checks
    /// on, every recorded op asserts — in release builds too — that its
    /// forward value contains no NaN/∞, panicking at the first op that
    /// produces one instead of minutes later in a corrupted optimizer
    /// state. Defaults to off; debug builds always check.
    pub fn with_finite_checks(mut self, on: bool) -> Self {
        self.finite_checks = on;
        self
    }

    /// True when the runtime finite-value guard is enabled.
    pub fn finite_checks(&self) -> bool {
        self.finite_checks
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a variable.
    ///
    /// # Panics
    /// Panics if an armed memory plan already freed the value — that read
    /// would observe recycled storage, so the plan is unsound for this
    /// graph and execution must stop. Likewise panics if an in-place
    /// rewrite stole the buffer: the rewrite checker proved no such read
    /// exists, so reaching this assert means the proof was run against a
    /// different graph.
    pub fn value(&self, v: Var) -> &Matrix {
        let node = &self.nodes[v.0];
        assert!(
            !node.freed,
            "value of node {} read after its planned free point — the memory plan is unsound",
            v.0
        );
        assert!(
            !node.stolen,
            "value of node {} read after an in-place rewrite stole its buffer — the rewrite \
             plan is unsound",
            v.0
        );
        &node.value
    }

    /// Forward shape of a variable (available even after a planned free).
    fn shape_of(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].shape
    }

    /// True when `v`'s forward value is still materialized and readable.
    fn readable(&self, v: Var) -> bool {
        let n = &self.nodes[v.0];
        !n.freed && !n.stolen
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        let shape = value.shape();
        self.push_node(op, value, shape, false)
    }

    fn push_node(&mut self, op: Op, value: Matrix, shape: (usize, usize), stolen: bool) -> Var {
        if let Some(mark) = self.obs_mark {
            let now = dgnn_obs::now_ns();
            dgnn_obs::record_op(op.kind(), dgnn_obs::OpPhase::Forward, now.saturating_sub(mark));
            self.obs_mark = Some(now);
        }
        if self.finite_checks {
            assert!(value.all_finite(), "non-finite value produced by {op:?}");
        } else {
            debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        }
        self.nodes.push(Node { op, value, shape, freed: false, stolen });
        let i = self.nodes.len() - 1;
        if let Some(rw) = &mut self.rewrites {
            let canon = rw.pending_canon.take().unwrap_or(i as u32);
            rw.canon.push(canon);
        }
        if let Some(plan) = &self.plan {
            let plan = Rc::clone(plan);
            assert!(
                i < plan.len(),
                "tape recorded more nodes ({}) than the memory plan covers ({}) — \
                 the plan was computed for a different graph",
                i + 1,
                plan.len()
            );
            for &d in &plan.forward_free[i] {
                self.free_node(d as usize);
            }
        }
        Var(i)
    }

    /// Retires one node's forward value into the thread's buffer pool.
    /// Stolen nodes retire as a no-op: their buffer already lives on in the
    /// stealing node, so only the freed flag flips.
    fn free_node(&mut self, i: usize) {
        let node = &mut self.nodes[i];
        debug_assert!(!node.freed, "node {i} freed twice — the plan checker should reject this");
        node.freed = true;
        // The replaced value drops here; `Matrix::drop` retires its storage
        // into the installed pool for reuse by a later node. (For stolen
        // nodes the value is already an empty placeholder.)
        let _ = std::mem::replace(&mut node.value, Matrix::zeros(0, 0));
    }

    // ---- rewrite execution -------------------------------------------------

    /// Canonical value-source of a node under the runtime copy table.
    fn canon_of(&self, v: Var) -> u32 {
        match &self.rewrites {
            Some(rw) => rw.canon.get(v.0).copied().unwrap_or(v.0 as u32),
            None => v.0 as u32,
        }
    }

    fn vars_congruent(&self, a: Var, b: Var) -> bool {
        a == b || self.canon_of(a) == self.canon_of(b)
    }

    /// True when `a` and `b` provably compute bit-identical values: same op
    /// kind, bit-equal scalar attributes, pointer-equal index/sparse
    /// payloads, and value-congruent inputs. Constants (opaque data) and
    /// dropout (fresh mask per step) are never congruent — a false negative
    /// only costs a recomputation.
    fn congruent(&self, a: &Op, b: &Op) -> bool {
        use Op::*;
        let veq = |x: Var, y: Var| self.vars_congruent(x, y);
        match (a, b) {
            (Leaf { param: Some(p) }, Leaf { param: Some(q) }) => p == q,
            (Add(a1, b1), Add(a2, b2))
            | (Sub(a1, b1), Sub(a2, b2))
            | (Mul(a1, b1), Mul(a2, b2))
            | (Div(a1, b1), Div(a2, b2))
            | (MatMul(a1, b1), MatMul(a2, b2))
            | (AddRow(a1, b1), AddRow(a2, b2))
            | (MulRow(a1, b1), MulRow(a2, b2))
            | (MulCol(a1, b1), MulCol(a2, b2))
            | (RowDots(a1, b1), RowDots(a2, b2)) => veq(*a1, *a2) && veq(*b1, *b2),
            (Neg(a1), Neg(a2))
            | (Transpose(a1), Transpose(a2))
            | (Sigmoid(a1), Sigmoid(a2))
            | (Tanh(a1), Tanh(a2))
            | (Relu(a1), Relu(a2))
            | (Exp(a1), Exp(a2))
            | (Softplus(a1), Softplus(a2))
            | (Ln(a1), Ln(a2))
            | (Sqrt(a1), Sqrt(a2))
            | (SumAll(a1), SumAll(a2))
            | (MeanAll(a1), MeanAll(a2))
            | (RowSum(a1), RowSum(a2))
            | (ColMean(a1), ColMean(a2))
            | (SoftmaxRows(a1), SoftmaxRows(a2)) => veq(*a1, *a2),
            (Scale(a1, k1), Scale(a2, k2))
            | (AddScalar(a1, k1), AddScalar(a2, k2))
            | (LeakyRelu(a1, k1), LeakyRelu(a2, k2)) => {
                veq(*a1, *a2) && k1.to_bits() == k2.to_bits()
            }
            (LayerNormRow { a: a1, eps: e1 }, LayerNormRow { a: a2, eps: e2 })
            | (RowL2Norm { a: a1, eps: e1 }, RowL2Norm { a: a2, eps: e2 }) => {
                veq(*a1, *a2) && e1.to_bits() == e2.to_bits()
            }
            (
                SliceCols { a: a1, start: s1, end: e1 },
                SliceCols { a: a2, start: s2, end: e2 },
            ) => veq(*a1, *a2) && s1 == s2 && e1 == e2,
            (ConcatCols(p1), ConcatCols(p2)) => {
                p1.len() == p2.len() && p1.iter().zip(p2).all(|(&x, &y)| veq(x, y))
            }
            (Gather { a: a1, idx: i1 }, Gather { a: a2, idx: i2 }) => {
                veq(*a1, *a2) && Rc::ptr_eq(i1, i2)
            }
            (Spmm { a: m1, b: b1, .. }, Spmm { a: m2, b: b2, .. }) => {
                Rc::ptr_eq(m1, m2) && veq(*b1, *b2)
            }
            (SegmentSoftmax { logits: l1, seg: s1 }, SegmentSoftmax { logits: l2, seg: s2 }) => {
                veq(*l1, *l2) && Rc::ptr_eq(s1, s2)
            }
            (
                SegmentWeightedSum { w: w1, v: v1, seg: s1 },
                SegmentWeightedSum { w: w2, v: v2, seg: s2 },
            ) => veq(*w1, *w2) && veq(*v1, *v2) && Rc::ptr_eq(s1, s2),
            _ => false,
        }
    }

    fn counters_mut(&mut self) -> &mut RewriteCounters {
        &mut self.rewrites.as_mut().expect("rewrite counters read without rewrites armed").counters
    }

    /// Records `op`, producing its value per the armed rewrite action (or
    /// plain evaluation when none). The single entry point for every
    /// non-leaf `Recorder` method.
    fn apply(&mut self, op: Op) -> Var {
        let action = match &self.rewrites {
            Some(rw) => rw.plan.action(self.nodes.len()),
            None => RewriteAction::Compute,
        };
        match action {
            RewriteAction::Compute => {
                let v = self.eval(&op);
                self.push(op, v)
            }
            RewriteAction::CopyOf(j) => {
                let v = self.copy_value(j as usize, &op);
                self.push(op, v)
            }
            RewriteAction::Fold(slot) => {
                let v = self.fold_value(slot as usize, &op);
                self.push(op, v)
            }
            RewriteAction::Steal => {
                let v = match self.try_steal(&op) {
                    Some(v) => {
                        self.counters_mut().steals += 1;
                        v
                    }
                    None => {
                        self.counters_mut().fallbacks += 1;
                        self.eval(&op)
                    }
                };
                self.push(op, v)
            }
            RewriteAction::Stream => {
                let v = self.stream_value(&op);
                self.push(op, v)
            }
            RewriteAction::ElideGather => match &op {
                Op::Gather { a, idx } => {
                    let shape = (idx.len(), self.shape_of(*a).1);
                    self.push_node(op, Matrix::zeros(0, 0), shape, true)
                }
                _ => {
                    self.counters_mut().fallbacks += 1;
                    let v = self.eval(&op);
                    self.push(op, v)
                }
            },
            RewriteAction::GatherMatMul => {
                let v = self.gather_matmul_value(&op);
                self.push(op, v)
            }
        }
    }

    /// CSE execution: a pooled copy of node `j`'s value, after verifying at
    /// runtime that `j` really is congruent and still materialized.
    fn copy_value(&mut self, j: usize, op: &Op) -> Matrix {
        let ok = {
            let src = &self.nodes[j];
            !src.freed && !src.stolen && self.congruent(op, &src.op)
        };
        if ok {
            // PLAN: CSE serves a pooled copy of the verified-congruent
            // source value; the rewrite-aware planner keeps the source
            // alive up to this read.
            let v = self.nodes[j].value.clone();
            let rw = self.rewrites.as_mut().expect("copy action without rewrites armed");
            rw.pending_canon = Some(rw.canon[j]);
            rw.counters.cse_copies += 1;
            v
        } else {
            self.counters_mut().fallbacks += 1;
            self.eval(op)
        }
    }

    /// Constant-fold execution: serve the cached value when the cache entry
    /// is congruent and all input slots validated this step; otherwise
    /// recompute and refresh the slot.
    fn fold_value(&mut self, slot: usize, op: &Op) -> Matrix {
        let (fold, plan) = {
            let rw = self.rewrites.as_ref().expect("fold action without rewrites armed");
            (Rc::clone(&rw.fold), Rc::clone(&rw.plan))
        };
        let hit = {
            let cache = fold.borrow();
            match cache.entries.get(slot).and_then(Option::as_ref) {
                Some(e)
                    if e.op.as_ref().is_some_and(|c| self.congruent(op, c))
                        && fold_inputs_valid(op, &plan, &cache) =>
                {
                    // PLAN: a fold hit serves a pooled copy of the cached
                    // value, replacing recomputation of the whole
                    // training-invariant region behind it.
                    Some(e.value.clone())
                }
                _ => None,
            }
        };
        match hit {
            Some(v) => {
                fold.borrow_mut().set_valid(slot);
                self.counters_mut().fold_hits += 1;
                v
            }
            None => {
                let v = self.eval(op);
                // PLAN: a fold refresh caches one pooled copy per
                // invalidation — in steady training, once per fit.
                fold.borrow_mut().refresh(slot, Some(op.clone()), v.clone());
                self.counters_mut().fold_refreshes += 1;
                v
            }
        }
    }

    /// Takes a node's buffer for in-place reuse, marking it stolen. Returns
    /// `None` when the buffer is no longer materialized.
    fn take_value(&mut self, v: Var) -> Option<Matrix> {
        let node = &mut self.nodes[v.0];
        if node.freed || node.stolen {
            return None;
        }
        node.stolen = true;
        Some(std::mem::replace(&mut node.value, Matrix::zeros(0, 0)))
    }

    /// In-place fusion: steal `inputs[0]`'s buffer and apply the op's
    /// epilogue directly in it. Each arm is bit-identical to its
    /// out-of-place form (one f32 operation per element either way; unit
    /// tests in `dgnn-tensor` enforce this). Aliased inputs and
    /// already-retired sources refuse and fall back.
    fn try_steal(&mut self, op: &Op) -> Option<Matrix> {
        match *op {
            Op::Add(a, b) if a != b => {
                if !self.readable(b) {
                    return None;
                }
                let mut v = self.take_value(a)?;
                v.add_assign(self.value(b));
                Some(v)
            }
            Op::Sub(a, b) if a != b => {
                if !self.readable(b) {
                    return None;
                }
                let mut v = self.take_value(a)?;
                v.sub_assign(self.value(b));
                Some(v)
            }
            Op::AddRow(a, row) if a != row => {
                if !self.readable(row) {
                    return None;
                }
                let mut v = self.take_value(a)?;
                v.add_row_assign(self.value(row));
                Some(v)
            }
            Op::Scale(a, k) => {
                let mut v = self.take_value(a)?;
                v.scale_assign(k);
                Some(v)
            }
            Op::Neg(a) => {
                let mut v = self.take_value(a)?;
                v.scale_assign(-1.0);
                Some(v)
            }
            Op::AddScalar(a, k) => {
                let mut v = self.take_value(a)?;
                v.add_scalar_assign(k);
                Some(v)
            }
            _ => None,
        }
    }

    /// Streaming fusion: single-pass broadcast kernels (bit-identical to
    /// the historical clone-then-update two-pass forms).
    fn stream_value(&mut self, op: &Op) -> Matrix {
        let v = match op {
            Op::AddRow(a, row) => Some(self.value(*a).add_row_fused(self.value(*row))),
            Op::MulRow(a, row) => Some(self.value(*a).mul_row_fused(self.value(*row))),
            Op::MulCol(a, col) => Some(self.value(*a).mul_col_fused(self.value(*col))),
            _ => None,
        };
        match v {
            Some(v) => {
                self.counters_mut().streams += 1;
                v
            }
            None => {
                self.counters_mut().fallbacks += 1;
                self.eval(op)
            }
        }
    }

    /// gather→matmul fusion: multiply straight out of the gathered table's
    /// rows, never materializing the gather.
    fn gather_matmul_value(&mut self, op: &Op) -> Matrix {
        if let Op::MatMul(a, b) = *op {
            if let Op::Gather { a: table, idx } = &self.nodes[a.0].op {
                let table = *table;
                let idx = Rc::clone(idx);
                let t = &self.nodes[table.0];
                assert!(
                    !t.freed && !t.stolen,
                    "gather→matmul fusion read a retired table — the rewrite plan is unsound"
                );
                let v = t.value.gather_matmul(&idx, self.value(b));
                self.counters_mut().gather_fusions += 1;
                return v;
            }
        }
        // The first input is not a gather: the pairing the checker proved
        // does not hold on this graph. Plain evaluation stays sound as long
        // as the gather itself was not elided (and if it was, the stolen
        // assert in `value` stops execution loudly).
        self.counters_mut().fallbacks += 1;
        self.eval(op)
    }

    /// Evaluates one op's forward value from its inputs. The single source
    /// of truth for forward semantics: plain recording, every rewrite
    /// fallback, and fold refreshes all come through here.
    #[allow(clippy::too_many_lines)]
    fn eval(&self, op: &Op) -> Matrix {
        use Op::*;
        match op {
            Leaf { .. } => unreachable!("leaf values are produced by constant()/param()"),
            Add(a, b) => self.value(*a).add(self.value(*b)),
            Sub(a, b) => self.value(*a).sub(self.value(*b)),
            Mul(a, b) => self.value(*a).mul_elem(self.value(*b)),
            Neg(a) => self.value(*a).scale(-1.0),
            Scale(a, k) => self.value(*a).scale(*k),
            AddScalar(a, k) => {
                let k = *k;
                self.value(*a).map(move |x| x + k)
            }
            MatMul(a, b) => self.value(*a).matmul(self.value(*b)),
            Transpose(a) => self.value(*a).transpose(),
            Spmm { a, b, .. } => a.spmm(self.value(*b)),
            Sigmoid(a) => self.value(*a).map_weighted(32, stable_sigmoid),
            // Audited branchless: `f32::tanh` is a polynomial/rational
            // kernel with no data-dependent branching.
            Tanh(a) => self.value(*a).map_weighted(32, f32::tanh),
            // Branchless kernel (see `Matrix::leaky_relu`): the branchy map
            // mispredicted ~half its calls on sign-random activations and
            // was ~30× slower per element than `add`.
            LeakyRelu(a, alpha) => self.value(*a).leaky_relu(*alpha),
            Relu(a) => self.value(*a).map(|x| x.max(0.0)),
            Exp(a) => self.value(*a).map_weighted(16, f32::exp),
            // Audited branchless: `max`/`abs` compile to sign-bit ops, and
            // the `exp`/`ln_1p` pair is branch-free on the value path.
            Softplus(a) => {
                self.value(*a).map_weighted(32, |x| x.max(0.0) + (-x.abs()).exp().ln_1p())
            }
            Ln(a) => self.value(*a).map_weighted(16, f32::ln),
            Div(a, b) => self.value(*a).div_elem(self.value(*b)),
            Sqrt(a) => self.value(*a).map(f32::sqrt),
            AddRow(a, row) => self.value(*a).add_row_broadcast(self.value(*row)),
            MulRow(a, row) => self.value(*a).mul_row_broadcast(self.value(*row)),
            MulCol(a, col) => self.value(*a).mul_col_broadcast(self.value(*col)),
            SumAll(a) => Matrix::full(1, 1, self.value(*a).sum()),
            MeanAll(a) => Matrix::full(1, 1, self.value(*a).mean()),
            RowSum(a) => self.value(*a).row_sums(),
            ColMean(a) => {
                let rows = self.value(*a).rows().max(1) as f32;
                self.value(*a).col_sums().scale(1.0 / rows)
            }
            ConcatCols(parts) => {
                let mats: Vec<&Matrix> = parts.iter().map(|&p| self.value(p)).collect();
                Matrix::concat_cols(&mats)
            }
            SliceCols { a, start, end } => self.value(*a).slice_cols(*start, *end),
            Gather { a, idx } => self.value(*a).gather_rows(idx),
            LayerNormRow { a, eps } => self.value(*a).layer_norm_rows(*eps),
            RowL2Norm { a, eps } => self.value(*a).l2_normalize_rows(*eps),
            RowDots(a, b) => self.value(*a).row_dots(self.value(*b)),
            SoftmaxRows(a) => self.value(*a).softmax_rows(),
            SegmentSoftmax { logits, seg } => {
                let x = self.value(*logits);
                assert_eq!(x.cols(), 1, "segment_softmax: logits must be E × 1");
                assert_eq!(
                    *seg.last().expect("segment pointer must be non-empty"),
                    x.rows(),
                    "segment_softmax: pointer does not cover all edges"
                );
                // PLAN: per-segment softmax normalizes a copy in place; the
                // copy is the node value and is pooled/freed like any other.
                let mut v = x.clone();
                for n in 0..seg.len() - 1 {
                    let (lo, hi) = (seg[n], seg[n + 1]);
                    softmax_slice(&mut v.as_mut_slice()[lo..hi]);
                }
                v
            }
            SegmentWeightedSum { w, v, seg } => {
                let wv = self.value(*w);
                let vv = self.value(*v);
                assert_eq!(wv.cols(), 1, "segment_weighted_sum: weights must be E × 1");
                assert_eq!(wv.rows(), vv.rows(), "segment_weighted_sum: weight/value mismatch");
                assert_eq!(
                    *seg.last().expect("segment pointer must be non-empty"),
                    vv.rows(),
                    "segment_weighted_sum: pointer does not cover all edges"
                );
                let n = seg.len() - 1;
                let d = vv.cols();
                let mut out = Matrix::zeros(n, d);
                for i in 0..n {
                    for e in seg[i]..seg[i + 1] {
                        let we = wv[(e, 0)];
                        for (o, &x) in out.row_mut(i).iter_mut().zip(vv.row(e)) {
                            *o += we * x;
                        }
                    }
                }
                out
            }
            Dropout { a, mask } => {
                assert_eq!(self.value(*a).shape(), mask.shape(), "dropout: mask shape mismatch");
                self.value(*a).mul_elem(mask)
            }
        }
    }

    // ---- reverse pass ------------------------------------------------------

    /// Runs the reverse pass from `loss` (which must be `1 × 1`) and
    /// *accumulates* parameter gradients into `params`. Returns the loss
    /// value as `f32` for logging.
    ///
    /// With a plan armed ([`Tape::with_plan`]) the sweep additionally
    /// retires forward values at their statically computed backward death
    /// points and recycles consumed gradient matrices. The arithmetic —
    /// including the ascending-order leaf-gradient accumulation, which
    /// matters because parameters appear as multiple leaves and `f32`
    /// addition is order-sensitive — is identical either way.
    pub fn backward_into(&mut self, loss: Var, params: &mut ParamSet) -> f32 {
        // PLAN: Rc handle clone, not a matrix copy — no buffer involved.
        if let Some(plan) = self.plan.clone() {
            return self.backward_into_planned(loss, params, &plan);
        }
        let grads = self.backward(loss);
        for (i, g) in grads.iter().enumerate() {
            if let (Op::Leaf { param: Some(id) }, Some(g)) = (&self.nodes[i].op, g) {
                params.accumulate_grad(*id, g);
            }
        }
        self.value(loss)[(0, 0)]
    }

    /// Planned reverse pass: same math as [`Tape::backward`], plus
    /// statically scheduled frees after each node's backward step.
    fn backward_into_planned(&mut self, loss: Var, params: &mut ParamSet, plan: &TapePlan) -> f32 {
        let shape = self.value(loss).shape();
        assert_eq!(shape, (1, 1), "backward: loss must be a 1×1 scalar, got {shape:?}");
        assert_eq!(
            plan.len(),
            self.nodes.len(),
            "memory plan covers {} nodes but the tape recorded {} — plan/graph mismatch",
            plan.len(),
            self.nodes.len()
        );
        let loss_val = self.value(loss)[(0, 0)];
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));
        for i in (0..=loss.0).rev() {
            if let Some(g) = grads[i].take() {
                self.backprop_node_observed(i, &g, &mut grads);
                if matches!(self.nodes[i].op, Op::Leaf { param: Some(_) }) {
                    // Kept until the ascending accumulation pass below.
                    grads[i] = Some(g);
                }
                // Non-leaf gradients drop here and recycle into the pool.
            }
            // Frees fire whether or not a gradient flowed: the plan's
            // liveness conservatively assumes every backward read happens,
            // so a skipped node only means the read never occurs.
            for &d in &plan.backward_free[i] {
                self.free_node(d as usize);
            }
        }
        for (i, g) in grads.iter().enumerate() {
            if let (Op::Leaf { param: Some(id) }, Some(g)) = (&self.nodes[i].op, g) {
                params.accumulate_grad(*id, g);
            }
        }
        loss_val
    }

    /// Runs the reverse pass and returns the gradient of `loss` with
    /// respect to every node (None where no gradient flowed).
    pub fn backward(&self, loss: Var) -> Vec<Option<Matrix>> {
        let shape = self.value(loss).shape();
        assert_eq!(shape, (1, 1), "backward: loss must be a 1×1 scalar, got {shape:?}");
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));
        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            self.backprop_node_observed(i, &g, &mut grads);
            grads[i] = Some(g);
        }
        grads
    }

    /// Gradient of `loss` w.r.t. one variable (convenience for tests).
    pub fn grad_of(&self, loss: Var, wrt: Var) -> Option<Matrix> {
        self.backward(loss).into_iter().nth(wrt.0).flatten()
    }

    /// Runs one node's backward rule, timing it when profiling is armed.
    /// Backward durations are exact per-rule measurements (unlike the
    /// forward pass's inter-push deltas): the rule runs between two clock
    /// reads with nothing else in the interval.
    fn backprop_node_observed(&self, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        match self.obs_mark {
            Some(_) => {
                let t0 = dgnn_obs::now_ns();
                self.backprop_node(i, g, grads);
                let dt = dgnn_obs::now_ns().saturating_sub(t0);
                dgnn_obs::record_op(self.nodes[i].op.kind(), dgnn_obs::OpPhase::Backward, dt);
            }
            None => self.backprop_node(i, g, grads),
        }
    }

    fn accum(grads: &mut [Option<Matrix>], v: Var, g: Matrix) {
        match &mut grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn backprop_node(&self, i: usize, g: &Matrix, grads: &mut [Option<Matrix>]) {
        use Op::*;
        match &self.nodes[i].op {
            Leaf { .. } => {}
            Add(a, b) => {
                // PLAN: gradient fan-out needs one copy per operand; pooled
                // storage backs both and each is recycled at its death point.
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.clone());
            }
            Sub(a, b) => {
                // PLAN: fan-out copy, pooled and recycled (see Add above).
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.scale(-1.0));
            }
            Mul(a, b) => {
                Self::accum(grads, *a, g.mul_elem(self.value(*b)));
                Self::accum(grads, *b, g.mul_elem(self.value(*a)));
            }
            Neg(a) => Self::accum(grads, *a, g.scale(-1.0)),
            Scale(a, k) => Self::accum(grads, *a, g.scale(*k)),
            // PLAN: fan-out copy, pooled and recycled (see Add above).
            AddScalar(a, _) => Self::accum(grads, *a, g.clone()),
            MatMul(a, b) => {
                // dA = G·Bᵀ ; dB = Aᵀ·G
                if self.rewrites.is_some() {
                    // Fused-accumulate dA when a gradient already exists:
                    // each cell's dot runs in a register from 0.0 and lands
                    // with one add — bit-identical to temp-then-add_assign
                    // (enforced by a dgnn-tensor unit test). dB cannot fuse:
                    // matmul_tn accumulates across k in a different order
                    // than add_assign would.
                    match &mut grads[a.0] {
                        Some(acc) => acc.matmul_nt_acc(g, self.value(*b)),
                        slot @ None => *slot = Some(g.matmul_nt(self.value(*b))),
                    }
                } else {
                    Self::accum(grads, *a, g.matmul_nt(self.value(*b)));
                }
                Self::accum(grads, *b, self.value(*a).matmul_tn(g));
            }
            Transpose(a) => Self::accum(grads, *a, g.transpose()),
            // Fused activation gradients: no slope matrix is materialized,
            // but each multiplies in the same per-element order as the
            // unfused `slope.mul_elem(g)` form, so results are bit-identical
            // (enforced by unit tests in dgnn-tensor).
            Sigmoid(a) => {
                Self::accum(grads, *a, self.value(Var(i)).sigmoid_grad(g));
            }
            Tanh(a) => {
                Self::accum(grads, *a, self.value(Var(i)).tanh_grad(g));
            }
            LeakyRelu(a, alpha) => {
                Self::accum(grads, *a, self.value(*a).leaky_relu_grad(g, *alpha));
            }
            Relu(a) => {
                Self::accum(grads, *a, self.value(*a).relu_grad(g));
            }
            Exp(a) => Self::accum(grads, *a, g.mul_elem(self.value(Var(i)))),
            Softplus(a) => {
                Self::accum(grads, *a, self.value(*a).softplus_grad(g));
            }
            Ln(a) => {
                let dy = self.value(*a).map(|x| 1.0 / x);
                Self::accum(grads, *a, g.mul_elem(&dy));
            }
            Div(a, b) => {
                // d(a/b)/da = 1/b ; d(a/b)/db = −a/b²
                let inv_b = self.value(*b).map(|x| 1.0 / x);
                Self::accum(grads, *a, g.mul_elem(&inv_b));
                let gb = g.mul_elem(self.value(*a)).mul_elem(&inv_b).mul_elem(&inv_b).scale(-1.0);
                Self::accum(grads, *b, gb);
            }
            Sqrt(a) => {
                let dy = self.value(Var(i)).map(|y| 0.5 / y);
                Self::accum(grads, *a, g.mul_elem(&dy));
            }
            AddRow(a, row) => {
                // PLAN: fan-out copy, pooled and recycled (see Add above).
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *row, g.col_sums());
            }
            MulRow(a, row) => {
                let ga = if self.rewrites.is_some() {
                    // Single-pass broadcast (bit-identical to the two-pass
                    // clone-then-update kernel; dgnn-tensor unit-tested).
                    g.mul_row_fused(self.value(*row))
                } else {
                    g.mul_row_broadcast(self.value(*row))
                };
                Self::accum(grads, *a, ga);
                let grow = g.mul_elem(self.value(*a)).col_sums();
                Self::accum(grads, *row, grow);
            }
            MulCol(a, col) => {
                let ga = if self.rewrites.is_some() {
                    // Single-pass broadcast (see MulRow above).
                    g.mul_col_fused(self.value(*col))
                } else {
                    g.mul_col_broadcast(self.value(*col))
                };
                Self::accum(grads, *a, ga);
                let gcol = g.row_dots(self.value(*a));
                Self::accum(grads, *col, gcol);
            }
            SumAll(a) => {
                let (r, c) = self.shape_of(*a);
                Self::accum(grads, *a, Matrix::full(r, c, g[(0, 0)]));
            }
            MeanAll(a) => {
                let (r, c) = self.shape_of(*a);
                let k = g[(0, 0)] / (r * c).max(1) as f32;
                Self::accum(grads, *a, Matrix::full(r, c, k));
            }
            RowSum(a) => {
                let (r, c) = self.shape_of(*a);
                let ga = Matrix::from_fn(r, c, |row, _| g[(row, 0)]);
                Self::accum(grads, *a, ga);
            }
            ColMean(a) => {
                let (r, c) = self.shape_of(*a);
                let k = 1.0 / r.max(1) as f32;
                let ga = Matrix::from_fn(r, c, |_, col| g[(0, col)] * k);
                Self::accum(grads, *a, ga);
            }
            ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let w = self.shape_of(p).1;
                    Self::accum(grads, p, g.slice_cols(off, off + w));
                    off += w;
                }
            }
            SliceCols { a, start, end } => {
                let (r, c) = self.shape_of(*a);
                let mut ga = Matrix::zeros(r, c);
                for row in 0..r {
                    ga.row_mut(row)[*start..*end].copy_from_slice(g.row(row));
                }
                Self::accum(grads, *a, ga);
            }
            Gather { a, idx } => {
                // Scatter straight into the accumulator: materializing (and
                // zeroing) a fresh dense table per gather dominated NGCF's
                // backward profile. The table is zeroed once, on the first
                // gradient contribution, and every later gather scatters
                // only its touched rows.
                let (r, c) = self.shape_of(*a);
                let acc = grads[a.0].get_or_insert_with(|| Matrix::zeros(r, c));
                acc.scatter_add_rows(idx, g);
            }
            Spmm { at, b, .. } => {
                Self::accum(grads, *b, at.spmm(g));
            }
            LayerNormRow { a, eps } => {
                let x = self.value(*a);
                let y = self.value(Var(i));
                Self::accum(grads, *a, Matrix::layer_norm_rows_grad(x, y, g, *eps));
            }
            RowL2Norm { a, eps } => {
                let x = self.value(*a);
                let (r, c) = x.shape();
                let mut ga = Matrix::zeros(r, c);
                for row in 0..r {
                    let xr = x.row(row);
                    let gr = g.row(row);
                    let norm = xr.iter().map(|v| v * v).sum::<f32>().sqrt();
                    let out = ga.row_mut(row);
                    if norm <= *eps {
                        out.copy_from_slice(gr);
                    } else {
                        let dot: f32 = xr.iter().zip(gr).map(|(&x, &g)| x * g).sum();
                        let n3 = norm * norm * norm;
                        for k in 0..c {
                            out[k] = gr[k] / norm - xr[k] * dot / n3;
                        }
                    }
                }
                Self::accum(grads, *a, ga);
            }
            RowDots(a, b) => {
                if self.rewrites.is_some() {
                    // Single-pass broadcasts (see MulRow above).
                    Self::accum(grads, *a, self.value(*b).mul_col_fused(g));
                    Self::accum(grads, *b, self.value(*a).mul_col_fused(g));
                } else {
                    Self::accum(grads, *a, self.value(*b).mul_col_broadcast(g));
                    Self::accum(grads, *b, self.value(*a).mul_col_broadcast(g));
                }
            }
            SoftmaxRows(a) => {
                let y = self.value(Var(i));
                let (r, c) = y.shape();
                let mut ga = Matrix::zeros(r, c);
                for row in 0..r {
                    softmax_backward(y.row(row), g.row(row), ga.row_mut(row));
                }
                Self::accum(grads, *a, ga);
            }
            SegmentSoftmax { logits, seg } => {
                let y = self.value(Var(i));
                let e = y.rows();
                let mut ga = Matrix::zeros(e, 1);
                for n in 0..seg.len() - 1 {
                    let (lo, hi) = (seg[n], seg[n + 1]);
                    let ys: Vec<f32> = (lo..hi).map(|e| y[(e, 0)]).collect();
                    let gs: Vec<f32> = (lo..hi).map(|e| g[(e, 0)]).collect();
                    let mut out = vec![0.0; hi - lo];
                    softmax_backward(&ys, &gs, &mut out);
                    for (k, e) in (lo..hi).enumerate() {
                        ga[(e, 0)] = out[k];
                    }
                }
                Self::accum(grads, *logits, ga);
            }
            SegmentWeightedSum { w, v, seg } => {
                let wv = self.value(*w);
                let vv = self.value(*v);
                let e = vv.rows();
                let d = vv.cols();
                let mut gw = Matrix::zeros(e, 1);
                let mut gv = Matrix::zeros(e, d);
                for n in 0..seg.len() - 1 {
                    let gn = g.row(n);
                    for e in seg[n]..seg[n + 1] {
                        let mut dot = 0.0;
                        let we = wv[(e, 0)];
                        let gv_row = gv.row_mut(e);
                        for (k, &gk) in gn.iter().enumerate() {
                            dot += gk * vv[(e, k)];
                            gv_row[k] += we * gk;
                        }
                        gw[(e, 0)] = dot;
                    }
                }
                Self::accum(grads, *w, gw);
                Self::accum(grads, *v, gv);
            }
            Dropout { a, mask } => {
                Self::accum(grads, *a, g.mul_elem(mask));
            }
        }
    }
}

/// True when every input of a fold node validated its slot this step.
fn fold_inputs_valid(op: &Op, plan: &RewritePlan, cache: &FoldCache) -> bool {
    let mut ok = true;
    for_each_input(op, &mut |v| {
        ok &= matches!(plan.action(v.0), RewriteAction::Fold(s) if cache.is_valid(s as usize));
    });
    ok
}

/// Bitwise matrix equality (stricter than `==`: distinguishes `-0.0` from
/// `0.0` and treats equal-bits NaNs as equal) — the right comparison for
/// fold-cache validation, where "unchanged" must mean "same bits".
fn bits_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl Recorder for Tape {
    // ---- leaves ---------------------------------------------------------

    fn constant(&mut self, value: Matrix) -> Var {
        if let Some(rw) = &self.rewrites {
            if let RewriteAction::Fold(slot) = rw.plan.action(self.nodes.len()) {
                let slot = slot as usize;
                let fold = Rc::clone(&rw.fold);
                let hit = {
                    let mut cache = fold.borrow_mut();
                    let matches = cache
                        .entries
                        .get(slot)
                        .and_then(Option::as_ref)
                        .is_some_and(|e| e.op.is_none() && bits_eq(&e.value, &value));
                    if matches {
                        cache.set_valid(slot);
                    } else {
                        // PLAN: the fold key caches one pooled copy of the
                        // constant per invalidation (once per fit).
                        cache.refresh(slot, None, value.clone());
                    }
                    matches
                };
                if hit {
                    self.counters_mut().fold_hits += 1;
                } else {
                    self.counters_mut().fold_refreshes += 1;
                }
            }
        }
        self.push(Op::Leaf { param: None }, value)
    }

    fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        let mut copy_src = None;
        if let Some(rw) = &self.rewrites {
            if let RewriteAction::CopyOf(j) = rw.plan.action(self.nodes.len()) {
                let j = j as usize;
                let s = &self.nodes[j];
                if !s.freed
                    && !s.stolen
                    && matches!(s.op, Op::Leaf { param: Some(p) } if p == id)
                {
                    copy_src = Some(j);
                }
            }
        }
        match copy_src {
            Some(j) => {
                // PLAN: CSE leaf copy — the same one-buffer copy the
                // ParamSet read below would make, but it canonicalizes this
                // leaf with node j so downstream ops can CSE too.
                let v = self.nodes[j].value.clone();
                let rw = self.rewrites.as_mut().expect("copy source found without rewrites");
                rw.pending_canon = Some(rw.canon[j]);
                rw.counters.cse_copies += 1;
                self.push(Op::Leaf { param: Some(id) }, v)
            }
            None => {
                // PLAN: leaves copy the parameter so the optimizer can
                // update the ParamSet mid-epoch without aliasing the tape;
                // pooled storage backs the copy and the planner frees it at
                // its last gradient read.
                self.push(Op::Leaf { param: Some(id) }, params.value(id).clone())
            }
        }
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        self.shape_of(v)
    }

    // ---- elementwise ----------------------------------------------------

    fn add(&mut self, a: Var, b: Var) -> Var {
        self.apply(Op::Add(a, b))
    }

    fn sub(&mut self, a: Var, b: Var) -> Var {
        self.apply(Op::Sub(a, b))
    }

    fn mul(&mut self, a: Var, b: Var) -> Var {
        self.apply(Op::Mul(a, b))
    }

    fn neg(&mut self, a: Var) -> Var {
        self.apply(Op::Neg(a))
    }

    fn scale(&mut self, a: Var, k: f32) -> Var {
        self.apply(Op::Scale(a, k))
    }

    fn add_scalar(&mut self, a: Var, k: f32) -> Var {
        self.apply(Op::AddScalar(a, k))
    }

    // ---- linear algebra --------------------------------------------------

    fn matmul(&mut self, a: Var, b: Var) -> Var {
        self.apply(Op::MatMul(a, b))
    }

    fn transpose(&mut self, a: Var) -> Var {
        self.apply(Op::Transpose(a))
    }

    fn spmm_with(&mut self, adj: &Rc<Csr>, adj_t: &Rc<Csr>, b: Var) -> Var {
        assert_eq!(adj.rows(), adj_t.cols(), "spmm_with: adj_t is not adjᵀ (shape)");
        assert_eq!(adj.cols(), adj_t.rows(), "spmm_with: adj_t is not adjᵀ (shape)");
        self.apply(Op::Spmm { a: Rc::clone(adj), at: Rc::clone(adj_t), b })
    }

    // ---- activations -----------------------------------------------------

    fn sigmoid(&mut self, a: Var) -> Var {
        self.apply(Op::Sigmoid(a))
    }

    fn tanh(&mut self, a: Var) -> Var {
        self.apply(Op::Tanh(a))
    }

    fn leaky_relu(&mut self, a: Var, alpha: f32) -> Var {
        self.apply(Op::LeakyRelu(a, alpha))
    }

    fn relu(&mut self, a: Var) -> Var {
        self.apply(Op::Relu(a))
    }

    fn exp(&mut self, a: Var) -> Var {
        self.apply(Op::Exp(a))
    }

    fn softplus(&mut self, a: Var) -> Var {
        self.apply(Op::Softplus(a))
    }

    fn ln(&mut self, a: Var) -> Var {
        self.apply(Op::Ln(a))
    }

    fn div(&mut self, a: Var, b: Var) -> Var {
        self.apply(Op::Div(a, b))
    }

    fn sqrt(&mut self, a: Var) -> Var {
        self.apply(Op::Sqrt(a))
    }

    // ---- broadcasts ------------------------------------------------------

    fn add_row(&mut self, a: Var, row: Var) -> Var {
        self.apply(Op::AddRow(a, row))
    }

    fn mul_row(&mut self, a: Var, row: Var) -> Var {
        self.apply(Op::MulRow(a, row))
    }

    fn mul_col(&mut self, a: Var, col: Var) -> Var {
        self.apply(Op::MulCol(a, col))
    }

    // ---- reductions ------------------------------------------------------

    fn sum_all(&mut self, a: Var) -> Var {
        self.apply(Op::SumAll(a))
    }

    fn mean_all(&mut self, a: Var) -> Var {
        self.apply(Op::MeanAll(a))
    }

    fn row_sum(&mut self, a: Var) -> Var {
        self.apply(Op::RowSum(a))
    }

    fn col_mean(&mut self, a: Var) -> Var {
        self.apply(Op::ColMean(a))
    }

    // ---- structure -------------------------------------------------------

    fn concat_cols(&mut self, parts: &[Var]) -> Var {
        self.apply(Op::ConcatCols(parts.to_vec()))
    }

    fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        self.apply(Op::SliceCols { a, start, end })
    }

    fn gather(&mut self, a: Var, idx: Rc<Vec<usize>>) -> Var {
        self.apply(Op::Gather { a, idx })
    }

    // ---- normalizers -----------------------------------------------------

    fn layer_norm_rows(&mut self, a: Var, eps: f32) -> Var {
        self.apply(Op::LayerNormRow { a, eps })
    }

    fn l2_normalize_rows(&mut self, a: Var, eps: f32) -> Var {
        self.apply(Op::RowL2Norm { a, eps })
    }

    fn row_dots(&mut self, a: Var, b: Var) -> Var {
        self.apply(Op::RowDots(a, b))
    }

    fn softmax_rows(&mut self, a: Var) -> Var {
        self.apply(Op::SoftmaxRows(a))
    }

    // ---- segment (edge-attention) ops ------------------------------------

    fn segment_softmax(&mut self, logits: Var, seg: Rc<Vec<usize>>) -> Var {
        self.apply(Op::SegmentSoftmax { logits, seg })
    }

    fn segment_weighted_sum(&mut self, w: Var, v: Var, seg: Rc<Vec<usize>>) -> Var {
        self.apply(Op::SegmentWeightedSum { w, v, seg })
    }

    // ---- misc ------------------------------------------------------------

    fn dropout_mask(&mut self, a: Var, mask: Matrix) -> Var {
        self.apply(Op::Dropout { a, mask })
    }
}

/// Softmax Jacobian-vector product: `dx = s ⊙ (g − ⟨g, s⟩)`.
fn softmax_backward(s: &[f32], g: &[f32], out: &mut [f32]) {
    let dot: f32 = s.iter().zip(g).map(|(&s, &g)| s * g).sum();
    for k in 0..s.len() {
        out[k] = s[k] * (g[k] - dot);
    }
}

fn softmax_slice(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in xs.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in xs {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::RewriteAction as A;

    #[test]
    fn forward_values_are_recorded() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = t.constant(Matrix::row_vector(&[3.0, 4.0]));
        let c = t.add(a, b);
        assert_eq!(t.value(c).as_slice(), &[4.0, 6.0]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = mean(2 * (a + a)) = 4 * mean(a); d/da = 4/len
        let mut t = Tape::new();
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        let s = t.add(a, a);
        let s2 = t.scale(s, 2.0);
        let loss = t.mean_all(s2);
        let g = t.grad_of(loss, a).expect("gradient should flow to a");
        assert_eq!(g.as_slice(), &[2.0, 2.0]);
    }

    #[test]
    fn matmul_gradients_have_right_shapes() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_fn(2, 3, |r, c| (r + c) as f32));
        let b = t.constant(Matrix::from_fn(3, 4, |r, c| (r * c) as f32 * 0.1));
        let p = t.matmul(a, b);
        let loss = t.sum_all(p);
        let grads = t.backward(loss);
        assert_eq!(grads[0].as_ref().map(Matrix::shape), Some((2, 3)));
        assert_eq!(grads[1].as_ref().map(Matrix::shape), Some((3, 4)));
    }

    #[test]
    fn bpr_loss_decreases_with_margin() {
        let mut t = Tape::new();
        let pos = t.constant(Matrix::col_vector(&[5.0]));
        let neg = t.constant(Matrix::col_vector(&[0.0]));
        let l_good = t.bpr_loss(pos, neg);
        let pos2 = t.constant(Matrix::col_vector(&[0.0]));
        let neg2 = t.constant(Matrix::col_vector(&[5.0]));
        let l_bad = t.bpr_loss(pos2, neg2);
        assert!(t.value(l_good)[(0, 0)] < t.value(l_bad)[(0, 0)]);
    }

    #[test]
    fn segment_softmax_per_segment_sums_to_one() {
        let mut t = Tape::new();
        let logits = t.constant(Matrix::col_vector(&[1.0, 2.0, 3.0, -1.0, 0.5]));
        let seg = Rc::new(vec![0usize, 2, 2, 5]); // segments of size 2, 0, 3
        let s = t.segment_softmax(logits, seg);
        let v = t.value(s);
        assert!((v[(0, 0)] + v[(1, 0)] - 1.0).abs() < 1e-5);
        assert!((v[(2, 0)] + v[(3, 0)] + v[(4, 0)] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn segment_weighted_sum_aggregates() {
        let mut t = Tape::new();
        let w = t.constant(Matrix::col_vector(&[0.5, 0.5, 2.0]));
        let v = t.constant(Matrix::from_vec(3, 2, vec![2.0, 0.0, 4.0, 2.0, 1.0, 1.0]));
        let seg = Rc::new(vec![0usize, 2, 3]);
        let out = t.segment_weighted_sum(w, v, seg);
        assert_eq!(t.value(out).row(0), &[3.0, 1.0]);
        assert_eq!(t.value(out).row(1), &[2.0, 2.0]);
    }

    #[test]
    fn param_grads_accumulate_into_set() {
        let mut params = ParamSet::new();
        let p = params.add("p", Matrix::row_vector(&[1.0, -1.0]));
        let mut t = Tape::new();
        let v = t.param(&params, p);
        let sq = t.mul(v, v);
        let loss = t.sum_all(sq);
        params.zero_grads();
        let l = t.backward_into(loss, &mut params);
        assert!((l - 2.0).abs() < 1e-6);
        // d/dv Σ v² = 2v
        assert_eq!(params.grad(p).as_slice(), &[2.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1×1 scalar")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        t.backward(a);
    }

    #[test]
    fn observed_tape_profiles_ops_under_meta_names() {
        dgnn_obs::reset();
        dgnn_obs::enable();
        let mut params = ParamSet::new();
        let p = params.add("w", Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.1));
        let mut t = Tape::new();
        let v = t.param(&params, p);
        let vt = t.transpose(v);
        let prod = t.matmul(v, vt);
        let loss = t.sum_all(prod);
        params.zero_grads();
        let _ = t.backward_into(loss, &mut params);
        dgnn_obs::disable();
        let snap = dgnn_obs::snapshot();
        dgnn_obs::reset();
        for kind in snap.ops.keys() {
            assert!(
                crate::meta::ALL_OPS.contains(&kind.as_str()),
                "op kind {kind} is not a meta::ALL_OPS name"
            );
        }
        let mm = &snap.ops["matmul"];
        assert_eq!((mm.forward.calls, mm.backward.calls), (1, 1));
        assert_eq!(snap.ops["param"].forward.calls, 1);
        assert!(snap.ops["sum_all"].backward.calls == 1);
    }

    #[test]
    fn unobserved_tape_records_no_profile() {
        dgnn_obs::reset();
        let mut t = Tape::new(); // built while disabled → never observed
        dgnn_obs::enable();
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        let s = t.add(a, a);
        let loss = t.mean_all(s);
        let _ = t.backward(loss);
        dgnn_obs::disable();
        let snap = dgnn_obs::snapshot();
        dgnn_obs::reset();
        assert!(snap.ops.is_empty(), "tape built while disabled must not profile");
    }

    #[test]
    fn grad_is_none_where_no_flow() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::full(1, 1, 1.0));
        let b = t.constant(Matrix::full(1, 1, 2.0)); // unused
        let loss = t.sum_all(a);
        assert!(t.grad_of(loss, b).is_none());
    }

    // ---- rewrite execution ------------------------------------------------

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn armed(actions: Vec<A>, slots: u32) -> Tape {
        let plan = Rc::new(RewritePlan::new(actions, slots));
        let fold = Rc::new(RefCell::new(FoldCache::new(slots as usize)));
        Tape::new().with_rewrites(plan, fold)
    }

    /// Two matmuls of the same leaves: the second is CSE'd to a copy, and
    /// loss/grads stay bit-identical to the plain tape.
    #[test]
    fn cse_copy_is_bit_identical_and_counted() {
        let x0 = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.21 - 0.5);
        let w0 = Matrix::from_fn(3, 3, |r, c| (r + 2 * c) as f32 * 0.13 - 0.4);
        let run = |t: &mut Tape| {
            let mut params = ParamSet::new();
            let x = params.add("x", x0.clone());
            let w = params.add("w", w0.clone());
            let xv = t.param(&params, x);
            let wv = t.param(&params, w);
            let m1 = t.matmul(xv, wv);
            let m2 = t.matmul(xv, wv); // congruent with m1
            let s = t.add(m1, m2);
            let loss = t.sum_all(s);
            params.zero_grads();
            let l = t.backward_into(loss, &mut params);
            (l, bits(params.grad(x)), bits(params.grad(w)))
        };
        let plain = run(&mut Tape::new());
        let mut t = armed(
            vec![A::Compute, A::Compute, A::Compute, A::CopyOf(2), A::Compute, A::Compute],
            0,
        );
        let opt = run(&mut t);
        assert_eq!(plain.0.to_bits(), opt.0.to_bits(), "loss bits diverged");
        assert_eq!(plain.1, opt.1, "x grad bits diverged");
        assert_eq!(plain.2, opt.2, "w grad bits diverged");
        let c = t.rewrite_counters().expect("rewrites armed");
        assert_eq!(c.cse_copies, 1);
        assert_eq!(c.fallbacks, 0);
    }

    /// CSE'd param leaves canonicalize, so ops over the duplicate leaf are
    /// still recognized as congruent with ops over the original.
    #[test]
    fn cse_resolves_through_copied_leaves() {
        let w0 = Matrix::from_fn(3, 3, |r, c| (r + c) as f32 * 0.17);
        let mut params = ParamSet::new();
        let w = params.add("w", w0);
        let mut t = armed(
            vec![A::Compute, A::CopyOf(0), A::Compute, A::CopyOf(2), A::Compute],
            0,
        );
        let w1 = t.param(&params, w);
        let w2 = t.param(&params, w); // leaf CSE
        let s1 = t.sigmoid(w1);
        let s2 = t.sigmoid(w2); // congruent only through canon(w2) == w1
        let _sum = t.add(s1, s2);
        let c = t.rewrite_counters().expect("rewrites armed");
        assert_eq!(c.cse_copies, 2, "leaf and sigmoid copies should both fire");
        assert_eq!(c.fallbacks, 0);
        assert_eq!(bits(t.value(s1)), bits(t.value(s2)));
    }

    /// A stale CopyOf (non-congruent source) falls back to plain
    /// evaluation and still computes the right value.
    #[test]
    fn stale_copy_falls_back_to_eval() {
        let mut t = armed(vec![A::Compute, A::Compute, A::Compute, A::CopyOf(2)], 0);
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = t.constant(Matrix::row_vector(&[3.0, 5.0]));
        let _s = t.add(a, b);
        let m = t.mul(a, b); // plan claims congruence with the add — wrong
        assert_eq!(t.value(m).as_slice(), &[3.0, 10.0]);
        let c = t.rewrite_counters().expect("rewrites armed");
        assert_eq!((c.cse_copies, c.fallbacks), (0, 1));
    }

    /// Steal chain: scale and neg run in place over the dead predecessor's
    /// buffer; loss and grads stay bit-identical to the plain tape.
    #[test]
    fn steals_are_bit_identical_and_counted() {
        let x0 = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.31 - 1.7);
        let run = |t: &mut Tape| {
            let mut params = ParamSet::new();
            let x = params.add("x", x0.clone());
            let xv = t.param(&params, x);
            let s = t.scale(xv, 2.0);
            let n = t.neg(s);
            let k = t.add_scalar(n, 0.25);
            let loss = t.sum_all(k);
            params.zero_grads();
            let l = t.backward_into(loss, &mut params);
            (l, bits(params.grad(x)))
        };
        let plain = run(&mut Tape::new());
        let mut t = armed(vec![A::Compute, A::Steal, A::Steal, A::Steal, A::Compute], 0);
        let opt = run(&mut t);
        assert_eq!(plain.0.to_bits(), opt.0.to_bits(), "loss bits diverged");
        assert_eq!(plain.1, opt.1, "grad bits diverged");
        let c = t.rewrite_counters().expect("rewrites armed");
        assert_eq!(c.steals, 3);
        assert_eq!(c.fallbacks, 0);
    }

    #[test]
    fn aliased_steal_falls_back() {
        let mut t = armed(vec![A::Compute, A::Steal], 0);
        let a = t.constant(Matrix::row_vector(&[1.5, -2.0]));
        let s = t.add(a, a); // aliased inputs: stealing would misread
        assert_eq!(t.value(s).as_slice(), &[3.0, -4.0]);
        assert!(t.readable(a), "aliased steal must not retire the source");
        let c = t.rewrite_counters().expect("rewrites armed");
        assert_eq!((c.steals, c.fallbacks), (0, 1));
    }

    #[test]
    #[should_panic(expected = "stole its buffer")]
    fn reading_a_stolen_value_panics() {
        let mut t = armed(vec![A::Compute, A::Steal], 0);
        let a = t.constant(Matrix::row_vector(&[1.0, 2.0]));
        let _n = t.neg(a);
        let _ = t.value(a); // buffer moved into n — must panic
    }

    /// Streamed broadcasts produce the same bits as the two-pass kernels.
    #[test]
    fn streams_are_bit_identical_and_counted() {
        let a0 = Matrix::from_fn(5, 4, |r, c| (r * 4 + c) as f32 * 0.23 - 1.1);
        let row0 = Matrix::from_fn(1, 4, |_, c| c as f32 * 0.7 - 0.2);
        let col0 = Matrix::from_fn(5, 1, |r, _| r as f32 * 0.3 - 0.9);
        let run = |t: &mut Tape| {
            let a = t.constant(a0.clone());
            let row = t.constant(row0.clone());
            let col = t.constant(col0.clone());
            let x = t.add_row(a, row);
            let y = t.mul_row(x, row);
            let z = t.mul_col(y, col);
            bits(t.value(z))
        };
        let plain = run(&mut Tape::new());
        let mut t = armed(
            vec![A::Compute, A::Compute, A::Compute, A::Stream, A::Stream, A::Stream],
            0,
        );
        let opt = run(&mut t);
        assert_eq!(plain, opt, "streamed bits diverged");
        let c = t.rewrite_counters().expect("rewrites armed");
        assert_eq!((c.streams, c.fallbacks), (3, 0));
    }

    /// gather→matmul fusion: no gather value is materialized, and the
    /// product matches the unfused pipeline bit for bit.
    #[test]
    fn gather_matmul_fusion_is_bit_identical() {
        let table0 = Matrix::from_fn(6, 4, |r, c| (r * 4 + c) as f32 * 0.19 - 2.0);
        let w0 = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.29 - 0.6);
        let idx = Rc::new(vec![0usize, 3, 3, 5]);
        let run = |t: &mut Tape, idx: Rc<Vec<usize>>| {
            let table = t.constant(table0.clone());
            let w = t.constant(w0.clone());
            let g = t.gather(table, idx);
            let m = t.matmul(g, w);
            bits(t.value(m))
        };
        let plain = run(&mut Tape::new(), Rc::clone(&idx));
        let mut t =
            armed(vec![A::Compute, A::Compute, A::ElideGather, A::GatherMatMul], 0);
        let opt = run(&mut t, idx);
        assert_eq!(plain, opt, "fused gather-matmul bits diverged");
        let c = t.rewrite_counters().expect("rewrites armed");
        assert_eq!((c.gather_fusions, c.fallbacks), (1, 0));
    }

    /// Fold: step 1 refreshes the cache, step 2 serves hits; values match
    /// the plain tape bit for bit; changing a constant invalidates the
    /// whole downstream region.
    #[test]
    fn fold_cache_hits_on_second_step_and_invalidates_on_change() {
        let base = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 1.0);
        let changed = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 0.5);
        let plan = Rc::new(RewritePlan::new(vec![A::Fold(0), A::Fold(1), A::Fold(2)], 3));
        let fold = Rc::new(RefCell::new(FoldCache::new(3)));
        let step = |input: &Matrix| {
            fold.borrow_mut().begin_step();
            let mut t = Tape::new().with_rewrites(Rc::clone(&plan), Rc::clone(&fold));
            let c = t.constant(input.clone());
            let s = t.sigmoid(c);
            let n = t.tanh(s);
            let v = bits(t.value(n));
            (v, t.rewrite_counters().expect("rewrites armed"))
        };
        let expect = |input: &Matrix| {
            let mut t = Tape::new();
            let c = t.constant(input.clone());
            let s = t.sigmoid(c);
            let n = t.tanh(s);
            bits(t.value(n))
        };

        let (v1, c1) = step(&base);
        assert_eq!(v1, expect(&base));
        assert_eq!((c1.fold_hits, c1.fold_refreshes), (0, 3), "cold cache must refresh");

        let (v2, c2) = step(&base);
        assert_eq!(v2, expect(&base));
        assert_eq!((c2.fold_hits, c2.fold_refreshes), (3, 0), "warm cache must hit");

        let (v3, c3) = step(&changed);
        assert_eq!(v3, expect(&changed), "changed input must recompute, not serve stale bits");
        assert_eq!((c3.fold_hits, c3.fold_refreshes), (0, 3));

        let (v4, _) = step(&changed);
        assert_eq!(v4, expect(&changed));
    }
}
