//! Principal component analysis via power iteration (no external linear
//! algebra dependency).

use dgnn_tensor::Matrix;

/// Projects rows of `x` onto their top two principal components.
///
/// Uses mean-centering followed by power iteration with deflation on the
/// covariance matrix — adequate for visualization-sized inputs.
pub fn pca_2d(x: &Matrix) -> Matrix {
    project(x, 2)
}

/// Projects onto the top `k` principal components.
pub fn project(x: &Matrix, k: usize) -> Matrix {
    let (n, d) = x.shape();
    assert!(n > 0 && d > 0, "pca: empty input");
    let k = k.min(d);

    // Mean-center.
    let mean = x.col_sums().scale(1.0 / n as f32);
    let mut centered = x.clone();
    for r in 0..n {
        for (v, &m) in centered.row_mut(r).iter_mut().zip(mean.as_slice()) {
            *v -= m;
        }
    }

    // Covariance (d × d).
    let mut cov = centered.matmul_tn(&centered);
    cov.scale_assign(1.0 / n.max(1) as f32);

    // Power iteration with deflation.
    let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
    let mut work = cov;
    for c in 0..k {
        // Deterministic, component-dependent start vector.
        let mut v: Vec<f32> =
            (0..d).map(|i| (((i + 7 * c + 1) % 13) as f32 / 13.0) - 0.5).collect();
        normalize(&mut v);
        let mut eig = 0.0;
        for _ in 0..100 {
            let mut next = mat_vec(&work, &v);
            let norm = normalize(&mut next);
            if (norm - eig).abs() < 1e-7 * norm.max(1.0) {
                v = next;
                eig = norm;
                break;
            }
            eig = norm;
            v = next;
        }
        // Deflate: work -= λ v vᵀ.
        for i in 0..d {
            for j in 0..d {
                work[(i, j)] -= eig * v[i] * v[j];
            }
        }
        components.push(v);
    }

    let mut out = Matrix::zeros(n, k);
    for r in 0..n {
        for (c, comp) in components.iter().enumerate() {
            out[(r, c)] =
                centered.row(r).iter().zip(comp).map(|(&a, &b)| a * b).sum();
        }
    }
    out
}

fn mat_vec(m: &Matrix, v: &[f32]) -> Vec<f32> {
    (0..m.rows())
        .map(|r| m.row(r).iter().zip(v).map(|(&a, &b)| a * b).sum())
        .collect()
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points spread along the (1, 1, 0) direction with small noise.
        let n = 50;
        let x = Matrix::from_fn(n, 3, |r, c| {
            let t = r as f32 / n as f32 * 10.0 - 5.0;
            match c {
                0 | 1 => t + ((r * 7 + c) % 5) as f32 * 0.01,
                _ => ((r * 3) % 7) as f32 * 0.01,
            }
        });
        let p = project(&x, 1);
        // First PC scores should be strongly ordered with t (monotone up to
        // sign): check |corr| is high via sign counting.
        let mut increasing = 0;
        let mut decreasing = 0;
        for r in 1..n {
            if p[(r, 0)] > p[(r - 1, 0)] {
                increasing += 1;
            } else {
                decreasing += 1;
            }
        }
        assert!(increasing.max(decreasing) > n * 9 / 10);
    }

    #[test]
    fn output_shape_and_finiteness() {
        let x = Matrix::from_fn(20, 8, |r, c| ((r * 13 + c * 5) % 11) as f32 - 5.0);
        let p = pca_2d(&x);
        assert_eq!(p.shape(), (20, 2));
        assert!(p.all_finite());
    }

    #[test]
    fn components_capture_more_variance_than_random_axis() {
        let x = Matrix::from_fn(30, 4, |r, c| if c == 0 { r as f32 } else { (r % 3) as f32 * 0.1 });
        let p = project(&x, 1);
        let var_pc: f32 = p.as_slice().iter().map(|v| v * v).sum();
        // Variance along column 1 (a weak axis).
        let mean1: f32 = (0..30).map(|r| x[(r, 1)]).sum::<f32>() / 30.0;
        let var_weak: f32 = (0..30).map(|r| (x[(r, 1)] - mean1).powi(2)).sum();
        assert!(var_pc > var_weak * 10.0);
    }
}
