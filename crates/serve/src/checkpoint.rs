//! Versioned, checksummed binary checkpoint format.
//!
//! A checkpoint is an ordered list of named 2-D tensors (`f32` or `u32`
//! payloads) plus a small UTF-8 metadata block of sorted `key=value` lines.
//! Everything is little-endian and self-delimiting:
//!
//! ```text
//! offset  size        field
//! 0       4           magic "DGCK"
//! 4       4           format version (u32, currently 1)
//! 8       8           FNV-1a64 digest of the metadata block
//! 16      4           metadata length in bytes (u32)
//! 20      m           metadata: sorted "key=value\n" UTF-8 lines
//! ·       4           tensor count (u32)
//! per tensor:
//!         4           name length (u32)
//!         n           name (UTF-8)
//!         1           dtype (0 = f32, 1 = u32)
//!         8           rows (u64)
//!         8           cols (u64)
//!         rows·cols·4 payload (little-endian)
//! end     4           CRC32 (IEEE) over every payload byte, in file order
//! ```
//!
//! Readers validate the magic, version, metadata digest, per-tensor bounds
//! (every length is checked against the remaining bytes *before* any
//! allocation, so corrupt headers cannot trigger huge allocations), the
//! trailing CRC, and that no bytes follow it. Every failure is a
//! [`CheckpointError`] — loading untrusted bytes never panics.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

use dgnn_tensor::Matrix;

/// File magic: "DGnn ChecKpoint".
pub const MAGIC: [u8; 4] = *b"DGCK";
/// Current format version written by [`Checkpoint::save`].
pub const FORMAT_VERSION: u32 = 1;

const MAX_META_BYTES: usize = 1 << 20;
const MAX_NAME_BYTES: usize = 4096;
const MAX_TENSORS: usize = 65_536;

/// Why a checkpoint could not be read or interpreted.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not one this reader understands.
    UnsupportedVersion(u32),
    /// The file ended before a declared field.
    Truncated,
    /// A structural invariant failed (oversized field, non-UTF-8 name,
    /// trailing bytes, unknown dtype, …).
    Corrupt(String),
    /// The trailing CRC32 does not match the payload bytes.
    ChecksumMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC recomputed from the payload.
        computed: u32,
    },
    /// The stored metadata digest does not match the metadata block.
    DigestMismatch,
    /// A tensor the consumer requires is absent.
    MissingTensor(String),
    /// A tensor exists but with an unusable shape or dtype.
    BadShape(String),
    /// The metadata block disagrees with what the consumer expects
    /// (wrong model kind, undecodable config, …).
    MetaMismatch(String),
    /// A segment named by a segmented-checkpoint manifest is absent.
    MissingSegment(String),
    /// A `.seg` file exists that the manifest does not name.
    ExtraSegment(String),
    /// A segment file's bytes do not hash to the digest the manifest
    /// recorded for it (whole-file CRC32, checked before parsing).
    SegmentDigestMismatch {
        /// Segment file name.
        segment: String,
        /// Digest stored in the manifest.
        stored: u32,
        /// Digest recomputed from the file bytes.
        computed: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint io error: {e}"),
            Self::BadMagic => write!(f, "not a DGCK checkpoint (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v} (reader supports {FORMAT_VERSION})")
            }
            Self::Truncated => write!(f, "checkpoint truncated"),
            Self::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint payload checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            Self::DigestMismatch => write!(f, "checkpoint metadata digest mismatch"),
            Self::MissingTensor(name) => write!(f, "checkpoint is missing tensor {name:?}"),
            Self::BadShape(why) => write!(f, "checkpoint tensor has unusable shape: {why}"),
            Self::MetaMismatch(why) => write!(f, "checkpoint metadata mismatch: {why}"),
            Self::MissingSegment(name) => write!(f, "manifest names segment {name:?} but the file is missing"),
            Self::ExtraSegment(name) => write!(f, "segment file {name:?} is not named by the manifest"),
            Self::SegmentDigestMismatch { segment, stored, computed } => write!(
                f,
                "segment {segment:?} digest mismatch (manifest {stored:#010x}, computed {computed:#010x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Payload of one stored tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// 32-bit float payload (embeddings, parameters, CSR values).
    F32(Vec<f32>),
    /// 32-bit unsigned payload (index arrays: CSR structure, seen lists).
    U32(Vec<u32>),
}

/// One named 2-D tensor inside a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Unique name, e.g. `param/e_user` or `tau/indptr`.
    pub name: String,
    /// Row count (index arrays use a single row).
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// The payload; `rows * cols` elements.
    pub data: TensorData,
}

/// An in-memory checkpoint: ordered named tensors plus metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    meta: BTreeMap<String, String>,
    tensors: Vec<Tensor>,
}

impl Checkpoint {
    /// Empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a metadata entry. Keys and values must not contain `=` or
    /// newlines (the serialized form is `key=value` lines); offending
    /// characters are replaced with `_` rather than corrupting the block.
    pub fn set_meta(&mut self, key: &str, value: &str) {
        let clean = |s: &str, eq: bool| {
            s.chars()
                .map(|c| if c == '\n' || c == '\r' || (eq && c == '=') { '_' } else { c })
                .collect::<String>()
        };
        self.meta.insert(clean(key, true), clean(value, false));
    }

    /// Looks up a metadata entry.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(String::as_str)
    }

    /// All metadata entries (sorted by key).
    pub fn meta_entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.meta.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Appends an `f32` tensor.
    pub fn push_f32(&mut self, name: &str, rows: usize, cols: usize, data: Vec<f32>) {
        debug_assert_eq!(rows * cols, data.len(), "tensor {name}: shape/payload mismatch");
        self.tensors.push(Tensor { name: name.to_string(), rows, cols, data: TensorData::F32(data) });
    }

    /// Appends a dense matrix as an `f32` tensor.
    pub fn push_matrix(&mut self, name: &str, m: &Matrix) {
        self.push_f32(name, m.rows(), m.cols(), m.as_slice().to_vec());
    }

    /// Appends a `u32` index tensor as a single row.
    pub fn push_u32(&mut self, name: &str, data: Vec<u32>) {
        self.tensors.push(Tensor { name: name.to_string(), rows: 1, cols: data.len(), data: TensorData::U32(data) });
    }

    /// Tensors in storage order.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// Finds a tensor by name.
    pub fn tensor(&self, name: &str) -> Option<&Tensor> {
        self.tensors.iter().find(|t| t.name == name)
    }

    /// Returns the named tensor as a dense matrix.
    ///
    /// Errors with [`CheckpointError::MissingTensor`] when absent and
    /// [`CheckpointError::BadShape`] when the payload is not `f32`.
    pub fn matrix(&self, name: &str) -> Result<Matrix, CheckpointError> {
        let t = self.tensor(name).ok_or_else(|| CheckpointError::MissingTensor(name.to_string()))?;
        match &t.data {
            TensorData::F32(v) => Ok(Matrix::from_vec(t.rows, t.cols, v.clone())),
            TensorData::U32(_) => {
                Err(CheckpointError::BadShape(format!("tensor {name:?} is u32, expected f32")))
            }
        }
    }

    /// Returns the named tensor's `u32` payload.
    pub fn u32s(&self, name: &str) -> Result<&[u32], CheckpointError> {
        let t = self.tensor(name).ok_or_else(|| CheckpointError::MissingTensor(name.to_string()))?;
        match &t.data {
            TensorData::U32(v) => Ok(v),
            TensorData::F32(_) => {
                Err(CheckpointError::BadShape(format!("tensor {name:?} is f32, expected u32")))
            }
        }
    }

    /// Returns the named tensor's `f32` payload.
    pub fn f32s(&self, name: &str) -> Result<&[f32], CheckpointError> {
        let t = self.tensor(name).ok_or_else(|| CheckpointError::MissingTensor(name.to_string()))?;
        match &t.data {
            TensorData::F32(v) => Ok(v),
            TensorData::U32(_) => {
                Err(CheckpointError::BadShape(format!("tensor {name:?} is u32, expected f32")))
            }
        }
    }

    fn meta_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for (k, v) in &self.meta {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        out.into_bytes()
    }

    /// Serializes to the on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let meta = self.meta_bytes();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&meta).to_le_bytes());
        out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&meta);
        out.extend_from_slice(&(self.tensors.len() as u32).to_le_bytes());
        let mut crc = Crc32::new();
        for t in &self.tensors {
            let name = t.name.as_bytes();
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name);
            let dtype: u8 = match &t.data {
                TensorData::F32(_) => 0,
                TensorData::U32(_) => 1,
            };
            out.push(dtype);
            out.extend_from_slice(&(t.rows as u64).to_le_bytes());
            out.extend_from_slice(&(t.cols as u64).to_le_bytes());
            let start = out.len();
            match &t.data {
                TensorData::F32(v) => {
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                TensorData::U32(v) => {
                    for x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
            crc.update(&out[start..]);
        }
        out.extend_from_slice(&crc.finish().to_le_bytes());
        out
    }

    /// Parses a checkpoint from bytes, validating every structural
    /// invariant. Never panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        if cur.take(4)? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = cur.u32()?;
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let stored_digest = cur.u64()?;
        let meta_len = cur.u32()? as usize;
        if meta_len > MAX_META_BYTES {
            return Err(CheckpointError::Corrupt(format!("metadata block of {meta_len} bytes exceeds cap")));
        }
        let meta_raw = cur.take(meta_len)?;
        if fnv1a64(meta_raw) != stored_digest {
            return Err(CheckpointError::DigestMismatch);
        }
        let meta_text = std::str::from_utf8(meta_raw)
            .map_err(|_| CheckpointError::Corrupt("metadata is not UTF-8".into()))?;
        let mut meta = BTreeMap::new();
        for line in meta_text.lines().filter(|l| !l.is_empty()) {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| CheckpointError::Corrupt(format!("metadata line {line:?} has no '='")))?;
            meta.insert(k.to_string(), v.to_string());
        }
        let count = cur.u32()? as usize;
        if count > MAX_TENSORS {
            return Err(CheckpointError::Corrupt(format!("{count} tensors exceeds cap")));
        }
        let mut tensors = Vec::with_capacity(count.min(1024));
        let mut crc = Crc32::new();
        for _ in 0..count {
            let name_len = cur.u32()? as usize;
            if name_len > MAX_NAME_BYTES {
                return Err(CheckpointError::Corrupt(format!("tensor name of {name_len} bytes exceeds cap")));
            }
            let name = std::str::from_utf8(cur.take(name_len)?)
                .map_err(|_| CheckpointError::Corrupt("tensor name is not UTF-8".into()))?
                .to_string();
            let dtype = cur.u8()?;
            let rows = cur.u64()?;
            let cols = cur.u64()?;
            let elems = rows
                .checked_mul(cols)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| CheckpointError::Corrupt(format!("tensor {name:?} shape overflows")))?;
            let byte_len = elems
                .checked_mul(4)
                .ok_or_else(|| CheckpointError::Corrupt(format!("tensor {name:?} payload overflows")))?;
            // Bounds-check against the remaining bytes BEFORE allocating.
            let payload = cur.take(byte_len)?;
            crc.update(payload);
            let data = match dtype {
                0 => TensorData::F32(payload.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()),
                1 => TensorData::U32(payload.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()),
                d => return Err(CheckpointError::Corrupt(format!("tensor {name:?} has unknown dtype {d}"))),
            };
            tensors.push(Tensor { name, rows: rows as usize, cols: cols as usize, data });
        }
        let stored_crc = cur.u32()?;
        let computed = crc.finish();
        if stored_crc != computed {
            return Err(CheckpointError::ChecksumMismatch { stored: stored_crc, computed });
        }
        if cur.pos != bytes.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after checksum",
                bytes.len() - cur.pos
            )));
        }
        Ok(Self { meta, tensors })
    }

    /// Writes the checkpoint to `path` (creating parent directories).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()?;
        Ok(())
    }

    /// Reads and parses a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

/// FNV-1a 64-bit digest (the metadata/config fingerprint).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
pub struct Crc32 {
    table: [u32; 256],
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        Self { table, state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = self.table[idx] ^ (self.state >> 8);
        }
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new();
        c.set_meta("model", "TEST");
        c.set_meta("dim", "3");
        c.push_matrix("a", &Matrix::from_vec(2, 3, vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE, 3.25, -0.0]));
        c.push_u32("idx", vec![0, 7, 42, u32::MAX]);
        c
    }

    #[test]
    fn round_trip_is_identity() {
        let c = sample();
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c, back);
        assert_eq!(back.meta("model"), Some("TEST"));
        assert_eq!(back.u32s("idx").unwrap(), &[0, 7, 42, u32::MAX]);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn every_truncation_errs_not_panics() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let r = Checkpoint::from_bytes(&bytes[..len]);
            assert!(r.is_err(), "prefix of {len} bytes must be rejected");
        }
    }

    #[test]
    fn payload_flip_is_checksum_mismatch() {
        let mut bytes = sample().to_bytes();
        // Flip one bit inside tensor "a"'s payload (locate it after the
        // 17-byte tensor header that follows the count).
        let payload_off = bytes.len() - 4 - 4 * 4 - 21 - 4; // last f32 of "a"
        bytes[payload_off] ^= 0x01;
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn version_bump_is_unsupported() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::UnsupportedVersion(99)) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn meta_flip_is_digest_mismatch() {
        let mut bytes = sample().to_bytes();
        bytes[21] ^= 0x02; // inside the metadata block
        match Checkpoint::from_bytes(&bytes) {
            Err(CheckpointError::DigestMismatch) => {}
            other => panic!("expected digest mismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::BadMagic)));
    }

    #[test]
    fn meta_sanitizes_separators() {
        let mut c = Checkpoint::new();
        c.set_meta("k=ey\n", "v\nal");
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.meta("k_ey_"), Some("v_al"));
    }
}
