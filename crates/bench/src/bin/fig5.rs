//! **E5 — Figure 5**: effect of the heterogeneous relation families.
//! Compares full DGNN against `-S` (no social matrix), `-T` (no
//! item-relation matrix), and `-ST` (neither) on Ciao and Yelp at
//! N ∈ {5, 10, 20}, as in the paper.

use dgnn_bench::{datasets, dgnn_config, run_cell, write_csv, SEED};
use dgnn_core::Dgnn;
use dgnn_eval::TOP_NS;

fn main() {
    let data = datasets();
    // The paper evaluates this ablation on Ciao and Yelp.
    let selected: Vec<_> =
        data.iter().filter(|d| d.name == "ciao-s" || d.name == "yelp-s").collect();
    let variants = [
        ("DGNN", dgnn_config()),
        ("-S", dgnn_config().without_social()),
        ("-T", dgnn_config().without_knowledge()),
        ("-ST", dgnn_config().without_social_and_knowledge()),
    ];

    println!("=== Figure 5: relation ablation (HR@N / NDCG@N) ===\n");
    let mut rows = Vec::new();
    for ds in &selected {
        println!("{}:", ds.name);
        for (name, cfg) in &variants {
            let mut model = Dgnn::new(cfg.clone());
            let cell = run_cell(&mut model, ds, SEED);
            print!("  {name:<5}");
            for (i, n) in TOP_NS.iter().enumerate() {
                print!("  @{n}: HR {:.4} NDCG {:.4}", cell.metrics[i].hr, cell.metrics[i].ndcg);
                rows.push(format!(
                    "{},{},{},{:.6},{:.6}",
                    ds.name, name, n, cell.metrics[i].hr, cell.metrics[i].ndcg
                ));
            }
            println!();
        }
        println!();
    }
    let path = write_csv("fig5", "dataset,variant,n,hr,ndcg", &rows);
    println!("raw: {}", path.display());
}
