//! Std-only source-level lint harness for the DGNN workspace.
//!
//! Walks every `crates/*/src/**/*.rs` file and enforces:
//!
//! 1. no bare `.unwrap()` in library code outside `#[cfg(test)]` blocks;
//! 2. `.expect(...)` needs a justifying message (≥ 10 chars) or a nearby
//!    `// INVARIANT:` / `// PANICS:` comment;
//! 3. `panic!` needs a nearby `// PANICS:` comment;
//! 4. `unsafe` needs a nearby `// SAFETY:` comment;
//! 5. a workspace-wide TODO/FIXME budget;
//! 6. `.clone()` inside the planned tape executor (`autograd/src/tape.rs`)
//!    needs a nearby `// PLAN:` comment justifying why the copy cannot be
//!    recycled through the memory plan.
//! 7. no ad-hoc timing or printing in the training hot path: `Instant`
//!    and `println!` inside `crates/core/src` or `crates/autograd/src`
//!    need a nearby `// OBS:` comment — instrumentation belongs in
//!    `dgnn-obs` spans/metrics so it shows up in exported traces and can
//!    be disabled globally.
//! 8. no raw thread spawning (`thread::spawn` / `thread::Builder`) outside
//!    `crates/tensor/src/parallel.rs` without a nearby `// PAR:` comment —
//!    kernel work must go through the deterministic worker pool so the
//!    bit-identity and allocation-accounting guarantees hold.
//! 9. the serving tier fails soft: `.unwrap()` / `.expect(` / `panic!`
//!    anywhere in `crates/serve/src` needs a nearby `// SERVE:` comment
//!    proving the path is unreachable from request handling — a panic
//!    there kills a worker or the batcher instead of returning a 4xx/5xx,
//!    so even a well-messaged expect is not acceptable by default.
//! 10. no hand-built rewrite plans outside the optimizer stack:
//!    `RewritePlan::new(` / `RewriteAction::` outside the graph optimizer,
//!    its independent checker, and the autograd executor that interprets
//!    them needs a nearby `// REWRITE:` comment — ad-hoc tape rewrites
//!    bypass the soundness proof that keeps optimized execution
//!    bit-identical.
//! 11. unsafe-contract: every `unsafe` block / `unsafe impl` — *including*
//!    those inside `#[cfg(test)]` regions, which rule 4 exempts — needs an
//!    adjacent `// SAFETY:` comment whose justification text is at least
//!    20 characters (marker-only or token justifications don't count; the
//!    comment must actually argue the invariant).
//! 12. partition-contract: any `par_row_chunks(` /
//!    `par_row_chunks_scratch(` / `run_parts(` call site outside the
//!    kernel modules that own them
//!    (`tensor/src/{parallel,dense,sparse,topk}.rs`) needs a nearby
//!    `// CONTRACT: <kernel>` tag naming a contract registered in
//!    `dgnn_analysis::race_checker` — a parallel dispatch with no
//!    registered partition contract cannot be proven race-free by the
//!    sanitizer.
//! 13. metric-name: a string literal passed as the first argument of
//!    `hist_record(` / `gauge_set(` / `counter_add(` / `hist_merge(` must
//!    match `^[a-z0-9_]+(/[a-z0-9_]+)*$` (lower_snake segments joined by
//!    `/`) or carry a nearby `// OBS:` comment. The Prometheus exporter
//!    sanitizes names on the way out, so two sloppy spellings would merge
//!    into one exported series; keeping registry names canonical at the
//!    call site makes `/metrics` ↔ registry lookups one-to-one.
//! 14. simd-justification: `std::arch` / `core::arch` intrinsics outside
//!    the packed-GEMM kernel module (`crates/tensor/src/gemm/`) need a
//!    nearby `// SIMD:` comment — hand-rolled SIMD scattered through the
//!    codebase bypasses the backend-selection, feature-detection, and
//!    determinism contracts the GEMM subsystem centralizes.
//! 15. shard-bounds: raw segment I/O — `mmap` / `munmap` / `pread` /
//!    `read_at(` / `read_exact_at(` — outside the shard-loader module
//!    (`crates/serve/src/shard.rs`) needs a nearby `// SHARD:` comment.
//!    The loader module is the one place that owns mapped-region
//!    lifetimes and pre-allocation length checks; scattered positional
//!    I/O reintroduces exactly the unchecked-length / dangling-map bugs
//!    the segmented checkpoint format's corruption tests pin down.
//!
//! `target/` and `third_party/` directories are never scanned.
//!
//! Run with `cargo run -p dgnn-analysis --bin lint [--json] [workspace-root]`.
//! `--json` prints one machine-readable report object instead of plain
//! lines. Exits non-zero when any rule fires, so `ci.sh` can gate on it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Maximum tolerated TODO/FIXME markers across all scanned sources.
const TODO_BUDGET: usize = 8;

/// How many preceding lines may carry a `// SAFETY:` / `// PANICS:` /
/// `// INVARIANT:` marker for it to justify a flagged construct.
const MARKER_WINDOW: usize = 4;

/// Minimum characters of justification text a `// SAFETY:` comment must
/// carry (rule 11): the comment must argue the invariant, not just name
/// the marker.
const MIN_SAFETY_JUSTIFICATION: usize = 20;

struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    detail: String,
}

/// The needles are assembled at runtime so this file does not flag itself
/// when the harness scans its own crate.
struct Needles {
    unwrap: String,
    expect: String,
    panic: String,
    todo: String,
    fixme: String,
    clone: String,
    instant: String,
    println: String,
    spawn: String,
    thread_builder: String,
    rewrite_plan: String,
    rewrite_action: String,
    par_chunks: String,
    par_chunks_scratch: String,
    run_parts: String,
    std_arch: String,
    core_arch: String,
    hist_record: String,
    gauge_set: String,
    counter_add: String,
    hist_merge: String,
    map_sys: String,
    unmap_sys: String,
    pread_sys: String,
    read_at_pos: String,
    read_exact_at_pos: String,
}

impl Needles {
    fn new() -> Self {
        Self {
            unwrap: format!(".unwr{}()", "ap"),
            expect: format!(".exp{}(", "ect"),
            panic: format!("pan{}!", "ic"),
            todo: format!("TO{}", "DO"),
            fixme: format!("FIX{}", "ME"),
            clone: format!(".clo{}(", "ne"),
            instant: format!("Inst{}", "ant"),
            println: format!("print{}!", "ln"),
            spawn: format!("thread::sp{}", "awn"),
            thread_builder: format!("thread::Buil{}", "der"),
            rewrite_plan: format!("RewritePlan::n{}(", "ew"),
            rewrite_action: format!("RewriteAction{}", "::"),
            par_chunks: format!("par_row_chu{}(", "nks"),
            par_chunks_scratch: format!("par_row_chunks_scra{}(", "tch"),
            run_parts: format!("run_pa{}(", "rts"),
            std_arch: format!("std::a{}", "rch"),
            core_arch: format!("core::a{}", "rch"),
            hist_record: format!("hist_rec{}(", "ord"),
            gauge_set: format!("gauge_s{}(", "et"),
            counter_add: format!("counter_a{}(", "dd"),
            hist_merge: format!("hist_mer{}(", "ge"),
            map_sys: format!("mm{}", "ap"),
            unmap_sys: format!("munm{}", "ap"),
            pread_sys: format!("pre{}", "ad"),
            read_at_pos: format!("read_{}(", "at"),
            read_exact_at_pos: format!("read_exact_{}(", "at"),
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root = ".".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            root = arg;
        }
    }
    let crates_dir = Path::new(&root).join("crates");
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!("lint: no Rust sources found under {}", crates_dir.display());
        return ExitCode::FAILURE;
    }

    let needles = Needles::new();
    let mut violations = Vec::new();
    let mut todo_count = 0usize;
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(text) => lint_file(file, &text, &needles, &mut violations, &mut todo_count),
            Err(e) => violations.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "io",
                detail: format!("unreadable source file: {e}"),
            }),
        }
    }
    if todo_count > TODO_BUDGET {
        violations.push(Violation {
            file: crates_dir.clone(),
            line: 0,
            rule: "todo-budget",
            detail: format!(
                "{todo_count} TODO/FIXME markers exceed the budget of {TODO_BUDGET}"
            ),
        });
    }

    if json {
        let items: Vec<String> = violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"file\":{},\"line\":{},\"rule\":{},\"detail\":{}}}",
                    dgnn_analysis::json::string(&v.file.display().to_string()),
                    v.line,
                    dgnn_analysis::json::string(v.rule),
                    dgnn_analysis::json::string(&v.detail),
                )
            })
            .collect();
        println!(
            "{{\"clean\":{},\"files\":{},\"todo_count\":{},\"violations\":[{}]}}",
            violations.is_empty(),
            files.len(),
            todo_count,
            items.join(","),
        );
        return if violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    if violations.is_empty() {
        println!(
            "lint: {} files clean ({} TODO/FIXME within budget {})",
            files.len(),
            todo_count,
            TODO_BUDGET
        );
        return ExitCode::SUCCESS;
    }
    let mut out = String::new();
    for v in &violations {
        let _ = writeln!(
            out,
            "{}:{}: [{}] {}",
            v.file.display(),
            v.line,
            v.rule,
            v.detail
        );
    }
    eprint!("{out}");
    eprintln!("lint: {} violation(s) in {} files", violations.len(), files.len());
    ExitCode::FAILURE
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Only library/binary sources: crates/<name>/src/**; skip each
            // crate's tests/ and benches/ trees where panics are idiomatic,
            // plus build artifacts and vendored code.
            let name = entry.file_name();
            if name == "target" || name == "third_party" {
                continue;
            }
            if dir.ends_with("crates") || name == "src" || under_src(&path) {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") && under_src(&path) {
            out.push(path);
        }
    }
}

fn under_src(path: &Path) -> bool {
    path.components().any(|c| c.as_os_str() == "src")
}

/// Strips `//` line comments and the contents of ordinary string literals,
/// so needles inside docs or message strings do not fire. This is a lexer
/// approximation (no raw-string support), which is exactly as much as the
/// workspace's own sources need.
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    let _ = chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        if in_char {
            if c == '\\' {
                let _ = chars.next();
            } else if c == '\'' {
                in_char = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '\'' => {
                // Heuristic: treat as char literal only when it closes soon;
                // otherwise it is a lifetime tick.
                let rest: String = chars.clone().take(3).collect();
                if rest.starts_with('\\') || rest.chars().nth(1) == Some('\'') {
                    in_char = true;
                } else {
                    out.push('\'');
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Does any of the `window` lines before `idx` (or the line itself) carry
/// the marker comment?
fn has_marker(lines: &[&str], idx: usize, marker: &str) -> bool {
    let start = idx.saturating_sub(MARKER_WINDOW);
    lines[start..=idx].iter().any(|l| l.contains(marker))
}

/// Justification length (in chars) of the nearest `// SAFETY:` marker in
/// the window before `idx`: the text after the marker on its own line plus
/// any immediately following comment-only continuation lines. `None` when
/// no marker is in the window at all (rule 4's case).
fn safety_justification_len(lines: &[&str], idx: usize) -> Option<usize> {
    let start = idx.saturating_sub(MARKER_WINDOW);
    let marker_at = (start..=idx).rev().find(|&j| lines[j].contains("SAFETY:"))?;
    let tail = match lines[marker_at].find("SAFETY:") {
        Some(p) => &lines[marker_at][p + "SAFETY:".len()..],
        None => "",
    };
    let mut len = tail.trim().chars().count();
    for l in lines.iter().take(idx).skip(marker_at + 1) {
        match l.trim_start().strip_prefix("//") {
            Some(rest) => len += rest.trim().chars().count(),
            None => break,
        }
    }
    Some(len)
}

/// The kernel named by the nearest `// CONTRACT: <kernel>` tag in the
/// window before `idx`, or `None` when no tag is present.
fn contract_marker_name(lines: &[&str], idx: usize) -> Option<String> {
    let start = idx.saturating_sub(MARKER_WINDOW);
    let marker_at = (start..=idx).rev().find(|&j| lines[j].contains("CONTRACT:"))?;
    let p = lines[marker_at].find("CONTRACT:")?;
    let tail = &lines[marker_at][p + "CONTRACT:".len()..];
    tail.split_whitespace().next().map(str::to_string)
}

/// `.expect("...")` with a message of at least 10 characters counts as
/// self-justifying. `start` points at the needle's opening parenthesis.
fn expect_message_len(code: &str, paren: usize) -> usize {
    let rest = &code[paren..];
    let open = match rest.find('"') {
        Some(i) => i,
        None => return 0,
    };
    let body = &rest[open + 1..];
    match body.find('"') {
        Some(close) => close,
        None => body.len(), // message continues past the stripped region
    }
}

/// The string literal opening right after a metric-call needle, read from
/// the RAW line (the stripper blanks string contents, so the name only
/// survives there). `after` points one past the needle's `(`. Returns
/// `None` when the first argument is not a literal on this line — a
/// `format!`/variable name is dynamic and rule 13 does not judge it.
fn metric_name_literal(raw: &str, after: usize) -> Option<&str> {
    let rest = raw.get(after..)?;
    let rest = rest.trim_start();
    let body = rest.strip_prefix('"')?;
    let close = body.find('"')?;
    Some(&body[..close])
}

/// Rule 13's canonical-name check: `^[a-z0-9_]+(/[a-z0-9_]+)*$`, spelled
/// out by hand because the workspace has no regex crate.
fn valid_metric_literal(name: &str) -> bool {
    !name.is_empty()
        && name.split('/').all(|seg| {
            !seg.is_empty()
                && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

fn lint_file(
    file: &Path,
    text: &str,
    needles: &Needles,
    violations: &mut Vec<Violation>,
    todo_count: &mut usize,
) {
    let lines: Vec<&str> = text.lines().collect();
    // Rule 6 applies only inside the planned tape executor, where every
    // matrix copy is a hole in the memory plan unless justified.
    let plan_clone_scope = file.ends_with(Path::new("autograd/src/tape.rs"));
    // Rule 7 applies to the training hot path: core and autograd must route
    // timing and output through dgnn-obs, never roll their own.
    let obs_scope = ["core", "autograd"].iter().any(|c| {
        let marker: PathBuf = ["crates", c, "src"].iter().collect();
        file.components()
            .collect::<Vec<_>>()
            .windows(3)
            .any(|w| w.iter().map(|c| c.as_os_str()).eq(marker.iter()))
    });
    // Rule 8 applies everywhere except the kernel pool itself: the one
    // place allowed to own worker threads.
    let par_scope = !file.ends_with(Path::new("tensor/src/parallel.rs"));
    // Rule 10 exempts the rewrite stack itself: the optimizer builds plans,
    // the independent checker proves them, the memory planner/checker
    // account for the extra reads they induce, and the autograd executor
    // (rewrite/tape/plan) interprets them. Everywhere else a rewrite must
    // be justified.
    let rewrite_scope = ![
        "analysis/src/optimizer.rs",
        "analysis/src/rewrite_checker.rs",
        "analysis/src/planner.rs",
        "analysis/src/checker.rs",
        "autograd/src/rewrite.rs",
        "autograd/src/tape.rs",
        "autograd/src/plan.rs",
    ]
    .iter()
    .any(|tail| file.ends_with(Path::new(tail)));
    // Rule 12 exempts the kernel modules that own pool dispatch: their
    // partition contracts are declared in dgnn_analysis::race_checker and
    // proved at runtime by the shadow-access sanitizer. Everywhere else a
    // dispatch must name the contract it runs under.
    let contract_scope = ![
        "tensor/src/parallel.rs",
        "tensor/src/dense.rs",
        "tensor/src/sparse.rs",
        "tensor/src/topk.rs",
    ]
    .iter()
    .any(|tail| file.ends_with(Path::new(tail)));
    // Rule 14 exempts the packed-GEMM kernel module, the one place that
    // owns raw SIMD: its microkernels sit behind runtime feature detection
    // and the backend-selection/determinism contracts.
    let simd_scope = {
        let marker: PathBuf = ["crates", "tensor", "src", "gemm"].iter().collect();
        !file
            .components()
            .collect::<Vec<_>>()
            .windows(4)
            .any(|w| w.iter().map(|c| c.as_os_str()).eq(marker.iter()))
    };
    // Rule 15 exempts the shard-loader module, the one place that owns
    // mapped-region lifetimes and segment read bounds; everywhere else
    // positional segment I/O must justify why it is not loader business.
    let shard_scope = !file.ends_with(Path::new("serve/src/shard.rs"));
    // Rule 9 applies to the serving tier, which must fail soft: request
    // handling answers bad input with 4xx/5xx JSON, never a panic.
    let serve_scope = {
        let marker: PathBuf = ["crates", "serve", "src"].iter().collect();
        file.components()
            .collect::<Vec<_>>()
            .windows(3)
            .any(|w| w.iter().map(|c| c.as_os_str()).eq(marker.iter()))
    };
    // Track `#[cfg(test)]`-gated regions by brace depth: everything between
    // the attribute's following `{` and its matching `}` is test code where
    // unwrap/expect/panic are idiomatic.
    let mut test_depth: i64 = -1; // -1: not inside a test region
    let mut pending_test_attr = false;
    let mut depth: i64 = 0;

    for (i, raw) in lines.iter().enumerate() {
        let code = strip_comments_and_strings(raw);
        let lineno = i + 1;

        if raw.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if pending_test_attr && opens > 0 {
            test_depth = depth + 1;
            pending_test_attr = false;
        }
        depth += opens - closes;
        let in_test = test_depth >= 0 && depth >= test_depth;
        if test_depth >= 0 && depth < test_depth {
            test_depth = -1;
        }

        if raw.contains(&needles.todo) || raw.contains(&needles.fixme) {
            *todo_count += 1;
        }
        // Rule 11 runs before the test-region skip: unlike rule 4 it
        // exempts no region, and it additionally demands that the SAFETY
        // comment argue the invariant rather than merely exist. It fires
        // only for the cases rule 4 misses (marker absent inside test
        // code, or marker present but too thin), so the two never
        // double-report one site.
        if contains_unsafe_keyword(&code) {
            match safety_justification_len(&lines, i) {
                Some(len) if len < MIN_SAFETY_JUSTIFICATION => {
                    violations.push(Violation {
                        file: file.to_path_buf(),
                        line: lineno,
                        rule: "unsafe-contract",
                        detail: format!(
                            "SAFETY comment carries only {len} chars of \
                             justification (minimum {MIN_SAFETY_JUSTIFICATION}); \
                             it must argue the invariant, not just name the marker"
                        ),
                    });
                }
                None if in_test => {
                    violations.push(Violation {
                        file: file.to_path_buf(),
                        line: lineno,
                        rule: "unsafe-contract",
                        detail: "unsafe in test code without a nearby // SAFETY: \
                                 comment; test unsafety needs the same argued \
                                 invariant as library unsafety"
                            .to_string(),
                    });
                }
                _ => {}
            }
        }
        if in_test {
            continue;
        }

        if code.contains(needles.unwrap.as_str()) {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "no-unwrap",
                detail: "bare unwrap in library code; use expect with a message, \
                         propagate the error, or handle the None/Err arm"
                    .to_string(),
            });
        }
        if let Some(pos) = code.find(needles.expect.as_str()) {
            let msg_len = expect_message_len(raw, pos + needles.expect.len() - 1);
            let justified = msg_len >= 10
                || has_marker(&lines, i, "INVARIANT:")
                || has_marker(&lines, i, "PANICS:");
            if !justified {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "expect-message",
                    detail: "expect without a justifying message (>= 10 chars) or a \
                             nearby INVARIANT:/PANICS: comment"
                        .to_string(),
                });
            }
        }
        if code.contains(needles.panic.as_str()) && !has_marker(&lines, i, "PANICS:") {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "panic-doc",
                detail: "panic! without a nearby // PANICS: comment explaining why \
                         the condition is unreachable or fatal"
                    .to_string(),
            });
        }
        if plan_clone_scope
            && code.contains(needles.clone.as_str())
            && !has_marker(&lines, i, "PLAN:")
        {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "plan-clone",
                detail: "matrix clone in the planned tape executor without a nearby \
                         // PLAN: comment justifying why the copy cannot be recycled"
                    .to_string(),
            });
        }
        if obs_scope && !has_marker(&lines, i, "OBS:") {
            for (needle, what) in
                [(&needles.instant, "Instant timing"), (&needles.println, "println! output")]
            {
                if code.contains(needle.as_str()) {
                    violations.push(Violation {
                        file: file.to_path_buf(),
                        line: lineno,
                        rule: "obs-instrumentation",
                        detail: format!(
                            "ad-hoc {what} in the training hot path without a nearby \
                             // OBS: comment; route it through dgnn-obs spans/metrics"
                        ),
                    });
                }
            }
        }
        if par_scope
            && (code.contains(needles.spawn.as_str())
                || code.contains(needles.thread_builder.as_str()))
            && !has_marker(&lines, i, "PAR:")
        {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "par-raw-thread",
                detail: "raw thread spawn outside the kernel pool without a nearby \
                         // PAR: comment; kernel work must run on the deterministic \
                         pool in crates/tensor/src/parallel.rs"
                    .to_string(),
            });
        }
        if serve_scope
            && (code.contains(needles.unwrap.as_str())
                || code.contains(needles.expect.as_str())
                || code.contains(needles.panic.as_str()))
            && !has_marker(&lines, i, "SERVE:")
        {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "serve-fail-soft",
                detail: "potential panic in the serving tier without a nearby \
                         // SERVE: comment; request paths must return JSON \
                         errors, never panic"
                    .to_string(),
            });
        }
        if rewrite_scope
            && (code.contains(needles.rewrite_plan.as_str())
                || code.contains(needles.rewrite_action.as_str()))
            && !has_marker(&lines, i, "REWRITE:")
        {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "rewrite-plan-hygiene",
                detail: "hand-built rewrite plan outside the optimizer stack without \
                         a nearby // REWRITE: comment; unproven rewrites bypass the \
                         soundness checker"
                    .to_string(),
            });
        }
        if contains_unsafe_keyword(&code) && !has_marker(&lines, i, "SAFETY:") {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "undocumented-unsafe",
                detail: "unsafe without a nearby // SAFETY: comment".to_string(),
            });
        }
        if simd_scope
            && (code.contains(needles.std_arch.as_str())
                || code.contains(needles.core_arch.as_str()))
            && !has_marker(&lines, i, "SIMD:")
        {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "simd-justification",
                detail: "raw std::arch/core::arch intrinsics outside \
                         crates/tensor/src/gemm/ without a nearby // SIMD: \
                         comment; SIMD belongs behind the GEMM subsystem's \
                         feature detection and determinism contracts"
                    .to_string(),
            });
        }
        if shard_scope
            && (contains_word(&code, needles.map_sys.as_str())
                || contains_word(&code, needles.unmap_sys.as_str())
                || contains_word(&code, needles.pread_sys.as_str())
                || contains_prefix_bounded(&code, needles.read_at_pos.as_str())
                || contains_prefix_bounded(&code, needles.read_exact_at_pos.as_str()))
            && !has_marker(&lines, i, "SHARD:")
        {
            violations.push(Violation {
                file: file.to_path_buf(),
                line: lineno,
                rule: "shard-bounds",
                detail: "raw segment I/O (map/positional read) outside \
                         crates/serve/src/shard.rs without a nearby \
                         // SHARD: comment; mapped-region lifetimes and \
                         length-checked reads belong to the shard loader"
                    .to_string(),
            });
        }
        if contract_scope
            && (code.contains(needles.par_chunks.as_str())
                || code.contains(needles.par_chunks_scratch.as_str())
                || code.contains(needles.run_parts.as_str()))
        {
            match contract_marker_name(&lines, i) {
                Some(name)
                    if dgnn_analysis::race_checker::contract_names()
                        .contains(&name.as_str()) => {}
                Some(name) => violations.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "partition-contract",
                    detail: format!(
                        "// CONTRACT: tag names `{name}`, which is not \
                         registered in dgnn_analysis::race_checker; the \
                         sanitizer cannot prove an unregistered dispatch"
                    ),
                }),
                None => violations.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "partition-contract",
                    detail: "pool dispatch outside the kernel modules without a \
                             nearby // CONTRACT: <kernel> tag naming its \
                             registered partition contract"
                        .to_string(),
                }),
            }
        }
        for needle in [
            &needles.hist_record,
            &needles.gauge_set,
            &needles.counter_add,
            &needles.hist_merge,
        ] {
            // Gate on the stripped code (so doc/comment examples never
            // fire), then read the literal back out of the raw line where
            // the stripper blanked it.
            if !code.contains(needle.as_str()) {
                continue;
            }
            let Some(pos) = raw.find(needle.as_str()) else { continue };
            let Some(name) = metric_name_literal(raw, pos + needle.len()) else { continue };
            if !valid_metric_literal(name) && !has_marker(&lines, i, "OBS:") {
                violations.push(Violation {
                    file: file.to_path_buf(),
                    line: lineno,
                    rule: "metric-name",
                    detail: format!(
                        "metric name `{name}` is not canonical \
                         (lower_snake segments joined by `/`); the Prometheus \
                         exporter would silently merge sloppy spellings — \
                         rename it or justify with a nearby // OBS: comment"
                    ),
                });
            }
        }
    }
}

/// Word-boundary match: `needle` must not be embedded in a longer
/// identifier on either side (so `spread` never trips the `pread` check).
fn contains_word(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &code[abs + needle.len()..];
        let after_ok = !after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Like [`contains_word`] but for needles that already end in `(`: only
/// the leading boundary needs checking.
fn contains_prefix_bounded(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Word-boundary match for the `unsafe` keyword.
fn contains_unsafe_keyword(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_ok =
            !after.chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        assert_eq!(strip_comments_and_strings("let x = 1; // .unwrap()"), "let x = 1; ");
    }

    #[test]
    fn strips_string_contents() {
        assert_eq!(
            strip_comments_and_strings(r#"let s = "call .unwrap() here";"#),
            r#"let s = "";"#
        );
    }

    #[test]
    fn unsafe_word_boundary() {
        assert!(contains_unsafe_keyword("unsafe { }"));
        assert!(!contains_unsafe_keyword("let not_unsafe_name = 1;"));
        assert!(!contains_unsafe_keyword("unsafety"));
    }

    #[test]
    fn obs_rule_fires_only_in_hot_path_scope() {
        let needles = Needles::new();
        let text = format!("let t = std::time::{}::now();\n", needles.instant);
        let hot = Path::new("crates/core/src/training.rs");
        let mut violations = Vec::new();
        let mut todos = 0;
        lint_file(hot, &text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "obs-instrumentation");

        // An OBS: marker within the window justifies the use.
        violations.clear();
        let justified = format!("// OBS: one-shot startup cost, not a training loop\n{text}");
        lint_file(hot, &justified, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty());

        // Outside core/autograd the same line is fine.
        violations.clear();
        lint_file(Path::new("crates/bench/src/lib.rs"), &text, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty());
    }

    #[test]
    fn par_rule_exempts_the_kernel_pool() {
        let needles = Needles::new();
        let text = format!("let h = std::{}(move || work());\n", needles.spawn);
        let mut violations = Vec::new();
        let mut todos = 0;

        lint_file(Path::new("crates/core/src/model.rs"), &text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "par-raw-thread");

        // The pool itself may spawn workers freely.
        violations.clear();
        lint_file(
            Path::new("crates/tensor/src/parallel.rs"),
            &text,
            &needles,
            &mut violations,
            &mut todos,
        );
        assert!(violations.is_empty());

        // A PAR: marker justifies a spawn elsewhere (e.g. a test harness).
        violations.clear();
        let justified =
            format!("// PAR: cross-thread determinism probe, not kernel work\n{text}");
        lint_file(Path::new("crates/obs/src/lib.rs"), &justified, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty());
    }

    #[test]
    fn serve_rule_demands_a_serve_marker() {
        let needles = Needles::new();
        // A well-messaged expect passes rule 2 everywhere, but rule 9
        // still rejects it inside the serving tier.
        let text = format!("let v = maybe{}\"invariant holds by construction\");\n", needles.expect);
        let mut violations = Vec::new();
        let mut todos = 0;
        lint_file(Path::new("crates/serve/src/http.rs"), &text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1, "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
        assert_eq!(violations[0].rule, "serve-fail-soft");

        // A SERVE: marker within the window justifies it.
        violations.clear();
        let justified = format!("// SERVE: load-time only, no request path reaches this\n{text}");
        lint_file(Path::new("crates/serve/src/engine.rs"), &justified, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // The same line outside crates/serve/src does not trip rule 9.
        violations.clear();
        lint_file(Path::new("crates/bench/src/lib.rs"), &text, &needles, &mut violations, &mut todos);
        assert!(violations.iter().all(|v| v.rule != "serve-fail-soft"));
    }

    #[test]
    fn rewrite_rule_exempts_the_optimizer_stack() {
        let needles = Needles::new();
        let text = format!("let plan = {}vec![]);\n", needles.rewrite_plan);
        let mut violations = Vec::new();
        let mut todos = 0;

        lint_file(Path::new("crates/core/src/model.rs"), &text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "rewrite-plan-hygiene");

        // The optimizer and the executor own rewrite construction.
        for exempt in ["crates/analysis/src/optimizer.rs", "crates/autograd/src/tape.rs"] {
            violations.clear();
            lint_file(Path::new(exempt), &text, &needles, &mut violations, &mut todos);
            assert!(violations.is_empty(), "{exempt} should be exempt");
        }

        // A REWRITE: marker justifies one elsewhere (e.g. a doc example).
        violations.clear();
        let justified =
            format!("// REWRITE: identity plan for a pool-only harness, nothing to prove\n{text}");
        lint_file(Path::new("crates/bench/src/lib.rs"), &justified, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty());
    }

    #[test]
    fn unsafe_contract_demands_substantive_justification() {
        let needles = Needles::new();
        let mut violations = Vec::new();
        let mut todos = 0;
        let path = Path::new("crates/tensor/src/buf.rs");

        // Marker present (rule 4 passes) but the justification is thin.
        let thin = "// SAFETY: fine\nlet v = unsafe { p.read() };\n";
        lint_file(path, thin, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1, "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
        assert_eq!(violations[0].rule, "unsafe-contract");

        // A multi-line argued invariant satisfies both rules 4 and 11.
        // (Kept as single-line literals: the lexer is line-based, so a
        // backslash-continued literal would read as code when this file
        // scans itself.)
        violations.clear();
        let ok = "// SAFETY: the pointer derives from a live Vec whose length\n// bounds every index this block reads.\nlet v = unsafe { p.read() };\n";
        lint_file(path, ok, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // Test regions are exempt from rule 4 but not from rule 11. The
        // attribute is assembled at runtime so this file's own test-region
        // tracking does not trip over the literal.
        violations.clear();
        let attr = format!("#[cfg(te{})]", "st");
        let in_test =
            format!("{attr}\nmod tests {{\n    fn f() {{ let v = unsafe {{ p.read() }}; }}\n}}\n");
        lint_file(path, &in_test, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1, "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
        assert_eq!(violations[0].rule, "unsafe-contract");

        // ... and a substantive comment clears test-region unsafety too.
        violations.clear();
        let in_test_ok = format!(
            "{attr}\nmod tests {{\n    // SAFETY: test-local buffer outlives the read and is in-bounds.\n    fn f() {{ let v = unsafe {{ p.read() }}; }}\n}}\n"
        );
        lint_file(path, &in_test_ok, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
    }

    #[test]
    fn partition_contract_demands_registered_kernel_tags() {
        let needles = Needles::new();
        let mut violations = Vec::new();
        let mut todos = 0;
        let text = format!("dgnn_tensor::parallel::{}4, |p| body(p));\n", needles.run_parts);

        // Outside the kernel modules an untagged dispatch fires.
        lint_file(Path::new("crates/core/src/model.rs"), &text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1, "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
        assert_eq!(violations[0].rule, "partition-contract");

        // A tag naming an unregistered kernel still fires.
        violations.clear();
        let bogus = format!("// CONTRACT: not_a_kernel\n{text}");
        lint_file(Path::new("crates/core/src/model.rs"), &bogus, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "partition-contract");
        assert!(violations[0].detail.contains("not_a_kernel"));

        // A registered kernel name justifies the dispatch; par_row_chunks
        // sites are covered by the same rule.
        violations.clear();
        let tagged = format!("// CONTRACT: spmm\n{text}");
        lint_file(Path::new("crates/core/src/model.rs"), &tagged, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
        violations.clear();
        let chunks = format!("// CONTRACT: matmul\ncrate::parallel::{}args);\n", needles.par_chunks);
        lint_file(Path::new("crates/core/src/model.rs"), &chunks, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // The kernel modules that own pool dispatch are exempt.
        violations.clear();
        lint_file(Path::new("crates/tensor/src/dense.rs"), &text, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_dispatch_needs_a_contract_tag_too() {
        let needles = Needles::new();
        let mut violations = Vec::new();
        let mut todos = 0;
        let text = format!(
            "dgnn_tensor::parallel::{}args);\n",
            needles.par_chunks_scratch
        );

        // Untagged scratch dispatch outside the kernel modules fires.
        lint_file(Path::new("crates/core/src/model.rs"), &text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1, "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
        assert_eq!(violations[0].rule, "partition-contract");

        // A registered packed-GEMM contract name justifies it.
        violations.clear();
        let tagged = format!("// CONTRACT: gemm_nn_packed\n{text}");
        lint_file(Path::new("crates/core/src/model.rs"), &tagged, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // dense.rs owns its dispatches.
        violations.clear();
        lint_file(Path::new("crates/tensor/src/dense.rs"), &text, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
    }

    #[test]
    fn simd_rule_exempts_the_gemm_module() {
        let needles = Needles::new();
        let mut violations = Vec::new();
        let mut todos = 0;
        let text = format!("use std::{}::x86_64::_mm256_setzero_ps;\n", &needles.std_arch[5..]);

        // Raw intrinsics outside the GEMM module fire.
        lint_file(Path::new("crates/core/src/model.rs"), &text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1, "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
        assert_eq!(violations[0].rule, "simd-justification");

        // core::arch is covered by the same rule.
        violations.clear();
        let core_text = format!("use core::{}::aarch64::vfmaq_f32;\n", &needles.core_arch[6..]);
        lint_file(Path::new("crates/obs/src/lib.rs"), &core_text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "simd-justification");

        // A SIMD: marker within the window justifies one elsewhere.
        violations.clear();
        let justified = format!("// SIMD: CPU-feature probe only, no data path\n{text}");
        lint_file(Path::new("crates/core/src/model.rs"), &justified, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // The GEMM kernel module owns raw SIMD.
        violations.clear();
        lint_file(Path::new("crates/tensor/src/gemm/avx2.rs"), &text, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
    }

    #[test]
    fn shard_bounds_rule_exempts_the_loader_module() {
        let needles = Needles::new();
        let mut violations = Vec::new();
        let mut todos = 0;
        let text = format!("let n = file.{}&mut buf, off)?;\n", needles.read_at_pos);

        // Positional segment I/O outside the loader fires.
        lint_file(Path::new("crates/serve/src/engine.rs"), &text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1, "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
        assert_eq!(violations[0].rule, "shard-bounds");

        // Raw map syscalls are covered by the same rule.
        violations.clear();
        let map_text = format!("let p = {}(core::ptr::null_mut(), len);\n", needles.map_sys);
        lint_file(Path::new("crates/tensor/src/dense.rs"), &map_text, &needles, &mut violations, &mut todos);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "shard-bounds");

        // A SHARD: marker within the window justifies it.
        violations.clear();
        let justified = format!(
            "// SHARD: gauge plumbing reading procfs, not segment bytes\n{text}"
        );
        lint_file(Path::new("crates/obs/src/procstat.rs"), &justified, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // The shard loader owns raw maps and positional reads.
        violations.clear();
        lint_file(Path::new("crates/serve/src/shard.rs"), &map_text, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // Identifier boundaries hold: `spread` is not `pread`.
        violations.clear();
        let word = format!("let s{} = 1.0;\n", needles.pread_sys);
        lint_file(Path::new("crates/core/src/model.rs"), &word, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
    }

    #[test]
    fn metric_name_rule_demands_canonical_literals() {
        let needles = Needles::new();
        let mut violations = Vec::new();
        let mut todos = 0;
        let path = Path::new("crates/core/src/training.rs");

        // A canonical slash-joined lower_snake name passes.
        let ok = format!("dgnn_obs::{}\"train/epoch_loss\", 1.0);\n", needles.hist_record);
        lint_file(path, &ok, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // Uppercase, dots, and empty segments all fire.
        for bad in ["Train/Loss", "train.loss", "train//loss", "/train", "train/"] {
            violations.clear();
            let text = format!("dgnn_obs::{}\"{bad}\", 1.0);\n", needles.gauge_set);
            lint_file(path, &text, &needles, &mut violations, &mut todos);
            assert_eq!(violations.len(), 1, "`{bad}` should fire, got {:?}",
                violations.iter().map(|v| v.rule).collect::<Vec<_>>());
            assert_eq!(violations[0].rule, "metric-name");
            assert!(violations[0].detail.contains(bad));
        }

        // An OBS: marker within the window justifies a non-canonical name.
        violations.clear();
        let justified = format!(
            "// OBS: legacy dashboard key, renaming would break saved queries\ndgnn_obs::{}\"Legacy.Name\", 1);\n",
            needles.counter_add
        );
        lint_file(path, &justified, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // Dynamic names (format!/variables) are not judged by this rule.
        violations.clear();
        let dynamic = format!("dgnn_obs::{}&format!(\"serve/phase/{{p}}_ms\"), v);\n", needles.gauge_set);
        lint_file(path, &dynamic, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // Test regions keep their one-letter scratch names.
        violations.clear();
        let attr = format!("#[cfg(te{})]", "st");
        let in_test = format!(
            "{attr}\nmod tests {{\n    fn f() {{ {}\"BAD NAME\", 2.0); }}\n}}\n",
            needles.hist_merge
        );
        lint_file(path, &in_test, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());

        // A doc-comment usage example never fires: the stripped code gate
        // sees only the comment-free line.
        violations.clear();
        let doc = format!("// e.g. {}\"Bad.Example\", 1.0);\nlet x = 1;\n", needles.hist_record);
        lint_file(path, &doc, &needles, &mut violations, &mut todos);
        assert!(violations.is_empty(), "got {:?}", violations.iter().map(|v| v.rule).collect::<Vec<_>>());
    }

    #[test]
    fn metric_literal_charset() {
        assert!(valid_metric_literal("serve/latency_ms"));
        assert!(valid_metric_literal("loss"));
        assert!(valid_metric_literal("a/b/c_0"));
        assert!(!valid_metric_literal(""));
        assert!(!valid_metric_literal("A"));
        assert!(!valid_metric_literal("a-b"));
        assert!(!valid_metric_literal("a b"));
        assert!(!valid_metric_literal("a//b"));
    }

    #[test]
    fn expect_message_length() {
        let line = r#"foo.expect("short");"#;
        let pos = line.find("(").unwrap();
        assert_eq!(expect_message_len(line, pos), 5);
        let line2 = r#"foo.expect("a much longer justification");"#;
        let pos2 = line2.find("(").unwrap();
        assert!(expect_message_len(line2, pos2) >= 10);
    }
}
