//! Property-based gradient checks: random shapes and random compositions,
//! verified against central finite differences. Complements the fixed-case
//! checks in `crates/autograd/tests/grad_check.rs`.

use std::rc::Rc;

use dgnn_autograd::{ParamSet, Recorder, Tape, Var};
use dgnn_tensor::Matrix;
use proptest::prelude::*;

const H: f32 = 1e-2;
const TOL: f32 = 6e-2; // f32 + random compositions: generous but meaningful

/// Finite-difference check of `d loss / d input` for a scalar builder.
fn fd_check(input: &Matrix, build: &dyn Fn(&mut Tape, Var) -> Var) -> Result<(), String> {
    let mut params = ParamSet::new();
    let pid = params.add("x", input.clone());
    let mut tape = Tape::new();
    let x = tape.param(&params, pid);
    let loss = build(&mut tape, x);
    params.zero_grads();
    tape.backward_into(loss, &mut params);
    let analytic = params.grad(pid).clone();

    let eval = |m: &Matrix| -> f32 {
        let mut t = Tape::new();
        let x = t.constant(m.clone());
        let l = build(&mut t, x);
        t.value(l)[(0, 0)]
    };
    for r in 0..input.rows() {
        for c in 0..input.cols() {
            let mut plus = input.clone();
            plus[(r, c)] += H;
            let mut minus = input.clone();
            minus[(r, c)] -= H;
            let fd = (eval(&plus) - eval(&minus)) / (2.0 * H);
            let an = analytic[(r, c)];
            let denom = fd.abs().max(an.abs()).max(1.0);
            if (fd - an).abs() / denom > TOL {
                return Err(format!("mismatch at ({r},{c}): analytic {an}, fd {fd}"));
            }
        }
    }
    Ok(())
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |d| Matrix::from_vec(rows, cols, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_activation_chains_have_correct_grads(
        x in matrix(3, 4),
        ops in proptest::collection::vec(0u8..5, 1..4),
    ) {
        let ops = ops.clone();
        let build = move |t: &mut Tape, mut v: Var| -> Var {
            for &op in &ops {
                v = match op {
                    0 => t.sigmoid(v),
                    1 => t.tanh(v),
                    2 => t.leaky_relu(v, 0.2),
                    3 => t.softplus(v),
                    _ => t.scale(v, 0.7),
                };
            }
            t.mean_all(v)
        };
        prop_assert!(fd_check(&x, &build).is_ok());
    }

    #[test]
    fn random_linear_chains_have_correct_grads(
        x in matrix(3, 3),
        w1 in matrix(3, 3),
        w2 in matrix(3, 3),
    ) {
        let build = move |t: &mut Tape, v: Var| -> Var {
            let w1 = t.constant(w1.clone());
            let w2 = t.constant(w2.clone());
            let a = t.matmul(v, w1);
            let a = t.leaky_relu(a, 0.2);
            let b = t.matmul(a, w2);
            let n = t.layer_norm_rows(b, 1e-5);
            let sq = t.mul(n, n);
            t.mean_all(sq)
        };
        prop_assert!(fd_check(&x, &build).is_ok());
    }

    #[test]
    fn gather_concat_composition_has_correct_grads(
        x in matrix(5, 3),
        idx in proptest::collection::vec(0usize..5, 2..7),
    ) {
        let idx = Rc::new(idx);
        let build = move |t: &mut Tape, v: Var| -> Var {
            let g = t.gather(v, Rc::clone(&idx));
            let g2 = t.gather(v, Rc::clone(&idx));
            let cat = t.concat_cols(&[g, g2]);
            let s = t.softmax_rows(cat);
            let sq = t.mul(s, s);
            t.sum_all(sq)
        };
        prop_assert!(fd_check(&x, &build).is_ok());
    }

    #[test]
    fn gradients_are_linear_in_upstream_scale(x in matrix(3, 3), k in 0.5f32..3.0) {
        // d(k·f)/dx = k · df/dx — checks the accumulation plumbing.
        let grad_of = |scale: f32, input: &Matrix| -> Matrix {
            let mut params = ParamSet::new();
            let pid = params.add("x", input.clone());
            let mut t = Tape::new();
            let v = t.param(&params, pid);
            let s = t.sigmoid(v);
            let sum = t.sum_all(s);
            let loss = t.scale(sum, scale);
            params.zero_grads();
            t.backward_into(loss, &mut params);
            params.grad(pid).clone()
        };
        let g1 = grad_of(1.0, &x);
        let gk = grad_of(k, &x);
        for (a, b) in g1.as_slice().iter().zip(gk.as_slice()) {
            prop_assert!((a * k - b).abs() < 1e-4);
        }
    }
}
