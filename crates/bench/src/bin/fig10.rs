//! **E11 — Figure 10**: memory-attention visualization on ciao-s.
//!
//! The paper's qualitative claim: users connected by *social ties* have
//! similar attention over the user–user memory units but dissimilar
//! attention over the user–item units, and vice versa for users connected
//! by *co-interactions*. We measure this as the cosine-similarity gap
//! (connected pairs minus random pairs) per bank × relation combination,
//! and dump the raw attention vectors for plotting.

use dgnn_bench::{datasets, dgnn_config, write_csv, SEED};
use dgnn_core::{Dgnn, MemoryBankKind};
use dgnn_eval::Trainable;
use dgnn_graph::compose;
use dgnn_viz::attention_similarity_gap;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let data = datasets();
    let ciao = data.iter().find(|d| d.name == "ciao-s").expect("ciao-s preset");
    let g = &ciao.graph;

    let mut dgnn = Dgnn::new(dgnn_config());
    dgnn.fit(ciao, SEED);
    let attn_social = dgnn.memory_attention(MemoryBankKind::SocialToUser);
    let attn_inter = dgnn.memory_attention(MemoryBankKind::UserToItem);

    // Connected pairs.
    let social_pairs: Vec<(usize, usize)> =
        g.social_ties().iter().map(|&(a, b)| (a as usize, b as usize)).collect();
    let co = compose(g.ui(), g.iu(), 20);
    let mut co_pairs = Vec::new();
    for u in 0..g.num_users() {
        for &f in co.row_cols(u) {
            if u < f {
                co_pairs.push((u, f));
            }
        }
    }

    // Random pairs baseline.
    let mut rng = StdRng::seed_from_u64(SEED);
    let random_pairs: Vec<(usize, usize)> = (0..2000)
        .map(|_| {
            let a = rng.gen_range(0..g.num_users());
            let b = rng.gen_range(0..g.num_users());
            (a, b.max(1).min(g.num_users() - 1))
        })
        .filter(|&(a, b)| a != b)
        .collect();

    println!("=== Figure 10: memory-attention similarity gaps on ciao-s ===\n");
    println!("gap = mean cosine(connected pairs) − mean cosine(random pairs)\n");
    let s_s = attention_similarity_gap(attn_social, &social_pairs, &random_pairs);
    let s_i = attention_similarity_gap(attn_inter, &social_pairs, &random_pairs);
    let c_s = attention_similarity_gap(attn_social, &co_pairs, &random_pairs);
    let c_i = attention_similarity_gap(attn_inter, &co_pairs, &random_pairs);
    println!("{:<24} {:>16} {:>16}", "pair relation", "user-user bank", "user-item bank");
    println!("{:<24} {:>16.4} {:>16.4}", "social ties", s_s, s_i);
    println!("{:<24} {:>16.4} {:>16.4}", "co-interactions", c_s, c_i);
    println!(
        "\n(expected shape: social ties align the user-user bank more than the \
         user-item bank; co-interactions the reverse)"
    );

    // Dump raw attention vectors for plotting.
    let mut rows = Vec::new();
    for u in 0..g.num_users() {
        let fmt = |m: &dgnn_tensor::Matrix| -> String {
            m.row(u).iter().map(|v| format!("{v:.5}")).collect::<Vec<_>>().join(";")
        };
        rows.push(format!("{u},{},{}", fmt(attn_social), fmt(attn_inter)));
    }
    let path = write_csv("fig10", "user,social_attention,interaction_attention", &rows);
    println!("raw attention vectors: {}", path.display());

    let gaps = vec![
        format!("social,user_user,{s_s:.6}"),
        format!("social,user_item,{s_i:.6}"),
        format!("co_interaction,user_user,{c_s:.6}"),
        format!("co_interaction,user_item,{c_i:.6}"),
    ];
    let path = write_csv("fig10_gaps", "pair_relation,bank,gap", &gaps);
    println!("gaps: {}", path.display());
}
