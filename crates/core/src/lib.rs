//! **DGNN** — the Disentangled Graph Neural Network for social
//! recommendation (ICDE 2023), the paper's primary contribution.
//!
//! The model runs memory-augmented, relation-type-specific message passing
//! over the collaborative heterogeneous graph:
//!
//! 1. **Memory-augmented relation heterogeneity encoder** (Eq. 3): every
//!    directed relation family (user←user social, user←item and user→item
//!    interaction, item←relation and relation←item knowledge, plus one
//!    self-loop bank per node type) owns `|M|` latent memory units. A node
//!    attends over the units (`η_m = LeakyReLU(h·w²_m + b_m)`) and its
//!    outgoing message is the attention-blended transformation
//!    `Σ_m η_m (h·W¹_m)`.
//! 2. **Heterogeneous message aggregation** (Eq. 4–6): each node averages
//!    incoming messages over *all* its relation families jointly
//!    (`1/(|N^S| + |N^Y|)` normalization for users, etc.).
//! 3. **LayerNorm + self-propagation** (Eq. 7) stabilize each layer;
//!    **cross-layer concatenation + LayerNorm** (Eq. 8) forms the final
//!    embeddings in `R^{(L+1)d}`.
//! 4. **Social recalibration** `τ` (Eq. 9–10) adds the socially-averaged
//!    user embedding to the prediction dot product.
//! 5. Training minimizes pairwise **BPR** with weight decay (Eq. 11).
//!
//! ### A note on Eq. 3 vs. Eq. 4/6
//!
//! The paper's Eq. 3 writes the memory attention as a function of the
//! *target* node, while Eq. 4 and Eq. 6 evaluate `η(H[v_j], ·)` at the
//! *source* (neighbor) node. The two are inconsistent as printed; we follow
//! Eq. 4/6 (source-conditioned attention applied to the source embedding),
//! which both matches the aggregation formulas and admits the cheap
//! factoring `Σ_m η_m (H_src W¹_m)` computed once per node —
//! `O(|M|·|V|·d²) + O(|E|·d)` instead of `O(|M|·|E|·d²)` — exactly the
//! efficiency edge over HGT that the paper's Table IV measures.
//!
//! The ablation switches in [`DgnnConfig`] implement every variant of the
//! paper's Figures 4–5 (`-M`, `-τ`, `-LN`, `-S`, `-T`, `-ST`).

#![warn(missing_docs)]

mod config;
mod model;
pub mod pretrain;
pub mod training;

pub use config::DgnnConfig;
pub use model::{Dgnn, MemoryBankKind};
pub use pretrain::{PretrainedEmbeddings, Pretrainer};
