//! Offline-to-online bridge: load a checkpoint once, answer top-K queries.
//!
//! The engine materializes the post-message-passing embeddings at load
//! time — including the social recalibration of Eq. 9–10 when the
//! checkpoint carries the τ matrix (`user_scoring = user + τ·user`,
//! recomputed with the *same* spmm/add kernels training used, so serving
//! scores are bit-identical to the in-memory model's). Queries then reduce
//! to one user×item `matmul_nt` and a heap-based partial top-K select,
//! both row-parallel and deterministic, with optional seen-item filtering.
//!
//! Because every row is a pure function of the loaded embeddings, batched
//! answers are independent of batch composition: coalescing queries in the
//! micro-batcher cannot change any individual result.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use dgnn_tensor::{top_k_rows, Csr, CsrBuilder, Matrix};

use crate::checkpoint::{Checkpoint, CheckpointError};

/// A single top-K request against the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// User index.
    pub user: u32,
    /// Number of items requested.
    pub k: usize,
    /// Drop items the user already interacted with (training edges).
    pub exclude_seen: bool,
}

/// One recommended item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// Item index.
    pub item: u32,
    /// Predicted preference score.
    pub score: f32,
}

/// Why a query could not be answered. Maps onto 4xx responses — never a
/// panic — in the HTTP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The user index is outside the trained embedding table.
    UnknownUser {
        /// Requested user.
        user: u32,
        /// Number of users the model was trained on.
        num_users: usize,
    },
    /// `k` is zero or exceeds the item count.
    BadK {
        /// Requested k.
        k: usize,
        /// Number of items the model was trained on.
        num_items: usize,
    },
    /// A lazily-loaded embedding shard could not be brought resident
    /// (missing/corrupt segment at first touch). Maps to 503 — the query
    /// was valid; the backend is degraded.
    ShardUnavailable {
        /// Index of the failing shard.
        shard: u32,
        /// Typed load error, stringified for the response body.
        detail: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownUser { user, num_users } => {
                write!(f, "unknown user {user} (model has {num_users} users)")
            }
            Self::BadK { k, num_items } => {
                write!(f, "invalid k = {k} (must be in 1..={num_items})")
            }
            Self::ShardUnavailable { shard, detail } => {
                write!(f, "embedding shard {shard} unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Serving state behind the engine: either the classic dense tables or a
/// lazily-loaded sharded store over a segmented checkpoint.
enum Backend {
    Dense(DenseStore),
    Sharded(crate::shard::LazyStore),
}

/// The original fully-resident backing: everything loaded up front.
struct DenseStore {
    /// User scoring embeddings — recalibrated when τ was stored.
    user: Matrix,
    /// Final propagated item embeddings.
    item: Matrix,
    /// CSR-style seen lists: items of user `u` are
    /// `seen_items[seen_indptr[u]..seen_indptr[u+1]]`. Empty when the
    /// checkpoint carried no interaction lists.
    seen_indptr: Vec<u32>,
    seen_items: Vec<u32>,
}

/// In-memory inference state: precomputed scoring embeddings plus the
/// per-user seen-item lists, fully resident (dense checkpoints) or
/// faulted in shard-by-shard (segmented checkpoints).
pub struct Engine {
    meta: BTreeMap<String, String>,
    backend: Backend,
}

/// Resolves the user *scoring* table of a monolithic checkpoint, in
/// preference order: `final/user` + the `tau/{indptr,cols,values}` CSR
/// triple (recalibration re-applied with the same kernels training used),
/// `final/user_scoring` (pre-recalibrated), or bare `final/user`.
pub(crate) fn resolve_user_scoring(ckpt: &Checkpoint) -> Result<Matrix, CheckpointError> {
    if ckpt.tensor("tau/indptr").is_some() {
        let base = ckpt.matrix("final/user")?;
        let tau = load_csr(ckpt, "tau", base.rows(), base.rows())?;
        // Same kernels, same order as Dgnn::finalize: u + τ·u.
        Ok(base.add(&tau.spmm(&base)))
    } else if ckpt.tensor("final/user_scoring").is_some() {
        ckpt.matrix("final/user_scoring")
    } else {
        ckpt.matrix("final/user")
    }
}

impl Engine {
    /// Builds a dense (fully-resident) engine from a parsed checkpoint.
    ///
    /// Expects `final/item` plus a user table as described by
    /// [`resolve_user_scoring`].
    pub fn from_checkpoint(ckpt: &Checkpoint) -> Result<Self, CheckpointError> {
        let item = ckpt.matrix("final/item")?;
        let user = resolve_user_scoring(ckpt)?;
        if user.cols() != item.cols() {
            return Err(CheckpointError::BadShape(format!(
                "user dim {} != item dim {}",
                user.cols(),
                item.cols()
            )));
        }
        let (seen_indptr, seen_items) = match ckpt.tensor("seen/indptr") {
            Some(_) => {
                let indptr = ckpt.u32s("seen/indptr")?.to_vec();
                let items = ckpt.u32s("seen/items")?.to_vec();
                validate_lists(&indptr, &items, user.rows(), item.rows())?;
                (indptr, items)
            }
            None => (Vec::new(), Vec::new()),
        };
        Ok(Self {
            meta: ckpt.meta_entries().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            backend: Backend::Dense(DenseStore { user, item, seen_indptr, seen_items }),
        })
    }

    /// Loads a checkpoint file and builds the engine.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_checkpoint(&Checkpoint::load(path)?)
    }

    /// Opens a segmented checkpoint directory as a lazily-loaded sharded
    /// engine (`DGNN_MMAP` read from the environment). Only the manifest
    /// is read here — startup cost and RSS scale with *touched* shards,
    /// not table size.
    pub fn open_segmented(dir: &Path) -> Result<Self, CheckpointError> {
        Self::open_segmented_with(dir, crate::shard::MapMode::from_env())
    }

    /// [`Engine::open_segmented`] with an explicit [`MapMode`].
    ///
    /// [`MapMode`]: crate::shard::MapMode
    pub fn open_segmented_with(dir: &Path, mode: crate::shard::MapMode) -> Result<Self, CheckpointError> {
        let seg = crate::segment::SegmentedCheckpoint::open_with(dir, mode)?;
        let meta = seg.meta_entries().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        Ok(Self { meta, backend: Backend::Sharded(crate::shard::LazyStore::new(seg)) })
    }

    /// Shard residency snapshot — `None` for dense engines.
    pub fn shard_stats(&self) -> Option<crate::shard::ShardStats> {
        match &self.backend {
            Backend::Dense(_) => None,
            Backend::Sharded(s) => Some(s.stats()),
        }
    }

    /// Metadata entry from the source checkpoint (e.g. `model`).
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(String::as_str)
    }

    /// Number of users the model covers.
    pub fn num_users(&self) -> usize {
        match &self.backend {
            Backend::Dense(d) => d.user.rows(),
            Backend::Sharded(s) => s.num_users(),
        }
    }

    /// Number of items the model covers.
    pub fn num_items(&self) -> usize {
        match &self.backend {
            Backend::Dense(d) => d.item.rows(),
            Backend::Sharded(s) => s.num_items(),
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        match &self.backend {
            Backend::Dense(d) => d.item.cols(),
            Backend::Sharded(s) => s.dim(),
        }
    }

    /// The user's training interactions (empty when unknown or unstored).
    pub fn seen(&self, user: u32) -> &[u32] {
        match &self.backend {
            Backend::Dense(d) => {
                let u = user as usize;
                if u + 1 >= d.seen_indptr.len() {
                    return &[];
                }
                &d.seen_items[d.seen_indptr[u] as usize..d.seen_indptr[u + 1] as usize]
            }
            Backend::Sharded(s) => s.seen(user as usize),
        }
    }

    fn check(&self, q: &Query) -> Result<(), QueryError> {
        if (q.user as usize) >= self.num_users() {
            return Err(QueryError::UnknownUser { user: q.user, num_users: self.num_users() });
        }
        if q.k == 0 || q.k > self.num_items() {
            return Err(QueryError::BadK { k: q.k, num_items: self.num_items() });
        }
        Ok(())
    }

    /// Full score row for one user — the serving-side equivalent of the
    /// model's dot-product scorer over every item.
    pub fn scores_for(&self, user: u32) -> Result<Vec<f32>, QueryError> {
        self.check(&Query { user, k: 1, exclude_seen: false })?;
        match &self.backend {
            Backend::Dense(d) => {
                let rows = d.user.gather_rows(&[user as usize]);
                Ok(rows.matmul_nt(&d.item).as_slice().to_vec())
            }
            Backend::Sharded(s) => {
                let row = s
                    .user_row(user as usize)
                    .map_err(|(shard, detail)| QueryError::ShardUnavailable { shard: shard as u32, detail })?
                    .to_vec();
                let rows = Matrix::from_vec(1, s.dim(), row);
                let mut out = vec![0.0f32; s.num_items()];
                for (si, lo, hi) in s.item_spec().iter_ranges() {
                    let shard = s
                        .item_shard(si)
                        .map_err(|detail| QueryError::ShardUnavailable { shard: si as u32, detail })?;
                    out[lo..hi].copy_from_slice(rows.matmul_nt(shard).as_slice());
                }
                Ok(out)
            }
        }
    }

    /// Answers one query. Equivalent to a single-element
    /// [`Engine::recommend_batch`].
    pub fn recommend(&self, q: Query) -> Result<Vec<ScoredItem>, QueryError> {
        match self.recommend_batch(&[q]).pop() {
            Some(r) => r,
            // SERVE: unreachable by construction — recommend_batch returns
            // exactly one result per input query; fail soft regardless.
            None => Err(QueryError::BadK { k: q.k, num_items: self.num_items() }),
        }
    }

    /// Answers a batch of queries with ONE gathered user×item `matmul_nt`
    /// and ONE top-K select at the batch's maximum `k` (per-query results
    /// are truncated prefixes — sound because the selection order is
    /// total). Each query's result is independent of its batch-mates.
    pub fn recommend_batch(&self, queries: &[Query]) -> Vec<Result<Vec<ScoredItem>, QueryError>> {
        let mut out: Vec<Result<Vec<ScoredItem>, QueryError>> = Vec::with_capacity(queries.len());
        let mut valid: Vec<usize> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            match self.check(q) {
                Ok(()) => {
                    valid.push(i);
                    out.push(Ok(Vec::new()));
                }
                Err(e) => out.push(Err(e)),
            }
        }
        if valid.is_empty() {
            return out;
        }
        let users: Vec<usize> = valid.iter().map(|&i| queries[i].user as usize).collect();
        let telemetry = crate::trace::telemetry();
        let t0 = dgnn_obs::now_ns();
        let mut scores = match &self.backend {
            Backend::Dense(d) => d.user.gather_matmul_nt(&users, &d.item),
            Backend::Sharded(s) => match score_sharded(s, &users) {
                Ok((scores, row_errs)) => {
                    for (row, &i) in valid.iter().enumerate() {
                        if let Some(e) = row_errs[row].clone() {
                            out[i] = Err(e);
                        }
                    }
                    scores
                }
                Err(e) => {
                    // An item shard is unloadable: no query in the batch
                    // can be scored over the full catalog.
                    for &i in &valid {
                        out[i] = Err(e.clone());
                    }
                    return out;
                }
            },
        };
        for (row, &i) in valid.iter().enumerate() {
            if queries[i].exclude_seen && out[i].is_ok() {
                let r = scores.row_mut(row);
                for &it in self.seen(queries[i].user) {
                    if let Some(s) = r.get_mut(it as usize) {
                        *s = f32::NEG_INFINITY;
                    }
                }
            }
        }
        let t1 = dgnn_obs::now_ns();
        let k_max = valid.iter().map(|&i| queries[i].k).max().unwrap_or(1);
        let top = top_k_rows(&scores, k_max);
        telemetry.gather_matmul_ms.record(t1.saturating_sub(t0) as f64 / 1e6);
        telemetry.topk_ms.record(dgnn_obs::now_ns().saturating_sub(t1) as f64 / 1e6);
        for (row, &i) in valid.iter().enumerate() {
            if out[i].is_err() {
                continue;
            }
            let items: Vec<ScoredItem> = top
                .row(row)
                .take(queries[i].k)
                .filter(|&(_, s)| s > f32::NEG_INFINITY)
                .map(|(item, score)| ScoredItem { item, score })
                .collect();
            out[i] = Ok(items);
        }
        out
    }
}

/// Scores a gathered user batch against every item shard, loading shards
/// on demand. Returns the full `batch × num_items` score matrix plus
/// per-row user-shard failures (those rows score as zeros and their
/// queries answer 503 individually). An unloadable *item* shard fails the
/// whole batch — every query needs the full catalog.
///
/// Bit-identity: rows are gathered byte-for-byte from their shards and
/// each column block is produced by the same fused `gather_matmul_nt`
/// kernel the dense path uses. Every score element is a fold over the
/// same (user row, item row) pair in the same lane order, so the sharded
/// matrix equals the dense engine's `gather_matmul_nt` element-for-element
/// at every thread count and GEMM backend.
fn score_sharded(
    store: &crate::shard::LazyStore,
    users: &[usize],
) -> Result<(Matrix, Vec<Option<QueryError>>), QueryError> {
    let n = users.len();
    let mut batch = Matrix::zeros(n, store.dim());
    let mut row_errs: Vec<Option<QueryError>> = vec![None; n];
    for (row, &u) in users.iter().enumerate() {
        match store.user_row(u) {
            Ok(r) => batch.set_row(row, r),
            Err((shard, detail)) => {
                row_errs[row] = Some(QueryError::ShardUnavailable { shard: shard as u32, detail });
            }
        }
    }
    let idx: Vec<usize> = (0..n).collect();
    let mut scores = Matrix::zeros(n, store.num_items());
    for (si, lo, hi) in store.item_spec().iter_ranges() {
        let shard = store
            .item_shard(si)
            .map_err(|detail| QueryError::ShardUnavailable { shard: si as u32, detail })?;
        let part = batch.gather_matmul_nt(&idx, shard);
        for row in 0..n {
            scores.row_mut(row)[lo..hi].copy_from_slice(part.row(row));
        }
    }
    Ok((scores, row_errs))
}

/// Rebuilds a CSR stored as the `{prefix}/{indptr,cols,values}` triple.
/// `CsrBuilder::build` sorts and merges — the stored arrays are already
/// sorted and merged (they came from a built CSR), so the reconstruction
/// is exact.
fn load_csr(ckpt: &Checkpoint, prefix: &str, rows: usize, cols: usize) -> Result<Csr, CheckpointError> {
    let indptr = ckpt.u32s(&format!("{prefix}/indptr"))?;
    let col_idx = ckpt.u32s(&format!("{prefix}/cols"))?;
    let values = ckpt.f32s(&format!("{prefix}/values"))?;
    if indptr.len() != rows + 1 || col_idx.len() != values.len() {
        return Err(CheckpointError::BadShape(format!(
            "{prefix}: indptr len {} (want {}), cols len {}, values len {}",
            indptr.len(),
            rows + 1,
            col_idx.len(),
            values.len()
        )));
    }
    let nnz = *indptr.last().unwrap_or(&0) as usize;
    if nnz != col_idx.len() {
        return Err(CheckpointError::BadShape(format!(
            "{prefix}: indptr terminates at {nnz} but {} columns stored",
            col_idx.len()
        )));
    }
    let mut b = CsrBuilder::new(rows, cols);
    for r in 0..rows {
        let (lo, hi) = (indptr[r] as usize, indptr[r + 1] as usize);
        if lo > hi || hi > col_idx.len() {
            return Err(CheckpointError::BadShape(format!("{prefix}: indptr not monotone at row {r}")));
        }
        for j in lo..hi {
            let c = col_idx[j] as usize;
            if c >= cols {
                return Err(CheckpointError::BadShape(format!(
                    "{prefix}: column {c} out of bounds ({cols}) at row {r}"
                )));
            }
            b.push(r, c, values[j]);
        }
    }
    Ok(b.build())
}

pub(crate) fn validate_lists(indptr: &[u32], items: &[u32], users: usize, num_items: usize) -> Result<(), CheckpointError> {
    if indptr.len() != users + 1 {
        return Err(CheckpointError::BadShape(format!(
            "seen/indptr len {} (want {})",
            indptr.len(),
            users + 1
        )));
    }
    if indptr.windows(2).any(|w| w[0] > w[1]) || *indptr.last().unwrap_or(&0) as usize != items.len() {
        return Err(CheckpointError::BadShape("seen/indptr not a monotone prefix-sum of seen/items".into()));
    }
    if items.iter().any(|&it| it as usize >= num_items) {
        return Err(CheckpointError::BadShape("seen/items contains an out-of-range item".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny engine: 3 users × 4 items, identity-ish embeddings with a seen
    /// list for user 0.
    fn tiny() -> Engine {
        let mut c = Checkpoint::new();
        c.set_meta("model", "TEST");
        c.push_matrix(
            "final/user_scoring",
            &Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]),
        );
        c.push_matrix(
            "final/item",
            &Matrix::from_vec(4, 2, vec![3.0, 0.0, 2.0, 0.0, 1.0, 0.0, 0.0, 5.0]),
        );
        c.push_u32("seen/indptr", vec![0, 1, 1, 1]);
        c.push_u32("seen/items", vec![0]);
        Engine::from_checkpoint(&c).unwrap()
    }

    #[test]
    fn recommends_by_descending_score() {
        let e = tiny();
        let r = e.recommend(Query { user: 0, k: 3, exclude_seen: false }).unwrap();
        assert_eq!(
            r,
            vec![
                ScoredItem { item: 0, score: 3.0 },
                ScoredItem { item: 1, score: 2.0 },
                ScoredItem { item: 2, score: 1.0 }
            ]
        );
    }

    #[test]
    fn seen_filtering_drops_training_items() {
        let e = tiny();
        let r = e.recommend(Query { user: 0, k: 2, exclude_seen: true }).unwrap();
        assert_eq!(r[0].item, 1, "item 0 is seen and must be filtered");
        assert_eq!(r[1].item, 2);
    }

    #[test]
    fn filtered_rows_never_leak_neg_infinity() {
        let e = tiny();
        // k = all items; the seen item vanishes rather than surfacing -inf.
        let r = e.recommend(Query { user: 0, k: 4, exclude_seen: true }).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|s| s.item != 0 && s.score.is_finite()));
    }

    #[test]
    fn batch_results_match_singles() {
        let e = tiny();
        let qs = [
            Query { user: 2, k: 4, exclude_seen: false },
            Query { user: 99, k: 2, exclude_seen: false },
            Query { user: 1, k: 1, exclude_seen: false },
        ];
        let batch = e.recommend_batch(&qs);
        assert_eq!(batch[0], e.recommend(qs[0]));
        assert!(matches!(batch[1], Err(QueryError::UnknownUser { user: 99, .. })));
        assert_eq!(batch[2], e.recommend(qs[2]));
    }

    #[test]
    fn bad_k_is_rejected() {
        let e = tiny();
        assert!(matches!(
            e.recommend(Query { user: 0, k: 0, exclude_seen: false }),
            Err(QueryError::BadK { .. })
        ));
        assert!(matches!(
            e.recommend(Query { user: 0, k: 5, exclude_seen: false }),
            Err(QueryError::BadK { .. })
        ));
    }

    #[test]
    fn tau_recalibration_applied_at_load() {
        let mut c = Checkpoint::new();
        // 2 users, 1 item, dim 1. τ row 0 = {1: 0.5} ⇒ u0' = 1 + 0.5·2 = 2.
        c.push_matrix("final/user", &Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        c.push_matrix("final/item", &Matrix::from_vec(1, 1, vec![1.0]));
        c.push_u32("tau/indptr", vec![0, 1, 1]);
        c.push_u32("tau/cols", vec![1]);
        c.push_f32("tau/values", 1, 1, vec![0.5]);
        let e = Engine::from_checkpoint(&c).unwrap();
        assert_eq!(e.scores_for(0).unwrap(), vec![2.0]);
        assert_eq!(e.scores_for(1).unwrap(), vec![2.0]);
    }

    #[test]
    fn malformed_seen_lists_err_not_panic() {
        let mut c = Checkpoint::new();
        c.push_matrix("final/user_scoring", &Matrix::from_vec(1, 1, vec![1.0]));
        c.push_matrix("final/item", &Matrix::from_vec(1, 1, vec![1.0]));
        c.push_u32("seen/indptr", vec![0, 5]);
        c.push_u32("seen/items", vec![0]);
        assert!(matches!(Engine::from_checkpoint(&c), Err(CheckpointError::BadShape(_))));
    }
}
