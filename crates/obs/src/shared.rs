//! Process-shared metrics: atomic counters, gauges, and streaming
//! histograms any thread can record into.
//!
//! The thread-local registry ([`crate::counter_add`] & friends) fits the
//! single-threaded training executor, but a serving process has a worker
//! pool, a batcher, and an acceptor all producing telemetry that one
//! scrape endpoint must see — per-thread registries would force a
//! collect-and-merge dance on every scrape and lose samples from dead
//! threads. This module is the process view: instruments are registered
//! once by name (the only allocation), handed out as `&'static` handles,
//! and recorded into with plain atomics — the record path takes no lock
//! and never allocates (proven by the counting-allocator test in
//! `tests/tests/obs_disabled_alloc.rs`).
//!
//! # Enable discipline
//!
//! Live telemetry defaults **on** (a server wants metrics without every
//! thread opting in) and can be switched off process-wide with
//! [`set_live_telemetry`] — the disabled record path is a single relaxed
//! atomic load, which is what the serving obs-overhead gate compares
//! against. Registration and snapshotting work regardless of the flag.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::metrics::{HistStat, Snapshot};
use crate::streamhist::{bucket_index, StreamHist, BUCKETS};

static LIVE: AtomicBool = AtomicBool::new(true);

/// Turns process-shared recording on or off (default: on). Unlike the
/// thread-local [`crate::enable`], this is one switch for every thread.
pub fn set_live_telemetry(enabled: bool) {
    LIVE.store(enabled, Ordering::Relaxed);
}

/// True when process-shared recording is on.
pub fn live_telemetry_enabled() -> bool {
    LIVE.load(Ordering::Relaxed)
}

/// Monotone process-shared counter.
#[derive(Debug)]
pub struct SharedCounter {
    v: AtomicU64,
}

impl SharedCounter {
    /// Adds `delta` (no-op while live telemetry is off).
    pub fn add(&self, delta: u64) {
        if live_telemetry_enabled() {
            self.v.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Last-write-wins process-shared gauge (an `f64` carried as bits).
#[derive(Debug)]
pub struct SharedGauge {
    bits: AtomicU64,
}

impl SharedGauge {
    /// Sets the gauge (no-op while live telemetry is off).
    pub fn set(&self, value: f64) {
        if live_telemetry_enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Process-shared [`StreamHist`]: same bucket layout, atomic counts.
pub struct SharedHist {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl std::fmt::Debug for SharedHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedHist").field("count", &self.count.load(Ordering::Relaxed)).finish()
    }
}

/// Atomic fetch-min/max/add over `f64` bit patterns: CAS loops that
/// tolerate racing writers. Relaxed ordering is enough — metrics carry no
/// synchronization duty.
fn atomic_f64_update(slot: &AtomicU64, v: f64, fold: impl Fn(f64, f64) -> f64) {
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        let folded = fold(f64::from_bits(cur), v);
        if folded.to_bits() == cur {
            return;
        }
        match slot.compare_exchange_weak(cur, folded.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl SharedHist {
    fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one value (no-op while live telemetry is off). Lock-free
    /// and allocation-free.
    pub fn record(&self, v: f64) {
        if !live_telemetry_enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, v, |acc, x| acc + x);
        atomic_f64_update(&self.min_bits, v, f64::min);
        atomic_f64_update(&self.max_bits, v, f64::max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time plain copy for quantile math and exposition. Not a
    /// cross-field atomic snapshot — concurrent recorders may be mid-update
    /// — but each field is itself consistent, which is all a scrape needs.
    pub fn snapshot(&self) -> StreamHist {
        let count = self.count.load(Ordering::Relaxed);
        let stat = if count == 0 {
            HistStat { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
        } else {
            HistStat {
                count,
                sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
                min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
                max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            }
        };
        let mut h = StreamHist::new();
        h.set_raw(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)), stat);
        h
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, &'static SharedCounter>,
    gauges: BTreeMap<String, &'static SharedGauge>,
    hists: BTreeMap<String, &'static SharedHist>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    // A poisoned registry only means some thread panicked mid-lookup; the
    // maps are still structurally valid, so keep serving telemetry.
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// The named shared counter, registering it on first use. The handle is
/// `'static` (instruments are one leaked allocation per distinct name for
/// the process lifetime — a bounded set by construction), so callers cache
/// it and the record path never touches the registry lock.
pub fn counter(name: &str) -> &'static SharedCounter {
    let mut reg = lock();
    if let Some(c) = reg.counters.get(name) {
        return c;
    }
    let c: &'static SharedCounter = Box::leak(Box::new(SharedCounter { v: AtomicU64::new(0) }));
    reg.counters.insert(name.to_string(), c);
    c
}

/// The named shared gauge, registering it on first use (see [`counter`]).
pub fn gauge(name: &str) -> &'static SharedGauge {
    let mut reg = lock();
    if let Some(g) = reg.gauges.get(name) {
        return g;
    }
    let g: &'static SharedGauge =
        Box::leak(Box::new(SharedGauge { bits: AtomicU64::new(0.0f64.to_bits()) }));
    reg.gauges.insert(name.to_string(), g);
    g
}

/// The named shared streaming histogram, registering it on first use (see
/// [`counter`]).
pub fn hist(name: &str) -> &'static SharedHist {
    let mut reg = lock();
    if let Some(h) = reg.hists.get(name) {
        return h;
    }
    let h: &'static SharedHist = Box::leak(Box::new(SharedHist::new()));
    reg.hists.insert(name.to_string(), h);
    h
}

/// Point-in-time [`Snapshot`] of every registered shared instrument.
/// Histograms fold to their exact [`HistStat`] aggregate (the pinned JSON
/// schema); empty ones are skipped. Serializes through the same
/// [`crate::export::snapshot_to_json`] path as the thread-local registry.
pub fn snapshot() -> Snapshot {
    let reg = lock();
    let mut s = Snapshot::default();
    for (name, c) in &reg.counters {
        s.counters.insert(name.clone(), c.get());
    }
    for (name, g) in &reg.gauges {
        s.gauges.insert(name.clone(), g.get());
    }
    for (name, h) in &reg.hists {
        let snap = h.snapshot();
        if snap.count() > 0 {
            s.histograms.insert(name.clone(), snap.stat());
        }
    }
    s
}

/// Plain copies of every non-empty registered histogram, keyed by name —
/// the input for quantile reports and Prometheus bucket exposition.
pub fn hist_snapshots() -> BTreeMap<String, StreamHist> {
    let reg = lock();
    reg.hists
        .iter()
        .filter_map(|(name, h)| {
            let snap = h.snapshot();
            (snap.count() > 0).then(|| (name.clone(), snap))
        })
        .collect()
}

/// Zeroes every registered instrument (registrations stay, handles remain
/// valid). Benchmarks and tests use this to scope measurements.
pub fn reset() {
    let reg = lock();
    for c in reg.counters.values() {
        c.v.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.values() {
        g.bits.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
    for h in reg.hists.values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test flips the process-wide LIVE flag; every test in this
    /// module serializes on this lock so none observes a
    /// surprise-disabled window while recording.
    static TOGGLE: Mutex<()> = Mutex::new(());

    #[test]
    fn handles_are_stable_and_accumulate() {
        let _guard = TOGGLE.lock().unwrap_or_else(|p| p.into_inner());
        let c = counter("test_shared/counter_a");
        let c2 = counter("test_shared/counter_a");
        assert!(std::ptr::eq(c, c2), "same name must yield the same handle");
        let before = c.get();
        c.add(2);
        c2.add(3);
        assert_eq!(c.get(), before + 5);

        let g = gauge("test_shared/gauge_a");
        g.set(1.5);
        assert_eq!(g.get(), 1.5);

        let h = hist("test_shared/hist_a");
        h.record(2.0);
        h.record(8.0);
        let snap = h.snapshot();
        assert!(snap.count() >= 2);
        assert!(snap.stat().min <= 2.0 && snap.stat().max >= 8.0);
    }

    #[test]
    fn snapshot_carries_all_sections() {
        let _guard = TOGGLE.lock().unwrap_or_else(|p| p.into_inner());
        counter("test_shared/snap_c").add(1);
        gauge("test_shared/snap_g").set(4.25);
        hist("test_shared/snap_h").record(3.0);
        let s = snapshot();
        assert!(s.counters["test_shared/snap_c"] >= 1);
        assert_eq!(s.gauges["test_shared/snap_g"], 4.25);
        assert!(s.histograms["test_shared/snap_h"].count >= 1);
        assert!(hist_snapshots().contains_key("test_shared/snap_h"));
    }

    #[test]
    fn disabled_telemetry_drops_records() {
        let _guard = TOGGLE.lock().unwrap_or_else(|p| p.into_inner());
        let h = hist("test_shared/toggle_h");
        let c = counter("test_shared/toggle_c");
        set_live_telemetry(false);
        let (hc, cc) = (h.count(), c.get());
        h.record(1.0);
        c.add(1);
        assert_eq!(h.count(), hc, "disabled hist must not record");
        assert_eq!(c.get(), cc, "disabled counter must not record");
        set_live_telemetry(true);
        h.record(1.0);
        c.add(1);
        assert_eq!(h.count(), hc + 1);
        assert_eq!(c.get(), cc + 1);
    }

    #[test]
    fn concurrent_recorders_lose_no_counts() {
        let _guard = TOGGLE.lock().unwrap_or_else(|p| p.into_inner());
        let h = hist("test_shared/race_h");
        let before = h.count();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                // PAR: cross-thread registry probe, not kernel work.
                std::thread::spawn(move || {
                    let h = hist("test_shared/race_h");
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 + 0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread must not panic");
        }
        assert_eq!(h.count() - before, 4000);
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_buckets().last().map(|&(_, c)| c), Some(snap.count()));
    }
}
