//! Reachability auditor over a traced compute graph.
//!
//! [`ShapeTracer`] finds *local* problems (shapes, indices, stability) while
//! the graph is being built; [`audit`] adds the *global* checks that need
//! the finished graph: parameters that never influence the loss, and
//! recorded compute that `backward` can never see.

use std::collections::HashSet;

use dgnn_autograd::{ParamSet, Var};

use crate::tracer::{Diagnostic, DiagnosticKind, ShapeTracer};

/// All findings for one traced graph: trace-time diagnostics from the
/// [`ShapeTracer`] plus the reachability findings computed here.
#[derive(Debug, Default)]
pub struct AuditReport {
    diags: Vec<Diagnostic>,
}

impl AuditReport {
    /// Every finding, trace-time and reachability, in discovery order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// True when the graph passed every check. Advisory findings (missed
    /// optimizations such as common subexpressions or foldable subgraphs)
    /// do not count against cleanliness.
    pub fn is_clean(&self) -> bool {
        self.diags.iter().all(|d| d.kind.is_advisory())
    }

    /// Number of findings of one kind.
    pub fn count(&self, kind: DiagnosticKind) -> usize {
        self.diags.iter().filter(|d| d.kind == kind).count()
    }

    /// True if at least one finding of `kind` is present.
    pub fn has(&self, kind: DiagnosticKind) -> bool {
        self.diags.iter().any(|d| d.kind == kind)
    }

    /// Machine-readable report: `{"clean":…,"findings":[{kind,node,op,message}…]}`.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .diags
            .iter()
            .map(|d| {
                format!(
                    "{{\"kind\":{},\"node\":{},\"op\":{},\"message\":{}}}",
                    crate::json::string(d.kind.as_str()),
                    d.node.map_or_else(|| "null".to_string(), |n| n.to_string()),
                    d.op.map_or_else(|| "null".to_string(), crate::json::string),
                    crate::json::string(&d.message),
                )
            })
            .collect();
        format!("{{\"clean\":{},\"findings\":[{}]}}", self.is_clean(), findings.join(","))
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diags.is_empty() {
            return writeln!(f, "audit: clean");
        }
        writeln!(f, "audit: {} finding(s)", self.diags.len())?;
        for d in &self.diags {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Nodes reachable *backwards* from `roots` over input edges.
fn ancestors(tracer: &ShapeTracer, roots: impl IntoIterator<Item = usize>) -> Vec<bool> {
    let nodes = tracer.nodes();
    let mut live = vec![false; nodes.len()];
    let mut stack: Vec<usize> = roots.into_iter().filter(|&r| r < nodes.len()).collect();
    while let Some(n) = stack.pop() {
        if live[n] {
            continue;
        }
        live[n] = true;
        stack.extend(nodes[n].inputs.iter().copied());
    }
    live
}

/// Audits a finished trace.
///
/// * `loss` — the scalar the trainer differentiates.
/// * `outputs` — additional legitimate roots (e.g. embeddings cached for
///   inference, attention weights dumped for visualization). Nodes feeding
///   only these are *not* dead, but parameters must still reach `loss`.
/// * `params` — the parameter set registered while building the graph.
///
/// The returned report also carries the tracer's own trace-time
/// diagnostics, so one `is_clean()` check covers everything.
pub fn audit(
    tracer: &ShapeTracer,
    loss: Var,
    outputs: &[Var],
    params: &ParamSet,
) -> AuditReport {
    let mut report = AuditReport { diags: tracer.diagnostics().to_vec() };
    let nodes = tracer.nodes();

    let grad_live = ancestors(tracer, [loss.index()]);
    let all_roots =
        std::iter::once(loss.index()).chain(outputs.iter().map(|v| v.index()));
    let live = ancestors(tracer, all_roots);

    // --- parameters ------------------------------------------------------
    // A parameter is *used* iff some traced leaf for it is an ancestor of
    // the loss: only then does backward produce a gradient for it.
    let mut traced = HashSet::new();
    let mut used = HashSet::new();
    for (i, node) in nodes.iter().enumerate() {
        if let Some(id) = node.param {
            traced.insert(id);
            if grad_live[i] {
                used.insert(id);
            }
        }
    }
    for id in params.ids() {
        if used.contains(&id) {
            continue;
        }
        let name = params.name(id);
        let message = if traced.contains(&id) {
            format!("param `{name}` is traced but has no path to the loss: it never receives a gradient")
        } else {
            format!("param `{name}` is registered but never appears in the compute graph")
        };
        report.diags.push(Diagnostic {
            kind: DiagnosticKind::UnusedParam,
            node: None,
            op: None,
            message,
        });
    }

    // --- dead compute ----------------------------------------------------
    // Report each dead *sink* (a node nobody consumes) together with the
    // size of the dead cone above it; interior dead nodes would be noise.
    // Dead param leaves are already covered by UnusedParam.
    let mut consumed = vec![false; nodes.len()];
    for node in nodes {
        for &i in &node.inputs {
            consumed[i] = true;
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        if live[i] || consumed[i] || node.param.is_some() {
            continue;
        }
        let cone = ancestors(tracer, [i]);
        let dead_cone = cone.iter().zip(&live).filter(|(c, l)| **c && !**l).count();
        report.diags.push(Diagnostic {
            kind: DiagnosticKind::DeadSubgraph,
            node: Some(i),
            op: Some(node.op),
            message: format!(
                "dead subgraph of {dead_cone} node(s) ending at `{}` {:?}: \
                 reachable from neither the loss nor any declared output",
                node.op, node.shape
            ),
        });
    }

    // --- advisories: missed optimizations --------------------------------
    // Reuse the optimizer's own analyses (the independence requirement is
    // between the optimizer and its *checker*; the audit may share freely)
    // so the advisories and the rewrite plan can never disagree about what
    // is foldable or congruent.
    let invariant = crate::optimizer::mark_invariant(nodes);
    // Report only fold *sinks* — invariant interiors no invariant interior
    // consumes — and size the whole region behind each; interior nodes
    // would be noise.
    let mut fed_into_invariant = vec![false; nodes.len()];
    for (c, node) in nodes.iter().enumerate() {
        if invariant[c] && node.op != "constant" {
            for &i in &node.inputs {
                fed_into_invariant[i] = true;
            }
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        if !invariant[i] || node.op == "constant" || !live[i] || fed_into_invariant[i] {
            continue;
        }
        let cone = ancestors(tracer, [i]);
        let size = cone.iter().zip(&invariant).filter(|(c, v)| **c && **v).count();
        report.diags.push(Diagnostic {
            kind: DiagnosticKind::FoldableSubgraph,
            node: Some(i),
            op: Some(node.op),
            message: format!(
                "training-invariant subgraph of {size} node(s) ending at `{}` {:?} is \
                 recomputed every step; the graph optimizer would fold it \
                 (enable with_graph_opt)",
                node.op, node.shape
            ),
        });
    }
    let vn = crate::optimizer::value_numbers(nodes, &vec![false; nodes.len()]);
    for (i, node) in nodes.iter().enumerate() {
        let rep = vn[i] as usize;
        if rep != i && live[i] {
            report.diags.push(Diagnostic {
                kind: DiagnosticKind::CommonSubexpression,
                node: Some(i),
                op: Some(node.op),
                message: format!(
                    "node {i} (`{}` {:?}) recomputes the value of node {rep}; the graph \
                     optimizer would serve it as a copy (enable with_graph_opt)",
                    node.op, node.shape
                ),
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use dgnn_autograd::{ParamSet, Recorder};
    use dgnn_tensor::{Init, Matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn to_json_reports_findings_structurally() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let x = params.add("x", Init::Uniform(0.5).build(3, 3, &mut rng));
        let unused = params.add("unused", Matrix::zeros(2, 2));
        let _ = unused;

        let mut tr = ShapeTracer::new();
        let x = tr.param(&params, x);
        let e = tr.exp(x); // unbounded input → unstable_domain
        let loss = tr.mean_all(e);

        let report = audit(&tr, loss, &[], &params);
        let json = report.to_json();
        assert!(json.starts_with("{\"clean\":false,"), "json: {json}");
        assert!(json.contains("\"kind\":\"unstable_domain\""), "json: {json}");
        assert!(json.contains("\"kind\":\"unused_param\""), "json: {json}");
        assert!(json.contains("\"op\":\"exp\""), "json: {json}");
    }

    #[test]
    fn clean_graph_serializes_clean() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let x = params.add("x", Init::Uniform(0.5).build(3, 3, &mut rng));
        let mut tr = ShapeTracer::new();
        let x = tr.param(&params, x);
        let s = tr.sigmoid(x);
        let loss = tr.mean_all(s);
        let report = audit(&tr, loss, &[], &params);
        assert_eq!(report.to_json(), "{\"clean\":true,\"findings\":[]}");
    }
}
