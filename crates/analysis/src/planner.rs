//! Static liveness analysis and memory planning over a traced graph.
//!
//! A second abstract interpretation pass after shape checking: given the
//! trace of one training step, compute when each node's forward value is
//! read for the *last* time — in the forward sweep **and** in the reverse
//! sweep, accounting for which inputs each op's gradient actually reads
//! ([`dgnn_autograd::meta::grad_reads`]) — and emit a [`MemoryPlan`] that
//! tells the tape exactly where every intermediate can be retired.
//!
//! # The timeline
//!
//! A trace of `N` nodes defines `2N` global time points:
//!
//! * forward time `i` (`0 ≤ i < N`): node `i`'s value is computed; it reads
//!   its inputs here,
//! * backward event of node `j` at time `2N−1−j`: the reverse sweep
//!   processes node `j`; it reads the inputs named by `grad_reads(op_j)`,
//!   its own output when the rule differentiates through it
//!   (e.g. `sigmoid`), and nothing else. Events only occur for
//!   `j ≤ loss.index()` — the reverse sweep starts at the loss — and only
//!   nodes *inside the loss cone* read values there: a node with no path
//!   to the loss never receives a gradient, so dead subgraphs and
//!   eval-only outputs never hold buffers into the reverse sweep.
//!
//! A node's *last use* is the latest time any of those reads touches its
//! value; past it the value is provably dead and its buffer can be recycled.
//! The loss and every declared output are *pinned* ([`FreePoint::Never`]):
//! callers read them after the step, outside the timeline.
//!
//! The plan also assigns each node a shape-bucketed *reuse class*
//! ([`NodePlan::buffer`]): a greedy interval allocation in which two nodes
//! share a class only when their live intervals are disjoint and their
//! element counts are equal — exactly the reuse the runtime
//! [`dgnn_tensor::BufferPool`] performs dynamically. The class assignment is
//! what the independent checker ([`crate::check_plan`]) proves overlap-free.

use std::collections::BTreeMap;

use dgnn_autograd::meta::{grad_reads, InputReads};
use dgnn_autograd::{RewriteAction, RewritePlan, TapePlan, Var};

use crate::tracer::ShapeTracer;

/// Where the executor retires one node's forward value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreePoint {
    /// Immediately after the node with this index is pushed in forward.
    Forward(usize),
    /// Immediately after the reverse sweep processes the node with this
    /// index (which is always `≤ loss.index()`, so the event fires).
    Backward(usize),
    /// Pinned: the loss or a declared output, read after the step ends.
    Never,
}

/// Per-node entry of a [`MemoryPlan`].
#[derive(Debug, Clone)]
pub struct NodePlan {
    /// Static op name (provenance for reports).
    pub op: &'static str,
    /// Forward value shape.
    pub shape: (usize, usize),
    /// Bytes of the forward value's backing storage.
    pub bytes: usize,
    /// Latest global time (`0..2N`) at which the value is read; the node's
    /// own birth time when nothing ever reads it.
    pub last_use: usize,
    /// Where the value is retired.
    pub free: FreePoint,
    /// Shape-bucketed reuse class: nodes with the same `buffer` share one
    /// backing store (their live intervals are disjoint by construction).
    pub buffer: usize,
}

/// The full static memory plan for one traced training step.
///
/// Produced by [`plan`], proven safe by [`crate::check_plan`], lowered to
/// the executable [`TapePlan`] with [`MemoryPlan::tape_plan`].
#[derive(Debug)]
pub struct MemoryPlan {
    nodes: Vec<NodePlan>,
    num_buffers: usize,
    peak_live_bytes: usize,
    total_value_bytes: usize,
}

impl MemoryPlan {
    /// Per-node plan entries, indexed by node.
    pub fn nodes(&self) -> &[NodePlan] {
        &self.nodes
    }

    /// Number of traced nodes the plan covers.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct reuse classes — the backing stores a pooled
    /// execution of this step actually needs.
    pub fn num_buffers(&self) -> usize {
        self.num_buffers
    }

    /// Static peak of simultaneously-live value bytes across the step.
    pub fn peak_live_bytes(&self) -> usize {
        self.peak_live_bytes
    }

    /// Bytes an *unplanned* execution holds at its high-water mark: every
    /// node's value at once (nothing is retired until the tape drops).
    pub fn total_value_bytes(&self) -> usize {
        self.total_value_bytes
    }

    /// Number of frees the plan schedules (forward + backward).
    pub fn num_frees(&self) -> usize {
        self.nodes.iter().filter(|n| n.free != FreePoint::Never).count()
    }

    /// Lowers the plan to the executable form the tape consumes.
    pub fn tape_plan(&self) -> TapePlan {
        let n = self.nodes.len();
        let mut forward_free = vec![Vec::new(); n];
        let mut backward_free = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            match node.free {
                FreePoint::Forward(t) => forward_free[t].push(i as u32),
                FreePoint::Backward(j) => backward_free[j].push(i as u32),
                FreePoint::Never => {}
            }
        }
        TapePlan::new(forward_free, backward_free)
    }

    /// Machine-readable summary (stable keys; consumed by the bench
    /// harness's `analysis-baseline.json` regression gate).
    pub fn to_json(&self) -> String {
        let (mut fwd, mut bwd) = (0usize, 0usize);
        for node in &self.nodes {
            match node.free {
                FreePoint::Forward(_) => fwd += 1,
                FreePoint::Backward(_) => bwd += 1,
                FreePoint::Never => {}
            }
        }
        format!(
            "{{\"num_nodes\":{},\"num_buffers\":{},\"peak_live_bytes\":{},\
             \"total_value_bytes\":{},\"forward_frees\":{},\"backward_frees\":{}}}",
            self.nodes.len(),
            self.num_buffers,
            self.peak_live_bytes,
            self.total_value_bytes,
            fwd,
            bwd,
        )
    }
}

/// Computes the memory plan for a traced step.
///
/// * `loss` — the scalar the trainer differentiates; the reverse sweep
///   visits exactly the nodes `0..=loss.index()`.
/// * `outputs` — nodes the caller reads after the step (cached embeddings,
///   eval scores); they are pinned alongside the loss.
///
/// The planner is conservative: a backward read is assumed to happen even
/// when no gradient reaches the consumer at run time (the value is merely
/// held a little longer), and unknown ops fall back to
/// "reads everything, keeps its output" via [`grad_reads`].
///
/// # Panics
/// Panics if `loss` or any output is out of range for the trace.
pub fn plan(tracer: &ShapeTracer, loss: Var, outputs: &[Var]) -> MemoryPlan {
    plan_impl(tracer, loss, outputs, None)
}

/// [`plan`] for a graph that will execute under a [`RewritePlan`]: rewrite
/// actions introduce forward reads the bare trace does not show (a CSE copy
/// reads its source at copy time; a fused gather→matmul reads the gather's
/// table at matmul time), and the planner must keep those values alive
/// through them — otherwise the runtime verifier would find the source
/// retired and fall back to recomputation every step.
pub fn plan_with_rewrites(
    tracer: &ShapeTracer,
    loss: Var,
    outputs: &[Var],
    rewrites: &RewritePlan,
) -> MemoryPlan {
    plan_impl(tracer, loss, outputs, Some(rewrites))
}

fn plan_impl(
    tracer: &ShapeTracer,
    loss: Var,
    outputs: &[Var],
    rewrites: Option<&RewritePlan>,
) -> MemoryPlan {
    let nodes = tracer.nodes();
    let n = nodes.len();
    let l = loss.index();
    assert!(l < n, "loss node {l} out of range for a trace of {n} nodes");

    let mut pinned = vec![false; n];
    pinned[l] = true;
    for v in outputs {
        assert!(v.index() < n, "output node {} out of range for a trace of {n} nodes", v.index());
        pinned[v.index()] = true;
    }

    // Gradients only ever reach nodes from which the loss is reachable, so
    // a backward event reads values only for nodes inside the loss cone —
    // dead subgraphs and eval-only outputs never extend a live range into
    // the reverse sweep. (The event itself still fires for every c ≤ loss,
    // so backward *frees* on dead nodes remain well-formed.)
    let mut grad_live = vec![false; n];
    let mut stack = vec![l];
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut grad_live[i], true) {
            continue;
        }
        stack.extend(nodes[i].inputs.iter().copied());
    }

    // --- last-use analysis -----------------------------------------------
    // Initialise to birth time: an unread value dies the moment it exists.
    let mut last_use: Vec<usize> = (0..n).collect();
    for (c, node) in nodes.iter().enumerate() {
        // Forward: node c reads every input when it is computed.
        for &i in &node.inputs {
            last_use[i] = last_use[i].max(c);
        }
        // Backward: the event for node c only exists when c ≤ loss, and
        // only reads values when a gradient can reach c at all.
        if c <= l && grad_live[c] {
            let t = 2 * n - 1 - c;
            let reads = grad_reads(node.op);
            match reads.inputs {
                InputReads::None => {}
                InputReads::First => {
                    if let Some(&i) = node.inputs.first() {
                        last_use[i] = last_use[i].max(t);
                    }
                }
                InputReads::All => {
                    for &i in &node.inputs {
                        last_use[i] = last_use[i].max(t);
                    }
                }
            }
            if reads.output {
                last_use[c] = last_use[c].max(t);
            }
        }
    }
    // The reverse sweep reads the loss value itself before it starts.
    last_use[l] = last_use[l].max(2 * n - 1 - l);

    // Rewrite-induced forward reads the bare trace does not show.
    if let Some(rw) = rewrites {
        for k in 0..n {
            match rw.action(k) {
                RewriteAction::CopyOf(j) => {
                    let j = j as usize;
                    last_use[j] = last_use[j].max(k);
                }
                RewriteAction::GatherMatMul => {
                    // The fused matmul reads the elided gather's table.
                    let g = nodes[k].inputs[0];
                    if let Some(&table) = nodes[g].inputs.first() {
                        last_use[table] = last_use[table].max(k);
                    }
                }
                _ => {}
            }
        }
    }

    // --- free points -------------------------------------------------------
    let free: Vec<FreePoint> = (0..n)
        .map(|i| {
            if pinned[i] {
                FreePoint::Never
            } else if last_use[i] < n {
                FreePoint::Forward(last_use[i])
            } else {
                FreePoint::Backward(2 * n - 1 - last_use[i])
            }
        })
        .collect();

    // --- greedy shape-bucketed buffer assignment ---------------------------
    // Walk the global timeline; at each forward time the new node claims a
    // retired buffer of its exact element count when one exists, and frees
    // scheduled at a time release buffers for strictly later times (the
    // runtime allocates a node's value before applying that node's frees).
    let horizon = 2 * n;
    let mut free_at: Vec<Vec<usize>> = vec![Vec::new(); horizon.max(1)];
    for (i, f) in free.iter().enumerate() {
        match *f {
            FreePoint::Forward(t) => free_at[t].push(i),
            FreePoint::Backward(j) => free_at[2 * n - 1 - j].push(i),
            FreePoint::Never => {}
        }
    }
    let elems = |i: usize| nodes[i].shape.0 * nodes[i].shape.1;
    let mut retired: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut buffer_of = vec![0usize; n];
    let mut num_buffers = 0usize;
    for t in 0..horizon {
        if t < n {
            let want = elems(t);
            buffer_of[t] = match retired.get_mut(&want).and_then(Vec::pop) {
                Some(id) => id,
                None => {
                    num_buffers += 1;
                    num_buffers - 1
                }
            };
        }
        for &i in &free_at[t] {
            retired.entry(elems(i)).or_default().push(buffer_of[i]);
        }
    }

    // --- peak live bytes ---------------------------------------------------
    // Difference array over the timeline: +bytes at birth, −bytes just
    // after the free time (pinned values stay live through the horizon).
    let bytes = |i: usize| elems(i) * size_of::<f32>();
    let mut delta = vec![0isize; horizon + 1];
    for i in 0..n {
        delta[i] += bytes(i) as isize;
        let end = match free[i] {
            FreePoint::Forward(t) => t,
            FreePoint::Backward(j) => 2 * n - 1 - j,
            FreePoint::Never => horizon - 1,
        };
        delta[end + 1] -= bytes(i) as isize;
    }
    let mut live = 0isize;
    let mut peak = 0isize;
    for d in &delta {
        live += d;
        peak = peak.max(live);
    }

    let node_plans: Vec<NodePlan> = (0..n)
        .map(|i| NodePlan {
            op: nodes[i].op,
            shape: nodes[i].shape,
            bytes: bytes(i),
            last_use: last_use[i],
            free: free[i],
            buffer: buffer_of[i],
        })
        .collect();
    let total_value_bytes = (0..n).map(bytes).sum();

    MemoryPlan {
        nodes: node_plans,
        num_buffers,
        peak_live_bytes: peak as usize,
        total_value_bytes,
    }
}

#[cfg(test)]
mod tests {
    use dgnn_autograd::{ParamSet, Recorder};
    use dgnn_tensor::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn tiny_trace() -> (ShapeTracer, Var) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let x = params.add("x", Init::Uniform(0.5).build(4, 4, &mut rng));
        let w = params.add("w", Init::Uniform(0.5).build(4, 4, &mut rng));
        let mut tr = ShapeTracer::new();
        let x = tr.param(&params, x);
        let w = tr.param(&params, w);
        let h = tr.matmul(x, w);
        let a = tr.sigmoid(h);
        let loss = tr.mean_all(a);
        (tr, loss)
    }

    #[test]
    fn plan_passes_its_own_checker_and_reuses_buffers() {
        let (tr, loss) = tiny_trace();
        let p = plan(&tr, loss, &[]);
        assert!(crate::check_plan(&tr, loss, &[], &p).is_ok());
        assert!(p.num_frees() > 0, "nothing freed in a chain graph");
        assert!(p.peak_live_bytes() <= p.total_value_bytes());
        assert!(matches!(p.nodes()[loss.index()].free, FreePoint::Never));
    }

    #[test]
    fn to_json_has_stable_keys() {
        let (tr, loss) = tiny_trace();
        let json = plan(&tr, loss, &[]).to_json();
        for key in [
            "\"num_nodes\":",
            "\"num_buffers\":",
            "\"peak_live_bytes\":",
            "\"total_value_bytes\":",
            "\"forward_frees\":",
            "\"backward_frees\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn dead_branches_free_in_forward_not_backward() {
        use dgnn_tensor::Matrix;
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let x = params.add("x", Init::Uniform(0.5).build(4, 4, &mut rng));
        let mut tr = ShapeTracer::new();
        let xv = tr.param(&params, x);
        let c = tr.constant(Matrix::full(4, 4, 0.5));
        // Dead branch: `mul` gradients read both operands, but no gradient
        // ever reaches this node — the constant must not be held into the
        // reverse sweep on its account.
        let dead = tr.mul(xv, c);
        let s = tr.sigmoid(xv);
        let loss = tr.mean_all(s);

        let p = plan(&tr, loss, &[]);
        assert!(
            matches!(p.nodes()[c.index()].free, FreePoint::Forward(_)),
            "dead mul's constant operand held into backward: {:?}",
            p.nodes()[c.index()].free
        );
        assert!(matches!(p.nodes()[dead.index()].free, FreePoint::Forward(_)));
        assert!(crate::check_plan(&tr, loss, &[], &p).is_ok());
    }

    #[test]
    fn declared_outputs_are_pinned() {
        let (tr, loss) = tiny_trace();
        let out = Var::from_index(2); // the matmul node
        let p = plan(&tr, loss, &[out]);
        assert!(matches!(p.nodes()[2].free, FreePoint::Never));
        assert!(crate::check_plan(&tr, loss, &[out], &p).is_ok());
    }
}
