//! The fourteen baseline recommenders the paper compares DGNN against
//! (Table II), reimplemented at the architecture level on the shared
//! tensor/autograd/graph substrate.
//!
//! Every model keeps its *distinguishing mechanism* — DGCF's intent
//! routing, HGT's typed multi-head attention, MHCN's hypergraph channels
//! with a self-supervised InfoMax term, HERec's meta-path skip-gram
//! pre-training, and so on — while sharing the embedding/BPR/evaluation
//! plumbing, so cross-model comparisons measure mechanisms rather than
//! harness differences.
//!
//! | Family (paper §V-A2) | Models |
//! |---|---|
//! | Attentive social recommenders | [`Samn`], [`Eatnn`] |
//! | GNN-based social recommenders | [`DiffNet`], [`GraphRec`], [`Mhcn`] |
//! | Graph collaborative filtering | [`Ngcf`], [`Gccf`] |
//! | Temporal social recommendation | [`DgRec`] |
//! | Disentangled recommenders | [`Dgcf`], [`DisenHan`] |
//! | Knowledge-aware recommendation | [`Kgat`] |
//! | Heterogeneous graph learning | [`Han`], [`Hgt`], [`Herec`] |
//!
//! All models implement [`dgnn_eval::Trainable`]; [`all_models`] yields the
//! full roster in the paper's column order.

#![warn(missing_docs)]

mod classic;
mod common;
mod diffnet;
mod disen;
mod eatnn;
mod graphrec;
mod han;
mod herec;
mod hgt;
mod kgat;
mod mhcn;
mod ngcf;
mod samn;
mod temporal;

pub use classic::{Classic, ClassicKind};
pub use common::BaselineConfig;
pub use diffnet::DiffNet;
pub use disen::{Dgcf, DisenHan};
pub use eatnn::Eatnn;
pub use graphrec::GraphRec;
pub use han::Han;
pub use herec::Herec;
pub use hgt::Hgt;
pub use kgat::Kgat;
pub use mhcn::Mhcn;
pub use ngcf::{Gccf, Ngcf};
pub use samn::Samn;
pub use temporal::DgRec;

use dgnn_eval::Trainable;

/// Instantiates every baseline with a shared configuration, in the column
/// order of the paper's Table II.
pub fn all_models(cfg: &BaselineConfig) -> Vec<Box<dyn Trainable>> {
    vec![
        Box::new(Samn::new(cfg.clone())),
        Box::new(Eatnn::new(cfg.clone())),
        Box::new(DiffNet::new(cfg.clone())),
        Box::new(GraphRec::new(cfg.clone())),
        Box::new(Ngcf::new(cfg.clone())),
        Box::new(Gccf::new(cfg.clone())),
        Box::new(DgRec::new(cfg.clone())),
        Box::new(Kgat::new(cfg.clone())),
        Box::new(Dgcf::new(cfg.clone())),
        Box::new(DisenHan::new(cfg.clone())),
        Box::new(Han::new(cfg.clone())),
        Box::new(Hgt::new(cfg.clone())),
        Box::new(Herec::new(cfg.clone())),
        Box::new(Mhcn::new(cfg.clone())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_table_ii_order() {
        let cfg = BaselineConfig::default();
        let names: Vec<String> =
            all_models(&cfg).iter().map(|m| m.name().to_string()).collect();
        assert_eq!(
            names,
            vec![
                "SAMN", "EATNN", "DiffNet", "GraphRec", "NGCF", "GCCF", "DGRec", "KGAT",
                "DGCF", "DisenHAN", "HAN", "HGT", "HERec", "MHCN",
            ]
        );
    }
}
