//! **E4 — Figure 4**: module ablation. Compares full DGNN against the
//! `-M` (no memory encoder), `-τ` (no social recalibration), and `-LN`
//! (no per-layer LayerNorm) variants on all three datasets, HR@10 and
//! NDCG@10.

use dgnn_bench::{datasets, dgnn_config, run_cell, write_csv, SEED};
use dgnn_core::Dgnn;

fn main() {
    let data = datasets();
    let variants = [
        ("DGNN", dgnn_config()),
        ("-M", dgnn_config().without_memory()),
        ("-tau", dgnn_config().without_recalibration()),
        ("-LN", dgnn_config().without_layer_norm()),
    ];

    println!("=== Figure 4: module ablation (HR@10 / NDCG@10) ===\n");
    let mut rows = Vec::new();
    for ds in &data {
        println!("{}:", ds.name);
        for (name, cfg) in &variants {
            let mut model = Dgnn::new(cfg.clone());
            let cell = run_cell(&mut model, ds, SEED);
            println!(
                "  {:<6} HR@10 {:.4}   NDCG@10 {:.4}",
                name, cell.metrics[1].hr, cell.metrics[1].ndcg
            );
            rows.push(format!(
                "{},{},{:.6},{:.6}",
                ds.name, name, cell.metrics[1].hr, cell.metrics[1].ndcg
            ));
        }
        println!();
    }
    let path = write_csv("fig4", "dataset,variant,hr10,ndcg10", &rows);
    println!("raw: {}", path.display());
}
