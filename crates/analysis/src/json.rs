//! Minimal std-only JSON emission for `--json` report modes.
//!
//! The workspace is dependency-free, so reports are serialized by hand.
//! These helpers keep the escaping rules in one place; emitters build
//! objects/arrays with plain `format!` around them.

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("plain"), "\"plain\"");
    }
}
