//! Structured tracing, metrics, and per-op profiling for the DGNN stack.
//!
//! Every timing and counter claim the repo makes — Table IV running times,
//! Figure 8 convergence, the buffer-pool allocation reductions — flows
//! through this crate so the numbers share one code path from measurement
//! to serialized artifact. Three instruments, all thread-local and
//! zero-dependency:
//!
//! * **Spans** ([`span`], [`SpanGuard`]) — hierarchical RAII timing
//!   regions buffered as begin/end events. Export as JSONL
//!   ([`export::events_to_jsonl`]) or as a Chrome trace-event file
//!   ([`export::chrome_trace`]) loadable in Perfetto / `chrome://tracing`.
//! * **Metrics** ([`counter_add`], [`gauge_set`], [`hist_record`]) — a
//!   registry of named counters, gauges, and min/max/sum histograms,
//!   serialized by the shared snapshot writer
//!   ([`export::snapshot_to_json`]).
//! * **Per-op profiles** ([`record_op`]) — forward/backward wall time and
//!   invocation counts per tape op kind, fed by `dgnn-autograd`'s
//!   `TapeObserver`.
//!
//! Serving adds three process-wide instruments on top (multi-threaded
//! producers, one scrape consumer):
//!
//! * **Shared metrics** ([`shared`]) — atomic counters/gauges/streaming
//!   histograms handed out as `&'static` handles; record paths are
//!   lock-free and allocation-free.
//! * **Streaming histograms** ([`StreamHist`]) — bounded log2-bucketed
//!   quantile sketches behind both the shared registry and the serving
//!   tier's latency stats; [`percentile`] holds the workspace's one
//!   nearest-rank percentile definition.
//! * **Flight recorder** ([`flight`]) — an always-on fixed-size ring of
//!   recent events, dumped as JSONL on panic or on demand.
//!
//! [`export::prometheus_text`] renders any snapshot in Prometheus text
//! exposition for a `/metrics` endpoint.
//!
//! # Enable discipline
//!
//! Everything is gated on a thread-local flag ([`enable`] / [`disable`]).
//! While disabled — the default — every recording entry point returns
//! after a single `Cell<bool>` read: no clock read, no event, **no heap
//! allocation** (asserted by an integration test with a counting
//! allocator). Training code can therefore stay instrumented permanently;
//! only sessions that opt in pay for observability, and they pay little:
//! the `profile` binary measures the enabled-mode overhead at ≤5% of
//! steps/sec on quiet hardware. `tests/tests/observability.rs` asserts a
//! 2× guard band (10%) in thread CPU time, the tightest bound a busy
//! shared CI box can resolve without flaking.
//!
//! # Why not `tracing`/`metrics` crates
//!
//! The build environment is offline and the repo's policy is std-only
//! infrastructure. The API mirrors the shape of those ecosystems closely
//! enough that a future adapter is mechanical.

#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod percentile;
pub mod procstat;
pub mod shared;
pub mod streamhist;

mod clock;
mod metrics;
mod ops;
mod span;

pub use clock::{now_ns, thread_cpu_ns};
pub use flight::{
    flight_clear, flight_dump_jsonl, flight_record, flight_snapshot, flight_to_jsonl,
    flight_total, FlightEvent, FlightKind, FLIGHT_CAPACITY,
};
pub use metrics::{counter_add, gauge_set, hist_merge, hist_record, HistStat, Snapshot};
pub use ops::{record_op, OpPhase, OpStat};
pub use percentile::{percentile_sorted, percentile_sorted_u64};
pub use shared::{live_telemetry_enabled, set_live_telemetry};
pub use span::{span, span_owned, timed, SpanEvent, SpanGuard, SpanPhase};
pub use streamhist::StreamHist;

use std::cell::Cell;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Turns recording on for the current thread.
pub fn enable() {
    ENABLED.with(|e| e.set(true));
}

/// Turns recording off for the current thread (the default state).
pub fn disable() {
    ENABLED.with(|e| e.set(false));
}

/// True when recording is on for the current thread.
///
/// This is the only cost a disabled program pays per instrumentation
/// point: one thread-local `Cell<bool>` read.
pub fn is_enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Clears all buffered span events, metrics, and per-op profiles on this
/// thread. The enabled flag is left untouched.
pub fn reset() {
    span::clear_events();
    metrics::clear();
    ops::clear();
}

/// Drains and returns the buffered span events (oldest first), leaving the
/// buffer empty.
pub fn take_events() -> Vec<SpanEvent> {
    span::take_events()
}

/// A point-in-time copy of the metrics registry and per-op profile table.
pub fn snapshot() -> Snapshot {
    let mut s = metrics::snapshot_metrics();
    s.ops = ops::snapshot_ops();
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests in this module: thread-local state is shared across
    /// `cargo test` threads only within a thread, but tests in one module
    /// may interleave on the same thread via the harness. A guard keeps
    /// enable/reset pairs atomic per test.
    fn fresh() {
        disable();
        reset();
    }

    #[test]
    fn disabled_records_nothing() {
        fresh();
        {
            let _g = span("outer");
            counter_add("c", 3);
            gauge_set("g", 1.0);
            hist_record("h", 2.0);
            record_op("matmul", OpPhase::Forward, 10);
        }
        assert!(take_events().is_empty());
        let s = snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty());
        assert!(s.histograms.is_empty() && s.ops.is_empty());
    }

    #[test]
    fn enabled_spans_are_balanced_and_monotone() {
        fresh();
        enable();
        {
            let _a = span("epoch");
            {
                let _b = span("batch");
            }
        }
        disable();
        let ev = take_events();
        assert_eq!(ev.len(), 4);
        assert_eq!(
            ev.iter().map(|e| (e.name.as_ref(), e.phase)).collect::<Vec<_>>(),
            vec![
                ("epoch", SpanPhase::Begin),
                ("batch", SpanPhase::Begin),
                ("batch", SpanPhase::End),
                ("epoch", SpanPhase::End),
            ]
        );
        assert!(ev.windows(2).all(|w| w[0].t_ns <= w[1].t_ns), "timestamps must be monotone");
        assert_eq!(ev[0].depth, 0);
        assert_eq!(ev[1].depth, 1);
    }

    #[test]
    fn metrics_accumulate() {
        fresh();
        enable();
        counter_add("steps", 2);
        counter_add("steps", 3);
        gauge_set("lr", 0.01);
        gauge_set("lr", 0.02);
        hist_record("loss", 1.0);
        hist_record("loss", 3.0);
        record_op("matmul", OpPhase::Forward, 100);
        record_op("matmul", OpPhase::Forward, 50);
        record_op("matmul", OpPhase::Backward, 70);
        disable();
        let s = snapshot();
        assert_eq!(s.counters["steps"], 5);
        assert!((s.gauges["lr"] - 0.02).abs() < 1e-12);
        let h = &s.histograms["loss"];
        assert_eq!(h.count, 2);
        assert!((h.sum - 4.0).abs() < 1e-12 && h.min == 1.0 && h.max == 3.0);
        let op = &s.ops["matmul"];
        assert_eq!((op.forward.calls, op.forward.total_ns), (2, 150));
        assert_eq!((op.backward.calls, op.backward.total_ns), (1, 70));
        reset();
    }

    #[test]
    fn timed_measures_even_when_disabled() {
        fresh();
        let (value, ns) = timed("work", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(value > 0);
        assert!(ns > 0, "timed must measure wall time regardless of the enabled flag");
        assert!(take_events().is_empty(), "but it must not record events while disabled");
    }

    #[test]
    fn owned_span_names_round_trip() {
        fresh();
        enable();
        {
            let _g = span_owned(format!("fit/{}", "DGNN"));
        }
        disable();
        let ev = take_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name.as_ref(), "fit/DGNN");
        assert_eq!(ev[1].name.as_ref(), "fit/DGNN");
    }
}
