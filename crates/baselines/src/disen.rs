//! Disentangled recommenders: DGCF and DisenHAN.
//!
//! * **DGCF** (Wang et al., SIGIR 2020) splits embeddings into `K` intent
//!   chunks and runs an *iterative routing* over the interaction graph:
//!   per-edge intent logits are softmaxed across intents, each intent
//!   propagates with its own weighted adjacency, and the logits are updated
//!   from the affinity of the refreshed representations. The routing is the
//!   computational burden the paper's Table IV measures.
//! * **DisenHAN** (Wang et al., CIKM 2020) disentangles *aspects* and uses
//!   relation-level attention per aspect plus semantic attention across
//!   relation families — the closest prior art to DGNN's design, but with
//!   attention in place of DGNN's latent memory units.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler, Triple};
use dgnn_eval::{Recommender, Trainable};
use dgnn_tensor::{Csr, Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, probe_batch, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Number of disentangled intents/aspects (both reference implementations
/// default to 4).
const NUM_FACTORS: usize = 4;
/// DGCF routing iterations.
const ROUTING_ITERS: usize = 2;

/// Edge list grouped by destination, with a precomputed `1/deg(dst)`
/// normalizer per edge.
struct Edges {
    seg: Rc<Vec<usize>>,
    src: Rc<Vec<usize>>,
    dst: Rc<Vec<usize>>,
    inv_deg: Matrix,
}

impl Edges {
    fn from_csr(csr: &Csr) -> Self {
        let mut dst = Vec::with_capacity(csr.nnz());
        let mut inv = Vec::with_capacity(csr.nnz());
        for r in 0..csr.rows() {
            let deg = csr.degree(r);
            dst.extend(std::iter::repeat(r).take(deg));
            inv.extend(std::iter::repeat(1.0 / deg.max(1) as f32).take(deg));
        }
        Self {
            seg: Rc::new(csr.row_ptr().to_vec()),
            src: Rc::new(csr.col_idx().to_vec()),
            dst: Rc::new(dst),
            inv_deg: Matrix::col_vector(&inv),
        }
    }

    fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

// --------------------------------------------------------------------------
// DGCF
// --------------------------------------------------------------------------

struct DgcfState {
    e_user: ParamId,
    e_item: ParamId,
    user_side: Edges, // item → user, grouped by user
    item_side: Edges, // user → item, grouped by item
}

/// One routing pass: refines the destination chunks from source chunks.
/// Returns the refreshed per-intent destination chunks.
fn route<R: Recorder>(
    tape: &mut R,
    edges: &Edges,
    dst_chunks: &[Var],
    src_chunks: &[Var],
) -> Vec<Var> {
    if edges.is_empty() {
        return dst_chunks.to_vec();
    }
    // Intent logits, initialised uniform (zeros).
    let e = edges.src.len();
    let mut logits: Vec<Var> =
        (0..NUM_FACTORS).map(|_| tape.constant(Matrix::zeros(e, 1))).collect();
    let mut out = dst_chunks.to_vec();
    for it in 0..ROUTING_ITERS {
        let cat = tape.concat_cols(&logits);
        let alpha = tape.softmax_rows(cat);
        let mut new_logits = Vec::with_capacity(NUM_FACTORS);
        for k in 0..NUM_FACTORS {
            let a_k = tape.slice_cols(alpha, k, k + 1);
            let norm = tape.constant(edges.inv_deg.clone());
            let w = tape.mul(a_k, norm);
            let src_n = tape.l2_normalize_rows(src_chunks[k], 1e-9);
            let src_e = tape.gather(src_n, Rc::clone(&edges.src));
            let msg = tape.segment_weighted_sum(w, src_e, Rc::clone(&edges.seg));
            let refreshed = tape.add(dst_chunks[k], msg);
            let refreshed = tape.l2_normalize_rows(refreshed, 1e-9);
            out[k] = refreshed;
            // Routing update: s += u_dst · tanh(v_src) per edge. The
            // refreshed logits are consumed by the next iteration's
            // softmax, so the last iteration would only build dead
            // tape nodes: skip it.
            if it + 1 < ROUTING_ITERS {
                let u_e = tape.gather(refreshed, Rc::clone(&edges.dst));
                let v_t = tape.tanh(src_e);
                let aff = tape.row_dots(u_e, v_t);
                new_logits.push(tape.add(logits[k], aff));
            }
        }
        if it + 1 < ROUTING_ITERS {
            logits = new_logits;
        }
    }
    out
}

fn dgcf_forward<R: Recorder>(
    st: &DgcfState,
    d: usize,
    tape: &mut R,
    params: &ParamSet,
) -> (Var, Var) {
    let dc = d / NUM_FACTORS;
    let eu = tape.param(params, st.e_user);
    let ev = tape.param(params, st.e_item);
    let u_chunks: Vec<Var> =
        (0..NUM_FACTORS).map(|k| tape.slice_cols(eu, k * dc, (k + 1) * dc)).collect();
    let v_chunks: Vec<Var> =
        (0..NUM_FACTORS).map(|k| tape.slice_cols(ev, k * dc, (k + 1) * dc)).collect();

    let u_new = route(tape, &st.user_side, &u_chunks, &v_chunks);
    let v_new = route(tape, &st.item_side, &v_chunks, &u_chunks);

    let u_cat = tape.concat_cols(&u_new);
    let v_cat = tape.concat_cols(&v_new);
    let users = tape.add(u_cat, eu);
    let items = tape.add(v_cat, ev);
    (users, items)
}

/// Registers DGCF's parameters and edge lists — shared by training and
/// the static-analysis trace entry.
fn dgcf_build_state(cfg: &BaselineConfig, data: &Dataset, seed: u64) -> (ParamSet, DgcfState) {
    let g = &data.graph;
    let mut rng_init = StdRng::seed_from_u64(seed);
    let mut params = ParamSet::new();
    let d = cfg.dim;
    let e_user = params.add("e_user", Init::Uniform(0.1).build(g.num_users(), d, &mut rng_init));
    let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng_init));
    let st = DgcfState {
        e_user,
        e_item,
        user_side: Edges::from_csr(g.ui()),
        item_side: Edges::from_csr(g.iu()),
    };
    (params, st)
}

/// The DGCF recommender.
pub struct Dgcf {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Dgcf {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        assert_eq!(cfg.dim % NUM_FACTORS, 0, "DGCF: dim must be divisible by {NUM_FACTORS}");
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }

    /// Records one full training step (forward pass + BPR loss over
    /// `triples`) onto `rec` without training — the static-analysis entry
    /// point. Returns the registered parameters and the loss variable.
    pub fn trace_step<R: Recorder>(
        cfg: &BaselineConfig,
        data: &Dataset,
        triples: &[Triple],
        seed: u64,
        rec: &mut R,
    ) -> (ParamSet, Var) {
        let _span = dgnn_obs::span("DGCF/trace_step");
        let (params, st) = dgcf_build_state(cfg, data, seed);
        let (users, items) = dgcf_forward(&st, cfg.dim, rec, &params);
        let loss = bpr_from_embeddings(rec, users, items, &BatchIdx::new(triples));
        (params, loss)
    }

    /// Trains with a per-epoch hook (drives the paper's Figure 8).
    pub fn fit_epochs(
        &mut self,
        data: &Dataset,
        seed: u64,
        mut on_epoch: impl FnMut(&Self, usize, f32),
    ) {
        let g = &data.graph;
        let (mut params, st) = dgcf_build_state(&self.cfg, data, seed);
        let d = self.cfg.dim;
        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E11E5);
        let batches = sampler.num_positives().div_ceil(self.cfg.batch_size).max(1);
        let mut harness = dgnn_core::training::build_harness(
            self.cfg.use_memory_plan,
            self.cfg.use_graph_opt,
            |tr| {
                let probe = probe_batch(&sampler, self.cfg.batch_size, seed);
                let (users, items) = dgcf_forward(&st, d, tr, &params);
                bpr_from_embeddings(tr, users, items, &BatchIdx::new(&probe))
            },
        );
        self.loss_history.clear();
        for epoch in 0..self.cfg.epochs {
            let _epoch_span = dgnn_obs::span("epoch");
            let mut epoch_loss = 0.0;
            for _ in 0..batches {
                let _batch_span = dgnn_obs::span("batch");
                let triples = sampler.batch(&mut rng, self.cfg.batch_size);
                let mut tape = match harness.as_mut() {
                    Some(h) => h.begin_step(),
                    None => Tape::new(),
                };
                let loss = {
                    let _fwd = dgnn_obs::span("forward");
                    let (users, items) = dgcf_forward(&st, d, &mut tape, &params);
                    bpr_from_embeddings(&mut tape, users, items, &BatchIdx::new(&triples))
                };
                params.zero_grads();
                {
                    let _bwd = dgnn_obs::span("backward");
                    epoch_loss += tape.backward_into(loss, &mut params);
                }
                {
                    let _opt_span = dgnn_obs::span("optimizer");
                    let pre = params.clip_grad_norm(50.0);
                    dgnn_obs::hist_record("grad_norm/preclip", f64::from(pre));
                    if pre.is_finite() {
                        dgnn_obs::hist_record("grad_norm/postclip", f64::from(pre.min(50.0)));
                    }
                    use dgnn_autograd::Optimizer;
                    adam.step(&mut params);
                }
                if let Some(h) = harness.as_mut() {
                    h.end_step(tape);
                }
            }
            let mean = epoch_loss / batches as f32;
            dgnn_obs::hist_record("epoch_mean_loss", f64::from(mean));
            self.loss_history.push(mean);
            let mut tape = Tape::new();
            let (users, items) = dgcf_forward(&st, d, &mut tape, &params);
            self.scorer =
                Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
            on_epoch(self, epoch, mean);
        }
        if self.cfg.epochs == 0 {
            let mut tape = Tape::new();
            let (users, items) = dgcf_forward(&st, d, &mut tape, &params);
            self.scorer =
                Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
        }
    }
}

impl Recommender for Dgcf {
    fn name(&self) -> &str {
        "DGCF"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("DGCF", user, items)
    }
}

impl Trainable for Dgcf {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        self.fit_epochs(data, seed, |_, _, _| {});
    }
}

// --------------------------------------------------------------------------
// DisenHAN
// --------------------------------------------------------------------------

struct Family {
    edges: Edges,
    /// Per-aspect source transform (`dc × dc` each).
    w: Vec<ParamId>,
    /// Semantic projection (`dc × 1`).
    q: ParamId,
}

struct DisenState {
    e_user: ParamId,
    e_item: ParamId,
    /// Families targeting users: social (src users), interaction (src items).
    user_families: Vec<(Family, bool)>, // bool: source is item table
    /// Families targeting items: interaction (src users), knowledge (src rels).
    item_families: Vec<(Family, bool)>, // bool: source is user table
    e_rel: ParamId,
}

/// Aspect-wise relation attention + semantic combination for one target
/// node family.
#[allow(clippy::too_many_arguments)]
fn disen_aggregate<R: Recorder>(
    tape: &mut R,
    params: &ParamSet,
    families: &[(Family, bool)],
    target: Var,
    primary_src: Var,
    secondary_src: Var,
    n: usize,
    dc: usize,
) -> Var {
    let mut aspect_outs = Vec::with_capacity(NUM_FACTORS);
    for k in 0..NUM_FACTORS {
        let t_k = tape.slice_cols(target, k * dc, (k + 1) * dc);
        let mut zs = Vec::new();
        let mut sems = Vec::new();
        for (fam, use_secondary) in families {
            let src_tbl = if *use_secondary { secondary_src } else { primary_src };
            let z = if fam.edges.is_empty() {
                // No edges: the source transform would be dead compute that
                // never reaches the loss (the graph auditor flags exactly
                // this), so only the zero message is recorded.
                tape.constant(Matrix::zeros(n, dc))
            } else {
                let s_k = tape.slice_cols(src_tbl, k * dc, (k + 1) * dc);
                let w = tape.param(params, fam.w[k]);
                let s_w = tape.matmul(s_k, w);
                let se = tape.gather(s_w, Rc::clone(&fam.edges.src));
                let te = tape.gather(t_k, Rc::clone(&fam.edges.dst));
                let logits = tape.row_dots(te, se);
                let alpha = tape.segment_softmax(logits, Rc::clone(&fam.edges.seg));
                tape.segment_weighted_sum(alpha, se, Rc::clone(&fam.edges.seg))
            };
            let q = tape.param(params, fam.q);
            let tz = tape.tanh(z);
            let score = tape.matmul(tz, q);
            sems.push(tape.mean_all(score));
            zs.push(z);
        }
        // Semantic softmax across families.
        let cat = tape.concat_cols(&sems);
        let beta = tape.softmax_rows(cat);
        let ones = tape.constant(Matrix::full(n, 1, 1.0));
        let mut agg: Option<Var> = None;
        for (f, &z) in zs.iter().enumerate() {
            let b = tape.slice_cols(beta, f, f + 1);
            let b_col = tape.matmul(ones, b);
            let weighted = tape.mul_col(z, b_col);
            agg = Some(match agg {
                Some(a) => tape.add(a, weighted),
                None => weighted,
            });
        }
        let agg = agg.expect("at least one family");
        aspect_outs.push(tape.add(t_k, agg));
    }
    tape.concat_cols(&aspect_outs)
}

fn disen_forward<R: Recorder>(
    st: &DisenState,
    d: usize,
    tape: &mut R,
    params: &ParamSet,
) -> (Var, Var) {
    let dc = d / NUM_FACTORS;
    let eu = tape.param(params, st.e_user);
    let ev = tape.param(params, st.e_item);
    let er = tape.param(params, st.e_rel);
    let nu = tape.shape(eu).0;
    let nv = tape.shape(ev).0;
    let users = disen_aggregate(tape, params, &st.user_families, eu, eu, ev, nu, dc);
    let items = disen_aggregate(tape, params, &st.item_families, ev, eu, er, nv, dc);
    (users, items)
}

/// Registers DisenHAN's parameters and relation families — shared by
/// training and the static-analysis trace entry.
fn disen_build_state(cfg: &BaselineConfig, data: &Dataset, seed: u64) -> (ParamSet, DisenState) {
    let g = &data.graph;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = ParamSet::new();
    let d = cfg.dim;
    let dc = d / NUM_FACTORS;
    let e_user = params.add("e_user", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
    let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng));
    let e_rel =
        params.add("e_rel", Init::Uniform(0.1).build(g.num_relations().max(1), d, &mut rng));
    let mut make_family = |name: &str, csr: &Csr| -> Family {
        Family {
            edges: Edges::from_csr(csr),
            w: (0..NUM_FACTORS)
                .map(|k| {
                    params.add(
                        format!("{name}/w[{k}]"),
                        Init::XavierUniform.build(dc, dc, &mut rng),
                    )
                })
                .collect(),
            q: params.add(format!("{name}/q"), Init::XavierUniform.build(dc, 1, &mut rng)),
        }
    };
    let user_families = vec![
        (make_family("social", g.ss()), false),
        (make_family("interact_u", g.ui()), true),
    ];
    let item_families = vec![
        (make_family("interact_v", g.iu()), false),
        (make_family("knowledge", g.ir()), true),
    ];
    let st = DisenState { e_user, e_item, e_rel, user_families, item_families };
    (params, st)
}

/// The DisenHAN recommender.
pub struct DisenHan {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl DisenHan {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        assert_eq!(cfg.dim % NUM_FACTORS, 0, "DisenHAN: dim must be divisible by {NUM_FACTORS}");
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }

    /// Records one full training step (forward pass + BPR loss over
    /// `triples`) onto `rec` without training — the static-analysis entry
    /// point. Returns the registered parameters and the loss variable.
    pub fn trace_step<R: Recorder>(
        cfg: &BaselineConfig,
        data: &Dataset,
        triples: &[Triple],
        seed: u64,
        rec: &mut R,
    ) -> (ParamSet, Var) {
        let _span = dgnn_obs::span("DisenHAN/trace_step");
        let (params, st) = disen_build_state(cfg, data, seed);
        let (users, items) = disen_forward(&st, cfg.dim, rec, &params);
        let loss = bpr_from_embeddings(rec, users, items, &BatchIdx::new(triples));
        (params, loss)
    }
}

impl Recommender for DisenHan {
    fn name(&self) -> &str {
        "DisenHAN"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("DisenHAN", user, items)
    }
}

impl Trainable for DisenHan {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let (mut params, st) = disen_build_state(&self.cfg, data, seed);
        let d = self.cfg.dim;

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let harness = dgnn_core::training::build_harness(
            self.cfg.use_memory_plan,
            self.cfg.use_graph_opt,
            |tr| {
                let probe = probe_batch(&sampler, self.cfg.batch_size, seed);
                let (users, items) = disen_forward(&st, d, tr, &params);
                bpr_from_embeddings(tr, users, items, &BatchIdx::new(&probe))
            },
        );
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            harness,
            |tape, params, triples, _| {
                let (users, items) = disen_forward(&st, d, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = disen_forward(&st, d, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn dgcf_beats_random() {
        assert_beats_random(&mut Dgcf::new(quick()));
    }

    #[test]
    fn disenhan_beats_random() {
        assert_beats_random(&mut DisenHan::new(quick()));
    }

    #[test]
    fn dgcf_fit_epochs_hook() {
        let data = dgnn_data::tiny(6);
        let mut m = Dgcf::new(BaselineConfig { epochs: 2, ..quick() });
        let mut n = 0;
        m.fit_epochs(&data, 1, |_, _, _| n += 1);
        assert_eq!(n, 2);
    }
}
