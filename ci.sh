#!/usr/bin/env bash
# CI gate: static analysis first (cheap, catches graph/source problems
# before any training step), then the full build + test suite with
# warnings denied, then the memory-plan regression gate.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== [1/5] source lints (dgnn-analysis lint harness) ==="
cargo run -q -p dgnn-analysis --bin lint .

echo "=== [2/5] compute-graph audit (ShapeTracer over DGNN + baselines) ==="
cargo test -q -p dgnn-analysis
cargo test -q -p dgnn-integration-tests --test ablation_shape static_analysis

echo "=== [3/5] release build (warnings denied) ==="
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --workspace

echo "=== [4/5] full test suite ==="
cargo test -q --workspace

echo "=== [5/5] memory-plan peak-live-bytes regression gate ==="
cargo run -q --release -p dgnn-bench --bin memplan -- --check analysis-baseline.json

echo "CI_OK"
