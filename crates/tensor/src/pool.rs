//! Shape-keyed buffer recycling for planned tape execution.
//!
//! A [`BufferPool`] holds retired `Vec<f32>` backing stores bucketed by
//! exact element count. While a pool is *installed* on the current thread,
//! every fresh [`crate::Matrix`] allocation first tries to reuse a retired
//! buffer of the same length; otherwise it falls back to a normal heap
//! allocation. With no pool installed (the default), allocation behaviour
//! is exactly the pre-pool behaviour — one heap allocation per matrix.
//!
//! The pool is deliberately *value-transparent*: recycled storage is always
//! re-initialized (zero-filled, value-filled, or fully overwritten) before a
//! `Matrix` is built on top of it, so pooled and unpooled execution are
//! bit-identical. The planner's golden tests rely on this.
//!
//! Two thread-local counters record how many matrix allocations were served
//! fresh from the heap versus recycled from the pool; the bench harness and
//! the `memory_plan` integration tests use them to measure the allocation
//! reduction a [`MemoryPlan`](https://docs.rs/) delivers.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

use crate::Matrix;

thread_local! {
    static INSTALLED: RefCell<Option<BufferPool>> = const { RefCell::new(None) };
    static FRESH_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static POOL_HITS: Cell<u64> = const { Cell::new(0) };
}

/// A bucket map from exact element count to retired `f32` buffers.
///
/// Buffers enter via [`recycle`] and leave via the crate-internal matrix
/// allocators. Install a pool with [`BufferPool::install`] to activate
/// recycling on the current thread; take it back with
/// [`BufferPool::uninstall`].
#[derive(Debug, Default)]
pub struct BufferPool {
    buckets: BTreeMap<usize, Vec<Vec<f32>>>,
    held_bytes: usize,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retired buffers currently held.
    pub fn held_buffers(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Total bytes of retired storage currently held.
    pub fn held_bytes(&self) -> usize {
        self.held_bytes
    }

    /// Installs this pool on the current thread so matrix allocations can
    /// recycle its buffers.
    ///
    /// # Panics
    /// Panics if another pool is already installed on this thread (pools do
    /// not nest; a planned training step owns the whole step).
    pub fn install(self) {
        INSTALLED.with(|slot| {
            let mut slot = slot.borrow_mut();
            assert!(slot.is_none(), "BufferPool::install: a pool is already installed on this thread");
            *slot = Some(self);
        });
    }

    /// Removes and returns the pool installed on the current thread, if any.
    pub fn uninstall() -> Option<BufferPool> {
        INSTALLED.with(|slot| slot.borrow_mut().take())
    }

    /// True when a pool is installed on the current thread.
    pub fn is_installed() -> bool {
        INSTALLED.with(|slot| slot.borrow().is_some())
    }

    fn put(&mut self, buf: Vec<f32>) {
        self.held_bytes += buf.len() * size_of::<f32>();
        self.buckets.entry(buf.len()).or_default().push(buf);
    }

    fn take(&mut self, len: usize) -> Option<Vec<f32>> {
        let bucket = self.buckets.get_mut(&len)?;
        let buf = bucket.pop()?;
        self.held_bytes -= len * size_of::<f32>();
        Some(buf)
    }
}

/// Retires a matrix's backing storage into the thread's installed pool.
///
/// With no pool installed this is an ordinary drop. Zero-length matrices
/// are dropped either way (they hold no heap storage).
pub fn recycle(m: Matrix) {
    recycle_vec(m.into_raw_vec());
}

/// Retires a raw buffer into the thread's installed pool (see [`recycle`]).
pub fn recycle_vec(buf: Vec<f32>) {
    if buf.is_empty() {
        return;
    }
    INSTALLED.with(|slot| {
        if let Some(pool) = slot.borrow_mut().as_mut() {
            pool.put(buf);
        }
    });
}

/// `(fresh_heap_allocations, pool_hits)` for matrix storage on this thread
/// since the last [`reset_alloc_counters`].
pub fn alloc_counters() -> (u64, u64) {
    (FRESH_ALLOCS.with(Cell::get), POOL_HITS.with(Cell::get))
}

/// Zeroes this thread's allocation counters.
pub fn reset_alloc_counters() {
    FRESH_ALLOCS.with(|c| c.set(0));
    POOL_HITS.with(|c| c.set(0));
}

/// Pops a recycled buffer of exactly `len` elements, counting the hit.
fn take_recycled(len: usize) -> Option<Vec<f32>> {
    let buf = INSTALLED.with(|slot| slot.borrow_mut().as_mut().and_then(|p| p.take(len)));
    if buf.is_some() {
        POOL_HITS.with(|c| c.set(c.get() + 1));
    }
    buf
}

/// A `len`-element buffer of zeros, recycled when possible.
pub(crate) fn alloc_zeroed(len: usize) -> Vec<f32> {
    alloc_filled(len, 0.0)
}

/// A `len`-element buffer filled with `value`, recycled when possible.
pub(crate) fn alloc_filled(len: usize, value: f32) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    match take_recycled(len) {
        Some(mut buf) => {
            buf.fill(value);
            buf
        }
        None => {
            FRESH_ALLOCS.with(|c| c.set(c.get() + 1));
            vec![value; len]
        }
    }
}

/// A `len`-element buffer whose contents are *unspecified* (stale values
/// from a retired buffer, or zeros when freshly allocated). The caller must
/// overwrite every entry before the buffer is observable.
pub(crate) fn alloc_overwritten(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    match take_recycled(len) {
        Some(buf) => buf,
        None => {
            FRESH_ALLOCS.with(|c| c.set(c.get() + 1));
            vec![0.0; len]
        }
    }
}

/// A buffer holding a copy of `src`, recycled when possible.
pub(crate) fn alloc_copied(src: &[f32]) -> Vec<f32> {
    let mut buf = alloc_overwritten(src.len());
    buf.copy_from_slice(src);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycling_roundtrips_and_counts() {
        reset_alloc_counters();
        BufferPool::new().install();
        let a = Matrix::zeros(3, 4);
        recycle(a);
        let b = Matrix::full(4, 3, 2.5); // same element count → pool hit
        assert!(b.as_slice().iter().all(|&v| v == 2.5), "recycled buffer not re-filled");
        let (fresh, hits) = alloc_counters();
        assert_eq!((fresh, hits), (1, 1));
        let pool = BufferPool::uninstall().expect("pool was installed above");
        assert_eq!(pool.held_buffers(), 0);
    }

    #[test]
    fn no_pool_means_fresh_allocations() {
        assert!(!BufferPool::is_installed());
        reset_alloc_counters();
        let a = Matrix::zeros(2, 2);
        recycle(a); // dropped, not pooled
        let _b = Matrix::zeros(2, 2);
        let (fresh, hits) = alloc_counters();
        assert_eq!((fresh, hits), (2, 0));
    }

    #[test]
    fn pooled_values_are_bit_identical_to_fresh() {
        let fresh = Matrix::from_fn(5, 5, |r, c| (r * 7 + c) as f32 * 0.3);
        BufferPool::new().install();
        recycle(Matrix::full(5, 5, f32::NAN)); // poison the bucket
        let pooled = Matrix::from_fn(5, 5, |r, c| (r * 7 + c) as f32 * 0.3);
        let _ = BufferPool::uninstall();
        assert_eq!(fresh, pooled, "pooled from_fn must fully overwrite stale storage");
    }
}
