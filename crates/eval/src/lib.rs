//! Evaluation protocol: top-N ranking metrics under the paper's
//! 100-negative scheme (Section V-A3).
//!
//! Every model — DGNN and all baselines — implements [`Recommender`] and is
//! measured by the same [`evaluate`] loop, so cross-model comparisons in
//! the tables measure the models, not the plumbing.

#![warn(missing_docs)]

pub mod extra_metrics;
pub mod groups;
mod metrics;

pub use extra_metrics::{evaluate_extended, ExtendedMetrics};
pub use metrics::{evaluate, evaluate_at, RankingMetrics, TOP_NS};

use dgnn_data::Dataset;
use dgnn_tensor::Matrix;

/// A trained top-N recommender.
pub trait Recommender {
    /// Human-readable model name as it appears in the paper's tables.
    fn name(&self) -> &str;

    /// Scores `items` for `user`; higher = more preferred. Must be a pure
    /// function of the trained state.
    fn score(&self, user: usize, items: &[usize]) -> Vec<f32>;
}

/// Access to a trained model's final user/item embedding matrices, for
/// models whose [`Recommender::score`] is the plain dot product of the two
/// — the contract the generic checkpoint/serving path relies on: serving a
/// saved `(user, item)` pair reproduces `score` bit-for-bit.
pub trait EmbeddingExport: Recommender {
    /// Final propagated `(user, item)` embedding matrices.
    fn embeddings(&self) -> (&Matrix, &Matrix);
}

/// A model that can be trained on a [`Dataset`] — implemented by every
/// model crate so the experiment harness can drive the full grid.
pub trait Trainable: Recommender {
    /// Fits the model. `seed` controls all stochasticity (init, sampling).
    fn fit(&mut self, data: &Dataset, seed: u64);
}
