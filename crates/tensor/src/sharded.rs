//! Contiguous id-range sharding for embedding tables.
//!
//! A [`ShardSpec`] partitions a table of `rows` rows into fixed-size
//! contiguous id ranges (`shard_rows` rows per shard, last shard possibly
//! short). The spec is pure arithmetic — it owns no data — so the same
//! range math drives the streaming generator in `dgnn-data`, the segmented
//! checkpoint writer, and the lazy loader in `dgnn-serve`, and those layers
//! cannot disagree about which shard a row lives in.
//!
//! [`ShardedTable`] is the in-memory realization: one [`Matrix`] per shard.
//! It exists for the splitting/reassembly paths (save a dense table as
//! segments, stitch segments back into a dense table) and for tests that
//! prove the sharded layout is a lossless re-arrangement of the dense one.

use crate::dense::Matrix;

/// Pure id-range arithmetic for a table sharded by contiguous row ranges.
///
/// Shard `s` covers rows `[s * shard_rows, min((s + 1) * shard_rows, rows))`.
/// Every row belongs to exactly one shard; ranges are ascending, disjoint,
/// and cover `0..rows` with no gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    rows: usize,
    shard_rows: usize,
}

impl ShardSpec {
    /// Builds a spec for `rows` total rows in chunks of `shard_rows`.
    ///
    /// # Panics
    /// Panics when `shard_rows == 0`; a zero-row *table* is allowed (zero
    /// shards) so empty worlds round-trip.
    pub fn new(rows: usize, shard_rows: usize) -> Self {
        assert!(shard_rows > 0, "ShardSpec: shard_rows must be positive");
        Self { rows, shard_rows }
    }

    /// Total rows across all shards.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows per full shard (the last shard may hold fewer).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Number of shards (`ceil(rows / shard_rows)`; 0 for an empty table).
    pub fn num_shards(&self) -> usize {
        self.rows.div_ceil(self.shard_rows)
    }

    /// Global row range `[start, end)` covered by shard `s`.
    ///
    /// # Panics
    /// Panics when `s >= num_shards()`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        assert!(s < self.num_shards(), "ShardSpec: shard {s} out of {}", self.num_shards());
        let start = s * self.shard_rows;
        (start, (start + self.shard_rows).min(self.rows))
    }

    /// Row count of shard `s` (equals `shard_rows` except possibly last).
    pub fn shard_len(&self, s: usize) -> usize {
        let (start, end) = self.shard_range(s);
        end - start
    }

    /// Maps a global row id to `(shard, local_row)`.
    ///
    /// # Panics
    /// Panics when `row >= rows()`.
    pub fn locate(&self, row: usize) -> (usize, usize) {
        assert!(row < self.rows, "ShardSpec: row {row} out of {} rows", self.rows);
        (row / self.shard_rows, row % self.shard_rows)
    }

    /// Iterates `(shard, start, end)` over all shards in ascending order.
    pub fn iter_ranges(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.num_shards()).map(|s| {
            let (start, end) = self.shard_range(s);
            (s, start, end)
        })
    }
}

/// An embedding table stored as one dense [`Matrix`] per contiguous shard.
///
/// All shards share the same column count; row `r` of the logical table is
/// row `spec.locate(r).1` of shard `spec.locate(r).0`.
#[derive(Debug, Clone)]
pub struct ShardedTable {
    spec: ShardSpec,
    cols: usize,
    shards: Vec<Matrix>,
}

impl ShardedTable {
    /// Splits a dense matrix into contiguous shards of `shard_rows` rows.
    pub fn from_matrix(dense: &Matrix, shard_rows: usize) -> Self {
        let spec = ShardSpec::new(dense.rows(), shard_rows);
        let cols = dense.cols();
        let shards = spec
            .iter_ranges()
            .map(|(_, start, end)| {
                let data = dense.as_slice()[start * cols..end * cols].to_vec();
                Matrix::from_vec(end - start, cols, data)
            })
            .collect();
        Self { spec, cols, shards }
    }

    /// Assembles a table from pre-built shard matrices.
    ///
    /// # Panics
    /// Panics when shard shapes disagree with `spec` row counts or when the
    /// column counts are inconsistent across shards.
    pub fn from_shards(spec: ShardSpec, cols: usize, shards: Vec<Matrix>) -> Self {
        assert_eq!(shards.len(), spec.num_shards(), "ShardedTable: shard count mismatch");
        for (s, m) in shards.iter().enumerate() {
            assert_eq!(m.rows(), spec.shard_len(s), "ShardedTable: shard {s} row mismatch");
            assert_eq!(m.cols(), cols, "ShardedTable: shard {s} col mismatch");
        }
        Self { spec, cols, shards }
    }

    /// The id-range spec this table is partitioned by.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Total logical rows.
    pub fn rows(&self) -> usize {
        self.spec.rows()
    }

    /// Columns (shared by every shard).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Borrows shard `s`.
    pub fn shard(&self, s: usize) -> &Matrix {
        &self.shards[s]
    }

    /// Borrows a logical row by global id.
    pub fn row(&self, row: usize) -> &[f32] {
        let (s, local) = self.spec.locate(row);
        self.shards[s].row(local)
    }

    /// Gathers logical rows by global id into a fresh dense matrix.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (r, &row) in idx.iter().enumerate() {
            out.set_row(r, self.row(row));
        }
        out
    }

    /// Stitches all shards back into one dense matrix.
    ///
    /// Round-trip guarantee: `ShardedTable::from_matrix(&m, k).to_matrix()`
    /// is bit-identical to `m` for every `k > 0` — sharding is a layout
    /// change, never a numeric one.
    pub fn to_matrix(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows() * self.cols);
        for shard in &self.shards {
            data.extend_from_slice(shard.as_slice());
        }
        Matrix::from_vec(self.rows(), self.cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_ranges_cover_rows_exactly() {
        for (rows, shard_rows) in [(0usize, 4usize), (1, 4), (4, 4), (5, 4), (8, 4), (9, 4), (7, 1), (3, 100)] {
            let spec = ShardSpec::new(rows, shard_rows);
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for (s, start, end) in spec.iter_ranges() {
                assert_eq!(start, prev_end, "gap before shard {s}");
                assert!(end > start, "empty shard {s}");
                assert_eq!(end - start, spec.shard_len(s));
                covered += end - start;
                prev_end = end;
            }
            assert_eq!(covered, rows, "rows={rows} shard_rows={shard_rows}");
            assert_eq!(spec.num_shards(), rows.div_ceil(shard_rows));
        }
    }

    #[test]
    fn locate_agrees_with_ranges() {
        let spec = ShardSpec::new(10, 3);
        for row in 0..10 {
            let (s, local) = spec.locate(row);
            let (start, end) = spec.shard_range(s);
            assert!(row >= start && row < end);
            assert_eq!(local, row - start);
        }
    }

    #[test]
    #[should_panic(expected = "shard_rows must be positive")]
    fn zero_shard_rows_panics() {
        let _ = ShardSpec::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn locate_out_of_bounds_panics() {
        ShardSpec::new(4, 2).locate(4);
    }

    #[test]
    fn split_roundtrip_is_bit_identical() {
        let dense = Matrix::from_fn(11, 3, |r, c| (r * 31 + c) as f32 * 0.5 - 7.25);
        for shard_rows in [1usize, 2, 3, 4, 11, 50] {
            let table = ShardedTable::from_matrix(&dense, shard_rows);
            let back = table.to_matrix();
            assert_eq!(back.rows(), dense.rows());
            assert_eq!(back.cols(), dense.cols());
            assert!(
                dense.as_slice().iter().zip(back.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "round trip not bit-identical at shard_rows={shard_rows}"
            );
        }
    }

    #[test]
    fn row_and_gather_match_dense() {
        let dense = Matrix::from_fn(9, 4, |r, c| (r as f32) * 10.0 + c as f32);
        let table = ShardedTable::from_matrix(&dense, 4);
        for r in 0..9 {
            assert_eq!(table.row(r), dense.row(r));
        }
        let idx = [8usize, 0, 3, 3, 5];
        let gathered = table.gather_rows(&idx);
        let expect = dense.gather_rows(&idx);
        assert_eq!(gathered.as_slice(), expect.as_slice());
    }

    #[test]
    fn from_shards_validates_shapes() {
        let dense = Matrix::from_fn(6, 2, |r, c| (r + c) as f32);
        let table = ShardedTable::from_matrix(&dense, 4);
        let rebuilt = ShardedTable::from_shards(
            table.spec(),
            2,
            (0..table.num_shards()).map(|s| table.shard(s).clone()).collect(),
        );
        assert_eq!(rebuilt.to_matrix().as_slice(), dense.as_slice());
    }
}
