//! **E10 — Figure 9**: t-SNE visualization of user/item embeddings learned
//! by KGAT, HAN, and DGNN on ciao-s.
//!
//! For a sample of active users, each user's interacted items are labeled
//! with the user's id; the learned item embeddings are projected with
//! t-SNE, coordinates are written to CSV for plotting, and the paper's
//! visual claim ("DGNN separates users better than HAN, which beats
//! KGAT") is scored with silhouette / separation-ratio metrics.

use dgnn_baselines::{Han, Kgat};
use dgnn_bench::{baseline_config, datasets, dgnn_config, write_csv, SEED};
use dgnn_core::Dgnn;
use dgnn_eval::Trainable;
use dgnn_tensor::Matrix;
use dgnn_viz::{cluster_separation, silhouette, tsne_2d, TsneConfig};

/// Users sampled and items taken per user.
const NUM_USERS: usize = 8;
const ITEMS_PER_USER: usize = 12;

fn sample(data: &dgnn_data::Dataset) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    // Most-active users with disjoint-ish item sets.
    let counts = data.train_counts_per_user();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(counts[u]));
    let users: Vec<usize> = order.into_iter().take(NUM_USERS).collect();
    let mut items = Vec::new();
    let mut labels = Vec::new();
    let mut taken = vec![false; data.graph.num_items()];
    for (label, &u) in users.iter().enumerate() {
        let mut n = 0;
        for &v in data.graph.items_of(u) {
            if !taken[v] && n < ITEMS_PER_USER {
                taken[v] = true;
                items.push(v);
                labels.push(label);
                n += 1;
            }
        }
    }
    (users, items, labels)
}

fn report(name: &str, item_emb: &Matrix, items: &[usize], labels: &[usize], rows: &mut Vec<String>) {
    let sub = item_emb.gather_rows(items);
    let coords = tsne_2d(&sub, &TsneConfig::default());
    let sil = silhouette(&coords, labels);
    let sep = cluster_separation(&coords, labels);
    println!("  {name:<6} silhouette {sil:+.4}   inter/intra ratio {sep:.4}");
    for (i, (&item, &label)) in items.iter().zip(labels).enumerate() {
        rows.push(format!(
            "{name},{item},{label},{:.5},{:.5}",
            coords[(i, 0)],
            coords[(i, 1)]
        ));
    }
}

fn main() {
    let data = datasets();
    let ciao = data.iter().find(|d| d.name == "ciao-s").expect("ciao-s preset");
    let (_users, items, labels) = sample(ciao);
    println!(
        "=== Figure 9: embedding visualization on ciao-s ({} items of {} users) ===\n",
        items.len(),
        NUM_USERS
    );

    let mut rows = Vec::new();

    let mut kgat = Kgat::new(baseline_config());
    kgat.fit(ciao, SEED);
    report("KGAT", kgat.embeddings().1, &items, &labels, &mut rows);

    let mut han = Han::new(baseline_config());
    han.fit(ciao, SEED);
    report("HAN", han.embeddings().1, &items, &labels, &mut rows);

    let mut dgnn = Dgnn::new(dgnn_config());
    dgnn.fit(ciao, SEED);
    report("DGNN", dgnn.item_embeddings(), &items, &labels, &mut rows);

    let path = write_csv("fig9", "model,item,user_label,x,y", &rows);
    println!("\ncoordinates: {}", path.display());
    println!("(expected shape: DGNN silhouette > HAN silhouette > KGAT silhouette)");
}
