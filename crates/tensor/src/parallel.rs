//! Deterministic multi-threaded kernel execution.
//!
//! [`run_parts`] / [`par_row_chunks`] execute a row-range-partitioned
//! closure on a persistent pool of worker threads (the [`KernelPool`]).
//! The partitioning contract is the entire design:
//!
//! * every output element is written by exactly **one** partition, and
//! * each partition computes its elements with exactly the same
//!   per-element instruction sequence (and therefore the same f32
//!   rounding) as the serial loop — partitions only restrict *which*
//!   output rows a loop visits, never the order of any per-element
//!   reduction.
//!
//! Under that contract the parallel result is **bit-identical** to the
//! serial one for any thread count and any partition boundaries: no sum
//! ever crosses a partition, so there is no floating-point reordering to
//! observe. `tests/tests/parallel_kernels.rs` enforces this with
//! proptests over random shapes and thread counts.
//!
//! # Thread-count resolution
//!
//! The effective thread count is **thread-local** (so concurrent tests —
//! and later, concurrent training sessions — can pin their own counts
//! without racing): it is set explicitly with [`set_threads`], or
//! resolved lazily on first use from the `DGNN_THREADS` environment
//! variable, falling back to `std::thread::available_parallelism()`.
//! `threads == 1` is a guaranteed-serial fallback: the partition closure
//! runs directly on the caller with zero pool interaction.
//!
//! # Work thresholds
//!
//! Dispatching a job to sleeping workers costs a few microseconds of
//! wake-up latency, so kernels smaller than [`min_par_work`] "work
//! units" (≈ one fused multiply-add each) always run serially. Tests
//! lower the threshold with [`set_min_par_work`] to force parallel
//! dispatch on tiny shapes.
//!
//! # Allocation discipline
//!
//! Workers never allocate or drop a `Matrix`: they write through raw
//! row-range slices into output buffers the *dispatching* thread
//! allocated. The thread-installed [`crate::BufferPool`] and the
//! fresh/hit alloc counters therefore observe every allocation exactly
//! once, on the thread that owns them, no matter how many workers ran
//! the kernel.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Mutex, OnceLock};

use crate::sanitize;

/// Hard cap on pool workers; a safety bound, far above any sensible
/// `DGNN_THREADS` for the kernels in this crate.
pub const MAX_THREADS: usize = 64;

/// Default minimum total work (in ≈FMA-sized units) before a kernel is
/// split across workers. Below this, wake-up latency exceeds the work.
pub const DEFAULT_MIN_PAR_WORK: usize = 262_144;

thread_local! {
    /// 0 means "not yet resolved" — see [`current_threads`].
    static THREADS: Cell<usize> = const { Cell::new(0) };
    static MIN_PAR_WORK: Cell<usize> = const { Cell::new(DEFAULT_MIN_PAR_WORK) };
    /// True while this thread is executing a partition body; nested
    /// dispatch would deadlock on the pool mutex, so it degrades to
    /// serial instead.
    static IN_KERNEL: Cell<bool> = const { Cell::new(false) };
    /// When set, dispatches permute worker assignment and inject seeded
    /// per-partition delays — see [`set_fuzz_schedule`].
    static FUZZ: Cell<Option<FuzzSchedule>> = const { Cell::new(None) };
}

/// True while the calling thread is inside a partition body (dispatcher
/// or pool worker). The sanitizer uses this to skip recording nested
/// (serially degraded) dispatches.
pub(crate) fn in_kernel() -> bool {
    IN_KERNEL.with(Cell::get)
}

/// A deterministic adversarial schedule for [`run_parts`]: partition→worker
/// assignment is permuted and every partition spin-waits a seeded
/// pseudo-random delay (`0..=max_delay_us` µs) before running, so worker
/// *completion orders* vary across seeds. Under the partitioning contract
/// the output must still be bit-identical to serial — the schedule fuzzer
/// in `tests/tests/race_sanitizer.rs` asserts exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzSchedule {
    /// Seed for both the assignment permutation and the per-partition
    /// delays; same seed ⇒ same schedule.
    pub seed: u64,
    /// Upper bound (inclusive) on the injected per-partition delay, in
    /// microseconds. `0` permutes assignment without delaying.
    pub max_delay_us: u32,
}

/// Installs (or with `None` removes) an adversarial dispatch schedule for
/// the calling thread. Test-harness API: schedules cost an allocation per
/// dispatch and exist to *perturb timing*, never semantics.
pub fn set_fuzz_schedule(fs: Option<FuzzSchedule>) {
    FUZZ.with(|c| c.set(fs));
}

/// One step of the splitmix-style generator used for fuzz schedules; the
/// high bits are the usable output.
fn fuzz_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 17
}

/// Spin-waits the seeded delay for `part` under schedule `fs`.
fn fuzz_delay(fs: FuzzSchedule, part: usize) {
    let mut state = fs.seed ^ (part as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let us = fuzz_next(&mut state) % (u64::from(fs.max_delay_us) + 1);
    if us == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_micros() as u64) < us {
        std::hint::spin_loop();
    }
}

/// Seeded Fisher–Yates permutation of `0..n` (worker slots for partitions
/// `1..parts` under a fuzz schedule).
fn fuzz_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut slots: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
    for i in (1..n).rev() {
        let j = (fuzz_next(&mut state) % (i as u64 + 1)) as usize;
        slots.swap(i, j);
    }
    slots
}

/// Thread count `DGNN_THREADS` / the hardware would give, without
/// consulting or mutating the thread-local override.
pub fn auto_threads() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n = match std::env::var("DGNN_THREADS") {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or(hw),
        Err(_) => hw,
    };
    n.clamp(1, MAX_THREADS)
}

/// Effective kernel thread count for the calling thread.
///
/// Resolved once per thread from [`auto_threads`] unless [`set_threads`]
/// pinned it explicitly.
pub fn current_threads() -> usize {
    let t = THREADS.with(Cell::get);
    if t != 0 {
        return t;
    }
    let resolved = auto_threads();
    THREADS.with(|c| c.set(resolved));
    resolved
}

/// Pins the kernel thread count for the calling thread (clamped to
/// `1..=MAX_THREADS`). `1` guarantees fully serial execution.
pub fn set_threads(n: usize) {
    THREADS.with(|c| c.set(n.clamp(1, MAX_THREADS)));
}

/// Current work threshold (see module docs) for the calling thread.
pub fn min_par_work() -> usize {
    MIN_PAR_WORK.with(Cell::get)
}

/// Overrides the work threshold for the calling thread. Tests set this
/// to `1` to force parallel dispatch on tiny shapes.
pub fn set_min_par_work(units: usize) {
    MIN_PAR_WORK.with(|c| c.set(units.max(1)));
}

/// Number of partitions a kernel over `items` rows costing
/// `work_per_item` units each should use on this thread: enough that
/// every partition carries at least [`min_par_work`] units, never more
/// than [`current_threads`] or `items`.
pub fn planned_parts(items: usize, work_per_item: usize) -> usize {
    let t = current_threads();
    if t <= 1 || items <= 1 || IN_KERNEL.with(Cell::get) {
        return 1;
    }
    let total = items.saturating_mul(work_per_item.max(1));
    t.min(items).min(total / min_par_work()).max(1)
}

/// [`planned_parts`] with the exact cost floor [`par_row_chunks`] applies
/// (`work_per_row` never counts below the row width). Dispatchers that
/// pre-size per-partition scratch (the packed GEMM entry points) call this
/// *before* the dispatch to learn the partition count they must provision;
/// both dispatch variants use it internally, so the two computations can
/// never disagree within one dispatch.
pub fn planned_row_parts(rows: usize, cols: usize, work_per_row: usize) -> usize {
    planned_parts(rows, work_per_row.max(cols).max(1))
}

/// The contiguous sub-range of `0..items` owned by partition `part` of
/// `parts` (near-even split; earlier partitions take the remainder).
///
/// Edge cases are well-defined, not accidental: `items == 0` yields
/// `0..0` for every partition, and when `parts > items` the trailing
/// `parts - items` partitions are empty (`start..start`) — both shapes
/// are exercised by unit tests and a tiling proptest in
/// `tests/tests/race_sanitizer.rs`.
pub fn part_range(items: usize, parts: usize, part: usize) -> Range<usize> {
    debug_assert!(parts >= 1, "part_range: parts must be at least 1");
    debug_assert!(part < parts, "part_range: partition {part} out of {parts}");
    let parts = parts.max(1);
    let base = items / parts;
    let extra = items % parts;
    let start = part * base + part.min(extra);
    start..start + base + usize::from(part < extra)
}

/// One unit of work shipped to a worker: the partition index plus a raw
/// pointer to the dispatcher's (stack-held) partition closure.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    part: usize,
}

// SAFETY: the pointee is `Sync`, so calling it through `&` from another
// thread is sound, and it cannot dangle: the dispatcher blocks on the
// done-channel until the worker acknowledges this exact job before the
// closure can go out of scope (see `run_parts`).
unsafe impl Send for Job {}

/// The persistent worker set. Workers are spawned lazily, park on their
/// job channel between dispatches, and live for the process lifetime.
/// All dispatch is serialized under the pool mutex, so the shared done
/// channel always pairs acknowledgements with the dispatch that is
/// currently holding the lock.
struct KernelPool {
    senders: Vec<Sender<Job>>,
    done_tx: Sender<bool>,
    done_rx: Receiver<bool>,
}

impl KernelPool {
    /// Grows the pool to at least `want` workers.
    fn ensure_workers(&mut self, want: usize) {
        while self.senders.len() < want {
            let idx = self.senders.len();
            let (tx, rx) = channel::<Job>();
            let done = self.done_tx.clone();
            std::thread::Builder::new()
                .name(format!("dgnn-kernel-{idx}"))
                .spawn(move || worker_loop(&rx, &done))
                .expect("kernel pool: spawning a worker thread failed");
            self.senders.push(tx);
        }
    }
}

fn worker_loop(jobs: &Receiver<Job>, done: &Sender<bool>) {
    while let Ok(job) = jobs.recv() {
        // A panicking kernel must not wedge the dispatcher (it is blocked
        // waiting for our acknowledgement), so catch it and report failure.
        let ok = catch_unwind(AssertUnwindSafe(|| {
            IN_KERNEL.with(|c| c.set(true));
            // SAFETY: see `unsafe impl Send for Job` — the dispatcher keeps
            // the closure alive until it receives the `done` send below.
            let task = unsafe { &*job.task };
            task(job.part);
        }))
        .is_ok();
        IN_KERNEL.with(|c| c.set(false));
        if done.send(ok).is_err() {
            return; // process teardown
        }
    }
}

static POOL: OnceLock<Mutex<KernelPool>> = OnceLock::new();

fn pool() -> &'static Mutex<KernelPool> {
    POOL.get_or_init(|| {
        let (done_tx, done_rx) = channel();
        Mutex::new(KernelPool { senders: Vec::new(), done_tx, done_rx })
    })
}

/// Executes `f(part)` for every `part` in `0..parts`, partitions `1..`
/// on pool workers and partition `0` on the calling thread, returning
/// only after all partitions complete.
///
/// `parts <= 1` (and any nested call from inside a partition body) runs
/// `f(0)` directly with zero pool interaction — the guaranteed-serial
/// fallback.
///
/// When a [`FuzzSchedule`] is installed ([`set_fuzz_schedule`]), the
/// partition→worker assignment is permuted and each partition spin-waits
/// a seeded delay first; outputs must be unaffected by construction.
///
/// # Panics
/// Propagates a panic from the caller-run partition; panics with a
/// generic message if a worker-run partition panicked.
pub fn run_parts(parts: usize, f: impl Fn(usize) + Sync) {
    if parts <= 1 || IN_KERNEL.with(Cell::get) {
        f(0);
        return;
    }
    match FUZZ.with(Cell::get) {
        None => dispatch(parts, &f, None),
        Some(fs) => {
            let delayed = |p: usize| {
                fuzz_delay(fs, p);
                f(p);
            };
            dispatch(parts, &delayed, Some(fs));
        }
    }
}

/// Pool dispatch body shared by the plain and fuzzed paths. `parts >= 2`
/// and the caller is not inside a partition (checked by [`run_parts`]).
fn dispatch(parts: usize, f: &(dyn Fn(usize) + Sync), fuzz: Option<FuzzSchedule>) {
    // The transmute only erases the reference lifetime (identical fat-
    // pointer layout). The pointer stays valid for the whole dispatch: this
    // function does not return — and `f` is not dropped — until every
    // worker has acknowledged completion through the done channel, and the
    // caller-side partition below runs under `catch_unwind` so even a local
    // panic cannot unwind past the acknowledgement loop.
    // SAFETY: lifetime-only transmute; the erased reference outlives the
    // dispatch because the acknowledgement loop below blocks until every
    // worker reports completion of this exact job set.
    let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let mut kp = match pool().lock() {
        Ok(g) => g,
        // A previous dispatcher panicked after its acknowledgement loop;
        // the channels themselves are still consistent.
        Err(poisoned) => poisoned.into_inner(),
    };
    kp.ensure_workers(parts - 1);
    // Under a fuzz schedule, shuffle which worker runs which partition so
    // completion orders vary; the plain path keeps the fixed assignment.
    let slots = fuzz.map(|fs| fuzz_permutation(parts - 1, fs.seed));
    for p in 1..parts {
        let slot = slots.as_ref().map_or(p - 1, |s| s[p - 1]);
        kp.senders[slot]
            .send(Job { task, part: p })
            .expect("kernel pool: a worker job channel closed unexpectedly");
    }
    // The dispatching thread is partition 0's worker: small jobs pay no
    // wake-up for the first partition and the thread is never idle.
    let local = catch_unwind(AssertUnwindSafe(|| {
        IN_KERNEL.with(|c| c.set(true));
        f(0);
    }));
    IN_KERNEL.with(|c| c.set(false));
    let mut workers_ok = true;
    for _ in 1..parts {
        workers_ok &= kp
            .done_rx
            .recv()
            .expect("kernel pool: the worker done channel closed unexpectedly");
    }
    drop(kp);
    if let Err(payload) = local {
        resume_unwind(payload);
    }
    assert!(workers_ok, "kernel pool: a worker panicked while executing a partition");
}

/// Sendable base pointer for handing each worker its disjoint rows.
struct SendPtr(*mut f32);

impl SendPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper itself, not the raw pointer field.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

// SAFETY: the pointer is only ever dereferenced through non-overlapping
// row ranges (one per partition, see `par_row_chunks`), so no two
// threads touch the same element.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Partitions the `rows × cols` row-major buffer `out` over the kernel
/// pool: `f(row_range, chunk)` receives each partition's row range and
/// the exactly-corresponding mutable slice of `out` (`chunk[0]` is the
/// first element of row `row_range.start`).
///
/// `kernel` names the partition contract registered for this loop in
/// `dgnn-analysis::race_checker`, and `reads(row_range)` declares every
/// *input* element span the partition touches (the output write
/// `row_range.start * cols .. row_range.end * cols` is recorded
/// automatically). Both are consulted only when sanitize mode is on
/// ([`crate::sanitize`]); the disabled cost is a single thread-local read
/// and `reads` is never invoked.
///
/// `work_per_row` is the planner's cost estimate (≈FMA units per output
/// row) used against [`min_par_work`]; pass the serial inner-loop cost
/// (e.g. `k * n` for a GEMM).
///
/// # Panics
/// Panics if `out.len() != rows * cols`.
pub fn par_row_chunks(
    kernel: &'static str,
    out: &mut [f32],
    rows: usize,
    cols: usize,
    work_per_row: usize,
    reads: impl Fn(&Range<usize>) -> Vec<sanitize::Access>,
    f: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    assert_eq!(out.len(), rows * cols, "par_row_chunks: output length mismatch");
    let parts = planned_row_parts(rows, cols, work_per_row);
    sanitize::record_raw(kernel, parts, rows, |_, range| {
        let mut accesses = vec![sanitize::Access::write(
            sanitize::OUT,
            range.start * cols..range.end * cols,
        )];
        accesses.extend(reads(range));
        accesses
    });
    if parts <= 1 {
        f(0..rows, out);
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    run_parts(parts, move |p| {
        let range = part_range(rows, parts, p);
        // SAFETY: partitions are disjoint row ranges of `out`, which both
        // outlives the dispatch (`run_parts` blocks until every partition
        // is acknowledged) and covers `rows * cols` elements (asserted
        // above), so each reconstructed slice is in-bounds and unaliased.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(range.start * cols), range.len() * cols)
        };
        f(range, chunk);
    });
}

/// [`par_row_chunks`] plus a per-partition slice of a dispatcher-owned
/// scratch buffer: `f(row_range, chunk, scratch)` additionally receives an
/// equal-sized private region of `scratch` (`scratch.len() / parts`
/// elements, partition `p` owning region `p`). The packed GEMM kernels use
/// it for their A-panel packing, keeping the pool's workers allocation-free
/// while every partition's packing writes stay provably disjoint.
///
/// `reads(part, row_range)` declares the partition's input spans *and* its
/// scratch accesses (declare the written prefix of the region with
/// [`sanitize::Access::write`] on [`sanitize::SCRATCH`]); the output write
/// is recorded automatically as in [`par_row_chunks`].
///
/// # Panics
/// Panics if `out.len() != rows * cols`, or if `scratch.len()` is not a
/// multiple of the partition count [`planned_row_parts`] returns for this
/// shape (size it as `planned_row_parts(...) * per_part`).
pub fn par_row_chunks_scratch(
    kernel: &'static str,
    out: &mut [f32],
    rows: usize,
    cols: usize,
    work_per_row: usize,
    scratch: &mut [f32],
    reads: impl Fn(usize, &Range<usize>) -> Vec<sanitize::Access>,
    f: impl Fn(Range<usize>, &mut [f32], &mut [f32]) + Sync,
) {
    assert_eq!(out.len(), rows * cols, "par_row_chunks_scratch: output length mismatch");
    let parts = planned_row_parts(rows, cols, work_per_row);
    assert_eq!(
        scratch.len() % parts,
        0,
        "par_row_chunks_scratch: scratch length {} not divisible by {parts} partitions",
        scratch.len()
    );
    let cap = scratch.len() / parts;
    sanitize::record_raw(kernel, parts, rows, |p, range| {
        let mut accesses = vec![sanitize::Access::write(
            sanitize::OUT,
            range.start * cols..range.end * cols,
        )];
        accesses.extend(reads(p, range));
        accesses
    });
    if parts <= 1 {
        f(0..rows, out, scratch);
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    let sbase = SendPtr(scratch.as_mut_ptr());
    run_parts(parts, move |p| {
        let range = part_range(rows, parts, p);
        // SAFETY: partitions own disjoint row ranges of `out` and disjoint
        // `cap`-sized regions of `scratch`; both outlive the dispatch
        // (`run_parts` blocks until all partitions acknowledge), so each
        // reconstructed slice is in-bounds and unaliased.
        let (chunk, scr) = unsafe {
            (
                std::slice::from_raw_parts_mut(
                    base.get().add(range.start * cols),
                    range.len() * cols,
                ),
                std::slice::from_raw_parts_mut(sbase.get().add(p * cap), cap),
            )
        };
        f(range, chunk, scr);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn part_range_covers_everything_once() {
        for items in 0..40 {
            for parts in 1..8 {
                let mut seen = vec![0u8; items];
                for p in 0..parts {
                    for i in part_range(items, parts, p) {
                        seen[i] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "items={items} parts={parts}");
            }
        }
    }

    #[test]
    fn part_range_edge_cases() {
        // Zero items: every partition is the empty range at 0.
        for parts in 1..6 {
            for p in 0..parts {
                assert_eq!(part_range(0, parts, p), 0..0, "items=0 parts={parts} p={p}");
            }
        }
        // Single row: partition 0 owns it, the rest are empty.
        assert_eq!(part_range(1, 4, 0), 0..1);
        for p in 1..4 {
            let r = part_range(1, 4, p);
            assert!(r.is_empty(), "single row, partition {p} must be empty");
        }
        // parts > items: exactly `items` non-empty partitions, all width 1,
        // and the empty tail still chains contiguously.
        for p in 0..7 {
            let r = part_range(3, 7, p);
            assert_eq!(r.len(), usize::from(p < 3), "items=3 parts=7 p={p}");
        }
        let mut end = 0;
        for p in 0..7 {
            let r = part_range(3, 7, p);
            assert_eq!(r.start, end, "ranges must chain without gaps");
            end = r.end;
        }
        assert_eq!(end, 3);
        // Near-even split: sizes differ by at most one, larger ones first.
        let sizes: Vec<usize> = (0..5).map(|p| part_range(13, 5, p).len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 2, 2]);
    }

    #[test]
    fn planned_parts_interacts_with_min_par_work_boundary() {
        set_threads(8);
        // Exactly at the threshold: total == min_par_work ⇒ one partition
        // is allowed to carry it, so the split is total/min_par_work = 1.
        set_min_par_work(1000);
        assert_eq!(planned_parts(100, 10), 1, "at-threshold work stays serial");
        assert_eq!(planned_parts(100, 20), 2, "2× threshold splits in two");
        assert_eq!(planned_parts(100, 1000), 8, "ample work uses all threads");
        // items caps the split even with huge work.
        assert_eq!(planned_parts(3, 1_000_000), 3);
        set_threads(1);
        set_min_par_work(DEFAULT_MIN_PAR_WORK);
    }

    #[test]
    fn fuzz_schedule_is_deterministic_and_covers_all_partitions() {
        let fs = FuzzSchedule { seed: 42, max_delay_us: 0 };
        assert_eq!(fuzz_permutation(6, fs.seed), fuzz_permutation(6, fs.seed));
        let mut seen = vec![false; 6];
        for s in fuzz_permutation(6, fs.seed) {
            assert!(!seen[s], "permutation repeats a slot");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&b| b), "permutation must cover every slot");

        set_fuzz_schedule(Some(FuzzSchedule { seed: 7, max_delay_us: 20 }));
        let mask = AtomicUsize::new(0);
        run_parts(5, |p| {
            mask.fetch_or(1 << p, Ordering::SeqCst);
        });
        set_fuzz_schedule(None);
        assert_eq!(mask.load(Ordering::SeqCst), 0b11111, "fuzzed dispatch ran every partition");
    }

    #[test]
    fn planned_parts_respects_threshold_and_threads() {
        set_threads(4);
        set_min_par_work(DEFAULT_MIN_PAR_WORK);
        assert_eq!(planned_parts(8, 1), 1, "tiny work stays serial");
        assert_eq!(planned_parts(1_000_000, 1_000), 4, "big work uses all threads");
        set_min_par_work(1);
        assert_eq!(planned_parts(2, 1), 2, "forced threshold splits tiny work");
        assert_eq!(planned_parts(1, 1_000_000), 1, "one row cannot split");
        set_threads(1);
        assert_eq!(planned_parts(1_000_000, 1_000), 1, "threads=1 is serial");
        set_min_par_work(DEFAULT_MIN_PAR_WORK);
    }

    #[test]
    fn run_parts_executes_each_partition_exactly_once() {
        let hits = AtomicUsize::new(0);
        let mask = AtomicUsize::new(0);
        run_parts(5, |p| {
            hits.fetch_add(1, Ordering::SeqCst);
            mask.fetch_or(1 << p, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5);
        assert_eq!(mask.load(Ordering::SeqCst), 0b11111);
    }

    #[test]
    fn par_row_chunks_writes_disjoint_complete_output() {
        set_threads(3);
        set_min_par_work(1);
        let (rows, cols) = (13, 4);
        let mut out = vec![0.0f32; rows * cols];
        par_row_chunks("map", &mut out, rows, cols, 1, |_| Vec::new(), |range, chunk| {
            for (off, r) in range.enumerate() {
                for c in 0..cols {
                    chunk[off * cols + c] += (r * cols + c) as f32 + 1.0;
                }
            }
        });
        let expect: Vec<f32> = (0..rows * cols).map(|i| i as f32 + 1.0).collect();
        assert_eq!(out, expect, "every element written exactly once");
        set_threads(1);
        set_min_par_work(DEFAULT_MIN_PAR_WORK);
    }

    #[test]
    fn worker_panic_is_reported_and_pool_survives() {
        let boom = catch_unwind(AssertUnwindSafe(|| {
            run_parts(3, |p| assert!(p != 2, "deliberate test panic in worker partition"));
        }));
        assert!(boom.is_err(), "worker panic must propagate to the dispatcher");
        // The pool must still dispatch correctly afterwards.
        let hits = AtomicUsize::new(0);
        run_parts(3, |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3, "pool usable after a worker panic");
    }

    #[test]
    fn nested_dispatch_degrades_to_serial() {
        let inner_hits = AtomicUsize::new(0);
        run_parts(2, |_| {
            // A nested run_parts would deadlock on the pool mutex if it
            // tried to dispatch; it must run serially instead.
            run_parts(4, |_| {
                inner_hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(inner_hits.load(Ordering::SeqCst), 2, "nested calls ran serially");
    }
}
