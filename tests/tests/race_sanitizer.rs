//! Race-sanitizer battery: every pooled kernel runs under shadow-access
//! tracking and the independent disjointness prover must certify the whole
//! log, malicious kernels must produce the *typed* violation they commit,
//! and the schedule fuzzer must show outputs are bit-identical under
//! permuted worker assignment and injected delays — the pool's determinism
//! is structural (disjoint row partitions), not a lucky interleaving.

use dgnn_analysis::race_checker::{
    check_dispatches, check_dispatches_with, contract_names, AccessSpec, KernelContract,
    RaceViolation, Shape,
};
use dgnn_tensor::gemm;
use dgnn_tensor::parallel::{self, FuzzSchedule};
use dgnn_tensor::sanitize::{self, Access, OUT};
use dgnn_tensor::{top_k_rows, Csr, CsrBuilder, Matrix};
use proptest::prelude::*;

/// Runs `f` with the kernel pool pinned to `threads` and (for parallel
/// runs) the work threshold dropped so even tiny shapes dispatch across
/// the pool. All pool settings are thread-local, so each test restores
/// its own thread to defaults afterwards.
fn with_pool<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    parallel::set_threads(threads);
    parallel::set_min_par_work(if threads > 1 { 1 } else { parallel::DEFAULT_MIN_PAR_WORK });
    let out = f();
    parallel::set_threads(1);
    parallel::set_min_par_work(parallel::DEFAULT_MIN_PAR_WORK);
    out
}

/// Runs `f` with sanitize mode pinned on and a fresh log; returns the
/// dispatches recorded while it ran and restores disabled mode.
fn with_sanitizer<T>(f: impl FnOnce() -> T) -> (T, Vec<sanitize::Dispatch>) {
    sanitize::set_enabled(true);
    let _ = sanitize::take_log();
    let out = f();
    let log = sanitize::take_log();
    sanitize::set_enabled(false);
    (out, log)
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x:?} vs {y:?}");
    }
}

/// Deterministic pseudo-random matrix (LCG), bounded away from zero so it
/// is safe as a divisor.
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = ((s >> 33) % 1000) as f32 / 250.0 - 2.0;
        if v.abs() < 0.1 { 0.5 } else { v }
    })
}

fn csr(rows: usize, cols: usize, seed: u64) -> Csr {
    let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
    let mut b = CsrBuilder::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s >> 62 == 0 {
                b.push(r, c, ((s >> 33) % 100) as f32 / 50.0 - 1.0);
            }
        }
    }
    b.build()
}

/// Exercises every kernel in the race checker's contract table exactly as
/// the public API drives it. Kept in one place so the battery test can
/// assert the *proved* kernel set equals the registered set — adding a
/// contract without extending this battery fails the admission test.
///
/// Runs twice: once on the legacy scalar backend (the historical `matmul`
/// / `matmul_tn` / … kernel names) and once on the packed Generic backend
/// (the `gemm_*_packed` dispatches — Generic is always available and
/// records the same names as the SIMD backends), so both halves of the
/// contract table prove out on every machine.
fn run_kernel_battery() {
    gemm::set_backend(Some(gemm::Backend::Scalar));
    run_backend_battery();
    gemm::set_backend(Some(gemm::Backend::Generic));
    run_backend_battery();
    gemm::set_backend(None);
}

fn run_backend_battery() {
    let a = mat(12, 8, 1);
    let b = mat(8, 12, 2);
    let g = mat(12, 8, 3);
    let row = mat(1, 8, 4);
    let col = mat(12, 1, 5);
    let idx: Vec<usize> = (0..12).map(|i| (i * 5) % 12).collect();

    let _ = a.matmul(&b); // matmul
    let _ = a.matmul_tn(&g); // matmul_tn (8x12 out, items = 8 columns)
    let _ = a.matmul_nt(&g); // matmul_nt
    let mut acc = mat(12, 12, 6);
    acc.matmul_nt_acc(&g, &mat(12, 8, 7)); // matmul_nt_acc
    let _ = a.add(&g); // add
    let _ = a.sub(&g); // sub
    let _ = a.mul_elem(&g); // mul_elem
    let _ = a.div_elem(&g); // div_elem (mat() is bounded away from 0)
    let _ = a.leaky_relu_grad(&g, 0.1); // leaky_relu_grad
    let _ = a.relu_grad(&g); // relu_grad
    let _ = a.tanh_grad(&g); // tanh_grad
    let _ = a.sigmoid_grad(&g); // sigmoid_grad
    let _ = a.softplus_grad(&g); // softplus_grad
    let _ = a.map(|x| x * 2.0 + 1.0); // map
    let mut m = a.clone();
    m.add_assign(&g); // add_assign
    m.axpy(0.5, &g); // axpy
    m.sub_assign(&g); // sub_assign
    m.scale_assign(1.25); // scale_assign
    m.add_scalar_assign(-0.5); // add_scalar_assign
    let _ = a.add_row_fused(&row); // add_row_fused
    let _ = a.mul_row_fused(&row); // mul_row_fused
    let _ = a.mul_col_fused(&col); // mul_col_fused
    let _ = a.gather_matmul(&idx, &b); // gather_matmul
    let _ = a.gather_matmul_nt(&idx, &g); // gather_matmul_nt (packed) / matmul_nt (scalar)
    let _ = a.gather_rows(&idx); // gather_rows
    let mut sc = Matrix::zeros(12, 8);
    sc.scatter_add_rows(&idx, &a); // scatter_add_rows
    let _ = a.l2_normalize_rows(1e-6); // l2_normalize_rows
    let _ = a.softmax_rows(); // softmax_rows
    let _ = a.layer_norm_rows(1e-6); // layer_norm_rows
    let y = a.layer_norm_rows(1e-6);
    let _ = Matrix::layer_norm_rows_grad(&a, &y, &g, 1e-6); // layer_norm_rows_grad
    let _ = csr(12, 9, 8).spmm(&mat(9, 7, 9)); // spmm
    let _ = top_k_rows(&a, 3); // top_k_rows
}

#[test]
fn battery_proves_every_registered_kernel() {
    let ((), log) = with_pool(4, || with_sanitizer(run_kernel_battery));
    assert_eq!(sanitize::dropped_dispatches(), 0, "log overflowed; proof would be a sample");
    assert!(!log.is_empty());
    // Real parallel dispatches, not serial fast paths: the battery's
    // shapes are big enough that every kernel fans out.
    for d in &log {
        assert!(d.parts >= 2, "kernel `{}` dispatched {} part(s); battery must exercise the pool", d.kernel, d.parts);
    }
    let report = check_dispatches(&log);
    assert!(report.is_clean(), "sanitizer found violations:\n{report}");
    assert_eq!(report.dispatches, log.len());
    assert!(report.pairs_checked > 0);

    // The proof covers the whole admission list: every registered contract
    // was exercised and certified. A kernel added to the table without a
    // battery entry (or vice versa) fails here.
    let mut want: Vec<String> = contract_names().iter().map(|s| s.to_string()).collect();
    want.sort_unstable();
    assert_eq!(report.kernels_proved, want, "proved kernels != registered contracts");
}

#[test]
fn serial_dispatches_are_recorded_and_proved_too() {
    // With the default work threshold, tiny shapes stay serial (parts = 1)
    // but still record — partition 0 is held to the same contract.
    let ((), log) = with_sanitizer(|| {
        let a = mat(3, 2, 11);
        let _ = a.add(&mat(3, 2, 12));
    });
    assert!(!log.is_empty());
    assert!(log.iter().all(|d| d.parts == 1));
    let report = check_dispatches(&log);
    assert!(report.is_clean(), "{report}");
}

// --- malicious kernels: each injected defect yields its typed violation ---

const EVIL_OVERLAP: &[AccessSpec] =
    &[AccessSpec { operand: OUT, write: true, shape: Shape::All }];

#[test]
fn overlapping_writes_are_flagged_with_partition_pair() {
    let ((), log) = with_sanitizer(|| {
        // Both partitions claim the whole output: a deliberate write-write
        // race. The (deliberately wrong) contract declares the overlap, so
        // the violation comes from concrete interval math, not the table.
        sanitize::record_raw("evil_overlap", 2, 8, |_, _| vec![Access::write(OUT, 0..8)]);
    });
    let extra = [KernelContract { kernel: "evil_overlap", accesses: EVIL_OVERLAP }];
    let report = check_dispatches_with(&log, &extra);
    assert!(!report.is_clean());
    let hit = report
        .violations
        .iter()
        .find(|v| matches!(v, RaceViolation::OverlappingWrites { .. }))
        .expect("write-write race must be reported as OverlappingWrites");
    if let RaceViolation::OverlappingWrites { kernel, part_a, part_b, lo, hi, .. } = hit {
        assert_eq!(kernel, "evil_overlap");
        assert_eq!((*part_a, *part_b), (0, 1));
        assert!(lo < hi, "violation must carry a concrete overlapping range");
    }
    assert!(report.kernels_proved.is_empty());
}

const EVIL_READ: &[AccessSpec] = &[
    AccessSpec { operand: OUT, write: true, shape: Shape::PartRows },
    AccessSpec { operand: OUT, write: false, shape: Shape::All },
];

#[test]
fn cross_partition_read_of_write_set_is_flagged() {
    let ((), log) = with_sanitizer(|| {
        // Disjoint writes, but every partition reads the whole output —
        // i.e. it reads rows another partition is concurrently writing.
        sanitize::record_raw("evil_read", 2, 8, |_, r| {
            vec![Access::write(OUT, r.start..r.end), Access::read(OUT, 0..8)]
        });
    });
    let extra = [KernelContract { kernel: "evil_read", accesses: EVIL_READ }];
    let report = check_dispatches_with(&log, &extra);
    let hit = report
        .violations
        .iter()
        .find(|v| matches!(v, RaceViolation::CrossPartitionRead { .. }))
        .expect("read of another partition's write-set must be CrossPartitionRead");
    if let RaceViolation::CrossPartitionRead { kernel, reader, writer, lo, hi, .. } = hit {
        assert_eq!(kernel, "evil_read");
        assert_ne!(reader, writer);
        assert!(lo < hi);
    }
}

const EVIL_DRIFT: &[AccessSpec] =
    &[AccessSpec { operand: OUT, write: true, shape: Shape::PartRows }];

#[test]
fn contract_drift_is_flagged_as_mismatch() {
    let ((), log) = with_sanitizer(|| {
        // The kernel records a read its contract never declared — the
        // "kernel widened, table didn't" drift case.
        sanitize::record_raw("evil_drift", 2, 8, |_, r| {
            vec![Access::write(OUT, r.start..r.end), Access::read(0, r.start..r.end)]
        });
    });
    let extra = [KernelContract { kernel: "evil_drift", accesses: EVIL_DRIFT }];
    let report = check_dispatches_with(&log, &extra);
    assert!(matches!(
        report.violations.first(),
        Some(RaceViolation::ContractMismatch { .. })
    ), "undeclared access must be a ContractMismatch, got {:?}", report.violations);
}

#[test]
fn unregistered_kernel_is_flagged() {
    let ((), log) = with_sanitizer(|| {
        sanitize::record_raw("not_in_the_table", 2, 8, |_, r| {
            vec![Access::write(OUT, r.start..r.end)]
        });
    });
    let report = check_dispatches(&log);
    assert!(matches!(
        report.violations.first(),
        Some(RaceViolation::UnknownKernel { .. })
    ));
}

// --- schedule fuzzer: bit-identity is structural, not schedule luck ---

/// A composite computation touching GEMM, sparse, normalizer, RMW and
/// raw-pointer kernels; returns everything as one matrix for bit compare.
fn fuzz_workload() -> Matrix {
    let a = mat(17, 9, 21);
    let b = mat(9, 17, 22);
    let adj = csr(17, 17, 23);
    let mut h = a.matmul(&b).softmax_rows();
    h = adj.spmm(&h);
    h.add_assign(&mat(17, 17, 24));
    let t = top_k_rows(&h, 5);
    let mut out = h.l2_normalize_rows(1e-6);
    let mut tail = Matrix::zeros(17, 5);
    for r in 0..17 {
        tail.set_row(r, t.scores(r));
    }
    out.scatter_add_rows(&(0..17).rev().map(|i| i % 17).collect::<Vec<_>>(), &mat(17, 17, 25));
    Matrix::concat_cols(&[&out, &tail])
}

#[test]
fn fuzzed_schedules_are_bit_identical_to_serial() {
    let serial = with_pool(1, fuzz_workload);
    for threads in [2, 4] {
        for seed in 0..4u64 {
            for max_delay_us in [0u32, 50, 200] {
                parallel::set_fuzz_schedule(Some(FuzzSchedule { seed, max_delay_us }));
                let fuzzed = with_pool(threads, fuzz_workload);
                parallel::set_fuzz_schedule(None);
                assert_bits_eq(
                    &serial,
                    &fuzzed,
                    &format!("threads={threads} seed={seed} delay={max_delay_us}us"),
                );
            }
        }
    }
}

#[test]
fn sanitizer_composes_with_fuzzed_schedules() {
    // Shadow logging records on the dispatching thread before workers run,
    // so fuzzing the schedule must not change the recorded access sets —
    // and the fuzzed run must still prove out.
    parallel::set_fuzz_schedule(Some(FuzzSchedule { seed: 7, max_delay_us: 50 }));
    let (out, log) = with_pool(4, || with_sanitizer(fuzz_workload));
    parallel::set_fuzz_schedule(None);
    let report = check_dispatches(&log);
    assert!(report.is_clean(), "{report}");
    assert_bits_eq(&out, &with_pool(1, fuzz_workload), "fuzzed+sanitized");
}

// --- property sweeps: shapes × threads × schedules ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_fuzzed_kernels_match_serial(
        rows in 1usize..24,
        inner in 1usize..12,
        cols in 1usize..16,
        threads in 2usize..6,
        seed in 0u64..1000,
        delay in 0u32..60,
    ) {
        let a = mat(rows, inner, seed ^ 1);
        let b = mat(inner, cols, seed ^ 2);
        let s = csr(rows, rows, seed ^ 3);
        let run = || {
            let mm = a.matmul(&b);
            let sm = mm.softmax_rows();
            (s.spmm(&sm), sm)
        };
        let (sp_serial, sm_serial) = with_pool(1, run);
        parallel::set_fuzz_schedule(Some(FuzzSchedule { seed, max_delay_us: delay }));
        let ((sp_par, sm_par), log) = with_pool(threads, || with_sanitizer(run));
        parallel::set_fuzz_schedule(None);
        assert_bits_eq(&sp_serial, &sp_par, "spmm(softmax(matmul))");
        assert_bits_eq(&sm_serial, &sm_par, "softmax(matmul)");
        let report = check_dispatches(&log);
        prop_assert!(report.is_clean(), "sanitizer violations:\n{report}");
    }

    #[test]
    fn prop_part_range_tiles_for_any_part_count(
        items in 0usize..400,
        parts in 1usize..=64,
    ) {
        let mut cursor = 0usize;
        for p in 0..parts {
            let r = parallel::part_range(items, parts, p);
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.end >= r.start);
            // Near-even split: no partition exceeds its neighbour by > 1.
            prop_assert!(r.len() <= items / parts + 1);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, items);
    }
}
