//! The *collaborative heterogeneous graph* of the paper (Section IV-A).
//!
//! The graph `G = (D, E)` unifies three vertex sets — users `U`, items `V`,
//! and meta relation nodes `R` — and three edge families:
//!
//! * `Y` — user–item interactions,
//! * `S` — user–user social ties (undirected),
//! * `T` — item–relation links (e.g. product categories).
//!
//! [`HeteroGraph`] stores the edge lists once and materializes the CSR
//! adjacencies each model needs ([`HeteroGraph::ui`], [`HeteroGraph::ss`],
//! …). Meta-path composition ([`compose`]) and random walks
//! ([`HeteroGraph::meta_path_walk`]) serve the meta-path baselines (HAN,
//! HERec); the unified typed adjacency ([`HeteroGraph::unified_adj`])
//! serves the homogeneous-graph baselines that the paper "enhances with
//! diverse context" (NGCF, GCCF).

#![warn(missing_docs)]

mod compose;
mod hetero;
mod unified;
mod walks;

pub use compose::compose;
pub use hetero::{HeteroGraph, HeteroGraphBuilder, Interaction, NodeType};
pub use unified::{EdgeType, UnifiedView};
pub use walks::MetaPathStep;
