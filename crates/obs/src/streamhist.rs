//! Bounded log2-bucketed streaming histogram with quantile estimation.
//!
//! [`StreamHist`] replaces "buffer every raw sample" collectors on paths
//! that must run for days: its footprint is one fixed array of bucket
//! counts (plus exact count/sum/min/max), so memory is constant no matter
//! how many values are recorded, and two histograms merge by adding
//! buckets — the property the serving tier needs to fold per-thread
//! recorders into one process view.
//!
//! # Bucket layout
//!
//! Buckets are geometric: each power-of-two octave `[2^e, 2^{e+1})` over
//! `e ∈ [E_MIN, E_MAX]` splits into [`SUB`] equal-width sub-buckets, so a
//! bucket's bounds are `2^e·(1+s/SUB)` to `2^e·(1+(s+1)/SUB)`. The bucket
//! of a value falls out of its IEEE-754 bit pattern (exponent field +
//! top mantissa bits) — no `log2` call, no search, no allocation on the
//! record path. The widest bucket ratio is `(SUB+1)/SUB = 9/8`, so a
//! quantile estimated as the geometric midpoint of its bucket carries at
//! most ~6% relative error (bounded by the bucket width; proptested
//! against a sorted-vector oracle in `tests/tests/telemetry.rs`).
//!
//! Values below `2^E_MIN` (including zero, negatives, and non-finite
//! values, which have no honest geometric bucket) clamp into the first
//! bucket; values at or above `2^{E_MAX+1}` clamp into the last. The
//! exact min/max tracked alongside keep the clamped tails honest: quantile
//! estimates are clamped into `[min, max]`.

use crate::metrics::HistStat;
use crate::percentile::rank;

/// Sub-buckets per power-of-two octave.
pub const SUB: usize = 8;
const SUB_BITS: u32 = 3;
/// Smallest bucketed exponent: values below `2^E_MIN` clamp into bucket 0.
pub const E_MIN: i32 = -32;
/// Largest bucketed exponent: values `≥ 2^(E_MAX+1)` clamp into the last
/// bucket.
pub const E_MAX: i32 = 31;
/// Total bucket count: `(E_MAX - E_MIN + 1) * SUB`.
pub const BUCKETS: usize = ((E_MAX - E_MIN + 1) as usize) * SUB;

/// Index of the bucket holding `v`. Total over all `f64` values: negative,
/// zero, and non-finite inputs land in bucket 0, overflow in the last.
pub fn bucket_index(v: f64) -> usize {
    if !(v > 0.0) || !v.is_finite() {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < E_MIN {
        return 0;
    }
    if exp > E_MAX {
        return BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & ((SUB as u64) - 1)) as usize;
    (exp - E_MIN) as usize * SUB + sub
}

/// Lower bound of bucket `idx` (inclusive).
pub fn bucket_lo(idx: usize) -> f64 {
    let e = E_MIN + (idx / SUB) as i32;
    let sub = (idx % SUB) as f64;
    (2.0f64).powi(e) * (1.0 + sub / SUB as f64)
}

/// Upper bound of bucket `idx` (exclusive).
pub fn bucket_hi(idx: usize) -> f64 {
    let e = E_MIN + (idx / SUB) as i32;
    let sub = (idx % SUB) as f64;
    (2.0f64).powi(e) * (1.0 + (sub + 1.0) / SUB as f64)
}

/// Fixed-size streaming histogram (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamHist {
    /// Per-bucket value counts.
    buckets: Box<[u64; BUCKETS]>,
    /// Exact aggregate of everything recorded.
    stat: HistStat,
}

impl Default for StreamHist {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamHist {
    /// Fresh, empty histogram. The single boxed bucket array is the only
    /// allocation this type ever makes — the record path is free of them.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0u64; BUCKETS]),
            stat: HistStat { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY },
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.buckets[bucket_index(v)] += 1;
        self.stat.count += 1;
        self.stat.sum += v;
        self.stat.min = self.stat.min.min(v);
        self.stat.max = self.stat.max.max(v);
    }

    /// Folds `other` into `self` bucket-wise. Merging per-thread histograms
    /// this way is exact: the result equals one histogram that saw every
    /// value.
    pub fn merge(&mut self, other: &StreamHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.stat.merge(&other.stat);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.stat.count
    }

    /// Exact count/sum/min/max aggregate (min/max are meaningless while
    /// empty — the caller-facing [`StreamHist::stat`] normalizes that).
    pub fn stat(&self) -> HistStat {
        if self.stat.count == 0 {
            HistStat { count: 0, sum: 0.0, min: 0.0, max: 0.0 }
        } else {
            self.stat
        }
    }

    /// Estimated `q`-quantile (`q ∈ [0, 1]`, nearest-rank definition
    /// shared with [`crate::percentile`]): the geometric midpoint of the
    /// bucket holding the rank, clamped into the exact `[min, max]`. The
    /// estimate and the true quantile share a bucket, so the relative
    /// error is bounded by the bucket width (≤ `(SUB+1)/SUB − 1`).
    /// Returns 0 while empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.stat.count == 0 {
            return 0.0;
        }
        let target = rank(q, self.stat.count as usize) as u64;
        // The extreme ranks are tracked exactly — answer them exactly.
        if target == 0 {
            return self.stat.min;
        }
        if target == self.stat.count - 1 {
            return self.stat.max;
        }
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > target {
                let est = (bucket_lo(idx) * bucket_hi(idx)).sqrt();
                return est.clamp(self.stat.min, self.stat.max);
            }
        }
        // PANICS: unreachable — cum reaches stat.count, which is > target.
        unreachable!("quantile rank {target} beyond recorded count {}", self.stat.count)
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs,
    /// ascending — the shape Prometheus histogram exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_hi(idx), cum));
            }
        }
        out
    }

    /// Raw count of bucket `idx` (tests and exporters).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// Overwrites bucket `idx` and the aggregate — the loader used by the
    /// shared registry to materialize an atomic histogram snapshot.
    pub(crate) fn set_raw(&mut self, buckets: impl Iterator<Item = u64>, stat: HistStat) {
        for (slot, v) in self.buckets.iter_mut().zip(buckets) {
            *slot = v;
        }
        self.stat = stat;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_bracket() {
        let values = [1e-12, 0.001, 0.02, 0.5, 1.0, 1.1, 2.0, 3.7, 1000.0, 1e9, 1e12];
        let mut last = 0usize;
        for &v in &values {
            let idx = bucket_index(v);
            assert!(idx >= last, "bucket index must be monotone in the value");
            last = idx;
            if v >= bucket_lo(0) && v < bucket_hi(BUCKETS - 1) {
                assert!(bucket_lo(idx) <= v && v < bucket_hi(idx), "{v} outside bucket {idx}");
            }
        }
    }

    #[test]
    fn degenerate_values_clamp_into_end_buckets() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
        assert_eq!(bucket_index(1e-300), 0);
    }

    #[test]
    fn bucket_widths_are_tight() {
        for idx in 0..BUCKETS {
            let ratio = bucket_hi(idx) / bucket_lo(idx);
            assert!(ratio <= (SUB as f64 + 1.0) / SUB as f64 + 1e-12, "bucket {idx}: {ratio}");
        }
    }

    #[test]
    fn quantiles_track_exact_stats() {
        let mut h = StreamHist::new();
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((p50 / 500.0 - 1.0).abs() < 0.13, "p50 {p50} too far from 500");
        // p0/p100 clamp to the exact extremes.
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(h.stat().count, 1000);
        assert_eq!(h.stat().min, 1.0);
        assert_eq!(h.stat().max, 1000.0);
    }

    #[test]
    fn merge_equals_union() {
        let (mut a, mut b, mut all) = (StreamHist::new(), StreamHist::new(), StreamHist::new());
        for i in 0..200 {
            let v = 0.5 + (i as f64) * 1.7;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = StreamHist::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.stat(), HistStat { count: 0, sum: 0.0, min: 0.0, max: 0.0 });
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn cumulative_buckets_are_ascending_and_total() {
        let mut h = StreamHist::new();
        for v in [0.25, 0.25, 3.0, 700.0] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        assert_eq!(cum.last().map(|&(_, c)| c), Some(4));
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }
}
