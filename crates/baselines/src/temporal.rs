//! DGRec (Song et al., WSDM 2019): session-based social recommendation
//! with dynamic user interests.
//!
//! The distinguishing mechanism: a recurrent unit (GRU) summarizes each
//! user's most recent interactions into a *dynamic* interest vector, which
//! is then fused with friends' interests through a graph-attention layer
//! over the social network.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_tensor::{Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Session length: how many recent items feed the GRU.
const SESSION_LEN: usize = 5;

struct GruParams {
    wz: ParamId,
    uz: ParamId,
    wr: ParamId,
    ur: ParamId,
    wh: ParamId,
    uh: ParamId,
}

struct State {
    e_user: ParamId,
    e_item: ParamId,
    gru: GruParams,
    /// Fusion of long-term and dynamic interest, `2d × d`.
    fuse: ParamId,
    /// Social attention.
    attn_w: ParamId,
    attn_v: ParamId,
    /// `session[t][u]` = item consumed by user `u` at session step `t`
    /// (padded by repeating the earliest item).
    session: Vec<Rc<Vec<usize>>>,
    ss_seg: Rc<Vec<usize>>,
    ss_src: Rc<Vec<usize>>,
    ss_dst: Rc<Vec<usize>>,
}

/// One GRU cell step over all users at once.
fn gru_step(tape: &mut Tape, params: &ParamSet, g: &GruParams, x: Var, h: Var) -> Var {
    let wz = tape.param(params, g.wz);
    let uz = tape.param(params, g.uz);
    let xz = tape.matmul(x, wz);
    let hz = tape.matmul(h, uz);
    let zs = tape.add(xz, hz);
    let z = tape.sigmoid(zs);

    let wr = tape.param(params, g.wr);
    let ur = tape.param(params, g.ur);
    let xr = tape.matmul(x, wr);
    let hr = tape.matmul(h, ur);
    let rs = tape.add(xr, hr);
    let r = tape.sigmoid(rs);

    let wh = tape.param(params, g.wh);
    let uh = tape.param(params, g.uh);
    let xh = tape.matmul(x, wh);
    let rh = tape.mul(r, h);
    let rhu = tape.matmul(rh, uh);
    let cand_in = tape.add(xh, rhu);
    let cand = tape.tanh(cand_in);

    // h' = (1 − z) ⊙ h + z ⊙ h̃
    let zh = tape.mul(z, cand);
    let one_minus_z = {
        let neg = tape.neg(z);
        tape.add_scalar(neg, 1.0)
    };
    let keep = tape.mul(one_minus_z, h);
    tape.add(keep, zh)
}

fn forward(st: &State, dim: usize, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let eu = tape.param(params, st.e_user);
    let ev = tape.param(params, st.e_item);
    let num_users = tape.value(eu).rows();

    // Dynamic interest: GRU over the session items.
    let mut h = tape.constant(Matrix::zeros(num_users, dim));
    for idx in &st.session {
        let x = tape.gather(ev, Rc::clone(idx));
        h = gru_step(tape, params, &st.gru, x, h);
    }

    // Fuse long-term and dynamic interest.
    let cat = tape.concat_cols(&[eu, h]);
    let fw = tape.param(params, st.fuse);
    let fused = tape.matmul(cat, fw);
    let dynamic = tape.tanh(fused);

    // Social graph attention over friends' dynamic interests.
    let users = if st.ss_src.is_empty() {
        dynamic
    } else {
        let s = tape.gather(dynamic, Rc::clone(&st.ss_src));
        let t = tape.gather(dynamic, Rc::clone(&st.ss_dst));
        let joint = tape.mul(s, t);
        let w = tape.param(params, st.attn_w);
        let hid = tape.matmul(joint, w);
        let hid = tape.leaky_relu(hid, 0.2);
        let v = tape.param(params, st.attn_v);
        let logits = tape.matmul(hid, v);
        let alpha = tape.segment_softmax(logits, Rc::clone(&st.ss_seg));
        let social = tape.segment_weighted_sum(alpha, s, Rc::clone(&st.ss_seg));
        tape.add(dynamic, social)
    };
    (users, ev)
}

/// The DGRec recommender.
pub struct DgRec {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl DgRec {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }
}

impl Recommender for DgRec {
    fn name(&self) -> &str {
        "DGRec"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("DGRec", user, items)
    }
}

impl Trainable for DgRec {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let d = self.cfg.dim;
        let e_user = params.add("e_user", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
        let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng));
        let w = |name: &str, r: usize, c: usize, params: &mut ParamSet, rng: &mut StdRng| {
            params.add(name, Init::XavierUniform.build(r, c, rng))
        };
        let gru = GruParams {
            wz: w("gru/wz", d, d, &mut params, &mut rng),
            uz: w("gru/uz", d, d, &mut params, &mut rng),
            wr: w("gru/wr", d, d, &mut params, &mut rng),
            ur: w("gru/ur", d, d, &mut params, &mut rng),
            wh: w("gru/wh", d, d, &mut params, &mut rng),
            uh: w("gru/uh", d, d, &mut params, &mut rng),
        };
        let fuse = w("fuse", 2 * d, d, &mut params, &mut rng);
        let attn_w = w("attn_w", d, d, &mut params, &mut rng);
        let attn_v = w("attn_v", d, 1, &mut params, &mut rng);

        // Sessions: the last SESSION_LEN training interactions per user,
        // oldest first, left-padded by repeating the oldest item. Users
        // without history point at item 0 with a zero-ish effect after the
        // GRU (their dynamic interest is learned from the fuse layer).
        let mut per_user: Vec<Vec<(u32, u32)>> = vec![Vec::new(); g.num_users()];
        for it in g.interactions() {
            per_user[it.user as usize].push((it.time, it.item));
        }
        let mut session: Vec<Vec<usize>> =
            vec![vec![0usize; g.num_users()]; SESSION_LEN];
        for (u, events) in per_user.iter_mut().enumerate() {
            events.sort_unstable();
            let recent: Vec<usize> = events
                .iter()
                .rev()
                .take(SESSION_LEN)
                .rev()
                .map(|&(_, v)| v as usize)
                .collect();
            for t in 0..SESSION_LEN {
                let idx = if recent.is_empty() {
                    0
                } else if t < SESSION_LEN - recent.len() {
                    recent[0]
                } else {
                    recent[t - (SESSION_LEN - recent.len())]
                };
                session[t][u] = idx;
            }
        }

        let ss = g.ss();
        let mut ss_dst = Vec::with_capacity(ss.nnz());
        for u in 0..g.num_users() {
            ss_dst.extend(std::iter::repeat(u).take(ss.degree(u)));
        }
        let st = State {
            e_user,
            e_item,
            gru,
            fuse,
            attn_w,
            attn_v,
            session: session.into_iter().map(Rc::new).collect(),
            ss_seg: Rc::new(ss.row_ptr().to_vec()),
            ss_src: Rc::new(ss.col_idx().to_vec()),
            ss_dst: Rc::new(ss_dst),
        };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, _| {
                let (users, items) = forward(&st, d, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, d, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn dgrec_beats_random() {
        assert_beats_random(&mut DgRec::new(quick()));
    }
}
