//! DGNN hyperparameters and ablation switches.

/// Configuration of the DGNN model (Section V-A4 of the paper gives the
/// tuned values the defaults reflect).
#[derive(Debug, Clone, PartialEq)]
pub struct DgnnConfig {
    /// Hidden dimensionality `d` (paper tunes {4, 8, 16, 32}; 16 is best).
    pub dim: usize,
    /// Number of propagation layers `L` (paper: 2 is best, 0–3 swept).
    pub layers: usize,
    /// Number of latent memory units `|M|` per relation family
    /// (paper: 8 is best, {2, 4, 8, 16} swept).
    pub memory_units: usize,
    /// Adam learning rate (paper: 0.01).
    pub learning_rate: f32,
    /// Weight-decay coefficient λ of Eq. 11 (paper tunes
    /// {1e-3, 1e-4, 1e-5}).
    pub weight_decay: f32,
    /// Training epochs.
    pub epochs: usize,
    /// BPR batch size (paper searches 512–4096).
    pub batch_size: usize,
    /// LeakyReLU negative slope α (paper: 0.2).
    pub leaky_slope: f32,
    /// Ablation `-M`: `false` replaces the memory-augmented encoder with a
    /// single shared transformation per relation family.
    pub use_memory: bool,
    /// Ablation `-τ`: `false` drops the social recalibration term from the
    /// prediction (Eq. 9–10).
    pub use_recalibration: bool,
    /// Ablation `-LN`: `false` drops the per-layer LayerNorm of Eq. 7.
    pub use_layer_norm: bool,
    /// Ablation `-S`: `false` removes the social matrix `S` from the graph.
    pub use_social: bool,
    /// Ablation `-T`: `false` removes the item-relation matrix `T`.
    pub use_knowledge: bool,
    /// Execute training steps under a static [`MemoryPlan`]: intermediates
    /// are retired at their statically computed death points into a
    /// shape-keyed buffer pool. Bit-identical to unplanned execution; the
    /// plan is verified by the independent safety checker before the first
    /// step runs.
    ///
    /// [`MemoryPlan`]: https://docs.rs/dgnn-analysis
    pub use_memory_plan: bool,
    /// Kernel-pool thread count for training (`0` inherits the ambient
    /// setting: the `DGNN_THREADS` environment variable, falling back to
    /// the hardware parallelism). Results are bit-identical at every
    /// setting; `1` forces fully serial kernels.
    pub threads: usize,
}

impl Default for DgnnConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            layers: 2,
            memory_units: 8,
            learning_rate: 0.01,
            weight_decay: 1e-4,
            epochs: 30,
            batch_size: 2048,
            leaky_slope: 0.2,
            use_memory: true,
            use_recalibration: true,
            use_layer_norm: true,
            use_social: true,
            use_knowledge: true,
            use_memory_plan: false,
            threads: 0,
        }
    }
}

impl DgnnConfig {
    /// The `-M` variant of Figure 4.
    pub fn without_memory(mut self) -> Self {
        self.use_memory = false;
        self
    }

    /// The `-τ` variant of Figure 4.
    pub fn without_recalibration(mut self) -> Self {
        self.use_recalibration = false;
        self
    }

    /// The `-LN` variant of Figure 4.
    pub fn without_layer_norm(mut self) -> Self {
        self.use_layer_norm = false;
        self
    }

    /// The `-S` variant of Figure 5.
    pub fn without_social(mut self) -> Self {
        self.use_social = false;
        self
    }

    /// The `-T` variant of Figure 5.
    pub fn without_knowledge(mut self) -> Self {
        self.use_knowledge = false;
        self
    }

    /// The `-ST` variant of Figure 5.
    pub fn without_social_and_knowledge(self) -> Self {
        self.without_social().without_knowledge()
    }

    /// Enables statically planned, pooled training-step execution.
    pub fn with_memory_plan(mut self) -> Self {
        self.use_memory_plan = true;
        self
    }

    /// Pins the kernel-pool thread count for training (`0` = inherit).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Effective number of memory units after the `-M` ablation.
    pub fn effective_memory_units(&self) -> usize {
        if self.use_memory {
            self.memory_units
        } else {
            1
        }
    }

    /// Validates invariants; call before training.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid configuration.
    pub fn validate(&self) {
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.memory_units > 0, "memory_units must be positive");
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.learning_rate > 0.0, "learning_rate must be positive");
        assert!(
            (0.0..1.0).contains(&self.leaky_slope),
            "leaky_slope must be in [0, 1)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tuning() {
        let c = DgnnConfig::default();
        assert_eq!(c.dim, 16);
        assert_eq!(c.layers, 2);
        assert_eq!(c.memory_units, 8);
        assert!((c.learning_rate - 0.01).abs() < 1e-9);
        assert!((c.leaky_slope - 0.2).abs() < 1e-9);
        assert_eq!(c.threads, 0, "default must inherit the ambient thread count");
        c.validate();
    }

    #[test]
    fn with_threads_pins_the_pool_width() {
        assert_eq!(DgnnConfig::default().with_threads(4).threads, 4);
    }

    #[test]
    fn ablation_builders_flip_flags() {
        let c = DgnnConfig::default()
            .without_memory()
            .without_recalibration()
            .without_layer_norm()
            .without_social_and_knowledge();
        assert!(!c.use_memory);
        assert!(!c.use_recalibration);
        assert!(!c.use_layer_norm);
        assert!(!c.use_social);
        assert!(!c.use_knowledge);
        assert_eq!(c.effective_memory_units(), 1);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        DgnnConfig { dim: 0, ..DgnnConfig::default() }.validate();
    }
}
