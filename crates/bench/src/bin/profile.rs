//! **Training profiler**: per-phase and per-op-kind timing for DGNN and
//! two baselines, driven entirely by the `dgnn-obs` instrumentation.
//!
//! Trains DGNN, NGCF, and DGCF on the tiny dataset with quick configs
//! (planned execution, so the pool counters are exercised too) with
//! observability enabled, then writes:
//!
//! * `BENCH_profile.json` — one metrics snapshot per model (steps/sec,
//!   per-phase span totals, allocation counters, gradient-norm histograms,
//!   per-op forward/backward profiles), serialized by the same
//!   `snapshot_to_json` code path as `memplan`'s `analysis-baseline.json`;
//! * `results/profile_trace.json` — a Chrome trace-event file (open in
//!   Perfetto or `chrome://tracing`; one labeled track per model);
//! * `results/profile_events.jsonl` — the raw span events, one per line.
//!
//! ```text
//! profile                     profile + write the artifacts above
//! profile --check PATH        no artifacts; exit 1 if DGNN steps/sec
//!                             regressed >25% vs. the baseline snapshot,
//!                             if the parallel kernel pool is slower than
//!                             serial beyond the noise budget, if
//!                             graph-optimized training falls below its
//!                             floor relative to the stored baseline, or
//!                             if the packed GEMM pipeline fails its
//!                             same-run speedup floor over the forced
//!                             legacy scalar loops (1.2x on x86_64)
//! ```
//!
//! Besides the observed run, DGNN is trained unobserved with the kernel
//! pool pinned to one thread and to the ambient width
//! (`DGNN_THREADS` / hardware), recorded as the
//! `profile/steps_per_sec_serial` and `profile/steps_per_sec_parallel`
//! gauges, and once more with the graph optimizer enabled
//! (`profile/steps_per_sec_optimized`). All reference runs share one warm
//! process, so their ratios are load-robust in a way the absolute numbers
//! are not. A second observed entry, `DGNN_opt`, trains under the proven
//! rewrite plan; the optimizer publishes its
//! `optimizer/{nodes_before,nodes_after,folded,cse_hits,fused}` gauges
//! into that snapshot as the harness is built.
//!
//! The `--check` budgets are deliberately loose: steps/sec is machine- and
//! load-dependent, so the gates only catch large regressions (an op gone
//! accidentally quadratic, a parallel dispatch that loses to its own
//! serial fallback), not single-digit noise.

use std::process::ExitCode;

use dgnn_baselines::{BaselineConfig, Dgcf, Ngcf};
use dgnn_bench::run_cell;
use dgnn_core::{Dgnn, DgnnConfig};
use dgnn_data::{tiny, Dataset, TrainSampler};
use dgnn_eval::Trainable;
use dgnn_obs::export::{chrome_trace, events_to_jsonl, snapshot_to_json, span_totals};
use dgnn_obs::{SpanEvent, Snapshot};
use dgnn_tensor::gemm;
use dgnn_tensor::{alloc_counters, reset_alloc_counters};

/// Seed shared with the rest of the experiment harness.
const SEED: u64 = 2023;
/// Allowed relative drop of DGNN steps/sec before `--check` fails.
const REGRESSION_BUDGET: f64 = 0.25;
/// Allowed same-run shortfall of pooled vs serial steps/sec before
/// `--check` fails. On the quick preset most kernels sit below the
/// dispatch threshold and stay serial, so the ratio hovers near 1.0 and
/// this only slackens for timer noise; a dispatch overhead regression
/// (pool slower than its own serial fallback) still trips it.
const PARALLEL_BUDGET: f64 = 0.15;
/// Required ratio of graph-optimized DGNN training to the *stored
/// baseline* steps/sec before `--check` passes. The original anchor was
/// the pre-optimizer snapshot, where optimized execution had to clear a
/// 1.5x speedup floor. Regenerating `BENCH_profile.json` for the packed
/// GEMM subsystem moved the anchor into the post-optimizer, post-packing
/// world — the optimizer's win is part of the baseline itself now — so
/// the floor is consciously re-tuned to a regression bound: optimized
/// execution must stay within the regression budget of the stored
/// baseline, and the same-run gate below keeps policing rewrite-executor
/// overhead against plain execution.
const OPT_SPEEDUP_FLOOR: f64 = 0.75;
/// Required same-run speedup of the packed GEMM pipeline over the forced
/// legacy scalar loops (`DGNN_GEMM=scalar`) on x86_64, where the AVX2
/// microkernel is guaranteed present. On other architectures the packed
/// portable kernel only has to not lose.
const GEMM_SPEEDUP_FLOOR: f64 = if cfg!(target_arch = "x86_64") { 1.2 } else { 1.0 };

/// Numeric code for the selected GEMM backend, so it survives the
/// numbers-only gauge export (`0` scalar, `1` generic, `2` neon, `3` avx2);
/// the human-readable name is printed alongside.
fn backend_code(be: gemm::Backend) -> f64 {
    match be {
        gemm::Backend::Scalar => 0.0,
        gemm::Backend::Generic => 1.0,
        gemm::Backend::Neon => 2.0,
        gemm::Backend::Avx2 => 3.0,
    }
}

fn quick_baseline() -> BaselineConfig {
    BaselineConfig {
        dim: 8,
        layers: 2,
        epochs: 4,
        batch_size: 256,
        ..Default::default()
    }
    .with_memory_plan()
}

fn quick_dgnn() -> DgnnConfig {
    DgnnConfig {
        dim: 8,
        layers: 2,
        memory_units: 4,
        epochs: 4,
        batch_size: 256,
        ..Default::default()
    }
    .with_memory_plan()
}

/// One profiled model: its metrics snapshot and raw span events.
struct Profile {
    name: &'static str,
    snapshot: Snapshot,
    events: Vec<SpanEvent>,
    steps_per_sec: f64,
}

/// Trains `model` with observability enabled and captures everything the
/// instrumentation recorded. `steps` is epochs × batches/epoch, the
/// denominator-free step count for the steps/sec gauge.
///
/// `sps_disabled` (DGNN only) is the steps/sec of an identical run made
/// with observability off, recorded as a gauge so the exported snapshot
/// documents the measured observer overhead next to the enabled figure.
/// `extra_gauges` publishes out-of-band measurements (the serial vs
/// parallel reference runs) into this model's snapshot.
fn profile_model(
    name: &'static str,
    model: &mut dyn Trainable,
    data: &Dataset,
    steps: u64,
    sps_disabled: Option<f64>,
    extra_gauges: &[(&str, f64)],
) -> Profile {
    dgnn_obs::reset();
    dgnn_obs::enable();
    reset_alloc_counters();
    gemm::reset_counters();
    let cell = run_cell(model, data, SEED);
    let (fresh, hits) = alloc_counters();
    let gc = gemm::counters();
    let events = dgnn_obs::take_events();
    let steps_per_sec = steps as f64 / cell.train_time.as_secs_f64().max(1e-9);
    dgnn_obs::counter_add("alloc/fresh", fresh);
    dgnn_obs::counter_add("alloc/pool_hits", hits);
    dgnn_obs::gauge_set("gemm/kernel", backend_code(gemm::backend()));
    dgnn_obs::gauge_set("gemm/packed_calls", gc.packed_calls as f64);
    dgnn_obs::gauge_set("gemm/scalar_calls", gc.scalar_calls as f64);
    dgnn_obs::gauge_set("gemm/macs", gc.macs as f64);
    dgnn_obs::gauge_set("profile/steps", steps as f64);
    dgnn_obs::gauge_set("profile/steps_per_sec", steps_per_sec);
    dgnn_obs::gauge_set("profile/train_s", cell.train_time.as_secs_f64());
    dgnn_obs::gauge_set("profile/eval_s", cell.eval_time.as_secs_f64());
    if let Some(sps) = sps_disabled {
        dgnn_obs::gauge_set("profile/steps_per_sec_disabled", sps);
    }
    for (key, value) in extra_gauges {
        dgnn_obs::gauge_set(key, *value);
    }
    for (phase, (count, total_ns)) in span_totals(&events) {
        dgnn_obs::gauge_set(&format!("phase/{phase}/count"), count as f64);
        dgnn_obs::gauge_set(&format!("phase/{phase}/total_ns"), total_ns as f64);
    }
    let snapshot = dgnn_obs::snapshot();
    dgnn_obs::disable();
    dgnn_obs::reset();
    Profile { name, snapshot, events, steps_per_sec }
}

/// Text trace summary: per-phase totals and the heaviest op kinds.
fn print_summary(p: &Profile) {
    println!("\n--- {} ({:.1} steps/s) ---", p.name, p.steps_per_sec);
    println!("{:<12} {:>8} {:>12}", "Phase", "Count", "Total ms");
    for (phase, (count, total_ns)) in span_totals(&p.events) {
        println!("{:<12} {:>8} {:>12.1}", phase, count, total_ns as f64 / 1e6);
    }
    let mut ops: Vec<_> = p.snapshot.ops.iter().collect();
    ops.sort_by_key(|(_, o)| std::cmp::Reverse(o.forward.total_ns + o.backward.total_ns));
    println!("{:<22} {:>8} {:>11} {:>8} {:>11}", "Op (top 5)", "Fwd", "Fwd ms", "Bwd", "Bwd ms");
    for (kind, o) in ops.iter().take(5) {
        println!(
            "{:<22} {:>8} {:>11.1} {:>8} {:>11.1}",
            kind,
            o.forward.calls,
            o.forward.total_ns as f64 / 1e6,
            o.backward.calls,
            o.backward.total_ns as f64 / 1e6,
        );
    }
}

fn profile_json(profiles: &[Profile]) -> String {
    let mut s = String::from("{\n  \"models\": {\n");
    for (i, p) in profiles.iter().enumerate() {
        let sep = if i + 1 < profiles.len() { "," } else { "" };
        s.push_str(&format!(
            "    \"{}\": {}{sep}\n",
            p.name,
            snapshot_to_json(&p.snapshot, 4).trim_start()
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Pulls a model's `profile/steps_per_sec` gauge out of a baseline file —
/// same targeted-scan approach as `memplan`'s check, extended to the
/// fractional values a rate gauge carries.
fn baseline_steps_per_sec(json: &str, model: &str) -> Option<f64> {
    let obj = &json[json.find(&format!("\"{model}\""))?..];
    let key = "\"profile/steps_per_sec\"";
    let tail = &obj[obj.find(key)? + key.len()..];
    let number: String = tail
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        // PANICS: a trailing --check with no path is an operator error on
        // the command line; there is nothing to recover.
        args.get(i + 1).unwrap_or_else(|| panic!("profile: --check requires a path argument"))
    });

    let data = tiny(SEED);
    let bcfg = quick_baseline();
    let dcfg = quick_dgnn();
    let batches =
        TrainSampler::new(&data.graph).num_positives().div_ceil(bcfg.batch_size).max(1);
    let steps = (batches * bcfg.epochs) as u64;

    // Reference runs with observability off (DGNN only). The untimed
    // warm-up run first absorbs one-time costs (page faults, allocator
    // growth) that would otherwise be billed to whichever run goes first.
    // The four reference configs are sampled round-robin — one cell of
    // each per round — rather than back-to-back blocks: machine speed on
    // a shared box drifts ±25% on a scale of seconds, so consecutive
    // blocks would hand one config the fast regime and bill another for
    // the slow one, tripping the same-run ratio gates below on pure
    // noise. Interleaving exposes every config to the same regimes, and
    // each config keeps its best cell (the quick preset trains in ~10ms,
    // where a scheduler hiccup swings steps/sec by double digits;
    // interruptions only ever slow a run down, so best-of-N is the
    // noise-robust estimator).
    dgnn_obs::disable();
    run_cell(&mut Dgnn::new(dcfg.clone()), &data, SEED);
    let one_sps = |cfg: &DgnnConfig, force_scalar: bool| -> f64 {
        if force_scalar {
            gemm::set_backend(Some(gemm::Backend::Scalar));
        }
        let cell = run_cell(&mut Dgnn::new(cfg.clone()), &data, SEED);
        if force_scalar {
            gemm::set_backend(None);
        }
        steps as f64 / cell.train_time.as_secs_f64().max(1e-9)
    };
    let pool_width = dgnn_tensor::parallel::auto_threads();
    // The fifth config repeats the default one under `DGNN_GEMM=scalar`
    // semantics (legacy loops), giving the packed-vs-scalar GEMM ratio the
    // same same-run noise robustness as the other ratio gates.
    let configs = [
        (dcfg.clone(), false),
        (dcfg.clone().with_threads(1), false),
        (dcfg.clone().with_threads(pool_width), false),
        (dcfg.clone().with_graph_opt(), false),
        (dcfg.clone(), true),
    ];
    let mut best = [f64::MIN; 5];
    for round in 0..8 {
        // Rotate the starting config so a fast window shorter than a
        // round doesn't always land on the same configuration.
        for i in 0..configs.len() {
            let j = (i + round) % configs.len();
            let (cfg, force_scalar) = &configs[j];
            best[j] = best[j].max(one_sps(cfg, *force_scalar));
        }
    }
    let [sps_disabled, sps_serial, sps_parallel, sps_optimized, sps_gemm_scalar] = best;
    dgnn_tensor::parallel::set_threads(1);

    println!("=== Training profile (tiny dataset, quick configs, planned) ===");
    let mut profiles = Vec::new();
    profiles.push(profile_model(
        "DGNN",
        &mut Dgnn::new(dcfg.clone()),
        &data,
        steps,
        Some(sps_disabled),
        &[
            ("profile/steps_per_sec_serial", sps_serial),
            ("profile/steps_per_sec_parallel", sps_parallel),
            ("profile/steps_per_sec_optimized", sps_optimized),
            ("gemm/steps_per_sec_scalar", sps_gemm_scalar),
        ],
    ));
    // Observed graph-optimized run: `build_harness` publishes the
    // optimizer/{nodes_before,nodes_after,folded,cse_hits,fused} gauges
    // while this model fits, so they land in its exported snapshot.
    profiles.push(profile_model(
        "DGNN_opt",
        &mut Dgnn::new(dcfg.with_graph_opt()),
        &data,
        steps,
        None,
        &[],
    ));
    profiles.push(profile_model("NGCF", &mut Ngcf::new(bcfg.clone()), &data, steps, None, &[]));
    profiles.push(profile_model("DGCF", &mut Dgcf::new(bcfg), &data, steps, None, &[]));
    for p in &profiles {
        print_summary(p);
    }
    let dgnn_sps = profiles[0].steps_per_sec;
    println!(
        "\nDGNN: {dgnn_sps:.1} steps/s observed vs {sps_disabled:.1} steps/s unobserved \
         ({:+.1}% overhead)",
        (sps_disabled / dgnn_sps.max(1e-9) - 1.0) * 100.0,
    );
    println!(
        "DGNN kernels: {sps_serial:.1} steps/s serial vs {sps_parallel:.1} steps/s pooled \
         ({pool_width} thread(s), ratio {:.2})",
        sps_parallel / sps_serial.max(1e-9),
    );
    println!(
        "DGNN optimizer: {sps_optimized:.1} steps/s optimized vs {sps_disabled:.1} steps/s \
         plain (same-run ratio {:.2})",
        sps_optimized / sps_disabled.max(1e-9),
    );
    let gemm_backend = gemm::backend();
    println!(
        "DGNN gemm: {sps_disabled:.1} steps/s on the `{}` backend vs {sps_gemm_scalar:.1} \
         steps/s forced scalar (same-run ratio {:.2})",
        gemm_backend.name(),
        sps_disabled / sps_gemm_scalar.max(1e-9),
    );

    if let Some(path) = check_path {
        let ratio = sps_parallel / sps_serial.max(1e-9);
        if ratio < 1.0 - PARALLEL_BUDGET {
            eprintln!(
                "REGRESSION DGNN: pooled kernels at {sps_parallel:.1} steps/s are more than \
                 {:.0}% below the serial {sps_serial:.1} in the same run \
                 ({pool_width} thread(s))",
                100.0 * PARALLEL_BUDGET,
            );
            return ExitCode::FAILURE;
        }
        // Packed GEMM must beat the legacy scalar loops in the same run —
        // the gate only applies when a packed backend is actually selected
        // (a `DGNN_GEMM=scalar` run compares the scalar loops to
        // themselves, where the only honest expectation is a ratio of 1).
        let gemm_ratio = sps_disabled / sps_gemm_scalar.max(1e-9);
        let gemm_floor = if gemm_backend.is_packed() { GEMM_SPEEDUP_FLOOR } else { 0.85 };
        if gemm_ratio < gemm_floor {
            eprintln!(
                "REGRESSION DGNN: packed GEMM (`{}`) at {sps_disabled:.1} steps/s is below \
                 {gemm_floor:.2}x the same-run forced-scalar {sps_gemm_scalar:.1} \
                 (ratio {gemm_ratio:.2})",
                gemm_backend.name(),
            );
            return ExitCode::FAILURE;
        }
        let json = std::fs::read_to_string(path).expect("profile: reading baseline file");
        let Some(base) = baseline_steps_per_sec(&json, "DGNN") else {
            eprintln!("REGRESSION DGNN: profile/steps_per_sec missing from baseline {path}");
            return ExitCode::FAILURE;
        };
        let floor = base * (1.0 - REGRESSION_BUDGET);
        if dgnn_sps < floor {
            eprintln!(
                "REGRESSION DGNN: {dgnn_sps:.1} steps/s is more than {:.0}% below baseline \
                 {base:.1} (floor {floor:.1})",
                100.0 * REGRESSION_BUDGET,
            );
            return ExitCode::FAILURE;
        }
        let opt_floor = base * OPT_SPEEDUP_FLOOR;
        if sps_optimized < opt_floor {
            eprintln!(
                "REGRESSION DGNN: graph-optimized training at {sps_optimized:.1} steps/s is \
                 below {OPT_SPEEDUP_FLOOR:.2}x the stored baseline {base:.1} \
                 (floor {opt_floor:.1})",
            );
            return ExitCode::FAILURE;
        }
        // Same-run sanity: the rewrite executor (fold-cache verification,
        // congruence checks) must never cost more than the regression
        // budget relative to plain execution on the same machine state.
        let opt_same_run_floor = sps_disabled * (1.0 - REGRESSION_BUDGET);
        if sps_optimized < opt_same_run_floor {
            eprintln!(
                "REGRESSION DGNN: graph-optimized training at {sps_optimized:.1} steps/s is \
                 more than {:.0}% below the same-run plain {sps_disabled:.1}",
                100.0 * REGRESSION_BUDGET,
            );
            return ExitCode::FAILURE;
        }
        println!("steps/sec check passed against {path} ({dgnn_sps:.1} vs baseline {base:.1})");
        println!(
            "parallel/serial check passed ({sps_parallel:.1} vs {sps_serial:.1} steps/s \
             same-run)"
        );
        println!(
            "optimizer check passed ({sps_optimized:.1} steps/s optimized >= \
             {OPT_SPEEDUP_FLOOR:.2}x baseline {base:.1})"
        );
        println!(
            "gemm check passed (`{}` backend at {gemm_ratio:.2}x the same-run scalar \
             loops, floor {gemm_floor:.2})",
            gemm_backend.name(),
        );
        return ExitCode::SUCCESS;
    }

    std::fs::write("BENCH_profile.json", profile_json(&profiles))
        .expect("profile: writing BENCH_profile.json");
    std::fs::create_dir_all("results").expect("profile: creating results dir");
    let threads: Vec<(&str, &[SpanEvent])> =
        profiles.iter().map(|p| (p.name, p.events.as_slice())).collect();
    std::fs::write("results/profile_trace.json", chrome_trace(&threads))
        .expect("profile: writing trace");
    let jsonl: String = profiles.iter().map(|p| events_to_jsonl(&p.events)).collect();
    std::fs::write("results/profile_events.jsonl", jsonl).expect("profile: writing jsonl");
    println!(
        "\nwrote BENCH_profile.json, results/profile_trace.json (load in Perfetto), \
         results/profile_events.jsonl"
    );
    ExitCode::SUCCESS
}
