//! Std-only HTTP/1.1 front end with micro-batched query execution.
//!
//! Three thread groups cooperate over channels:
//!
//! ```text
//! acceptor ──streams──▶ worker pool ──jobs──▶ micro-batcher
//!                        │    ▲                   │
//!                        │    └── per-job reply ──┘
//!                        └──▶ response bytes to the socket
//! ```
//!
//! Workers parse requests and block on a per-job reply channel; the
//! batcher takes the first pending job, drains more until `batch_tick`
//! elapses or `batch_max` is reached, and answers the whole batch with one
//! gathered matmul + one top-K select ([`Engine::recommend_batch`]).
//! Batching is a pure latency/throughput trade: per-query results are
//! bit-identical regardless of which requests happen to share a tick.
//!
//! Request handling *fails soft*: malformed requests, unknown routes,
//! unknown users and bad parameters produce well-formed JSON 4xx/5xx
//! responses — never a panic. Handlers emit `dgnn-obs` spans (active when
//! the handling thread has obs enabled) and record latency/batch samples
//! into [`ServerStats`].
//!
//! # Live telemetry
//!
//! Every request carries a [`RequestTrace`]: phase timings (parse,
//! queue-wait, batch-assembly, engine, write) recorded live into the
//! process-shared histograms, scrapeable while the server runs:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4);
//! * `GET /stats` — the same snapshot as JSON;
//! * `GET /health` — enriched with uptime, requests served, readiness;
//! * `GET /debug/flight` — the flight-recorder ring as JSONL.
//!
//! Worker and batcher threads hold a [`FlightDumpOnPanic`] guard: if one
//! panics, the flight recorder's last ~512 events are dumped as JSONL to
//! [`ServeConfig::flight_dump`] before the thread dies. A deliberate
//! crash for drills lives at `GET /debug/panic`, off unless
//! [`ServeConfig::debug_panic`] opts in.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use dgnn_obs::{flight_record, now_ns, FlightKind};

use crate::engine::{Engine, Query, QueryError, ScoredItem};
use crate::stats::ServerStats;
use crate::trace::{telemetry, PhaseBreakdown, RequestTrace};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads parsing requests and writing responses.
    pub workers: usize,
    /// Maximum queries coalesced into one engine dispatch.
    pub batch_max: usize,
    /// How long the batcher waits for ride-along queries after the first.
    pub batch_tick: Duration,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// `k` used when a request does not specify one.
    pub default_k: usize,
    /// Where a panicking worker/batcher dumps the flight recorder (JSONL).
    /// `None` disables the dump file; `/debug/flight` still serves the
    /// ring.
    pub flight_dump: Option<PathBuf>,
    /// Enables `GET /debug/panic` (crash-drill injection). Off by default;
    /// only test/benchmark harnesses opt in.
    pub debug_panic: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            batch_max: 64,
            batch_tick: Duration::from_millis(2),
            read_timeout: Duration::from_secs(5),
            default_k: 10,
            flight_dump: None,
            debug_panic: false,
        }
    }
}

struct Job {
    query: Query,
    /// [`now_ns`] at enqueue; the batcher derives queue-wait from it.
    enqueued_ns: u64,
    reply: mpsc::Sender<(Result<Vec<ScoredItem>, QueryError>, PhaseBreakdown)>,
}

/// Dumps the flight recorder to a file if the owning thread unwinds.
/// Workers and the batcher hold one for their whole loop; the `Drop` runs
/// during unwinding, after the panic payload is built but before the
/// thread dies, so the dump always captures the `panic` event.
struct FlightDumpOnPanic {
    path: Option<PathBuf>,
}

impl Drop for FlightDumpOnPanic {
    fn drop(&mut self) {
        if !thread::panicking() {
            return;
        }
        flight_record(FlightKind::Panic, 0, 0);
        if let Some(path) = &self.path {
            // Best effort: a failed dump must not double-panic the thread.
            let _ = std::fs::write(path, dgnn_obs::flight_dump_jsonl());
        }
    }
}

/// A running server; dropping (or [`Server::shutdown`]) stops every thread.
pub struct Server {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor, worker pool, and micro-batcher, and
    /// returns once the socket is listening.
    pub fn start(engine: Engine, cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new());
        let stop = Arc::new(AtomicBool::new(false));
        let engine = Arc::new(engine);
        let started = Instant::now();
        let mut threads = Vec::new();

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        {
            let (engine, stats) = (Arc::clone(&engine), Arc::clone(&stats));
            let (batch_max, tick) = (cfg.batch_max.max(1), cfg.batch_tick);
            let dump = cfg.flight_dump.clone();
            // PAR: serving infrastructure thread (request coalescing), not a
            // compute kernel; the engine's kernels still run on the pool.
            let t = thread::Builder::new()
                .name("dgnn-serve-batcher".to_string())
                .spawn(move || batcher_loop(&engine, &stats, &job_rx, batch_max, tick, dump))?;
            threads.push(t);
        }

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        for w in 0..cfg.workers.max(1) {
            let conn_rx = Arc::clone(&conn_rx);
            let job_tx = job_tx.clone();
            let stats = Arc::clone(&stats);
            let engine = Arc::clone(&engine);
            let cfg = cfg.clone();
            // PAR: serving infrastructure thread (socket I/O + parsing), not
            // a compute kernel.
            let t = thread::Builder::new()
                .name(format!("dgnn-serve-worker-{w}"))
                .spawn(move || worker_loop(&conn_rx, &job_tx, &engine, &stats, &cfg, started))?;
            threads.push(t);
        }
        drop(job_tx);

        {
            let stop = Arc::clone(&stop);
            // PAR: serving infrastructure thread (accept loop), not a
            // compute kernel.
            let t = thread::Builder::new().name("dgnn-serve-accept".to_string()).spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(s) = stream {
                        if conn_tx.send(s).is_err() {
                            break;
                        }
                    }
                }
            })?;
            threads.push(t);
        }

        Ok(Self { addr, stats, stop, threads })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's sample collector.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting, drains the thread pool, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn batcher_loop(
    engine: &Engine,
    stats: &ServerStats,
    rx: &mpsc::Receiver<Job>,
    batch_max: usize,
    tick: Duration,
    flight_dump: Option<PathBuf>,
) {
    let _dump_guard = FlightDumpOnPanic { path: flight_dump };
    let mut batch_id = 0u64;
    // Runs until every worker (job sender) has exited.
    while let Ok(first) = rx.recv() {
        let _g = dgnn_obs::span("serve/batch");
        // Per-job dequeue timestamps: queue-wait ends (and batch assembly
        // begins) the moment the batcher takes a job off the channel.
        let mut dequeued_ns = vec![now_ns()];
        let mut jobs = vec![first];
        let deadline = Instant::now() + tick;
        while jobs.len() < batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(j) => {
                    dequeued_ns.push(now_ns());
                    jobs.push(j);
                }
                Err(_) => break,
            }
        }
        batch_id += 1;
        stats.record_batch(jobs.len());
        telemetry().batch_size.record(jobs.len() as f64);
        flight_record(FlightKind::BatchStart, batch_id, jobs.len() as u64);
        let queries: Vec<Query> = jobs.iter().map(|j| j.query).collect();
        let t_engine0 = now_ns();
        let results = engine.recommend_batch(&queries);
        let engine_us = now_ns().saturating_sub(t_engine0) / 1000;
        flight_record(FlightKind::BatchDone, batch_id, engine_us);
        let batch_size = jobs.len() as u32;
        for ((job, result), deq_ns) in jobs.into_iter().zip(results).zip(dequeued_ns) {
            let phases = PhaseBreakdown {
                queue_wait_us: deq_ns.saturating_sub(job.enqueued_ns) / 1000,
                batch_assembly_us: t_engine0.saturating_sub(deq_ns) / 1000,
                engine_us,
                batch_size,
            };
            // A dropped reply receiver just means the client went away.
            let _ = job.reply.send((result, phases));
        }
    }
}

fn worker_loop(
    conn_rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>,
    job_tx: &mpsc::Sender<Job>,
    engine: &Engine,
    stats: &ServerStats,
    cfg: &ServeConfig,
    server_started: Instant,
) {
    let _dump_guard = FlightDumpOnPanic { path: cfg.flight_dump.clone() };
    loop {
        // Take the lock only to pop the next connection; a poisoned lock
        // (a peer worker panicked mid-pop) leaves the queue usable.
        let next = conn_rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
        match next {
            Ok(stream) => handle_connection(stream, job_tx, engine, stats, cfg, server_started),
            Err(_) => return,
        }
    }
}

/// One HTTP exchange; all failures degrade to an error response (or a
/// dropped connection when even writing fails).
fn handle_connection(
    stream: TcpStream,
    job_tx: &mpsc::Sender<Job>,
    engine: &Engine,
    stats: &ServerStats,
    cfg: &ServeConfig,
    server_started: Instant,
) {
    let _g = dgnn_obs::span("serve/request");
    let mut trace = RequestTrace::begin();
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let mut reader = BufReader::new(stream);
    let parsed = read_request(&mut reader);
    trace.parse_us = trace.elapsed_us();
    let ctx = RouteCtx { engine, stats, cfg, server_started };
    let response = match parsed {
        Ok(target) => route(&target, job_tx, &ctx, &mut trace),
        Err(msg) => Response::error(400, &msg),
    };
    let ok = response.status < 400;
    let mut stream = reader.into_inner();
    let t_write0 = now_ns();
    let _ = stream.write_all(response.to_http().as_bytes());
    let _ = stream.flush();
    trace.write_us = now_ns().saturating_sub(t_write0) / 1000;
    stats.record_request(trace.elapsed_us(), ok);
    trace.finish(response.status);
}

/// Read-only state every route handler may need.
struct RouteCtx<'a> {
    engine: &'a Engine,
    stats: &'a ServerStats,
    cfg: &'a ServeConfig,
    server_started: Instant,
}

/// Reads the request line and drains headers. Returns the request target
/// (path + query string) of a well-formed `GET`.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    const MAX_LINE: usize = 8192;
    const MAX_HEADERS: usize = 100;
    let mut line = String::new();
    read_crlf_line(reader, &mut line, MAX_LINE)?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(format!("malformed request line {:?}", line.trim_end())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version:?}"));
    }
    if method != "GET" {
        return Err(format!("unsupported method {method:?} (only GET)"));
    }
    let target = target.to_string();
    // Drain headers up to the blank line; their contents are irrelevant.
    for _ in 0..MAX_HEADERS {
        let mut h = String::new();
        read_crlf_line(reader, &mut h, MAX_LINE)?;
        if h == "\r\n" || h == "\n" || h.is_empty() {
            return Ok(target);
        }
    }
    Err("too many headers".to_string())
}

fn read_crlf_line(reader: &mut BufReader<TcpStream>, buf: &mut String, max: usize) -> Result<(), String> {
    buf.clear();
    let mut bytes = Vec::new();
    loop {
        let available = reader.fill_buf().map_err(|e| format!("read failed: {e}"))?;
        if available.is_empty() {
            break;
        }
        let nl = available.iter().position(|&b| b == b'\n');
        let take = nl.map_or(available.len(), |i| i + 1);
        bytes.extend_from_slice(&available[..take]);
        reader.consume(take);
        if nl.is_some() {
            break;
        }
        if bytes.len() > max {
            return Err("request line too long".to_string());
        }
    }
    match String::from_utf8(bytes) {
        Ok(s) => {
            *buf = s;
            Ok(())
        }
        Err(_) => Err("request is not valid UTF-8".to_string()),
    }
}

fn route(
    target: &str,
    job_tx: &mpsc::Sender<Job>,
    ctx: &RouteCtx<'_>,
    trace: &mut RequestTrace,
) -> Response {
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/health" => Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"users\":{},\"items\":{},\"dim\":{},\
                 \"uptime_secs\":{},\"requests\":{},\"ready\":true}}",
                ctx.engine.num_users(),
                ctx.engine.num_items(),
                ctx.engine.dim(),
                dgnn_obs::export::json_number(ctx.server_started.elapsed().as_secs_f64()),
                ctx.stats.requests_total(),
            ),
        ),
        "/recommend" => recommend_route(query_string, job_tx, ctx.cfg, trace),
        "/metrics" => {
            // Refresh the process RSS gauges so every scrape carries
            // current residency next to the serve counters.
            dgnn_obs::procstat::publish_rss();
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: dgnn_obs::export::prometheus_text(
                    &dgnn_obs::shared::snapshot(),
                    &dgnn_obs::shared::hist_snapshots(),
                ),
            }
        }
        "/stats" => Response::json(
            200,
            dgnn_obs::export::snapshot_to_json(&dgnn_obs::shared::snapshot(), 0),
        ),
        "/debug/flight" => Response {
            status: 200,
            content_type: "application/x-ndjson",
            body: dgnn_obs::flight_dump_jsonl(),
        },
        "/debug/panic" if ctx.cfg.debug_panic => {
            flight_record(FlightKind::Panic, trace.id, 0);
            // SERVE: deliberate crash-drill injection, gated off by default
            // (cfg.debug_panic) — exists to exercise the flight-dump path.
            // PANICS: by design; the worker's FlightDumpOnPanic guard turns
            // this panic into a flight-recorder dump on the way down.
            panic!("panic injected via /debug/panic (request {})", trace.id);
        }
        _ => Response::error(404, &format!("no route for {path:?}")),
    }
}

fn recommend_route(
    query_string: &str,
    job_tx: &mpsc::Sender<Job>,
    cfg: &ServeConfig,
    trace: &mut RequestTrace,
) -> Response {
    let query = match parse_query(query_string, cfg.default_k) {
        Ok(q) => q,
        Err(msg) => return Response::error(400, &msg),
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job { query, enqueued_ns: now_ns(), reply: reply_tx };
    if job_tx.send(job).is_err() {
        return Response::error(503, "server is shutting down");
    }
    match reply_rx.recv_timeout(Duration::from_secs(30)) {
        Ok((result, phases)) => {
            trace.phases = Some(phases);
            match result {
                Ok(items) => Response::json(200, recommendation_body(&query, &items)),
                Err(e @ QueryError::UnknownUser { .. }) => Response::error(404, &e.to_string()),
                Err(e @ QueryError::BadK { .. }) => Response::error(400, &e.to_string()),
                // Valid query, degraded backend (unloadable shard): 503.
                Err(e @ QueryError::ShardUnavailable { .. }) => Response::error(503, &e.to_string()),
            }
        }
        Err(_) => Response::error(503, "query timed out"),
    }
}

/// Parses `user=…&k=…&exclude_seen=…`. `user` is required; `k` defaults to
/// the server's `default_k`; `exclude_seen` defaults to `false` (serve the
/// raw model ranking).
fn parse_query(query_string: &str, default_k: usize) -> Result<Query, String> {
    let mut user: Option<u32> = None;
    let mut k = default_k;
    let mut exclude_seen = false;
    for pair in query_string.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "user" => {
                user = Some(value.parse::<u32>().map_err(|_| format!("user must be a non-negative integer, got {value:?}"))?);
            }
            "k" => {
                k = value.parse::<usize>().map_err(|_| format!("k must be a positive integer, got {value:?}"))?;
            }
            "exclude_seen" => {
                exclude_seen = match value {
                    "true" | "1" => true,
                    "false" | "0" => false,
                    other => return Err(format!("exclude_seen must be true/false, got {other:?}")),
                };
            }
            other => return Err(format!("unknown parameter {other:?}")),
        }
    }
    let user = user.ok_or_else(|| "missing required parameter 'user'".to_string())?;
    Ok(Query { user, k, exclude_seen })
}

fn recommendation_body(q: &Query, items: &[ScoredItem]) -> String {
    let mut body = format!("{{\"user\":{},\"k\":{},\"items\":[", q.user, q.k);
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&s.item.to_string());
    }
    body.push_str("],\"scores\":[");
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&dgnn_obs::export::json_number(f64::from(s.score)));
    }
    body.push_str("]}");
    body
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Self { status, content_type: "application/json", body }
    }

    fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":{},\"status\":{status}}}",
                dgnn_obs::export::json_string(message)
            ),
        )
    }

    fn to_http(&self) -> String {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing_accepts_and_defaults() {
        let q = parse_query("user=7", 10).unwrap();
        assert_eq!(q, Query { user: 7, k: 10, exclude_seen: false });
        let q = parse_query("user=7&k=3&exclude_seen=true", 10).unwrap();
        assert_eq!(q, Query { user: 7, k: 3, exclude_seen: true });
    }

    #[test]
    fn query_parsing_rejects_garbage() {
        assert!(parse_query("", 10).is_err(), "user is required");
        assert!(parse_query("user=-1", 10).is_err());
        assert!(parse_query("user=7&k=abc", 10).is_err());
        assert!(parse_query("user=7&exclude_seen=maybe", 10).is_err());
        assert!(parse_query("user=7&frobnicate=1", 10).is_err());
    }

    #[test]
    fn error_responses_are_well_formed_json() {
        let r = Response::error(400, "bad \"thing\"\n");
        assert!(r.body.starts_with("{\"error\":\"bad \\\"thing\\\"\\n\""));
        let http = r.to_http();
        assert!(http.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(http.contains(&format!("Content-Length: {}", r.body.len())));
    }

    #[test]
    fn recommendation_body_lists_items_and_scores() {
        let q = Query { user: 3, k: 2, exclude_seen: false };
        let body = recommendation_body(
            &q,
            &[ScoredItem { item: 9, score: 1.5 }, ScoredItem { item: 4, score: 0.5 }],
        );
        assert_eq!(body, "{\"user\":3,\"k\":2,\"items\":[9,4],\"scores\":[1.5,0.5]}");
    }
}
