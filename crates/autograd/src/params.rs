//! Trainable parameter storage shared across training steps.

use dgnn_tensor::Matrix;

/// Opaque handle to one parameter tensor inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Debug)]
struct Param {
    name: String,
    value: Matrix,
    grad: Matrix,
    /// Adam first-moment estimate (lazily used; zero for SGD).
    m: Matrix,
    /// Adam second-moment estimate.
    v: Matrix,
}

/// A set of named, trainable tensors with accumulated gradients and
/// per-parameter optimizer state.
///
/// The model owns one `ParamSet` for its whole lifetime; each training step
/// zeroes gradients, runs a tape forward/backward, and lets an
/// [`crate::Optimizer`] update the values in place.
#[derive(Debug, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            name: name.into(),
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
            value,
        });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// Mutable value of a parameter (for manual updates, e.g. HERec's
    /// skip-gram pre-training which bypasses the tape).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Name given at registration.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Adds `g` into the parameter's accumulated gradient.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Zeroes all accumulated gradients (call once per step, before
    /// `backward_into`).
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.scale_assign(0.0);
        }
    }

    /// Squared L2 norm of all parameter values — the `‖Θ‖²` regularization
    /// term of the paper's Eq. 11 (reported for logging; the optimizers
    /// apply its gradient directly as weight decay).
    pub fn sq_norm(&self) -> f32 {
        self.params.iter().map(|p| p.value.sq_norm()).sum()
    }

    /// Global gradient L2 norm across all parameters.
    pub fn grad_norm(&self) -> f32 {
        self.params.iter().map(|p| p.grad.sq_norm()).sum::<f32>().sqrt()
    }

    /// Rescales all gradients so the global norm is at most `max_norm`, and
    /// returns the **pre-clip** norm — the number training loops record
    /// into the `grad_norm/preclip` histogram.
    ///
    /// A non-finite norm (any NaN/∞ in a gradient) is never "clipped":
    /// scaling by `max_norm / norm` would turn every gradient into NaN (or,
    /// for ∞, silently zero the whole step, which older versions did). The
    /// `grad_nonfinite` counter is bumped instead and gradients are left
    /// untouched, so the corruption stays visible to the caller rather than
    /// being laundered into a plausible-looking update.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if !norm.is_finite() {
            dgnn_obs::counter_add("grad_nonfinite", 1);
            return norm;
        }
        if norm > max_norm && norm > 0.0 {
            let k = max_norm / norm;
            for p in &mut self.params {
                p.grad.scale_assign(k);
            }
        }
        norm
    }

    /// All parameter handles, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    pub(crate) fn update_each(
        &mut self,
        mut f: impl FnMut(&mut Matrix, &Matrix, &mut Matrix, &mut Matrix),
    ) {
        for p in &mut self.params {
            f(&mut p.value, &p.grad, &mut p.m, &mut p.v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut set = ParamSet::new();
        let a = set.add("emb", Matrix::full(2, 3, 1.0));
        let b = set.add("w", Matrix::zeros(3, 3));
        assert_eq!(set.len(), 2);
        assert_eq!(set.num_scalars(), 15);
        assert_eq!(set.name(a), "emb");
        assert_eq!(set.value(b).shape(), (3, 3));
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut set = ParamSet::new();
        let a = set.add("p", Matrix::zeros(1, 2));
        set.accumulate_grad(a, &Matrix::row_vector(&[1.0, 2.0]));
        set.accumulate_grad(a, &Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(set.grad(a).as_slice(), &[2.0, 4.0]);
        set.zero_grads();
        assert_eq!(set.grad(a).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_caps_global_norm_and_returns_preclip() {
        let mut set = ParamSet::new();
        let a = set.add("p", Matrix::zeros(1, 2));
        set.accumulate_grad(a, &Matrix::row_vector(&[3.0, 4.0]));
        let pre = set.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-5, "must return the norm before clipping");
        assert!((set.grad_norm() - 1.0).abs() < 1e-5);
        assert!((set.grad(a).as_slice()[0] - 0.6).abs() < 1e-5);
    }

    #[test]
    fn nonfinite_grad_norm_is_counted_not_scaled() {
        let mut set = ParamSet::new();
        let a = set.add("p", Matrix::zeros(1, 2));
        set.accumulate_grad(a, &Matrix::row_vector(&[f32::INFINITY, 1.0]));
        dgnn_obs::reset();
        dgnn_obs::enable();
        let norm = set.clip_grad_norm(1.0);
        dgnn_obs::disable();
        let snap = dgnn_obs::snapshot();
        dgnn_obs::reset();
        assert!(norm.is_infinite());
        assert_eq!(snap.counters["grad_nonfinite"], 1);
        // Finite entries survive unscaled: the old behavior multiplied the
        // whole set by max_norm/∞ = 0, silently erasing the step.
        assert_eq!(set.grad(a).as_slice()[1], 1.0);
    }

    #[test]
    fn sq_norm_sums_params() {
        let mut set = ParamSet::new();
        set.add("a", Matrix::full(1, 2, 2.0));
        set.add("b", Matrix::full(1, 1, 3.0));
        assert_eq!(set.sq_norm(), 17.0);
    }
}
