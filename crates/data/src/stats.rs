//! Dataset statistics (the paper's Table I).

use dgnn_graph::HeteroGraph;

/// Statistics for one dataset in the shape of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// `|U|`.
    pub users: usize,
    /// `|V|`.
    pub items: usize,
    /// Number of (deduplicated) user–item interactions.
    pub interactions: usize,
    /// Interaction density, percent.
    pub interaction_density_pct: f64,
    /// Number of directed social ties (each undirected tie counts twice,
    /// matching the paper's convention).
    pub social_ties: usize,
    /// Social density, percent.
    pub social_density_pct: f64,
    /// `|R|` — item relation nodes (not in Table I but reported alongside).
    pub relations: usize,
    /// Average interactions per user.
    pub interactions_per_user: f64,
    /// Average directed social ties per user.
    pub ties_per_user: f64,
}

impl DatasetStats {
    /// Computes statistics for a graph.
    pub fn compute(name: impl Into<String>, g: &HeteroGraph) -> Self {
        let interactions = g.ui().nnz();
        let users = g.num_users();
        Self {
            name: name.into(),
            users,
            items: g.num_items(),
            interactions,
            interaction_density_pct: g.interaction_density() * 100.0,
            social_ties: g.num_social_ties_directed(),
            social_density_pct: g.social_density() * 100.0,
            relations: g.num_relations(),
            interactions_per_user: interactions as f64 / users as f64,
            ties_per_user: g.num_social_ties_directed() as f64 / users as f64,
        }
    }
}

/// The original published statistics, used for side-by-side reporting in
/// the `table1` experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperDatasetStats {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// `# of Users`.
    pub users: usize,
    /// `# of Items`.
    pub items: usize,
    /// `# of User-Item Interactions`.
    pub interactions: usize,
    /// `Interaction Density Degree`, percent.
    pub interaction_density_pct: f64,
    /// `# of Social Ties`.
    pub social_ties: usize,
    /// `Social Tie Density Degree`, percent.
    pub social_density_pct: f64,
}

impl PaperDatasetStats {
    /// Average interactions per user in the original crawl.
    pub fn interactions_per_user(&self) -> f64 {
        self.interactions as f64 / self.users as f64
    }

    /// Average directed ties per user in the original crawl.
    pub fn ties_per_user(&self) -> f64 {
        self.social_ties as f64 / self.users as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::HeteroGraphBuilder;

    #[test]
    fn computes_expected_numbers() {
        let mut b = HeteroGraphBuilder::new(2, 4, 1);
        b.interaction(0, 0, 0).interaction(0, 1, 1).interaction(1, 2, 0).social_tie(0, 1);
        let s = DatasetStats::compute("toy", &b.build());
        assert_eq!(s.users, 2);
        assert_eq!(s.items, 4);
        assert_eq!(s.interactions, 3);
        assert!((s.interaction_density_pct - 37.5).abs() < 1e-9);
        assert_eq!(s.social_ties, 2);
        assert!((s.social_density_pct - 50.0).abs() < 1e-9);
        assert!((s.interactions_per_user - 1.5).abs() < 1e-9);
    }

    #[test]
    fn paper_table1_aggregates() {
        let ciao = crate::PAPER_TABLE1[0];
        assert!((ciao.interactions_per_user() - 15.777).abs() < 0.01);
        assert!((ciao.ties_per_user() - 33.81).abs() < 0.01);
    }
}
