//! Embedding projection and separation metrics for the paper's case
//! studies (Figures 9–10).
//!
//! A figure cannot be checked in CI, so alongside the 2-D projections
//! ([`tsne`], [`pca`]) this crate provides *quantitative* separation
//! metrics ([`separation`]) that turn the paper's visual claims ("DGNN
//! separates users better", "socially-tied users share social memory
//! attention") into measurable numbers recorded in EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod pca;
pub mod separation;
pub mod tsne;

pub use pca::pca_2d;
pub use separation::{attention_similarity_gap, cluster_separation, silhouette};
pub use tsne::{tsne_2d, TsneConfig};
