//! Shape tests for the paper's core claims at miniature scale: the
//! heterogeneous context must genuinely help, and the disentangled
//! machinery must expose it.

use dgnn_core::Dgnn;
use dgnn_data::tiny;
use dgnn_eval::{evaluate_at, Trainable};
use dgnn_integration_tests::quick_dgnn;

/// Averages HR@10 over a few seeds to damp single-seed noise.
fn mean_hr(cfg: dgnn_core::DgnnConfig, seeds: &[u64]) -> f64 {
    let data = tiny(42);
    seeds
        .iter()
        .map(|&s| {
            let mut m = Dgnn::new(cfg.clone());
            m.fit(&data, s);
            evaluate_at(&m, &data.test, 10).hr
        })
        .sum::<f64>()
        / seeds.len() as f64
}

#[test]
fn removing_all_context_hurts() {
    // Figure 5's strongest claim, miniature: -ST must not beat the full
    // model by a meaningful margin (and usually loses). The synthetic
    // world plants social homophily and category structure, so this tests
    // that DGNN actually extracts them.
    let seeds = [1, 2, 3];
    let full = mean_hr(quick_dgnn(), &seeds);
    let stripped = mean_hr(quick_dgnn().without_social_and_knowledge(), &seeds);
    assert!(
        full >= stripped - 0.02,
        "full model ({full:.4}) lost to -ST ({stripped:.4})"
    );
}

#[test]
fn propagation_beats_no_propagation() {
    // Figure 7's L-sweep claim, miniature: L = 2 beats L = 0.
    let seeds = [1, 2, 3];
    let l2 = mean_hr(quick_dgnn(), &seeds);
    let l0 = mean_hr(dgnn_core::DgnnConfig { layers: 0, ..quick_dgnn() }, &seeds);
    assert!(
        l2 > l0 - 0.02,
        "propagation (L=2, {l2:.4}) should not lose to embeddings-only (L=0, {l0:.4})"
    );
}

#[test]
fn attention_vectors_differ_between_banks() {
    // Figure 10's premise: the social and interaction banks learn
    // *different* attention patterns (otherwise disentanglement is a
    // no-op).
    let data = tiny(42);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, 7);
    let social = model.memory_attention(dgnn_core::MemoryBankKind::SocialToUser);
    let inter = model.memory_attention(dgnn_core::MemoryBankKind::UserToItem);
    let diff = social.sub(inter).sq_norm();
    assert!(diff > 1e-4, "banks collapsed to identical attention ({diff})");
}
