//! Observability integration: the spans the training stack emits, the
//! stability of the exported schemas, and the cost of the observer.

use std::borrow::Cow;
use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape};
use dgnn_core::training::{run_bpr, TrainLoop};
use dgnn_core::Dgnn;
use dgnn_data::TrainSampler;
use dgnn_eval::Trainable;
use dgnn_graph::{HeteroGraph, HeteroGraphBuilder};
use dgnn_integration_tests::quick_dgnn;
use dgnn_obs::export::{chrome_trace, events_to_jsonl, snapshot_to_json, span_totals};
use dgnn_obs::{SpanEvent, SpanPhase};
use dgnn_tensor::Init;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tiny planted graph: 4 users × 12 items, 24 interactions.
fn planted_graph() -> HeteroGraph {
    let mut b = HeteroGraphBuilder::new(4, 12, 1);
    for u in 0..2 {
        for v in 0..6 {
            b.interaction(u, v, 0);
        }
    }
    for u in 2..4 {
        for v in 6..12 {
            b.interaction(u, v, 0);
        }
    }
    b.build()
}

/// Matrix-factorization BPR on the planted graph, the smallest real
/// consumer of `run_bpr`.
fn run_mf_bpr(graph: &HeteroGraph, loop_cfg: TrainLoop) {
    let sampler = TrainSampler::new(graph);
    let mut rng = StdRng::seed_from_u64(0);
    let mut params = ParamSet::new();
    let eu = params.add("eu", Init::Uniform(0.1).build(4, 32, &mut rng));
    let ev = params.add("ev", Init::Uniform(0.1).build(12, 32, &mut rng));
    let mut adam = Adam::new(0.05, 1e-5);
    run_bpr(
        loop_cfg,
        &mut params,
        &mut adam,
        &sampler,
        7,
        |tape, params, triples| {
            let eu = tape.param(params, eu);
            let ev = tape.param(params, ev);
            let users: Rc<Vec<usize>> =
                Rc::new(triples.iter().map(|t| t.user as usize).collect());
            let pos: Rc<Vec<usize>> =
                Rc::new(triples.iter().map(|t| t.pos as usize).collect());
            let neg: Rc<Vec<usize>> =
                Rc::new(triples.iter().map(|t| t.neg as usize).collect());
            let ue = tape.gather(eu, users);
            let pe = tape.gather(ev, pos);
            let ne = tape.gather(ev, neg);
            (tape.row_dots(ue, pe), tape.row_dots(ue, ne))
        },
        |_, _| {},
    );
}

#[test]
fn run_bpr_emits_exactly_epochs_times_batches_batch_spans() {
    let graph = planted_graph();
    let loop_cfg = TrainLoop { epochs: 3, batch_size: 8, grad_clip: 10.0 };
    let batches_per_epoch = TrainSampler::new(&graph)
        .num_positives()
        .div_ceil(loop_cfg.batch_size)
        .max(1);
    assert_eq!(batches_per_epoch, 3, "planted graph: 24 positives / 8 per batch");

    dgnn_obs::reset();
    dgnn_obs::enable();
    run_mf_bpr(&graph, loop_cfg);
    let events = dgnn_obs::take_events();
    dgnn_obs::disable();
    dgnn_obs::reset();

    let batch_begins = events
        .iter()
        .filter(|e| e.name == "batch" && e.phase == SpanPhase::Begin)
        .count();
    assert_eq!(batch_begins, loop_cfg.epochs * batches_per_epoch);
    let epoch_begins = events
        .iter()
        .filter(|e| e.name == "epoch" && e.phase == SpanPhase::Begin)
        .count();
    assert_eq!(epoch_begins, loop_cfg.epochs);

    // Every batch contains exactly one forward, backward, and optimizer span.
    for inner in ["forward", "backward", "optimizer"] {
        let n = events
            .iter()
            .filter(|e| e.name == inner && e.phase == SpanPhase::Begin)
            .count();
        assert_eq!(n, batch_begins, "one {inner} span per batch");
    }

    // Timestamps are monotone and begin/end pairs balance at every depth.
    let mut last = 0;
    let mut depth = 0i64;
    for e in &events {
        assert!(e.t_ns >= last, "timestamps must be monotone");
        last = e.t_ns;
        match e.phase {
            SpanPhase::Begin => {
                depth += 1;
                assert_eq!(i64::from(e.depth), depth - 1);
            }
            SpanPhase::End => {
                depth -= 1;
                assert_eq!(i64::from(e.depth), depth);
            }
        }
        assert!(depth >= 0, "end without a matching begin");
    }
    assert_eq!(depth, 0, "every span must be closed");

    // span_totals sees the same counts the raw filter does.
    let totals = span_totals(&events);
    assert_eq!(totals["batch"].0, batch_begins as u64);
    assert_eq!(totals["epoch"].0, epoch_begins as u64);
}

#[test]
fn disabled_observer_records_nothing_across_a_full_fit() {
    dgnn_obs::reset();
    dgnn_obs::disable();
    let data = dgnn_data::tiny(11);
    Dgnn::new(quick_dgnn()).fit(&data, 3);
    assert!(dgnn_obs::take_events().is_empty(), "no span events while disabled");
    let snap = dgnn_obs::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.ops.is_empty());
}

#[test]
fn dgnn_fit_populates_every_metric_family() {
    dgnn_obs::reset();
    dgnn_obs::enable();
    let data = dgnn_data::tiny(11);
    Dgnn::new(quick_dgnn().with_memory_plan()).fit(&data, 3);
    let events = dgnn_obs::take_events();
    let snap = dgnn_obs::snapshot();
    dgnn_obs::disable();
    dgnn_obs::reset();

    let totals = span_totals(&events);
    for phase in ["epoch", "batch", "forward", "backward", "optimizer"] {
        assert!(totals.contains_key(phase), "missing {phase} span");
        assert!(totals[phase].1 > 0, "{phase} total time must be positive");
    }
    for hist in ["epoch_mean_loss", "grad_norm/preclip", "grad_norm/postclip"] {
        let h = snap.histograms.get(hist).unwrap_or_else(|| panic!("missing {hist}"));
        assert!(h.count > 0);
        assert!(h.min <= h.max);
    }
    // The tape profiler attributes time to canonical op kinds only.
    assert!(!snap.ops.is_empty(), "op profile must be populated");
    for (kind, stat) in &snap.ops {
        assert!(
            dgnn_autograd::meta::ALL_OPS.contains(&kind.as_str()),
            "unknown op kind {kind}"
        );
        assert!(stat.forward.calls > 0, "{kind} must have forward calls");
    }
}

#[test]
fn jsonl_and_chrome_exports_keep_their_schema() {
    dgnn_obs::reset();
    dgnn_obs::enable();
    {
        let _outer = dgnn_obs::span("outer");
        let _inner = dgnn_obs::span("inner");
    }
    let events = dgnn_obs::take_events();
    dgnn_obs::disable();
    dgnn_obs::reset();
    assert_eq!(events.len(), 4);

    // Golden JSONL schema: the exact key set and order tools depend on.
    let jsonl = events_to_jsonl(&events);
    for (line, e) in jsonl.lines().zip(&events) {
        let expected = format!(
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"t_ns\":{},\"depth\":{}}}",
            e.name,
            e.phase.chrome_ph(),
            e.t_ns,
            e.depth
        );
        assert_eq!(line, expected);
    }

    // Golden Chrome trace schema: metadata record first, then per-event
    // records carrying the fields Perfetto requires (ph/ts/pid/tid).
    let trace = chrome_trace(&[("main", &events)]);
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
         \"args\":{\"name\":\"main\"}}"
    ));
    assert!(trace.contains("\"name\":\"outer\",\"cat\":\"dgnn\",\"ph\":\"B\""));
    assert!(trace.contains("\"ph\":\"E\""));
    assert!(trace.ends_with("],\"displayTimeUnit\":\"ms\"}"));

    // Snapshot schema: all four sections always present.
    let snap = dgnn_obs::snapshot();
    let json = snapshot_to_json(&snap, 0);
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"ops\""] {
        assert!(json.contains(section), "snapshot must always carry {section}");
    }
}

#[test]
fn owned_span_names_survive_export() {
    dgnn_obs::reset();
    dgnn_obs::enable();
    {
        let _g = dgnn_obs::span_owned(format!("model-{}", 3));
    }
    let events = dgnn_obs::take_events();
    dgnn_obs::disable();
    dgnn_obs::reset();
    assert_eq!(events[0].name, Cow::<'static, str>::Owned("model-3".to_string()));
    assert!(events_to_jsonl(&events).contains("\"model-3\""));
}

/// Enabled-observer overhead on a training-shaped workload must stay
/// small. Two defenses make the comparison stable on a busy shared box:
///
/// * **Thread CPU time** ([`dgnn_obs::thread_cpu_ns`]), not wall time:
///   wall time charges whichever arm happens to be running for every
///   deschedule and steal interval — ±25% swings that drowned any usable
///   bound and made this test flaky — while CPU time counts only work
///   the thread itself did, which is what "observer overhead" means.
/// * **Position-balanced blocks**: even per-thread CPU cost of the
///   identical pass drifts ±30% over a scale of seconds on shared
///   hardware (frequency scaling, cache pressure from neighbors). Each
///   block therefore runs disabled–enabled–enabled–disabled, so smooth
///   drift contributes equally to both arms and cancels in the block's
///   ratio; the median across blocks then discards blocks where an
///   abrupt shift landed mid-block.
///
/// The asserted bound is 10%: twice the ≤5% the `profile` binary
/// measures on quiet hardware, because even this estimator only resolves
/// a few percent here. A real regression in the recording hot path shows
/// up at far above this guard band. The workload is matmul-heavy (like
/// real training) so the per-op cost of the profiler is amortized the
/// way it is in practice.
#[test]
fn enabled_observer_overhead_is_bounded() {
    fn pass(params: &mut ParamSet, a: ParamId, b: ParamId) {
        for _ in 0..3 {
            let mut tape = Tape::new();
            let va = tape.param(params, a);
            let vb = tape.param(params, b);
            let mut x = tape.matmul(va, vb);
            for _ in 0..4 {
                x = tape.matmul(x, vb);
            }
            let loss = tape.sum_all(x);
            params.zero_grads();
            tape.backward_into(loss, params);
        }
    }

    let clock = || dgnn_obs::thread_cpu_ns().unwrap_or_else(dgnn_obs::now_ns);

    let mut rng = StdRng::seed_from_u64(3);
    let mut params = ParamSet::new();
    // Batch-of-activations × square-weight shapes: per-op observer cost
    // only amortizes at realistic operand sizes, and training never runs
    // matmuls smaller than a sampled batch against a 64-d embedding table.
    let a = params.add("a", Init::Uniform(0.1).build(128, 64, &mut rng));
    let b = params.add("b", Init::Uniform(0.1).build(64, 64, &mut rng));

    dgnn_obs::reset();
    dgnn_obs::disable();
    pass(&mut params, a, b); // warm-up: touch pages, grow the allocator

    let timed_pass = |on: bool, params: &mut ParamSet| {
        if on {
            dgnn_obs::enable();
        } else {
            dgnn_obs::disable();
        }
        let t0 = clock();
        pass(params, a, b);
        (clock() - t0).max(1) as f64
    };

    let mut ratios = Vec::new();
    for _ in 0..16 {
        let d1 = timed_pass(false, &mut params);
        let e1 = timed_pass(true, &mut params);
        let e2 = timed_pass(true, &mut params);
        let d2 = timed_pass(false, &mut params);
        ratios.push(((e1 * e2) / (d1 * d2)).sqrt());
        // Drain the event buffer so no block pays for an ever-growing
        // backlog the previous blocks accumulated.
        let _ = dgnn_obs::take_events();
    }
    dgnn_obs::disable();
    dgnn_obs::reset();

    ratios.sort_by(f64::total_cmp);
    let overhead = ratios[ratios.len() / 2] - 1.0; // upper median: conservative
    assert!(
        overhead <= 0.10,
        "observer overhead {:.2}% exceeds the 10% guard band \
         (per-block enabled/disabled thread-CPU ratios: {ratios:.3?})",
        overhead * 100.0
    );
}

/// `SpanEvent` re-export sanity: the bench profiler moves events across
/// crate boundaries; keep the type usable from downstream crates.
#[test]
fn span_events_are_cloneable_across_crates() {
    let e = SpanEvent {
        name: Cow::Borrowed("x"),
        phase: SpanPhase::Begin,
        t_ns: 1,
        depth: 0,
    };
    let copy = e.clone();
    assert_eq!(copy.name, e.name);
}
