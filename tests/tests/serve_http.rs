//! HTTP serving tests: the server must answer well-formed queries with
//! recommendation JSON and *every* malformed or abusive request with a
//! well-formed JSON error — correct 4xx status, an `"error"` key, and a
//! worker pool that stays alive for the next connection. No training:
//! the engine is built from a hand-made checkpoint.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dgnn_serve::{Checkpoint, Engine, ServeConfig, Server};
use dgnn_tensor::Matrix;

/// 4 users × 6 items, user u's embedding picks out distinct favorites.
fn test_engine() -> Engine {
    let mut ckpt = Checkpoint::new();
    ckpt.set_meta("model", "http-test");
    let user = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 0.5]);
    let item =
        Matrix::from_vec(6, 2, vec![0.9, 0.1, 0.1, 0.9, 0.5, 0.5, 0.2, 0.3, 0.8, 0.2, 0.0, 0.0]);
    ckpt.push_matrix("final/user", &user);
    ckpt.push_matrix("final/item", &item);
    // User 0 has seen items 0 and 4; others have seen nothing.
    ckpt.push_u32("seen/indptr", vec![0, 2, 2, 2, 2]);
    ckpt.push_u32("seen/items", vec![0, 4]);
    Engine::from_checkpoint(&ckpt).unwrap()
}

fn start() -> Server {
    Server::start(test_engine(), ServeConfig::default()).unwrap()
}

/// One request/response exchange; returns (status, body).
fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let raw = exchange(addr, format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
    let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn exchange(addr: SocketAddr, payload: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Tolerate a broken pipe: the server may reject and close before the
    // whole payload (e.g. the oversized-line probe) is written.
    s.write_all(payload).ok();
    s.shutdown(std::net::Shutdown::Write).ok();
    let mut raw = String::new();
    s.read_to_string(&mut raw).unwrap();
    raw
}

/// Minimal well-formedness check for an error payload: a JSON object with
/// an `"error"` string — what a client-side handler keys on.
fn assert_json_error(status: u16, body: &str, want: u16, what: &str) {
    assert_eq!(status, want, "{what}: wrong status ({body:?})");
    assert!(
        body.trim_start().starts_with('{') && body.trim_end().ends_with('}'),
        "{what}: body is not a JSON object: {body:?}"
    );
    assert!(body.contains("\"error\""), "{what}: missing error key: {body:?}");
}

#[test]
fn health_and_recommendation_roundtrip() {
    let server = start();
    let addr = server.addr();

    let (status, body) = get(addr, "/health");
    assert_eq!(status, 200, "health: {body:?}");

    let (status, body) = get(addr, "/recommend?user=0&k=3");
    assert_eq!(status, 200, "recommend: {body:?}");
    for key in ["\"user\":0", "\"k\":3", "\"items\":[", "\"scores\":["] {
        assert!(body.contains(key), "recommend body missing {key}: {body:?}");
    }

    // exclude_seen drops user 0's training items (0 and 4) from the list.
    let (status, body) = get(addr, "/recommend?user=0&k=6&exclude_seen=true");
    assert_eq!(status, 200);
    let items = body.split("\"items\":[").nth(1).unwrap().split(']').next().unwrap();
    let ids: Vec<u32> = items.split(',').map(|s| s.trim().parse().unwrap()).collect();
    assert!(!ids.contains(&0) && !ids.contains(&4), "seen items served: {ids:?}");
    assert_eq!(ids.len(), 4, "6 items minus 2 seen: {ids:?}");

    server.shutdown();
}

#[test]
fn malformed_requests_get_json_errors_and_server_survives() {
    let server = start();
    let addr = server.addr();

    for (target, want, what) in [
        ("/recommend", 400, "missing user"),
        ("/recommend?user=", 400, "empty user"),
        ("/recommend?user=abc", 400, "non-numeric user"),
        ("/recommend?user=0&k=0", 400, "zero k"),
        ("/recommend?user=0&k=-3", 400, "negative k"),
        ("/recommend?user=0&k=abc", 400, "non-numeric k"),
        ("/recommend?user=0&exclude_seen=maybe", 400, "bad flag"),
        ("/recommend?user=0&frobnicate=1", 400, "unknown parameter"),
        ("/recommend?user=4", 404, "user out of range"),
        ("/recommend?user=4294967295", 404, "u32::MAX user"),
        ("/nope", 404, "unknown route"),
        ("/", 404, "root route"),
    ] {
        let (status, body) = get(addr, target);
        assert_json_error(status, &body, want, what);
    }

    // Protocol-level abuse: each must come back as a 400 JSON error.
    for (payload, what) in [
        (&b"\x00\x01\xfe garbage\r\n\r\n"[..], "binary garbage"),
        (&b"POST /recommend HTTP/1.1\r\n\r\n"[..], "unsupported method"),
        (&b"GET /health SPEAK/9.9\r\n\r\n"[..], "unknown protocol"),
        (&b"GET\r\n\r\n"[..], "request line too short"),
    ] {
        let raw = exchange(addr, payload);
        assert!(raw.starts_with("HTTP/1.1 400"), "{what}: {raw:?}");
        assert!(raw.contains("\"error\""), "{what}: no JSON error body: {raw:?}");
    }

    // An over-long request line must be rejected, not buffered forever.
    let long = format!("GET /recommend?user={} HTTP/1.1\r\n\r\n", "9".repeat(10_000));
    let raw = exchange(addr, long.as_bytes());
    assert!(raw.starts_with("HTTP/1.1 400"), "oversized line: {raw:?}");

    // A client that connects and hangs up sends nothing; the worker just
    // moves on.
    drop(TcpStream::connect(addr).unwrap());

    // After all of the abuse, the pool still answers.
    let (status, _) = get(addr, "/health");
    assert_eq!(status, 200, "server died under malformed traffic");
    let (status, body) = get(addr, "/recommend?user=1&k=2");
    assert_eq!(status, 200, "recommendations broken after abuse: {body:?}");

    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_answers() {
    let server = start();
    let addr = server.addr();
    let mut handles = Vec::new();
    for c in 0..8u32 {
        handles.push(std::thread::spawn(move || {
            let mut ok = 0;
            for r in 0..25u32 {
                let (status, _) = get(addr, &format!("/recommend?user={}&k=3", (c + r) % 4));
                if status == 200 {
                    ok += 1;
                }
            }
            ok
        }));
    }
    let ok: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(ok, 8 * 25, "some concurrent requests failed");
    server.shutdown();
}
