//! NGCF and GCCF: graph collaborative filtering over the unified graph.
//!
//! Per the paper's fair-comparison note (§V-A2), both CF baselines are
//! *enhanced with the diverse context*: they propagate over the unified
//! user–item–relation graph including the social and knowledge edges, but
//! treat all edges homogeneously — which is exactly the capability gap
//! DGNN's relation-aware disentanglement is designed to close.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler, Triple};
use dgnn_eval::{EmbeddingExport, Recommender, Trainable};
use dgnn_graph::UnifiedView;
use dgnn_tensor::{Csr, Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, probe_batch, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Which CF variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    /// Wang et al., SIGIR'19: nonlinear propagation with feature
    /// interaction terms, cross-layer concatenation.
    Ngcf,
    /// Chen et al., AAAI'20: linear residual graph convolution (the
    /// nonlinearity removed to fight overfitting).
    Gccf,
}

struct State {
    emb: ParamId,
    w1: Vec<ParamId>,
    w2: Vec<ParamId>,
    adj: Rc<Csr>,
    adj_t: Rc<Csr>,
    user_rows: Rc<Vec<usize>>,
    item_rows: Rc<Vec<usize>>,
}

/// Registers parameters and precomputes the propagation structure —
/// shared by training and by the static-analysis trace entry.
fn build_state(
    variant: Variant,
    cfg: &BaselineConfig,
    data: &Dataset,
    seed: u64,
) -> (ParamSet, State) {
    let g = &data.graph;
    let view = UnifiedView::new(g);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = ParamSet::new();
    let emb = params.add("emb", Init::Uniform(0.1).build(view.num_nodes(), cfg.dim, &mut rng));
    let mut w1 = Vec::new();
    let mut w2 = Vec::new();
    for l in 0..cfg.layers {
        w1.push(params.add(
            format!("w1[{l}]"),
            Init::XavierUniform.build(cfg.dim, cfg.dim, &mut rng),
        ));
        // GCCF's linear convolution has no feature-interaction term, so W₂
        // would be registered but never reach the loss — the graph auditor
        // flags exactly this as an UnusedParam. Register it for NGCF only
        // (burning the draws keeps the W₁ init stream variant-independent).
        let w2_init = Init::XavierUniform.build(cfg.dim, cfg.dim, &mut rng);
        if variant == Variant::Ngcf {
            w2.push(params.add(format!("w2[{l}]"), w2_init));
        }
    }
    let adj = g.unified_adj(true, true).sym_normalized();
    let adj_t = Rc::new(adj.transpose());
    let st = State {
        emb,
        w1,
        w2,
        adj: Rc::new(adj),
        adj_t,
        user_rows: Rc::new((0..g.num_users()).map(|u| view.user(u)).collect()),
        item_rows: Rc::new((0..g.num_items()).map(|v| view.item(v)).collect()),
    };
    (params, st)
}

fn forward<R: Recorder>(
    st: &State,
    variant: Variant,
    layers: usize,
    tape: &mut R,
    params: &ParamSet,
) -> (Var, Var) {
    let mut h = tape.param(params, st.emb);
    let mut outs = vec![h];
    for l in 0..layers {
        let agg = tape.spmm_with(&st.adj, &st.adj_t, h);
        h = match variant {
            Variant::Ngcf => {
                // LeakyReLU( (Â+I) H W₁ + (ÂH ⊙ H) W₂ )
                let w1 = tape.param(params, st.w1[l]);
                let w2 = tape.param(params, st.w2[l]);
                let self_plus_agg = tape.add(agg, h);
                let lin = tape.matmul(self_plus_agg, w1);
                let inter = tape.mul(agg, h);
                let inter = tape.matmul(inter, w2);
                let s = tape.add(lin, inter);
                tape.leaky_relu(s, 0.2)
            }
            Variant::Gccf => {
                // Linear residual convolution: Â H W (no activation).
                let w1 = tape.param(params, st.w1[l]);
                tape.matmul(agg, w1)
            }
        };
        outs.push(h);
    }
    let cat = tape.concat_cols(&outs);
    let cat = tape.l2_normalize_rows(cat, 1e-9);
    let users = tape.gather(cat, Rc::clone(&st.user_rows));
    let items = tape.gather(cat, Rc::clone(&st.item_rows));
    (users, items)
}

/// Shared implementation of the two graph-CF baselines.
struct GraphCf {
    variant: Variant,
    cfg: BaselineConfig,
    scorer: Scorer,
    loss_history: Vec<f32>,
}

impl GraphCf {
    fn new(variant: Variant, cfg: BaselineConfig) -> Self {
        Self { variant, cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }

    fn static_name(&self) -> &'static str {
        match self.variant {
            Variant::Ngcf => "NGCF",
            Variant::Gccf => "GCCF",
        }
    }

    fn fit_impl(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let (mut params, st) = build_state(self.variant, &self.cfg, data, seed);

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let (variant, layers) = (self.variant, self.cfg.layers);
        let harness = dgnn_core::training::build_harness(
            self.cfg.use_memory_plan,
            self.cfg.use_graph_opt,
            |tr| {
                let probe = probe_batch(&sampler, self.cfg.batch_size, seed);
                let (users, items) = forward(&st, variant, layers, tr, &params);
                bpr_from_embeddings(tr, users, items, &BatchIdx::new(&probe))
            },
        );
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            harness,
            |tape, params, triples, _| {
                let (users, items) = forward(&st, variant, layers, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, variant, layers, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score(self.static_name(), user, items)
    }

    /// Final embeddings for visualization (users, items).
    fn embeddings(&self) -> (&Matrix, &Matrix) {
        (&self.scorer.user, &self.scorer.item)
    }
}

macro_rules! cf_public_wrapper {
    ($(#[$doc:meta])* $name:ident, $variant:expr) => {
        $(#[$doc])*
        pub struct $name(GraphCf);

        impl $name {
            /// Creates an untrained model.
            pub fn new(cfg: BaselineConfig) -> Self {
                Self(GraphCf::new($variant, cfg))
            }

            /// Mean BPR loss per epoch (after `fit`).
            pub fn loss_history(&self) -> &[f32] {
                &self.0.loss_history
            }

            /// Final `(user, item)` embeddings (after `fit`).
            pub fn embeddings(&self) -> (&Matrix, &Matrix) {
                self.0.embeddings()
            }

            /// Records one full training step (forward pass + BPR loss over
            /// `triples`) onto `rec` without training — the static-analysis
            /// entry point. Returns the registered parameters and the loss
            /// variable; the graph is identical to what `fit` differentiates.
            pub fn trace_step<R: Recorder>(
                cfg: &BaselineConfig,
                data: &Dataset,
                triples: &[Triple],
                seed: u64,
                rec: &mut R,
            ) -> (ParamSet, Var) {
                let _span = dgnn_obs::span(concat!(stringify!($name), "/trace_step"));
                let (params, st) = build_state($variant, cfg, data, seed);
                let (users, items) = forward(&st, $variant, cfg.layers, rec, &params);
                let loss = bpr_from_embeddings(rec, users, items, &BatchIdx::new(triples));
                (params, loss)
            }
        }

        impl Recommender for $name {
            fn name(&self) -> &str {
                self.0.static_name()
            }
            fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
                self.0.score(user, items)
            }
        }

        impl Trainable for $name {
            fn fit(&mut self, data: &Dataset, seed: u64) {
                self.0.fit_impl(data, seed);
            }
        }

        // The scorer is the plain dot product of these two matrices, so the
        // generic checkpoint path reproduces `score` bit-for-bit.
        impl EmbeddingExport for $name {
            fn embeddings(&self) -> (&Matrix, &Matrix) {
                self.0.embeddings()
            }
        }
    };
}

cf_public_wrapper!(
    /// NGCF (Wang et al., SIGIR 2019), context-enhanced per the paper.
    Ngcf,
    Variant::Ngcf
);
cf_public_wrapper!(
    /// GCCF (Chen et al., AAAI 2020), context-enhanced per the paper.
    Gccf,
    Variant::Gccf
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn ngcf_beats_random() {
        assert_beats_random(&mut Ngcf::new(quick()));
    }

    #[test]
    fn gccf_beats_random() {
        assert_beats_random(&mut Gccf::new(quick()));
    }

    #[test]
    fn loss_decreases() {
        let data = dgnn_data::tiny(1);
        let mut m = Ngcf::new(quick());
        m.fit(&data, 3);
        let h = m.loss_history();
        assert!(h.first() > h.last(), "loss did not decrease: {h:?}");
    }

    #[test]
    fn embeddings_exposed_after_fit() {
        let data = dgnn_data::tiny(1);
        let mut m = Gccf::new(quick());
        m.fit(&data, 3);
        let (u, v) = m.embeddings();
        assert_eq!(u.rows(), data.graph.num_users());
        assert_eq!(v.rows(), data.graph.num_items());
    }
}
