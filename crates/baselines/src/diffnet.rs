//! DiffNet (Wu et al., SIGIR 2019): layer-wise social influence diffusion.
//!
//! The distinguishing mechanism: user embeddings diffuse through the social
//! graph (`h_u^{l+1} = mean_{f ∈ N^S(u)} h_f^l + h_u^l`) for `L` layers,
//! and the final user representation fuses the diffused social interest
//! with the mean of the user's interacted-item embeddings.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_tensor::{Csr, Init};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

struct State {
    e_user: ParamId,
    e_item: ParamId,
    social: Rc<Csr>,
    social_t: Rc<Csr>,
    ui: Rc<Csr>,
    ui_t: Rc<Csr>,
}

fn forward(st: &State, layers: usize, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    let mut hu = tape.param(params, st.e_user);
    let hv = tape.param(params, st.e_item);
    // Social diffusion layers.
    for _ in 0..layers.max(1) {
        let diffused = tape.spmm_with(&st.social, &st.social_t, hu);
        hu = tape.add(diffused, hu);
    }
    // Fuse with interacted-item history.
    let hist = tape.spmm_with(&st.ui, &st.ui_t, hv);
    let users = tape.add(hu, hist);
    (users, hv)
}

/// The DiffNet social diffusion recommender.
pub struct DiffNet {
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean BPR loss per epoch.
    pub loss_history: Vec<f32>,
}

impl DiffNet {
    /// Creates an untrained model.
    pub fn new(cfg: BaselineConfig) -> Self {
        Self { cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }
}

impl Recommender for DiffNet {
    fn name(&self) -> &str {
        "DiffNet"
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score("DiffNet", user, items)
    }
}

impl Trainable for DiffNet {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let e_user =
            params.add("e_user", Init::Uniform(0.1).build(g.num_users(), self.cfg.dim, &mut rng));
        let e_item =
            params.add("e_item", Init::Uniform(0.1).build(g.num_items(), self.cfg.dim, &mut rng));
        let social = g.ss().row_normalized();
        let ui = g.ui().row_normalized();
        let st = State {
            e_user,
            e_item,
            social_t: Rc::new(social.transpose()),
            social: Rc::new(social),
            ui_t: Rc::new(ui.transpose()),
            ui: Rc::new(ui),
        };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let layers = self.cfg.layers;
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, _| {
                let (users, items) = forward(&st, layers, tape, params);
                bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples))
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, layers, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn diffnet_beats_random() {
        assert_beats_random(&mut DiffNet::new(quick()));
    }

    #[test]
    fn diffnet_is_deterministic() {
        let data = dgnn_data::tiny(5);
        let mut a = DiffNet::new(quick());
        let mut b = DiffNet::new(quick());
        a.fit(&data, 9);
        b.fit(&data, 9);
        assert_eq!(a.loss_history, b.loss_history);
    }
}
