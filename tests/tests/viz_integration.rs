//! Integration of trained models with the visualization stack
//! (the Figure 9/10 pipeline in miniature).

use dgnn_core::{Dgnn, MemoryBankKind};
use dgnn_data::tiny;
use dgnn_eval::Trainable;
use dgnn_integration_tests::quick_dgnn;
use dgnn_viz::{attention_similarity_gap, pca_2d, tsne_2d, TsneConfig};

#[test]
fn trained_embeddings_project_to_finite_coordinates() {
    let data = tiny(42);
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, 7);

    let items: Vec<usize> = (0..40).collect();
    let sub = model.item_embeddings().gather_rows(&items);
    let coords = tsne_2d(&sub, &TsneConfig { iterations: 80, ..TsneConfig::default() });
    assert_eq!(coords.shape(), (40, 2));
    assert!(coords.all_finite());

    let p = pca_2d(model.user_embeddings());
    assert_eq!(p.shape(), (data.graph.num_users(), 2));
    assert!(p.all_finite());
}

#[test]
fn attention_gap_pipeline_runs_on_trained_model() {
    let data = tiny(42);
    let g = &data.graph;
    let mut model = Dgnn::new(quick_dgnn());
    model.fit(&data, 7);

    let social_pairs: Vec<(usize, usize)> =
        g.social_ties().iter().map(|&(a, b)| (a as usize, b as usize)).collect();
    assert!(!social_pairs.is_empty(), "tiny world should have social ties");
    let random_pairs: Vec<(usize, usize)> = (0..g.num_users() - 1)
        .map(|u| (u, (u + g.num_users() / 2) % g.num_users()))
        .filter(|&(a, b)| a != b)
        .collect();

    let attn = model.memory_attention(MemoryBankKind::SocialToUser);
    let gap = attention_similarity_gap(attn, &social_pairs, &random_pairs);
    assert!(gap.is_finite());
    assert!(gap.abs() <= 2.0, "cosine gap must be bounded");
}
