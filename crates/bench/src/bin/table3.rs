//! **E3 — Table III**: performance at varying top-N (HR/NDCG @5 and @20).
//!
//! Reuses `results/grid.csv` from a prior `table2` run when present (the
//! runs are identical); otherwise re-runs the grid.

use std::fs;

use dgnn_bench::{datasets, print_metric_table, roster, run_cell, CellResult, SEED};
use dgnn_eval::RankingMetrics;

fn parse_grid(text: &str) -> Option<Vec<CellResult>> {
    let mut out = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 10 {
            return None;
        }
        let num = |i: usize| -> Option<f64> { f[i].parse().ok() };
        out.push(CellResult {
            model: f[0].to_string(),
            dataset: f[1].to_string(),
            metrics: [
                RankingMetrics { hr: num(2)?, ndcg: num(3)? },
                RankingMetrics { hr: num(4)?, ndcg: num(5)? },
                RankingMetrics { hr: num(6)?, ndcg: num(7)? },
            ],
            train_time: std::time::Duration::from_secs_f64(num(8)?),
            eval_time: std::time::Duration::from_secs_f64(num(9)?),
        });
    }
    (!out.is_empty()).then_some(out)
}

fn main() {
    let results = match fs::read_to_string("results/grid.csv").ok().and_then(|t| parse_grid(&t))
    {
        Some(r) => {
            eprintln!("reusing results/grid.csv from a prior table2 run");
            r
        }
        None => {
            eprintln!("no grid cache found; running the full grid");
            let data = datasets();
            let mut results = Vec::new();
            for ds in &data {
                for mut model in roster() {
                    eprintln!("training {} on {} …", model.name(), ds.name);
                    results.push(run_cell(model.as_mut(), ds, SEED));
                }
            }
            results
        }
    };

    print_metric_table("Table III: varying top-N", &results, 5);
    print_metric_table("Table III: varying top-N", &results, 20);
}
