//! **E6 — Figure 6**: performance under data sparsity on Yelp. Users are
//! split into four equal-count groups by (a) training-interaction count
//! and (b) social degree; DGNN and three representative baselines are
//! evaluated per group (HR@10).

use dgnn_baselines::{DiffNet, Mhcn, Ngcf};
use dgnn_bench::{baseline_config, datasets, dgnn_config, write_csv, SEED};
use dgnn_core::Dgnn;
use dgnn_eval::groups::evaluate_by_group;
use dgnn_eval::Trainable;

fn main() {
    let data = datasets();
    let yelp = data.iter().find(|d| d.name == "yelp-s").expect("yelp-s preset");

    let mut models: Vec<Box<dyn Trainable>> = vec![
        Box::new(DiffNet::new(baseline_config())),
        Box::new(Ngcf::new(baseline_config())),
        Box::new(Mhcn::new(baseline_config())),
        Box::new(Dgnn::new(dgnn_config())),
    ];

    let interaction_counts = yelp.train_counts_per_user();
    let social_degrees = yelp.social_degree_per_user();

    println!("=== Figure 6: sparsity groups on yelp-s (HR@10) ===\n");
    let mut rows = Vec::new();
    for model in &mut models {
        eprintln!("training {} …", model.name());
        model.fit(yelp, SEED);
    }
    for (axis, values) in
        [("interactions", &interaction_counts), ("social", &social_degrees)]
    {
        println!("grouping by {axis}:");
        for model in &models {
            let report = evaluate_by_group(model.as_ref(), &yelp.test, values, 10);
            print!("  {:<8}", model.name());
            for g in 0..4 {
                print!(
                    "  q{} (avg {:.1}, {} users): {:.4}",
                    g + 1,
                    report.mean_value[g],
                    report.test_users[g],
                    report.metrics[g].hr
                );
                rows.push(format!(
                    "{},{},{},{:.3},{},{:.6}",
                    axis,
                    model.name(),
                    g + 1,
                    report.mean_value[g],
                    report.test_users[g],
                    report.metrics[g].hr
                ));
            }
            println!();
        }
        println!();
    }
    let path = write_csv("fig6", "axis,model,quartile,mean_value,test_users,hr10", &rows);
    println!("raw: {}", path.display());
}
