//! BPR training-triple sampling.

use dgnn_graph::HeteroGraph;
use rand::Rng;

/// One BPR training triple `(i, j⁺, j⁻)` from the paper's Eq. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triple {
    /// User index.
    pub user: u32,
    /// An observed (positive) item.
    pub pos: u32,
    /// A sampled unobserved (negative) item.
    pub neg: u32,
}

/// Uniform positive sampling with rejection-sampled negatives — the
/// standard BPR sampler every compared model trains with.
#[derive(Debug)]
pub struct TrainSampler {
    positives: Vec<(u32, u32)>,
    /// Per-user sorted positive item lists for O(log n) negativity checks.
    user_items: Vec<Vec<u32>>,
    num_items: usize,
}

impl TrainSampler {
    /// Builds the sampler over a training graph's interactions.
    pub fn new(graph: &HeteroGraph) -> Self {
        let mut user_items: Vec<Vec<u32>> = vec![Vec::new(); graph.num_users()];
        let mut positives = Vec::with_capacity(graph.interactions().len());
        for it in graph.interactions() {
            positives.push((it.user, it.item));
            user_items[it.user as usize].push(it.item);
        }
        for (u, items) in user_items.iter_mut().enumerate() {
            items.sort_unstable();
            items.dedup();
            // Rejection sampling must terminate: every positive user needs
            // at least one never-interacted item to draw as a negative.
            assert!(
                items.len() < graph.num_items(),
                "user {u} interacted with every item; negative sampling impossible"
            );
        }
        positives.sort_unstable();
        positives.dedup();
        Self { positives, user_items, num_items: graph.num_items() }
    }

    /// Number of distinct positive pairs.
    pub fn num_positives(&self) -> usize {
        self.positives.len()
    }

    /// Draws one triple.
    pub fn sample(&self, rng: &mut impl Rng) -> Triple {
        let (user, pos) = self.positives[rng.gen_range(0..self.positives.len())];
        let items = &self.user_items[user as usize];
        // Rejection sampling terminates fast: the data is sparse by
        // construction (interaction density well below 1%).
        let neg = loop {
            let cand = rng.gen_range(0..self.num_items) as u32;
            if items.binary_search(&cand).is_err() {
                break cand;
            }
        };
        Triple { user, pos, neg }
    }

    /// Draws a batch of triples.
    pub fn batch(&self, rng: &mut impl Rng, size: usize) -> Vec<Triple> {
        (0..size).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::HeteroGraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new(3, 20, 1);
        b.interaction(0, 0, 0)
            .interaction(0, 1, 1)
            .interaction(1, 5, 0)
            .interaction(2, 9, 0);
        b.build()
    }

    #[test]
    fn negatives_are_truly_negative() {
        let g = graph();
        let s = TrainSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let t = s.sample(&mut rng);
            assert!(
                !g.items_of(t.user as usize).contains(&(t.neg as usize)),
                "sampled an interacted item as negative"
            );
            assert!(g.items_of(t.user as usize).contains(&(t.pos as usize)));
        }
    }

    #[test]
    fn covers_all_positives_eventually() {
        let g = graph();
        let s = TrainSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let t = s.sample(&mut rng);
            seen.insert((t.user, t.pos));
        }
        assert_eq!(seen.len(), s.num_positives());
    }

    #[test]
    fn batch_has_requested_size() {
        let s = TrainSampler::new(&graph());
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.batch(&mut rng, 37).len(), 37);
    }

    #[test]
    fn duplicate_interactions_collapse() {
        let mut b = HeteroGraphBuilder::new(1, 10, 1);
        b.interaction(0, 3, 0).interaction(0, 3, 9);
        let s = TrainSampler::new(&b.build());
        assert_eq!(s.num_positives(), 1);
    }
}
