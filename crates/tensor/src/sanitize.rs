//! Shadow-access tracking for the parallel kernel backend.
//!
//! When sanitize mode is on, every pooled kernel dispatch records — on the
//! **dispatching** thread, into a thread-local log — the symbolic read and
//! write ranges each worker partition touches. The log is consumed by
//! `dgnn-analysis::race_checker`, which proves per dispatch that
//!
//! * worker write-sets are pairwise disjoint,
//! * no worker reads another worker's write-set,
//! * the caller-run partition 0 obeys the same contract as pool workers, and
//! * the access ranges the kernel *declares* here match the static
//!   partition contract registered for it in the checker's table exactly.
//!
//! The two descriptions are maintained in different crates on purpose: the
//! declaration below lives next to the loop it describes (and is reviewed
//! with it), while the contract table lives with the independent prover. A
//! kernel change that widens an access without updating both sides is a
//! `ContractMismatch`, not a silent pass.
//!
//! # Gating
//!
//! Sanitize mode is resolved per thread from the `DGNN_SANITIZE`
//! environment variable (`1`/`true`) or pinned programmatically with
//! [`set_enabled`]. When disabled, the only cost on a kernel dispatch is a
//! single thread-local `Cell` read — no allocation, no branch into any
//! recording code. `tests/tests/obs_disabled_alloc.rs` proves the disabled
//! dispatch path allocation-free with a counting global allocator, the same
//! proof pattern `dgnn-obs` uses for its disabled span recorder.
//!
//! # Symbolic spans
//!
//! An [`Access`] is a strided span: `count` intervals of `width` elements
//! whose starts are `stride` apart, beginning at element `lo`. Contiguous
//! ranges are the `count == 1` case. The strided form exists for kernels
//! like `matmul_tn`, whose partitions read a *column* band of the left
//! operand — declaring that band as a whole-buffer read would hide exactly
//! the over-broad-contract drift the sanitizer is meant to catch.

use std::cell::{Cell, RefCell};
use std::ops::Range;

use crate::parallel;

/// Operand code for a kernel's primary output buffer; inputs use 0, 1, 2…
/// in the order the kernel's contract documents.
pub const OUT: u8 = 0xFF;

/// Operand code for a dispatcher-provided scratch buffer that partitions
/// write disjoint private regions of (the packed-GEMM A-panel buffers).
pub const SCRATCH: u8 = 0xFE;

/// Per-thread cap on buffered dispatches. Beyond it, new dispatches are
/// dropped (and counted) rather than growing without bound — sanitize mode
/// inside a long training run must not turn into a memory leak.
pub const MAX_LOG: usize = 8192;

/// One symbolic element range a partition touches in one operand:
/// `count` spans of `width` elements, starting at `lo`, `stride` apart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Which buffer: [`OUT`] or an input index (0, 1, 2… per the kernel's
    /// registered contract).
    pub operand: u8,
    /// True for a write (or the write half of a read-modify-write).
    pub write: bool,
    /// First element of the first span.
    pub lo: usize,
    /// Elements per span.
    pub width: usize,
    /// Distance between consecutive span starts (irrelevant when
    /// `count == 1`).
    pub stride: usize,
    /// Number of spans.
    pub count: usize,
}

impl Access {
    /// Contiguous read of elements `range` in `operand`.
    pub fn read(operand: u8, range: Range<usize>) -> Self {
        Self::contiguous(operand, false, range)
    }

    /// Contiguous write of elements `range` in `operand`.
    pub fn write(operand: u8, range: Range<usize>) -> Self {
        Self::contiguous(operand, true, range)
    }

    /// Strided read: `count` spans of `width` elements starting at `lo`,
    /// `stride` apart (e.g. a column band of a row-major matrix).
    pub fn read_strided(operand: u8, lo: usize, width: usize, stride: usize, count: usize) -> Self {
        Self { operand, write: false, lo, width, stride, count }
    }

    fn contiguous(operand: u8, write: bool, range: Range<usize>) -> Self {
        let width = range.end.saturating_sub(range.start);
        Self { operand, write, lo: range.start, width, stride: width.max(1), count: 1 }
    }

    /// True when the span covers no elements at all.
    pub fn is_empty(&self) -> bool {
        self.width == 0 || self.count == 0
    }

    /// One-past-the-last element any span touches (0 when empty).
    pub fn end(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.lo + (self.count - 1) * self.stride + self.width
        }
    }
}

/// Everything one partition of one dispatch touched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartAccess {
    /// Partition index in `0..parts`; partition 0 ran on the caller.
    pub part: usize,
    /// First item (output row) this partition owns.
    pub row_lo: usize,
    /// One past the last item this partition owns.
    pub row_hi: usize,
    /// Declared accesses, the automatic output write first.
    pub accesses: Vec<Access>,
}

/// One pooled kernel dispatch: the partitioning plus every partition's
/// declared access set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dispatch {
    /// Registered kernel name (the race checker's contract-table key).
    pub kernel: &'static str,
    /// Number of partitions this dispatch planned (1 = serial fast path).
    pub parts: usize,
    /// Number of items (output rows) partitioned over.
    pub items: usize,
    /// Per-partition access records, in partition order.
    pub partitions: Vec<PartAccess>,
}

thread_local! {
    /// -1: unresolved (consult `DGNN_SANITIZE` on first read); 0/1 pinned.
    static ENABLED: Cell<i8> = const { Cell::new(-1) };
    static LOG: RefCell<Vec<Dispatch>> = const { RefCell::new(Vec::new()) };
    static DROPPED: Cell<u64> = const { Cell::new(0) };
}

/// Is sanitize mode on for the calling thread? One `Cell` read after the
/// first call (which resolves `DGNN_SANITIZE` once per thread).
#[inline]
pub fn enabled() -> bool {
    let v = ENABLED.with(Cell::get);
    if v >= 0 {
        return v == 1;
    }
    let on = matches!(
        std::env::var("DGNN_SANITIZE").as_deref(),
        Ok("1") | Ok("true") | Ok("TRUE")
    );
    ENABLED.with(|c| c.set(i8::from(on)));
    on
}

/// Pins sanitize mode for the calling thread, overriding `DGNN_SANITIZE`.
pub fn set_enabled(on: bool) {
    ENABLED.with(|c| c.set(i8::from(on)));
}

/// Drains and returns the calling thread's dispatch log (oldest first) and
/// resets the overflow counter.
pub fn take_log() -> Vec<Dispatch> {
    DROPPED.with(|c| c.set(0));
    LOG.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// Dispatches dropped since the last [`take_log`] because the per-thread
/// log was full ([`MAX_LOG`]); nonzero means the log is a sample, not a
/// census, and a proof over it is incomplete.
pub fn dropped_dispatches() -> u64 {
    DROPPED.with(Cell::get)
}

/// Appends one dispatch to the calling thread's log (bounded by
/// [`MAX_LOG`]). Callers are expected to have checked [`enabled`] first.
pub fn record(d: Dispatch) {
    LOG.with(|l| {
        let mut log = l.borrow_mut();
        if log.len() >= MAX_LOG {
            DROPPED.with(|c| c.set(c.get() + 1));
        } else {
            log.push(d);
        }
    });
}

/// Records a dispatch for a kernel that partitions `items` rows into
/// `parts` via [`parallel::part_range`] but manages its own output buffers
/// (raw-pointer kernels like `top_k_rows`). `accesses(part, rows)` must
/// declare *every* buffer the partition touches, writes included — there is
/// no automatic output record on this path.
///
/// No-op unless sanitize mode is on; never records from inside a running
/// partition body (nested dispatches degrade to serial and are an
/// implementation detail of the outer kernel's contract).
pub fn record_raw(
    kernel: &'static str,
    parts: usize,
    items: usize,
    accesses: impl Fn(usize, &Range<usize>) -> Vec<Access>,
) {
    if !enabled() || parallel::in_kernel() {
        return;
    }
    let partitions = (0..parts.max(1))
        .map(|p| {
            let range = parallel::part_range(items, parts.max(1), p);
            PartAccess {
                part: p,
                row_lo: range.start,
                row_hi: range.end,
                accesses: accesses(p, &range),
            }
        })
        .collect();
    record(Dispatch { kernel, parts: parts.max(1), items, partitions });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors_and_extent() {
        let r = Access::read(0, 3..9);
        assert_eq!((r.lo, r.width, r.count), (3, 6, 1));
        assert!(!r.write);
        assert_eq!(r.end(), 9);

        let w = Access::write(OUT, 4..4);
        assert!(w.is_empty());
        assert_eq!(w.end(), 0);

        let s = Access::read_strided(1, 2, 3, 10, 4);
        assert_eq!(s.end(), 2 + 3 * 10 + 3);
    }

    #[test]
    fn log_roundtrip_and_cap() {
        set_enabled(true);
        let _ = take_log();
        record_raw("test/roundtrip", 3, 7, |_, r| {
            vec![Access::write(OUT, r.start * 2..r.end * 2)]
        });
        let log = take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].parts, 3);
        assert_eq!(log[0].partitions.len(), 3);
        assert_eq!(log[0].partitions[2].row_hi, 7);
        // Partition rows tile 0..items.
        assert_eq!(log[0].partitions[0].row_lo, 0);
        assert_eq!(log[0].partitions[1].row_lo, log[0].partitions[0].row_hi);

        for _ in 0..MAX_LOG + 5 {
            record(Dispatch { kernel: "test/cap", parts: 1, items: 0, partitions: Vec::new() });
        }
        assert_eq!(dropped_dispatches(), 5);
        let log = take_log();
        assert_eq!(log.len(), MAX_LOG);
        assert_eq!(dropped_dispatches(), 0, "take_log resets the overflow counter");
        set_enabled(false);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        set_enabled(false);
        let _ = take_log();
        record_raw("test/disabled", 2, 4, |_, _| vec![]);
        assert!(take_log().is_empty());
    }
}
