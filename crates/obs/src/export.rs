//! Serialization of observability data: JSONL event logs, Chrome
//! trace-event files, and the shared metrics-snapshot JSON.
//!
//! Field names in all three formats are a **stable schema** — the
//! golden-schema integration test (`tests/tests/observability.rs`) pins
//! them, and downstream tooling (`memplan --check`, `profile --check`,
//! Perfetto) parses them. Change them only with the test and both check
//! parsers in the same commit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::Snapshot;
use crate::span::{SpanEvent, SpanPhase};

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number: integral values print without a
/// fractional part (so byte counts stay grep-ably integral), non-finite
/// values — which JSON cannot carry — print as `null`.
pub fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One span event per line:
/// `{"name":"batch","ph":"B","t_ns":12345,"depth":1}`.
pub fn events_to_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"name\":{},\"ph\":{},\"t_ns\":{},\"depth\":{}}}",
            json_string(&e.name),
            json_string(e.phase.chrome_ph()),
            e.t_ns,
            e.depth,
        );
    }
    out
}

/// Chrome trace-event JSON (the `chrome://tracing` / Perfetto format).
///
/// `threads` pairs a display name with that thread's event stream; each
/// gets its own `tid` plus a `thread_name` metadata record so Perfetto
/// shows labeled tracks. Timestamps are microseconds (the format's unit),
/// carried as fractional values so nanosecond precision survives.
pub fn chrome_trace(threads: &[(&str, &[SpanEvent])]) -> String {
    let mut items = Vec::new();
    for (tid, (name, events)) in threads.iter().enumerate() {
        items.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
            tid + 1,
            json_string(name),
        ));
        for e in *events {
            items.push(format!(
                "{{\"name\":{},\"cat\":\"dgnn\",\"ph\":{},\"ts\":{},\"pid\":1,\"tid\":{}}}",
                json_string(&e.name),
                json_string(e.phase.chrome_ph()),
                json_number(e.t_ns as f64 / 1000.0),
                tid + 1,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", items.join(","))
}

/// Serializes a [`Snapshot`] — the one code path behind both
/// `analysis-baseline.json` (via `memplan`) and `BENCH_profile.json`
/// (via `profile`).
///
/// `indent` is the number of leading spaces on each emitted line, letting
/// callers nest a snapshot inside a larger document.
pub fn snapshot_to_json(s: &Snapshot, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let field = |out: &mut String, name: &str, body: String, last: bool| {
        let _ = write!(out, "{pad}  \"{name}\": {{{body}}}{}\n", if last { "" } else { "," });
    };
    let mut out = format!("{pad}{{\n");
    let counters = s
        .counters
        .iter()
        .map(|(k, v)| format!("{}: {v}", json_string(k)))
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "counters", counters, false);
    let gauges = s
        .gauges
        .iter()
        .map(|(k, v)| format!("{}: {}", json_string(k), json_number(*v)))
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "gauges", gauges, false);
    let hists = s
        .histograms
        .iter()
        .map(|(k, h)| {
            format!(
                "{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                json_string(k),
                h.count,
                json_number(h.sum),
                json_number(h.min),
                json_number(h.max),
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "histograms", hists, false);
    let ops = s
        .ops
        .iter()
        .map(|(k, o)| {
            format!(
                "{}: {{\"forward\": {{\"calls\": {}, \"total_ns\": {}}}, \
                 \"backward\": {{\"calls\": {}, \"total_ns\": {}}}}}",
                json_string(k),
                o.forward.calls,
                o.forward.total_ns,
                o.backward.calls,
                o.backward.total_ns,
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut out, "ops", ops, true);
    let _ = write!(out, "{pad}}}");
    out
}

/// Sums span durations by name: `name -> (span_count, total_ns)`.
///
/// Balanced begin/end pairs are matched by a per-name stack, so nested and
/// repeated spans of the same name both aggregate correctly.
pub fn span_totals(events: &[SpanEvent]) -> BTreeMap<String, (u64, u64)> {
    let mut open: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for e in events {
        match e.phase {
            SpanPhase::Begin => open.entry(&e.name).or_default().push(e.t_ns),
            SpanPhase::End => {
                if let Some(t0) = open.get_mut(e.name.as_ref()).and_then(Vec::pop) {
                    let entry = totals.entry(e.name.to_string()).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += e.t_ns.saturating_sub(t0);
                }
            }
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistStat;
    use crate::ops::{OpStat, PhaseStat};
    use std::borrow::Cow;

    fn ev(name: &'static str, phase: SpanPhase, t_ns: u64, depth: u32) -> SpanEvent {
        SpanEvent { name: Cow::Borrowed(name), phase, t_ns, depth }
    }

    #[test]
    fn jsonl_schema_is_stable() {
        let line = events_to_jsonl(&[ev("batch", SpanPhase::Begin, 42, 1)]);
        assert_eq!(line, "{\"name\":\"batch\",\"ph\":\"B\",\"t_ns\":42,\"depth\":1}\n");
    }

    #[test]
    fn chrome_trace_has_required_fields() {
        let events =
            [ev("epoch", SpanPhase::Begin, 1000, 0), ev("epoch", SpanPhase::End, 3500, 0)];
        let t = chrome_trace(&[("DGNN", &events)]);
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.contains("\"ph\":\"B\""));
        assert!(t.contains("\"ph\":\"E\""));
        assert!(t.contains("\"ts\":1"));
        assert!(t.contains("\"ts\":3.5"));
        assert!(t.contains("\"thread_name\""));
        assert!(t.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(3.25), "3.25");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn snapshot_serializes_all_sections() {
        let mut s = Snapshot::default();
        s.counters.insert("grad_nonfinite".into(), 2);
        s.gauges.insert("memplan/DGNN/peak_live_bytes".into(), 4096.0);
        s.histograms
            .insert("epoch_mean_loss".into(), HistStat { count: 2, sum: 1.5, min: 0.5, max: 1.0 });
        s.ops.insert(
            "matmul".into(),
            OpStat {
                forward: PhaseStat { calls: 4, total_ns: 100 },
                backward: PhaseStat { calls: 4, total_ns: 220 },
            },
        );
        let json = snapshot_to_json(&s, 2);
        for needle in [
            "\"counters\"",
            "\"gauges\"",
            "\"histograms\"",
            "\"ops\"",
            "\"grad_nonfinite\": 2",
            "\"memplan/DGNN/peak_live_bytes\": 4096",
            "\"count\": 2",
            "\"forward\": {\"calls\": 4, \"total_ns\": 100}",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn span_totals_handle_nesting_and_repeats() {
        let events = [
            ev("epoch", SpanPhase::Begin, 0, 0),
            ev("batch", SpanPhase::Begin, 10, 1),
            ev("batch", SpanPhase::End, 30, 1),
            ev("batch", SpanPhase::Begin, 40, 1),
            ev("batch", SpanPhase::End, 100, 1),
            ev("epoch", SpanPhase::End, 110, 0),
        ];
        let t = span_totals(&events);
        assert_eq!(t["batch"], (2, 80));
        assert_eq!(t["epoch"], (1, 110));
    }
}
