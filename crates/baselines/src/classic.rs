//! Classic reference models from the paper's related-work lineage —
//! useful anchors for downstream users even though Table II omits them:
//!
//! * **BPR-MF** — plain matrix factorization with BPR (the substrate every
//!   compared model builds on);
//! * **SoRec** (Ma et al., CIKM 2008) — joint factorization of the
//!   interaction and social matrices with shared user factors;
//! * **TrustMF** (Yang et al., TPAMI 2016) — truster/trustee factor spaces
//!   bridged through the social links;
//! * **LightGCN** (He et al., SIGIR 2020, cited as [16]) — embedding
//!   propagation with no transforms or nonlinearities, layer-averaged.

use std::rc::Rc;

use dgnn_autograd::{Adam, ParamId, ParamSet, Recorder, Tape, Var};
use dgnn_data::{Dataset, TrainSampler};
use dgnn_eval::{Recommender, Trainable};
use dgnn_tensor::{Csr, Init};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::common::{bpr_from_embeddings, train_loop, BaselineConfig, BatchIdx, Scorer};

/// Which classic variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassicKind {
    /// Plain BPR matrix factorization.
    BprMf,
    /// SoRec: shared user factors jointly reconstruct `Y` and `S`.
    SoRec,
    /// TrustMF: separate truster/trustee spaces tied by social links.
    TrustMf,
    /// LightGCN: parameter-free propagation, layer-averaged embeddings.
    LightGcn,
}

impl ClassicKind {
    fn name(self) -> &'static str {
        match self {
            ClassicKind::BprMf => "BPR-MF",
            ClassicKind::SoRec => "SoRec",
            ClassicKind::TrustMf => "TrustMF",
            ClassicKind::LightGcn => "LightGCN",
        }
    }
}

struct State {
    e_user: ParamId,
    e_item: ParamId,
    /// Trustee factors (TrustMF) — unused otherwise.
    e_trustee: ParamId,
    adj: Option<(Rc<Csr>, Rc<Csr>)>,
    ties: Vec<(u32, u32)>,
    friends: Vec<Vec<u32>>,
}

fn forward(st: &State, kind: ClassicKind, layers: usize, tape: &mut Tape, params: &ParamSet) -> (Var, Var) {
    match kind {
        ClassicKind::BprMf | ClassicKind::SoRec => {
            (tape.param(params, st.e_user), tape.param(params, st.e_item))
        }
        ClassicKind::TrustMf => {
            // Item-domain user factors are the truster factors.
            (tape.param(params, st.e_user), tape.param(params, st.e_item))
        }
        ClassicKind::LightGcn => {
            // Bipartite light propagation: u ← Â v, v ← Âᵀ u, alternating,
            // with layer-averaged outputs and no transforms — LightGCN's
            // whole point.
            let (adj, adj_t) = st.adj.as_ref().expect("LightGCN builds an adjacency");
            let mut hu = tape.param(params, st.e_user);
            let mut hv = tape.param(params, st.e_item);
            let mut acc_u = hu;
            let mut acc_v = hv;
            for _ in 0..layers.max(1) {
                let new_u = tape.spmm_with(adj, adj_t, hv);
                let new_v = tape.spmm_with(adj_t, adj, hu);
                hu = new_u;
                hv = new_v;
                acc_u = tape.add(acc_u, hu);
                acc_v = tape.add(acc_v, hv);
            }
            let k = 1.0 / (layers.max(1) + 1) as f32;
            let users = tape.scale(acc_u, k);
            let items = tape.scale(acc_v, k);
            (users, items)
        }
    }
}

/// Auxiliary social reconstruction loss (SoRec / TrustMF): friends should
/// outrank random non-friends under the model's social factor spaces.
fn social_aux(
    st: &State,
    kind: ClassicKind,
    tape: &mut Tape,
    params: &ParamSet,
    rng: &mut StdRng,
    n: usize,
) -> Option<Var> {
    if st.ties.is_empty() {
        return None;
    }
    let num_users = st.friends.len();
    let mut a_idx = Vec::with_capacity(n);
    let mut pos_idx = Vec::with_capacity(n);
    let mut neg_idx = Vec::with_capacity(n);
    for _ in 0..n {
        let &(a, b) = &st.ties[rng.gen_range(0..st.ties.len())];
        let neg = loop {
            let c = rng.gen_range(0..num_users) as u32;
            if c != a && st.friends[a as usize].binary_search(&c).is_err() {
                break c;
            }
        };
        a_idx.push(a as usize);
        pos_idx.push(b as usize);
        neg_idx.push(neg as usize);
    }
    let truster = tape.param(params, st.e_user);
    // SoRec shares the user table on both sides; TrustMF uses the separate
    // trustee table — its distinguishing mechanism.
    let trustee = match kind {
        ClassicKind::TrustMf => tape.param(params, st.e_trustee),
        _ => truster,
    };
    let ae = tape.gather(truster, Rc::new(a_idx));
    let pe = tape.gather(trustee, Rc::new(pos_idx));
    let ne = tape.gather(trustee, Rc::new(neg_idx));
    let ps = tape.row_dots(ae, pe);
    let ns = tape.row_dots(ae, ne);
    Some(tape.bpr_loss(ps, ns))
}

/// A classic reference recommender (see [`ClassicKind`]).
pub struct Classic {
    kind: ClassicKind,
    cfg: BaselineConfig,
    scorer: Scorer,
    /// Mean loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Classic {
    /// Creates an untrained model of the given kind.
    pub fn new(kind: ClassicKind, cfg: BaselineConfig) -> Self {
        Self { kind, cfg, scorer: Scorer::default(), loss_history: Vec::new() }
    }
}

impl Recommender for Classic {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn score(&self, user: usize, items: &[usize]) -> Vec<f32> {
        self.scorer.score(self.kind.name(), user, items)
    }
}

impl Trainable for Classic {
    fn fit(&mut self, data: &Dataset, seed: u64) {
        let g = &data.graph;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let d = self.cfg.dim;
        let e_user = params.add("e_user", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));
        let e_item = params.add("e_item", Init::Uniform(0.1).build(g.num_items(), d, &mut rng));
        let e_trustee =
            params.add("e_trustee", Init::Uniform(0.1).build(g.num_users(), d, &mut rng));

        let adj = (self.kind == ClassicKind::LightGcn).then(|| {
            let ui = g.ui().sym_normalized();
            let t = Rc::new(ui.transpose());
            (Rc::new(ui), t)
        });
        let mut ties = Vec::new();
        let mut friends: Vec<Vec<u32>> = vec![Vec::new(); g.num_users()];
        for &(a, b) in g.social_ties() {
            ties.push((a, b));
            ties.push((b, a));
            friends[a as usize].push(b);
            friends[b as usize].push(a);
        }
        for f in &mut friends {
            f.sort_unstable();
        }
        let st = State {
            e_user,
            e_item,
            e_trustee,
            adj,
            ties,
            friends,
        };

        let sampler = TrainSampler::new(g);
        let mut adam = Adam::new(self.cfg.learning_rate, self.cfg.weight_decay);
        let kind = self.kind;
        let layers = self.cfg.layers;
        let batch = self.cfg.batch_size;
        self.loss_history = train_loop(
            &self.cfg,
            &mut params,
            &mut adam,
            &sampler,
            seed,
            None,
            |tape, params, triples, rng| {
                let (users, items) = forward(&st, kind, layers, tape, params);
                let main = bpr_from_embeddings(tape, users, items, &BatchIdx::new(triples));
                let needs_social =
                    matches!(kind, ClassicKind::SoRec | ClassicKind::TrustMf);
                if needs_social {
                    if let Some(aux) = social_aux(&st, kind, tape, params, rng, batch.min(512))
                    {
                        let aux = tape.scale(aux, 0.5);
                        return tape.add(main, aux);
                    }
                }
                main
            },
        );

        let mut tape = Tape::new();
        let (users, items) = forward(&st, kind, layers, &mut tape, &params);
        self.scorer =
            Scorer { user: tape.value(users).clone(), item: tape.value(items).clone() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::testutil::{assert_beats_random, quick};

    #[test]
    fn bpr_mf_beats_random() {
        assert_beats_random(&mut Classic::new(ClassicKind::BprMf, quick()));
    }

    #[test]
    fn sorec_beats_random() {
        assert_beats_random(&mut Classic::new(ClassicKind::SoRec, quick()));
    }

    #[test]
    fn trustmf_beats_random() {
        assert_beats_random(&mut Classic::new(ClassicKind::TrustMf, quick()));
    }

    #[test]
    fn lightgcn_beats_random() {
        assert_beats_random(&mut Classic::new(ClassicKind::LightGcn, quick()));
    }

    #[test]
    fn names_are_distinct() {
        let kinds =
            [ClassicKind::BprMf, ClassicKind::SoRec, ClassicKind::TrustMf, ClassicKind::LightGcn];
        let names: std::collections::HashSet<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
