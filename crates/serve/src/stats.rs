//! Serving-side metrics: request latencies, batch sizes, outcome counts.
//!
//! Worker and batcher threads record samples here (one mutex-guarded
//! update per event — the mutex is uncontended at benchmark concurrency).
//! Storage is **bounded** no matter how long the server runs: a
//! [`dgnn_obs::StreamHist`] per series (constant-size bucket counts) plus
//! a fixed-capacity reservoir of raw latency samples. While the total
//! sample count fits the reservoir ([`RESERVOIR_CAP`]) the reservoir holds
//! *every* sample and percentiles are exact — byte-identical to the old
//! unbounded collector; past that the summary switches to the streaming
//! histogram's bounded-error estimate. (The previous implementation pushed
//! every sample into a `Vec` forever — a slow leak under sustained load.)
//!
//! [`ServerStats::publish`] later folds the aggregates into the
//! process-wide `dgnn-obs` registry *on the calling thread* (obs
//! enablement is thread-local) via [`dgnn_obs::hist_merge`], emitting
//! histograms plus p50/p95/p99 gauges so `BENCH_serve.json` flows through
//! the same pinned `snapshot_to_json` schema as `BENCH_profile.json`.
//! Percentiles use the workspace definition in [`dgnn_obs::percentile`].

use std::sync::Mutex;

use dgnn_obs::percentile::percentile_sorted_u64;
use dgnn_obs::StreamHist;

/// Raw-latency reservoir capacity. Below this many requests percentiles
/// are exact; above, the streaming histogram answers with bounded relative
/// error (≤ one log2/8 bucket width, ~6%).
pub const RESERVOIR_CAP: usize = 4096;

/// Fixed-capacity uniform sample of a `u64` stream (Vitter's algorithm R
/// with a deterministic xorshift generator — reproducible summaries).
#[derive(Debug)]
struct Reservoir {
    samples: Vec<u64>,
    seen: u64,
    rng: u64,
}

impl Reservoir {
    fn new() -> Self {
        Self { samples: Vec::with_capacity(RESERVOIR_CAP), seen: 0, rng: 0x9E37_79B9_7F4A_7C15 }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn push(&mut self, v: u64) {
        self.seen += 1;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(v);
        } else {
            let j = self.next_rand() % self.seen;
            if (j as usize) < RESERVOIR_CAP {
                self.samples[j as usize] = v;
            }
        }
    }

    /// True while the reservoir still holds every sample ever pushed.
    fn is_exact(&self) -> bool {
        self.seen as usize <= RESERVOIR_CAP
    }
}

/// Shared collector for one server's lifetime.
#[derive(Debug)]
pub struct ServerStats {
    inner: Mutex<Inner>,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct Inner {
    /// End-to-end request latencies, milliseconds (streaming).
    latency_ms: StreamHist,
    /// Raw microsecond latencies for exact small-n percentiles.
    latency_res: Reservoir,
    /// Queries coalesced per engine dispatch (streaming).
    batch: StreamHist,
    ok: u64,
    err: u64,
}

/// Point-in-time summary of the collected samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSummary {
    /// Requests answered with a 2xx.
    pub ok: u64,
    /// Requests answered with a 4xx/5xx.
    pub err: u64,
    /// Latency percentiles in milliseconds: (p50, p95, p99).
    pub latency_ms: (f64, f64, f64),
    /// Mean coalesced batch size.
    pub batch_size_mean: f64,
    /// Number of engine dispatches.
    pub batches: u64,
}

impl ServerStats {
    /// Fresh, empty collector.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                latency_ms: StreamHist::new(),
                latency_res: Reservoir::new(),
                batch: StreamHist::new(),
                ok: 0,
                err: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned mutex only means a panicking thread held it; the
        // aggregates are still structurally valid, so keep serving.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one completed request.
    pub fn record_request(&self, latency_us: u64, ok: bool) {
        let mut g = self.lock();
        g.latency_ms.record(latency_us as f64 / 1000.0);
        g.latency_res.push(latency_us);
        if ok {
            g.ok += 1;
        } else {
            g.err += 1;
        }
    }

    /// Records the size of one coalesced engine dispatch.
    pub fn record_batch(&self, size: usize) {
        self.lock().batch.record(size as f64);
    }

    /// Total requests recorded so far (ok + err) — the cheap liveness
    /// number `/health` reports.
    pub fn requests_total(&self) -> u64 {
        let g = self.lock();
        g.ok + g.err
    }

    /// Summarizes everything recorded so far. Percentiles are exact while
    /// the request count fits [`RESERVOIR_CAP`], streaming-histogram
    /// estimates beyond that.
    pub fn summary(&self) -> StatsSummary {
        let g = self.lock();
        let pct: Box<dyn Fn(f64) -> f64> = if g.latency_res.is_exact() {
            let mut lat = g.latency_res.samples.clone();
            lat.sort_unstable();
            Box::new(move |q| percentile_sorted_u64(&lat, q) / 1000.0)
        } else {
            let h = g.latency_ms.clone();
            Box::new(move |q| h.quantile(q))
        };
        let bstat = g.batch.stat();
        StatsSummary {
            ok: g.ok,
            err: g.err,
            latency_ms: (pct(0.50), pct(0.95), pct(0.99)),
            batch_size_mean: bstat.mean(),
            batches: bstat.count,
        }
    }

    /// Publishes the collected aggregates into the thread-local `dgnn-obs`
    /// registry: `serve/latency_ms` + `serve/batch_size` histograms,
    /// `serve/latency_ms_{p50,p95,p99}`, `serve/qps`, and
    /// `serve/batch_size_mean` gauges, `serve/requests_{ok,err}` counters.
    /// Call from a thread with obs enabled (enablement is thread-local).
    /// [`dgnn_obs::hist_merge`] makes the histogram entries byte-identical
    /// to replaying every raw sample, without retaining them.
    pub fn publish(&self, elapsed_secs: f64) -> StatsSummary {
        let s = self.summary();
        {
            let g = self.lock();
            dgnn_obs::hist_merge("serve/latency_ms", g.latency_ms.stat());
            dgnn_obs::hist_merge("serve/batch_size", g.batch.stat());
        }
        dgnn_obs::counter_add("serve/requests_ok", s.ok);
        dgnn_obs::counter_add("serve/requests_err", s.err);
        dgnn_obs::gauge_set("serve/latency_ms_p50", s.latency_ms.0);
        dgnn_obs::gauge_set("serve/latency_ms_p95", s.latency_ms.1);
        dgnn_obs::gauge_set("serve/latency_ms_p99", s.latency_ms.2);
        dgnn_obs::gauge_set("serve/batch_size_mean", s.batch_size_mean);
        let qps = if elapsed_secs > 0.0 { (s.ok + s.err) as f64 / elapsed_secs } else { 0.0 };
        dgnn_obs::gauge_set("serve/qps", qps);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_folds_counts_and_percentiles() {
        let s = ServerStats::new();
        for us in [1000, 2000, 3000, 4000, 100_000] {
            s.record_request(us, true);
        }
        s.record_request(500, false);
        s.record_batch(2);
        s.record_batch(4);
        let sum = s.summary();
        assert_eq!(sum.ok, 5);
        assert_eq!(sum.err, 1);
        assert_eq!(sum.batches, 2);
        assert!((sum.batch_size_mean - 3.0).abs() < 1e-12);
        // p50 of [0.5, 1, 2, 3, 4, 100] ms with rounding index 3 (0-based
        // round(0.5 * 5) = 3) is 3 ms; p99 lands on the max.
        assert!((sum.latency_ms.0 - 3.0).abs() < 1e-9, "p50 was {}", sum.latency_ms.0);
        assert!((sum.latency_ms.2 - 100.0).abs() < 1e-9);
        assert_eq!(s.requests_total(), 6);
    }

    #[test]
    fn empty_stats_summary_is_zeroed() {
        assert_eq!(ServerStats::new().summary(), StatsSummary::default());
    }

    #[test]
    fn memory_stays_bounded_past_the_reservoir() {
        let s = ServerStats::new();
        for i in 0..(RESERVOIR_CAP as u64 * 2) {
            s.record_request(1000 + i % 512, true);
        }
        {
            let g = s.lock();
            assert_eq!(g.latency_res.samples.len(), RESERVOIR_CAP);
            assert!(!g.latency_res.is_exact());
            assert_eq!(g.latency_ms.count(), RESERVOIR_CAP as u64 * 2);
        }
        // Streaming estimate: every sample is in [1.0, 1.512] ms, so every
        // percentile must land there (within one bucket width).
        let sum = s.summary();
        for p in [sum.latency_ms.0, sum.latency_ms.1, sum.latency_ms.2] {
            assert!((0.9..=1.7).contains(&p), "estimate {p} escaped the sample range");
        }
    }

    #[test]
    fn publish_feeds_the_obs_registry() {
        dgnn_obs::reset();
        dgnn_obs::enable();
        let s = ServerStats::new();
        s.record_request(2000, true);
        s.record_batch(1);
        let sum = s.publish(2.0);
        dgnn_obs::disable();
        let snap = dgnn_obs::snapshot();
        dgnn_obs::reset();
        assert_eq!(sum.ok, 1);
        assert_eq!(snap.counters.get("serve/requests_ok"), Some(&1));
        assert!(snap.gauges.contains_key("serve/qps"));
        let h = &snap.histograms["serve/latency_ms"];
        // hist_merge carries the exact aggregate: one 2 ms sample.
        assert_eq!((h.count, h.min, h.max), (1, 2.0, 2.0));
    }
}
