//! **E1 — Table I**: statistics of the experimented datasets, printed
//! side by side with the paper's original numbers so the calibration of
//! the scaled synthetic datasets is auditable.

use dgnn_bench::{datasets, write_csv};
use dgnn_data::{DatasetStats, PAPER_TABLE1};

fn main() {
    let data = datasets();
    println!("=== Table I: statistics of experimented datasets ===\n");
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "Dataset", "#Users", "#Items", "#Interact", "IntDens%", "#SocialTies", "SocDens%"
    );

    let mut rows = Vec::new();
    for (paper, ds) in PAPER_TABLE1.iter().zip(&data) {
        println!(
            "{:<24} {:>10} {:>10} {:>12} {:>10.4} {:>12} {:>10.4}",
            format!("{} (paper)", paper.name),
            paper.users,
            paper.items,
            paper.interactions,
            paper.interaction_density_pct,
            paper.social_ties,
            paper.social_density_pct,
        );
        let s = DatasetStats::compute(&ds.name, &ds.graph);
        println!(
            "{:<24} {:>10} {:>10} {:>12} {:>10.4} {:>12} {:>10.4}",
            format!("{} (ours)", s.name),
            s.users,
            s.items,
            s.interactions,
            s.interaction_density_pct,
            s.social_ties,
            s.social_density_pct,
        );
        println!(
            "{:<24} {:>10} {:>10} {:>12.1} (int/user paper {:.1}) ties/user {:.1} (paper {:.1})\n",
            "  per-user rates",
            "",
            "",
            s.interactions_per_user,
            paper.interactions_per_user(),
            s.ties_per_user,
            paper.ties_per_user(),
        );
        rows.push(format!(
            "{},{},{},{},{:.6},{},{:.6}",
            s.name,
            s.users,
            s.items,
            s.interactions,
            s.interaction_density_pct,
            s.social_ties,
            s.social_density_pct
        ));
    }
    let path = write_csv(
        "table1",
        "dataset,users,items,interactions,interaction_density_pct,social_ties,social_density_pct",
        &rows,
    );
    println!("raw: {}", path.display());
}
