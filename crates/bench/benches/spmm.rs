//! Microbench: sparse propagation (the `O(|E|·d)` kernel every GNN layer
//! runs) across the three dataset scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgnn_bench::datasets;
use dgnn_tensor::{Init, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    let mut rng = StdRng::seed_from_u64(0);
    for ds in datasets() {
        let adj = ds.graph.ui().row_normalized();
        let feats = Init::Uniform(0.1).build(ds.graph.num_items(), 16, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("ui_propagate_d16", &ds.name),
            &(adj, feats),
            |b, (adj, feats)| b.iter(|| black_box(adj.spmm(black_box(feats)))),
        );
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let ds = datasets().remove(2); // yelp-s: largest
    let adj = ds.graph.unified_adj(true, true);
    c.bench_function("csr_transpose_unified_yelp", |b| {
        b.iter(|| black_box(adj.transpose()))
    });
}

fn bench_dense_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Init::Uniform(0.1).build(2000, 16, &mut rng);
    let w: Matrix = Init::XavierUniform.build(16, 16, &mut rng);
    c.bench_function("dense_2000x16_by_16x16", |b| {
        b.iter(|| black_box(a.matmul(black_box(&w))))
    });
}

criterion_group!(benches, bench_spmm, bench_transpose, bench_dense_matmul);
criterion_main!(benches);
